//! Survivability goals under failure (§2.2, §3.3): the same database,
//! first with ZONE survivability (a zone can burn down), then with REGION
//! survivability (a whole region can).
//!
//! Run with: `cargo run --release --example failover`

use multiregion::{ClusterBuilder, SimDuration, SimTime};

fn main() {
    let mut db = ClusterBuilder::new()
        .region("us-east1", 3)
        .region("us-west1", 3)
        .region("europe-west1", 3)
        .seed(9)
        // Failure handling needs RPC timeouts so stranded requests re-route.
        .rpc_timeout(SimDuration::from_secs(2))
        .build();

    let sess = db.session_in_region("us-east1", None);
    db.exec_script(
        &sess,
        r#"
        CREATE DATABASE bank PRIMARY REGION "us-east1"
            REGIONS "us-west1", "europe-west1";
        CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)
            LOCALITY REGIONAL BY TABLE IN PRIMARY REGION;
        "#,
    )
    .unwrap();
    db.cluster
        .run_until(SimTime(SimDuration::from_secs(5).nanos()));
    let east = db.session_in_region("us-east1", Some("bank"));
    db.exec_sync(&east, "INSERT INTO accounts VALUES (1, 100)")
        .unwrap();
    println!("== ZONE survivability (the default): 3 voters, all in us-east1 ==");

    // Kill one zone of the home region: writes keep working.
    let lh_node = mr_sim::NodeId(0);
    db.cluster.fail_node(lh_node);
    db.cluster.run_until(SimTime(
        db.cluster.now().nanos() + SimDuration::from_secs(20).nanos(),
    ));
    let east2 = db.session_in_region("us-east1", Some("bank"));
    db.exec_sync(&east2, "UPSERT INTO accounts (id, balance) VALUES (1, 150)")
        .unwrap();
    let rows = db
        .exec_sync(&east2, "SELECT balance FROM accounts WHERE id = 1")
        .unwrap();
    println!(
        "after losing one zone: balance = {:?} (writes survived; a surviving zone holds the lease)",
        rows.rows()[0][0]
    );
    db.cluster.revive_node(lh_node);

    // Upgrade to REGION survivability: one statement (§2.2).
    db.exec_sync(&sess, "ALTER DATABASE bank SURVIVE REGION FAILURE")
        .unwrap();
    println!("\n== upgraded: SURVIVE REGION FAILURE (5 voters, 2 in the primary) ==");
    db.cluster.run_until(SimTime(
        db.cluster.now().nanos() + SimDuration::from_secs(5).nanos(),
    ));

    // Now kill the whole primary region.
    db.cluster.fail_region_by_name("us-east1");
    println!("us-east1 is gone. waiting for elections and lease failover...");
    db.cluster.run_until(SimTime(
        db.cluster.now().nanos() + SimDuration::from_secs(30).nanos(),
    ));

    let west = db.session_in_region("us-west1", Some("bank"));
    let t0 = db.cluster.now();
    db.exec_sync(&west, "UPSERT INTO accounts (id, balance) VALUES (1, 175)")
        .unwrap();
    let rows = db
        .exec_sync(&west, "SELECT balance FROM accounts WHERE id = 1")
        .unwrap();
    println!(
        "after losing the entire primary region: balance = {:?}, write+read took {:.0}ms \
         (leaseholder re-elected among surviving voters)",
        rows.rows()[0][0],
        (db.cluster.now() - t0).as_millis_f64()
    );

    // Bring the region back; it rejoins as a follower.
    db.cluster.revive_region_by_name("us-east1");
    db.cluster.run_until(SimTime(
        db.cluster.now().nanos() + SimDuration::from_secs(10).nanos(),
    ));
    let rows = db
        .exec_sync(&west, "SELECT balance FROM accounts WHERE id = 1")
        .unwrap();
    println!(
        "us-east1 revived; data intact: balance = {:?}",
        rows.rows()[0][0]
    );
}

//! The §7.5.2 production workload: a personalized-assistant application
//! storing global IoT device and user data across three regions.
//!
//! "Devices stay in their region, and need to write events fast (using
//! REGIONAL BY ROW with ZONE survival). Meanwhile, users move around, and
//! need fast reads everywhere (using GLOBAL tables)."
//!
//! Run with: `cargo run --release --example global_iot`

use multiregion::{ClusterBuilder, SimDuration, SimTime};

fn main() {
    let regions = ["us-east1", "us-west1", "asia-northeast1"];
    let mut db = ClusterBuilder::new()
        .region(regions[0], 3)
        .region(regions[1], 3)
        .region(regions[2], 3)
        .seed(5)
        .build();

    let admin = db.session_in_region("us-east1", None);
    db.exec_script(
        &admin,
        r#"
        CREATE DATABASE assistant PRIMARY REGION "us-east1"
            REGIONS "us-west1", "asia-northeast1";

        -- User profiles move with their humans: read everywhere, rarely
        -- written → GLOBAL.
        CREATE TABLE user_profiles (
            user_id INT PRIMARY KEY,
            name STRING,
            preferences STRING
        ) LOCALITY GLOBAL;

        -- Devices are geographically sticky: home them where they live and
        -- take fast regional writes (ZONE survivability is the default).
        -- UUID primary keys skip uniqueness probes entirely (§4.1 rule 1),
        -- so registrations stay region-local.
        CREATE TABLE devices (
            id UUID PRIMARY KEY DEFAULT gen_random_uuid(),
            serial INT,
            owner_id INT REFERENCES user_profiles (user_id),
            kind STRING
        ) LOCALITY REGIONAL BY ROW;

        CREATE TABLE device_events (
            event_id UUID PRIMARY KEY DEFAULT gen_random_uuid(),
            device_id INT,
            payload STRING
        ) LOCALITY REGIONAL BY ROW;
        "#,
    )
    .unwrap();
    db.cluster
        .run_until(SimTime(SimDuration::from_secs(5).nanos()));

    // A user signs up in the US east.
    let east = db.session_in_region("us-east1", Some("assistant"));
    let t0 = db.cluster.now();
    db.exec_sync(
        &east,
        "INSERT INTO user_profiles VALUES (1, 'Iris', 'dark-mode')",
    )
    .unwrap();
    println!(
        "user profile write (GLOBAL): {:.0}ms — pays the commit wait once",
        (db.cluster.now() - t0).as_millis_f64()
    );

    // Their devices register in each region they live in.
    db.cluster.run_until(SimTime(
        db.cluster.now().nanos() + SimDuration::from_secs(2).nanos(),
    ));
    for (i, region) in regions.iter().enumerate() {
        let s = db.session_in_region(region, Some("assistant"));
        let t0 = db.cluster.now();
        // The FK check against the GLOBAL parent is a local read (§2.3.3's
        // facts-table → GLOBAL-dimension pattern).
        db.exec_sync(
            &s,
            &format!("INSERT INTO devices (serial, owner_id, kind) VALUES ({i}, 1, 'speaker')"),
        )
        .unwrap();
        println!(
            "device registration in {region}: {:.1}ms (FK check on GLOBAL parent stays local)",
            (db.cluster.now() - t0).as_millis_f64()
        );
    }

    // Devices write event streams fast in their own region; the UUID
    // primary key skips uniqueness probes entirely (§4.1 rule 1).
    for (i, region) in regions.iter().enumerate() {
        let s = db.session_in_region(region, Some("assistant"));
        let t0 = db.cluster.now();
        for n in 0..5 {
            db.exec_sync(
                &s,
                &format!("INSERT INTO device_events (device_id, payload) VALUES ({i}, 'tick-{n}')"),
            )
            .unwrap();
        }
        println!(
            "5 device events from {region}: {:.1}ms total — regional writes",
            (db.cluster.now() - t0).as_millis_f64()
        );
    }

    // The user flies to Tokyo: their profile reads locally there.
    let tokyo = db.session_in_region("asia-northeast1", Some("assistant"));
    let t0 = db.cluster.now();
    let rows = db
        .exec_sync(
            &tokyo,
            "SELECT preferences FROM user_profiles WHERE user_id = 1",
        )
        .unwrap();
    println!(
        "profile read from asia: {:?} in {:.1}ms — GLOBAL tables read locally everywhere",
        rows.rows()[0][0],
        (db.cluster.now() - t0).as_millis_f64()
    );
}

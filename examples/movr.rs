//! The movr scenario from the paper's §1.1: converting a ride-sharing app
//! to multi-region with *no DML changes* — just table localities.
//!
//! Walks the exact pain points of Fig. 1: users partitioned by city via a
//! computed region column, promo_codes as a GLOBAL table, global email
//! uniqueness despite partitioning, and single-statement region add/drop.
//!
//! Run with: `cargo run --release --example movr`

use mr_workload::movr;
use multiregion::{ClusterBuilder, SimDuration, SimTime};

fn main() {
    let regions = ["us-east1", "us-west1", "europe-west1"];
    let mut db = ClusterBuilder::new()
        .region(regions[0], 3)
        .region(regions[1], 3)
        .region(regions[2], 3)
        .seed(42)
        .build();

    let sess = db.session_in_region("us-east1", None);
    db.exec_sync(
        &sess,
        r#"CREATE DATABASE movr PRIMARY REGION "us-east1" REGIONS "us-west1", "europe-west1""#,
    )
    .unwrap();

    // The full six-table movr schema: five REGIONAL BY ROW tables with the
    // city→region computed column, promo_codes GLOBAL.
    let region_names: Vec<String> = regions.iter().map(|s| s.to_string()).collect();
    for ddl in movr::schema_multiregion(&region_names) {
        db.exec_sync(&sess, &ddl).unwrap();
    }
    println!("created the movr schema: 6 tables, 1 GLOBAL + 5 REGIONAL BY ROW");
    db.cluster
        .run_until(SimTime(SimDuration::from_secs(5).nanos()));

    // Application DML is unchanged from single-region: the database routes
    // by the city column (computed partitioning, §2.3.2).
    let ny = db.session_in_region("us-east1", Some("movr"));
    let sf = db.session_in_region("us-west1", Some("movr"));
    db.exec_sync(
        &ny,
        "INSERT INTO users (city, name, email) VALUES ('city-0', 'Ann', 'ann@movr.com')",
    )
    .unwrap();
    db.exec_sync(
        &sf,
        "INSERT INTO users (city, name, email) VALUES ('city-1', 'Bob', 'bob@movr.com')",
    )
    .unwrap();
    db.exec_sync(
        &ny,
        "INSERT INTO promo_codes VALUES ('FIRST_RIDE', 'first ride free', '{}')",
    )
    .unwrap();

    // Global email uniqueness is enforced across partitions (§4.1) — the
    // Fig. 1b problem a traditional partitioned DB cannot solve.
    let err = db
        .exec_sync(
            &sf,
            "INSERT INTO users (city, name, email) VALUES ('city-1', 'Imposter', 'ann@movr.com')",
        )
        .unwrap_err();
    println!("cross-region duplicate email rejected: {err}");

    // Queries that bind the city go straight to one region; email lookups
    // use locality-optimized search (§4.2).
    let t0 = db.cluster.now();
    let rows = db
        .exec_sync(&sf, "SELECT name FROM users WHERE email = 'bob@movr.com'")
        .unwrap();
    println!(
        "email lookup from the row's home region: {} row in {:.2}ms (LOS local hit)",
        rows.rows().len(),
        (db.cluster.now() - t0).as_millis_f64()
    );

    // promo_codes reads are local everywhere (GLOBAL table).
    db.cluster.run_until(SimTime(
        db.cluster.now().nanos() + SimDuration::from_secs(2).nanos(),
    ));
    for region in regions {
        let s = db.session_in_region(region, Some("movr"));
        let t0 = db.cluster.now();
        db.exec_sync(
            &s,
            "SELECT description FROM promo_codes WHERE code = 'FIRST_RIDE'",
        )
        .unwrap();
        println!(
            "promo_codes read from {region}: {:.2}ms",
            (db.cluster.now() - t0).as_millis_f64()
        );
    }

    // Rides reference users and vehicles; a ride insert from SF stays in
    // the west because the city computes the region.
    let t0 = db.cluster.now();
    db.exec_sync(
        &sf,
        "INSERT INTO rides (city, revenue) VALUES ('city-1', 12.5)",
    )
    .unwrap();
    println!(
        "ride insert in the rider's region: {:.2}ms",
        (db.cluster.now() - t0).as_millis_f64()
    );

    // Survivability is one statement (§2.2).
    db.exec_sync(&sess, "ALTER DATABASE movr SURVIVE REGION FAILURE")
        .unwrap();
    println!("database now survives a full region failure (5 voters, 2 in the primary)");
    let res = db.exec_sync(&sess, "SHOW REGIONS").unwrap();
    println!("SHOW REGIONS -> {} regions configured", res.rows().len());
}

//! Quickstart: build a three-region cluster, declare a multi-region
//! database with one REGIONAL BY ROW table and one GLOBAL table, and watch
//! where the latency goes.
//!
//! Run with: `cargo run --release --example quickstart`

use multiregion::{ClusterBuilder, SimDuration, SimTime};

fn main() {
    // A simulated cluster: three regions, three nodes each, WAN latencies
    // from the paper's Table 1.
    let mut db = ClusterBuilder::new()
        .region("us-east1", 3)
        .region("europe-west2", 3)
        .region("asia-northeast1", 3)
        .rtt_matrix(multiregion::RttMatrix::from_upper_millis(
            3,
            &[&[87, 155], &[222]],
        ))
        .seed(7)
        .build();

    // Declarative multi-region DDL (§2 of the paper): pick a primary
    // region, add the others, choose per-table localities. That's all.
    let sess = db.session_in_region("us-east1", None);
    db.exec_script(
        &sess,
        r#"
        CREATE DATABASE movr PRIMARY REGION "us-east1"
            REGIONS "europe-west2", "asia-northeast1";

        -- Rows live near whoever inserted them; the hidden crdb_region
        -- column defaults to the gateway's region.
        CREATE TABLE users (
            id INT PRIMARY KEY,
            email STRING UNIQUE NOT NULL,
            name STRING
        ) LOCALITY REGIONAL BY ROW;

        -- Read-mostly reference data: fast, strongly consistent reads from
        -- every region, at the cost of slower writes.
        CREATE TABLE promo_codes (
            code STRING PRIMARY KEY,
            description STRING
        ) LOCALITY GLOBAL;
        "#,
    )
    .unwrap();
    // Let replication and closed timestamps settle before measuring.
    db.cluster
        .run_until(SimTime(SimDuration::from_secs(5).nanos()));

    fn timed(db: &mut multiregion::SqlDb, sess: &multiregion::Session, sql: &str) {
        let t0 = db.cluster.now();
        db.exec_sync(sess, sql).expect(sql);
        let dt = db.cluster.now() - t0;
        println!("{:>9.2}ms  {sql}", dt.as_millis_f64());
    }

    println!("-- from us-east1 (the primary):");
    let east = db.session_in_region("us-east1", Some("movr"));
    timed(
        &mut db,
        &east,
        "INSERT INTO users (id, email, name) VALUES (1, 'ann@example.com', 'Ann')",
    );
    timed(
        &mut db,
        &east,
        "INSERT INTO promo_codes VALUES ('SAVE10', 'ten percent off')",
    );
    timed(
        &mut db,
        &east,
        "SELECT * FROM users WHERE email = 'ann@example.com'",
    );

    println!("-- from europe-west2:");
    let eu = db.session_in_region("europe-west2", Some("movr"));
    timed(
        &mut db,
        &eu,
        "INSERT INTO users (id, email, name) VALUES (2, 'bob@example.eu', 'Bob')",
    );
    // Bob's row is homed in Europe: reading it from Europe is local.
    timed(&mut db, &eu, "SELECT * FROM users WHERE id = 2");
    // The GLOBAL table reads locally from every region.
    timed(
        &mut db,
        &eu,
        "SELECT description FROM promo_codes WHERE code = 'SAVE10'",
    );
    // Ann's row lives in us-east1: locality-optimized search probes the
    // local partition first, misses, and pays one WAN fan-out.
    timed(&mut db, &eu, "SELECT * FROM users WHERE id = 1");

    println!("-- global uniqueness holds across regions:");
    let err = db
        .exec_sync(
            &eu,
            "INSERT INTO users (id, email) VALUES (3, 'ann@example.com')",
        )
        .unwrap_err();
    println!("   duplicate email rejected: {err}");

    println!("-- stale reads stay local even for remote-homed rows:");
    db.cluster.run_until(SimTime(
        db.cluster.now().nanos() + SimDuration::from_secs(5).nanos(),
    ));
    timed(
        &mut db,
        &eu,
        "SELECT * FROM users AS OF SYSTEM TIME with_max_staleness('10s') WHERE id = 1",
    );
}

//! Exact- and bounded-staleness reads (§5.3): trading freshness for
//! region-local latency on REGIONAL tables, without GLOBAL's write costs.
//!
//! Run with: `cargo run --release --example stale_reads`

use multiregion::{ClusterBuilder, SimDuration, SimTime};

fn main() {
    let mut db = ClusterBuilder::new().paper_regions().seed(13).build();
    let sess = db.session_in_region("us-east1", None);
    db.exec_script(
        &sess,
        r#"
        CREATE DATABASE metrics PRIMARY REGION "us-east1" REGIONS "us-west1",
            "europe-west2", "asia-northeast1", "australia-southeast1";
        CREATE TABLE gauges (name STRING PRIMARY KEY, value INT)
            LOCALITY REGIONAL BY TABLE IN PRIMARY REGION;
        "#,
    )
    .unwrap();
    let east = db.session_in_region("us-east1", Some("metrics"));
    db.exec_sync(&east, "INSERT INTO gauges VALUES ('qps', 1000)")
        .unwrap();

    // Let closed timestamps propagate (REGIONAL ranges close `now - 3s`).
    db.cluster
        .run_until(SimTime(SimDuration::from_secs(10).nanos()));

    let sydney = db.session_in_region("australia-southeast1", Some("metrics"));
    fn timed(db: &mut multiregion::SqlDb, sess: &multiregion::Session, sql: &str) {
        let t0 = db.cluster.now();
        let rows = db.exec_sync(sess, sql).expect(sql).rows().len();
        println!(
            "{:>9.2}ms  ({rows} row)  {sql}",
            (db.cluster.now() - t0).as_millis_f64()
        );
    }

    println!("reads from australia-southeast1 (198ms RTT to the leaseholder):\n");
    // Fresh read: linearizable, must visit the leaseholder in us-east1.
    timed(
        &mut db,
        &sydney,
        "SELECT value FROM gauges WHERE name = 'qps'",
    );
    // Exact staleness: fixed timestamp 5s ago → served by the local
    // non-voting replica.
    timed(
        &mut db,
        &sydney,
        "SELECT value FROM gauges AS OF SYSTEM TIME '-5s' WHERE name = 'qps'",
    );
    // follower_read_timestamp(): "comfortably stale" shorthand.
    timed(
        &mut db,
        &sydney,
        "SELECT value FROM gauges AS OF SYSTEM TIME follower_read_timestamp() WHERE name = 'qps'",
    );
    // Bounded staleness: the system negotiates the freshest locally
    // servable timestamp within the bound (§5.3.2) — fresher than exact
    // staleness, still local.
    timed(
        &mut db,
        &sydney,
        "SELECT value FROM gauges AS OF SYSTEM TIME with_max_staleness('30s') WHERE name = 'qps'",
    );

    // Staleness is visible: update, then immediately stale-read.
    db.exec_sync(
        &east,
        "UPSERT INTO gauges (name, value) VALUES ('qps', 2000)",
    )
    .unwrap();
    let stale = db
        .exec_sync(
            &sydney,
            "SELECT value FROM gauges AS OF SYSTEM TIME '-5s' WHERE name = 'qps'",
        )
        .unwrap();
    let fresh = db
        .exec_sync(&sydney, "SELECT value FROM gauges WHERE name = 'qps'")
        .unwrap();
    println!(
        "\nafter an update: stale read sees {:?}, fresh read sees {:?}",
        stale.rows()[0][0],
        fresh.rows()[0][0]
    );
}

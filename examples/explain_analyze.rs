//! Statement diagnostics: `EXPLAIN ANALYZE` executes a statement for real
//! and annotates the plan with execution stats from its trace — RPCs,
//! ranges, regions visited, retries, and where every nanosecond of the
//! end-to-end latency went. Afterwards, the trace behind the statement is
//! queryable as `crdb_internal.session_trace`.
//!
//! Run with: `cargo run --release --example explain_analyze`

use multiregion::{ClusterBuilder, SimDuration, SimTime};

fn main() {
    let mut db = ClusterBuilder::new()
        .region("us-east1", 3)
        .region("europe-west2", 3)
        .region("asia-northeast1", 3)
        .rtt_matrix(multiregion::RttMatrix::from_upper_millis(
            3,
            &[&[87, 155], &[222]],
        ))
        .seed(7)
        .build();

    let sess = db.session_in_region("us-east1", None);
    db.exec_script(
        &sess,
        r#"
        CREATE DATABASE movr PRIMARY REGION "us-east1"
            REGIONS "europe-west2", "asia-northeast1";
        CREATE TABLE users (
            id INT PRIMARY KEY,
            email STRING UNIQUE NOT NULL
        ) LOCALITY REGIONAL BY ROW;
        CREATE TABLE promo_codes (
            code STRING PRIMARY KEY,
            description STRING
        ) LOCALITY GLOBAL;
        "#,
    )
    .unwrap();
    db.cluster
        .run_until(SimTime(SimDuration::from_secs(5).nanos()));

    fn show(db: &mut multiregion::SqlDb, sess: &multiregion::Session, sql: &str) {
        println!("> {sql}");
        let res = db.exec_sync(sess, sql).expect(sql);
        for row in res.rows() {
            if let Some(line) = row[0].as_str() {
                println!("  {line}");
            }
        }
        println!();
    }

    // A cross-region write: the European gateway homes the row in
    // us-east1, so consensus crosses the Atlantic and the breakdown shows
    // replication dominating the total.
    let eu = db.session_in_region("europe-west2", Some("movr"));
    println!("-- cross-region write from europe-west2:");
    show(
        &mut db,
        &eu,
        "EXPLAIN ANALYZE INSERT INTO users (id, email, crdb_region) \
         VALUES (1, 'ann@example.com', 'us-east1')",
    );

    // Let the closed timestamp pass the write, then read it back stale:
    // the follower read never leaves europe-west2.
    db.exec_sync(&eu, "INSERT INTO promo_codes (code) VALUES ('SAVE10')")
        .unwrap();
    db.cluster.run_until(SimTime(
        db.cluster.now().nanos() + SimDuration::from_secs(5).nanos(),
    ));
    println!("-- local follower read from europe-west2:");
    show(
        &mut db,
        &eu,
        "EXPLAIN ANALYZE SELECT * FROM promo_codes \
         AS OF SYSTEM TIME follower_read_timestamp()",
    );

    // The trace behind the analyzed statement, through SQL.
    println!("-- the span tree behind that statement:");
    let trace = db
        .exec_sync(
            &eu,
            "SELECT name, duration_nanos FROM crdb_internal.session_trace",
        )
        .unwrap();
    for row in trace.rows() {
        println!(
            "  {:<24} {:?}ns",
            row[0].as_str().unwrap_or("?"),
            row[1].as_int().unwrap_or(0)
        );
    }
}

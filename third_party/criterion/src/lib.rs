//! Offline stand-in for `criterion`: a minimal wall-clock timing harness
//! exposing the same bench-target API (`Criterion::bench_function`,
//! `Bencher::{iter, iter_batched}`, `criterion_group!`, `criterion_main!`).
//!
//! Methodology: warm up for `warm_up_time`, size batches so one batch takes
//! roughly `measurement_time / sample_size`, collect `sample_size` samples of
//! mean-per-iteration time, and report median / mean / p95. No plots, no
//! statistical regression — just honest numbers printed to stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for compatibility with real criterion CLIs; no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }
}

pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: also estimates per-iteration cost for batch sizing.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter_ns =
            (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);

        let per_sample = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((per_sample / per_iter_ns) as u64).clamp(1, 1 << 24);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Setup runs outside the timed section; each sample times one call.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            black_box(routine(input));
        }

        self.samples_ns.clear();
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(t.elapsed().as_nanos() as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        self.samples_ns
            .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let n = self.samples_ns.len();
        let median = self.samples_ns[n / 2];
        let mean = self.samples_ns.iter().sum::<f64>() / n as f64;
        let p95 = self.samples_ns[(n * 95 / 100).min(n - 1)];
        println!(
            "{id:<40} time: [median {} mean {} p95 {}]  ({n} samples)",
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(p95)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

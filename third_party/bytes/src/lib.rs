//! Offline stand-in for the subset of the `bytes` crate used by this
//! workspace: an immutable, cheaply clonable byte container with a `const`
//! empty constructor. Backed by either a static slice or an `Arc<[u8]>`.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

/// Immutable byte buffer. Cloning is O(1) (slice copy or refcount bump).
#[derive(Clone)]
pub struct Bytes(Repr);

impl Bytes {
    /// The empty buffer, usable in `const` context.
    pub const fn new() -> Bytes {
        Bytes(Repr::Static(&[]))
    }

    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes(Repr::Static(bytes))
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Repr::Shared(Arc::from(data)))
    }

    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Repr::Shared(Arc::from(v)))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes(Repr::Static(s))
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes(Repr::Static(s.as_bytes()))
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn const_empty_and_ordering() {
        const EMPTY: Bytes = Bytes::new();
        assert!(EMPTY.is_empty());
        let a = Bytes::copy_from_slice(b"abc");
        let b = Bytes::from(b"abd".to_vec());
        assert!(a < b);
        assert_eq!(a, Bytes::copy_from_slice(b"abc"));
        assert_eq!(&a[..], b"abc");
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::copy_from_slice(&[b'a', 0, b'"']);
        assert_eq!(format!("{b:?}"), "b\"a\\x00\\\"\"");
    }
}

//! Offline stand-in for the subset of the `rand` 0.10 API used by this
//! workspace. The workspace builds hermetically (no registry access), so the
//! external deps are vendored as small, deterministic reimplementations of
//! exactly the surface the code consumes: `SmallRng`, `SeedableRng`, `Rng`,
//! `RngExt::{random, random_range}`, and `rand_core::TryRng`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — the same family
//! the real `SmallRng` uses on 64-bit targets — so streams are well mixed and
//! fully reproducible from a `u64` seed.

use std::convert::Infallible;

pub mod rand_core {
    /// Fallible generator interface. The simulator's `SimRng` implements this
    /// directly; infallible generators get [`crate::Rng`] via a blanket impl.
    pub trait TryRng {
        type Error;
        fn try_next_u32(&mut self) -> Result<u32, Self::Error>;
        fn try_next_u64(&mut self) -> Result<u64, Self::Error>;
        fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Self::Error>;
    }
}

/// Seeding interface: everything here seeds from a single `u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Infallible generator interface.
pub trait Rng {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dst: &mut [u8]);
}

impl<R> Rng for R
where
    R: rand_core::TryRng<Error = Infallible>,
{
    fn next_u32(&mut self) -> u32 {
        match self.try_next_u32() {
            Ok(v) => v,
            Err(e) => match e {},
        }
    }
    fn next_u64(&mut self) -> u64 {
        match self.try_next_u64() {
            Ok(v) => v,
            Err(e) => match e {},
        }
    }
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        match self.try_fill_bytes(dst) {
            Ok(()) => (),
            Err(e) => match e {},
        }
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`'s `random*` family.
pub trait RngExt: Rng {
    /// Uniform value in `[range.start, range.end)`.
    fn random_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_uniform(self, range)
    }

    /// A value drawn from the type's standard distribution
    /// (`f64`/`f32` in `[0, 1)`, ints over their full range).
    fn random<T: StandardDistribution>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: Rng> RngExt for R {}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

/// Unbiased uniform draw in `[0, n)` by rejection sampling.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let width = (range.end - range.start) as u64;
                range.start + uniform_below(rng, width) as $t
            }
        }
    )*};
}
impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let width = (range.end as $u).wrapping_sub(range.start as $u) as u64;
                (range.start as $u).wrapping_add(uniform_below(rng, width) as $u) as $t
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Types drawable from the "standard" distribution.
pub trait StandardDistribution: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDistribution for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDistribution for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardDistribution for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardDistribution for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{rand_core::TryRng, SeedableRng};
    use std::convert::Infallible;

    /// xoshiro256++ — small, fast, and statistically solid; the same family
    /// the real `SmallRng` uses on 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl SmallRng {
        fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl TryRng for SmallRng {
        type Error = Infallible;

        fn try_next_u32(&mut self) -> Result<u32, Infallible> {
            Ok((self.step() >> 32) as u32)
        }
        fn try_next_u64(&mut self) -> Result<u64, Infallible> {
            Ok(self.step())
        }
        fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Infallible> {
            for chunk in dst.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u64 = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let s: i64 = r.random_range(-5..5);
            assert!((-5..5).contains(&s));
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SmallRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

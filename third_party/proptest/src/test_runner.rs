//! Deterministic case runner: generate `cases` inputs, run the test closure,
//! report the first failing input (no shrinking).

use crate::strategy::Strategy;
use std::fmt::Debug;

/// Configuration accepted by `#![proptest_config(..)]`. Only `cases` changes
/// behaviour here; the other fields exist so real-proptest configs parse.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
    /// Accepted for compatibility; unused (there is no shrinking).
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; unused (there are no rejections).
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
            max_global_rejects: 1024,
        }
    }
}

/// Why a single generated case failed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// Generation RNG handed to strategies (xoshiro256++, splitmix64-seeded).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let mut st = seed;
        TestRng {
            s: [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Unbiased uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample from an empty range");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// Seeds deterministically from the test function's name so each property
    /// sees a distinct but reproducible stream.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            config,
            rng: TestRng::seed_from_u64(seed),
        }
    }

    pub fn run<S, F>(&mut self, strategy: &S, test: F) -> Result<(), String>
    where
        S: Strategy,
        S::Value: Debug,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        for case in 0..self.config.cases {
            let value = strategy.new_value(&mut self.rng);
            let rendered = format!("{value:?}");
            match test(value) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(message)) => {
                    return Err(format!(
                        "proptest case {}/{} failed: {}\ninput: {}",
                        case + 1,
                        self.config.cases,
                        message,
                        rendered
                    ));
                }
            }
        }
        Ok(())
    }
}

//! Strategy trait and combinators (generation only, no shrink trees).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Type-erased strategy, used by `prop_oneof!` to mix concrete types.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        self.0.new_value(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn new_value(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// Uniform choice among type-erased strategies (the `prop_oneof!` backend).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $as_u64:expr, $from_u64:expr;)*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = $as_u64(self.end).wrapping_sub($as_u64(self.start));
                $from_u64($as_u64(self.start).wrapping_add(rng.below(width)))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = $as_u64(hi).wrapping_sub($as_u64(lo)).wrapping_add(1);
                if width == 0 {
                    // Full-domain inclusive range.
                    return $from_u64(rng.next_u64());
                }
                $from_u64($as_u64(lo).wrapping_add(rng.below(width)))
            }
        }
    )*};
}

impl_range_strategy! {
    u8 => (|v| v as u64), (|v: u64| v as u8);
    u16 => (|v| v as u64), (|v: u64| v as u16);
    u32 => (|v| v as u64), (|v: u64| v as u32);
    u64 => (|v| v), (|v: u64| v);
    usize => (|v| v as u64), (|v: u64| v as usize);
    // Signed types map through an offset so `below` sees an unsigned width.
    i8 => (|v| (v as u8) as u64), (|v: u64| v as u8 as i8);
    i16 => (|v| (v as u16) as u64), (|v: u64| v as u16 as i16);
    i32 => (|v| (v as u32) as u64), (|v: u64| v as u32 as i32);
    i64 => (|v| v as u64), (|v: u64| v as i64);
    isize => (|v| v as u64), (|v: u64| v as isize);
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// `&str` regex strategies for the character-class subset the tests use,
/// e.g. `"[a-z]{0,8}"`. Supported: literal characters, one or more
/// `[class]{m,n}` / `{n}` / `*` / `+` / `?` terms, classes of single chars
/// and ASCII ranges.
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let (alternatives, next) = if chars[i] == '[' {
            let close = chars[i + 1..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| p + i + 1)
                .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
            (parse_class(&chars[i + 1..close], pattern), close + 1)
        } else {
            (vec![chars[i]], i + 1)
        };
        let (min, max, next) = parse_quantifier(&chars, next, pattern);
        let n = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..n {
            let idx = rng.below(alternatives.len() as u64) as usize;
            out.push(alternatives[idx]);
        }
        i = next;
    }
    out
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut alternatives = Vec::new();
    let mut j = 0;
    while j < body.len() {
        if j + 2 < body.len() && body[j + 1] == '-' {
            let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
            assert!(lo <= hi, "bad class range in pattern {pattern:?}");
            for c in lo..=hi {
                alternatives.push(char::from_u32(c).unwrap());
            }
            j += 3;
        } else {
            alternatives.push(body[j]);
            j += 1;
        }
    }
    assert!(
        !alternatives.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    alternatives
}

/// Returns `(min, max, next_index)` for the quantifier at `i`, defaulting to
/// `{1,1}` when none is present. Unbounded `*`/`+` cap at 8 repetitions.
fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('*') => (0, 8, i + 1),
        Some('+') => (1, 8, i + 1),
        Some('?') => (0, 1, i + 1),
        Some('{') => {
            let close = chars[i + 1..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| p + i + 1)
                .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier min"),
                    hi.trim().parse().expect("bad quantifier max"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("bad quantifier count");
                    (n, n)
                }
            };
            assert!(min <= max, "bad quantifier in pattern {pattern:?}");
            (min, max, close + 1)
        }
        _ => (1, 1, i),
    }
}

//! `prop::collection` — vector strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Sizes accepted by [`vec`]: a fixed length or a half-open range.
pub trait IntoSizeRange {
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end)
    }
}

pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max_exclusive: usize,
}

/// `prop::collection::vec(element, 2..8)` — a vector whose length is drawn
/// uniformly from the size range and whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max_exclusive) = size.bounds();
    VecStrategy {
        element,
        min,
        max_exclusive,
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.min + rng.below((self.max_exclusive - self.min) as u64) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

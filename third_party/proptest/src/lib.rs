//! Offline stand-in for the subset of `proptest` used by this workspace.
//!
//! Supports the `proptest!` macro with `#![proptest_config(..)]`, strategies
//! for integer ranges, tuples, `prop::collection::vec`, `prop::option::of`,
//! simple character-class regexes (`"[a-z]{0,8}"`), `any::<T>()`,
//! `prop_oneof!`, `.prop_map`, and the `prop_assert*` macros.
//!
//! Generation is deterministic (fixed seed per test function) and there is no
//! shrinking: a failing case reports the generated value and panics. That is
//! sufficient for this repo's property tests, which exist to guard invariants
//! in CI rather than to minimise counterexamples interactively.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of the real crate's `prelude::prop` re-export.
    pub mod prop {
        pub use crate::{collection, option};
    }
}

/// Accepts the test-function syntax of the real `proptest!` macro (an optional
/// `#![proptest_config(..)]` header followed by `#[test]` functions whose
/// arguments bind `name in strategy`) and expands each into a deterministic
/// generate-and-check loop.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
            let strategy = ($($strat,)+);
            let outcome = runner.run(&strategy, |($($arg,)+)| {
                $body
                Ok(())
            });
            if let Err(message) = outcome {
                panic!("{}", message);
            }
        }
    )*};
}

/// Assert inside a proptest body; failure aborts only the current case with a
/// formatted message (which the runner then reports and panics on).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Uniform choice between strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

//! `prop::option` — optional-value strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct OptionStrategy<S> {
    inner: S,
}

/// `prop::option::of(inner)` — `Some` three times out of four, mirroring the
/// real crate's bias toward populated values.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.new_value(rng))
        }
    }
}

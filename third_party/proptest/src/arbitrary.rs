//! `any::<T>()` support: full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T`.
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap()
    }
}

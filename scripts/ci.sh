#!/usr/bin/env bash
# Repo CI gate: formatting, lints (warnings are errors), and the full test
# suite. Run from anywhere; operates on the repository root. Offline-safe:
# all external deps are vendored under third_party/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> strict-monitor perf_probe smoke"
# Short probe run with every online invariant monitor escalated to a panic:
# a closed-timestamp regression, an over-fresh follower read, a short commit
# wait, or a non-conforming placement fails CI here.
ROOT="$(pwd)"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT

# Every probe must leave its BENCH_<name>.json behind, and the file must be
# well-formed JSON — a probe that silently stops writing results would
# otherwise pass CI while producing nothing.
assert_bench() {
    local probe="$1" file="$SMOKE_DIR/$2"
    if [ ! -s "$file" ]; then
        echo "FAIL: $probe did not write $2" >&2
        exit 1
    fi
    if command -v python3 >/dev/null; then
        python3 -m json.tool "$file" >/dev/null \
            || { echo "FAIL: $probe wrote malformed JSON to $2" >&2; exit 1; }
    elif command -v jq >/dev/null; then
        jq . "$file" >/dev/null \
            || { echo "FAIL: $probe wrote malformed JSON to $2" >&2; exit 1; }
    fi
}

(cd "$SMOKE_DIR" && OPS=50 MR_STRICT_MONITORS=1 \
    cargo run -q --release --manifest-path "$ROOT/Cargo.toml" -p mr-bench --bin perf_probe >/dev/null)
assert_bench perf_probe BENCH_perf.json

echo "==> chaos_smoke: seeded nemesis schedules + history checker"
# Five fixed-seed fault schedules through the full chaos harness with every
# online invariant monitor escalated to a panic. The offline checker gates
# too: any serializability/recency/availability violation fails CI with the
# seed and schedule step named.
# On a violation the probe exits nonzero after writing the incident bundle
# directory and printing its path (see chaos_probe.rs).
(cd "$SMOKE_DIR" && MR_STRICT_MONITORS=1 \
    cargo run -q --release --manifest-path "$ROOT/Cargo.toml" -p mr-bench --bin chaos_probe >/dev/null)
assert_bench chaos_probe BENCH_chaos.json

echo "==> commit_probe: parallel-commit round-trip regression guard"
# Measures begin→commit-ack latency per gateway region under legacy vs
# pipelined+parallel commits and fails if the round-trip structure
# regresses: multi-range commits must cost ~1 WAN RTT pipelined (~2
# legacy), and pipelining must never be slower than the legacy path.
(cd "$SMOKE_DIR" && MR_COMMIT_TXNS=10 \
    cargo run -q --release --manifest-path "$ROOT/Cargo.toml" -p mr-bench --bin commit_probe >/dev/null)
assert_bench commit_probe BENCH_commit.json

echo "==> raft_probe: group-commit occupancy + quiescence regression guard"
# Drives concurrent multi-range writers through a batched-proposal flush
# window and measures idle heartbeat rates over 100 cold ranges. Fails if
# mean batch occupancy sinks toward one command per entry, if the flush
# window costs real throughput, if quiescence stops suppressing idle
# heartbeats by >=10x, or if leaseholder reads stop riding the fast path.
(cd "$SMOKE_DIR" && MR_RAFT_TXNS=20 \
    cargo run -q --release --manifest-path "$ROOT/Cargo.toml" -p mr-bench --bin raft_probe >/dev/null)
assert_bench raft_probe BENCH_raft.json

echo "==> obs_probe: load-telemetry + attribution + metrics-cardinality guard"
# Drives a known open-loop skew and fails if the hot-range ranking or its
# decayed QPS drifts >10% from the driven rate, if the windowed tsdb
# mis-reports the commit rate at either resolution, if the named latency
# attribution components stop explaining >=95% of end-to-end transaction
# latency, or if registry cardinality exceeds the budget (per-range load
# must stay in the LoadRecorder, never as per-range registry instruments).
(cd "$SMOKE_DIR" && MR_OBS_SKEW_SECS=40 MR_OBS_TXNS=10 MR_METRIC_BUDGET=128 \
    cargo run -q --release --manifest-path "$ROOT/Cargo.toml" -p mr-bench --bin obs_probe >/dev/null)
assert_bench obs_probe BENCH_obs.json

echo "==> split_probe: range-lifecycle regression guard"
# The same skewed remote workload against a static single range and
# against the lifecycle controller. Fails if splits stop firing under
# load, if post-split throughput stops beating the single-range baseline,
# if load stops dispersing across the split ranges, if no lease moves
# toward demand, or if cold-range merges stop folding the keyspace back
# down once traffic ends.
(cd "$SMOKE_DIR" && \
    cargo run -q --release --manifest-path "$ROOT/Cargo.toml" -p mr-bench --bin split_probe >/dev/null)
assert_bench split_probe BENCH_split.json

echo "==> storage_probe: WAL/LSM/GC durability regression guard"
# Drives the storage engine through a cold-key bloom workload, an
# overwrite-heavy GC workload under an active protected timestamp, and a
# crash-recovery smoke. Fails if the bloom skip rate drops under 90%, if
# GC reclaims under 50% of the overwritten history, if a protected AOST
# read breaks, if below-threshold reads stop erroring, or if WAL replay
# loses versions.
(cd "$SMOKE_DIR" && \
    cargo run -q --release --manifest-path "$ROOT/Cargo.toml" -p mr-bench --bin storage_probe >/dev/null)
assert_bench storage_probe BENCH_storage.json

echo "==> durability tier: volatile crashes recover from WAL + SSTs"
# 20 seed-derived durability_storm schedules (volatile node crashes, a
# full region-0 volatile crash, a split racing a recovery) plus the
# scripted full-group recovery — every restart rebuilds state solely from
# WAL + SST replay and the checker must stay clean.
cargo test -q -p mr-chaos --test durability >/dev/null

echo "==> wal-fsync canary: the armed sync-skip bug must be caught"
# Arms the deliberate bug that defers WAL fsyncs (and Raft log syncs) to a
# periodic tick, crashes region 0 volatile between ticks, and requires the
# offline checker to flag the acknowledged-but-lost writes — proving the
# durability tier detects a node that acks before its fsync point.
cargo test -q -p mr-chaos --features injected-bug --test durability \
    injected_wal_skip_fsync_bug_is_caught >/dev/null

echo "==> split-tscache canary: the armed RHS-bound drop must be caught"
# Arms the deliberate split bug that zeroes the right half's timestamp-
# cache bound and drives a split storm under ahead-of-time clock skew: the
# checker must flag the resulting stale reads, and the identical unarmed
# runs must stay clean — guards the split surgery's tscache carryover.
cargo test -q -p mr-chaos --features injected-bug --test chaos_e2e \
    injected_split_tscache_bug_is_caught >/dev/null
cargo test -q -p mr-chaos --test chaos_e2e split_storm_without_bug_is_clean >/dev/null

echo "==> injected-bug canary: the checker must catch the armed stale read"
# Compile the deliberate follower-read bug in and verify the history
# checker still detects it — guards against the checker itself rotting.
cargo test -q -p mr-chaos --features injected-bug >/dev/null

echo "==> forensics_canary: the armed bug must yield a deterministic bundle"
# The same injected bug, asserted through the incident-forensics path: the
# violating run captures a bundle with the expected violation kind and
# non-empty span subtrees, byte-identical across same-seed runs.
cargo test -q -p mr-chaos --features injected-bug --test forensics >/dev/null

echo "CI OK"

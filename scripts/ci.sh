#!/usr/bin/env bash
# Repo CI gate: formatting, lints (warnings are errors), and the full test
# suite. Run from anywhere; operates on the repository root. Offline-safe:
# all external deps are vendored under third_party/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "CI OK"

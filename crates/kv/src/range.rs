//! Range descriptors and the routing table.
//!
//! The keyspace is divided into contiguous Ranges, each replicated by its
//! own Raft group (§3.1). A [`RangeDescriptor`] records the span, the
//! replica set (with voting/non-voting type), the current leaseholder, and
//! the zone configuration. The [`RangeRegistry`] is the routing table
//! mapping keys to ranges; in this single-process simulation every gateway
//! shares one authoritative registry (range caches never go stale).

use std::collections::BTreeMap;

use mr_proto::{Key, RangeId, Span};
use mr_sim::{NodeId, SimTime, Topology};

use crate::allocator::Placement;
use crate::zone::ZoneConfig;

/// Metadata for one Range.
#[derive(Clone, Debug)]
pub struct RangeDescriptor {
    pub id: RangeId,
    pub span: Span,
    pub replicas: Vec<Placement>,
    pub leaseholder: NodeId,
    pub zone_config: ZoneConfig,
}

impl RangeDescriptor {
    pub fn voters(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.replicas.iter().filter(|p| p.voting).map(|p| p.node)
    }

    pub fn non_voters(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.replicas.iter().filter(|p| !p.voting).map(|p| p.node)
    }

    pub fn replica_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.replicas.iter().map(|p| p.node)
    }

    pub fn has_replica_on(&self, node: NodeId) -> bool {
        self.replicas.iter().any(|p| p.node == node)
    }

    /// The replica nearest to `from` by nominal RTT (used for follower
    /// reads). Dead nodes are skipped.
    pub fn nearest_replica(&self, topo: &Topology, from: NodeId) -> Option<NodeId> {
        self.replicas
            .iter()
            .map(|p| p.node)
            .filter(|&n| topo.is_node_alive(n))
            .min_by_key(|&n| (topo.nominal_rtt(from, n), n.0))
    }
}

/// How a range came to exist and what the lifecycle machinery has done to
/// it since — the provenance behind `crdb_internal.ranges`' split/merge
/// lineage and rebalance columns. Lineage entries outlive merged-away
/// ranges (their `merged_into` points at the survivor) so ancestry chains
/// stay walkable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeLineage {
    /// `"boot"` for ranges created by the admin plane, `"split"` for a
    /// right-hand half carved out of `parent`.
    pub origin: &'static str,
    /// The LHS this range was split off from, if `origin == "split"`.
    pub parent: Option<RangeId>,
    /// Display form of the split key that created this range.
    pub split_key: Option<String>,
    /// When this range came to exist.
    pub at: SimTime,
    /// The survivor this range was absorbed into, once merged away.
    pub merged_into: Option<RangeId>,
    /// Lifecycle counters, accumulated while the range is live.
    pub splits: u64,
    pub merges_absorbed: u64,
    pub lease_rebalances: u64,
    pub replica_rebalances: u64,
}

impl RangeLineage {
    /// Lineage of an admin-created range.
    pub fn boot(at: SimTime) -> RangeLineage {
        RangeLineage {
            origin: "boot",
            parent: None,
            split_key: None,
            at,
            merged_into: None,
            splits: 0,
            merges_absorbed: 0,
            lease_rebalances: 0,
            replica_rebalances: 0,
        }
    }

    /// Lineage of a right-hand half carved out of `parent` at `split_key`.
    pub fn split_child(parent: RangeId, split_key: String, at: SimTime) -> RangeLineage {
        RangeLineage {
            origin: "split",
            parent: Some(parent),
            split_key: Some(split_key),
            at,
            merged_into: None,
            splits: 0,
            merges_absorbed: 0,
            lease_rebalances: 0,
            replica_rebalances: 0,
        }
    }
}

/// The authoritative key → range mapping.
#[derive(Default)]
pub struct RangeRegistry {
    /// Ranges ordered by start key.
    by_start: BTreeMap<Key, RangeId>,
    ranges: BTreeMap<RangeId, RangeDescriptor>,
    next_id: u64,
}

impl RangeRegistry {
    pub fn new() -> RangeRegistry {
        RangeRegistry {
            by_start: BTreeMap::new(),
            ranges: BTreeMap::new(),
            next_id: 1,
        }
    }

    pub fn next_range_id(&mut self) -> RangeId {
        let id = RangeId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Register a descriptor. Panics if its span overlaps an existing range
    /// (ranges partition the keyspace).
    pub fn insert(&mut self, desc: RangeDescriptor) {
        for other in self.ranges.values() {
            assert!(
                !desc.span.overlaps(&other.span),
                "range {:?} overlaps {:?}",
                desc.span,
                other.span
            );
        }
        self.by_start.insert(desc.span.start.clone(), desc.id);
        self.ranges.insert(desc.id, desc);
    }

    pub fn remove(&mut self, id: RangeId) -> Option<RangeDescriptor> {
        let desc = self.ranges.remove(&id)?;
        self.by_start.remove(&desc.span.start);
        Some(desc)
    }

    pub fn get(&self, id: RangeId) -> Option<&RangeDescriptor> {
        self.ranges.get(&id)
    }

    pub fn get_mut(&mut self, id: RangeId) -> Option<&mut RangeDescriptor> {
        self.ranges.get_mut(&id)
    }

    /// The range containing `key`.
    pub fn lookup(&self, key: &Key) -> Option<&RangeDescriptor> {
        let (_, id) = self.by_start.range(..=key.clone()).next_back()?;
        let desc = &self.ranges[id];
        desc.span.contains(key).then_some(desc)
    }

    /// All ranges overlapping `span`.
    pub fn lookup_span(&self, span: &Span) -> Vec<&RangeDescriptor> {
        self.ranges
            .values()
            .filter(|d| d.span.overlaps(span))
            .collect()
    }

    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &RangeDescriptor> {
        self.ranges.values()
    }

    pub fn ids(&self) -> Vec<RangeId> {
        self.ranges.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::ZoneConfig;
    use mr_sim::RegionId;

    fn desc(id: u64, start: &str, end: &str, lh: u32) -> RangeDescriptor {
        RangeDescriptor {
            id: RangeId(id),
            span: Span::new(Key::from(start), Key::from(end)),
            replicas: vec![
                Placement {
                    node: NodeId(lh),
                    voting: true,
                },
                Placement {
                    node: NodeId(lh + 1),
                    voting: true,
                },
                Placement {
                    node: NodeId(lh + 3),
                    voting: false,
                },
            ],
            leaseholder: NodeId(lh),
            zone_config: ZoneConfig::single_region(RegionId(0)),
        }
    }

    #[test]
    fn lookup_routes_to_covering_range() {
        let mut reg = RangeRegistry::new();
        reg.insert(desc(1, "a", "m", 0));
        reg.insert(desc(2, "m", "z", 1));
        assert_eq!(reg.lookup(&Key::from("b")).unwrap().id, RangeId(1));
        assert_eq!(reg.lookup(&Key::from("m")).unwrap().id, RangeId(2));
        assert_eq!(reg.lookup(&Key::from("lzzz")).unwrap().id, RangeId(1));
        assert!(reg.lookup(&Key::from("zz")).is_none());
        assert!(reg.lookup(&Key::from("A")).is_none());
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_ranges_rejected() {
        let mut reg = RangeRegistry::new();
        reg.insert(desc(1, "a", "m", 0));
        reg.insert(desc(2, "l", "z", 1));
    }

    #[test]
    fn lookup_span_finds_all_overlaps() {
        let mut reg = RangeRegistry::new();
        reg.insert(desc(1, "a", "m", 0));
        reg.insert(desc(2, "m", "z", 1));
        let hits = reg.lookup_span(&Span::new(Key::from("k"), Key::from("n")));
        assert_eq!(hits.len(), 2);
        let hits = reg.lookup_span(&Span::new(Key::from("n"), Key::from("o")));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, RangeId(2));
    }

    #[test]
    fn remove_unroutes() {
        let mut reg = RangeRegistry::new();
        reg.insert(desc(1, "a", "m", 0));
        assert!(reg.remove(RangeId(1)).is_some());
        assert!(reg.lookup(&Key::from("b")).is_none());
        assert!(reg.is_empty());
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let mut reg = RangeRegistry::new();
        let a = reg.next_range_id();
        let b = reg.next_range_id();
        assert!(b.0 > a.0);
    }

    #[test]
    fn descriptor_replica_views() {
        let d = desc(1, "a", "b", 0);
        assert_eq!(d.voters().count(), 2);
        assert_eq!(d.non_voters().count(), 1);
        assert!(d.has_replica_on(NodeId(3)));
        assert!(!d.has_replica_on(NodeId(9)));
    }
}

//! Zone configurations and their automatic derivation from the paper's
//! high-level abstractions (§3).
//!
//! A [`ZoneConfig`] is the low-level placement vocabulary that predates the
//! multi-region syntax: replica counts, per-region constraints, and lease
//! preferences (§3.2, Listing 1). The [`derive_zone_config`] function is the
//! §3.3 translation: given a table locality's *home region*, the database's
//! *survivability goal*, and the *placement policy*, produce the zone config
//! the paper describes (3 voters in-home for ZONE survivability, 5 voters
//! with 2 in-home for REGION survivability, non-voters elsewhere, etc.).

use mr_sim::{RegionId, SimDuration};

/// Default MVCC garbage-collection TTL (`gc.ttl`): history younger than
/// this is always retained. Sim-scaled (CockroachDB defaults to hours;
/// simulated workloads live in seconds).
pub const DEFAULT_GC_TTL: SimDuration = SimDuration::from_secs(10);

/// The failure domain a database must survive (§2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SurvivalGoal {
    /// Survive the loss of one availability zone: 3 voters, all in the home
    /// region, spread across zones.
    Zone,
    /// Survive the loss of a whole region: 5 voters, at most 2 per region.
    Region,
}

/// Data-domiciling placement policy (§3.3.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Non-voting replicas in every non-home region (fast stale reads
    /// everywhere).
    #[default]
    Default,
    /// No replicas outside the home region for REGIONAL tables (GDPR-style
    /// domiciling). Only valid with ZONE survivability.
    Restricted,
}

/// The closed-timestamp policy of a range, determined by its table locality
/// (§5.1.1, §6.2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClosedTsPolicy {
    /// REGIONAL tables: close timestamps a fixed duration in the past.
    Lag,
    /// GLOBAL tables: close timestamps in the future so any replica can
    /// serve present-time reads.
    Lead,
}

/// Placement constraints for one range (§3.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZoneConfig {
    /// Total replicas (voting + non-voting).
    pub num_replicas: usize,
    /// Voting replicas.
    pub num_voters: usize,
    /// Minimum replicas (of any kind) per region. Unlisted regions get
    /// leftovers only if `num_replicas` exceeds the constrained total.
    pub constraints: Vec<(RegionId, usize)>,
    /// Minimum voting replicas per region.
    pub voter_constraints: Vec<(RegionId, usize)>,
    /// Regions where the leaseholder should live, in preference order.
    pub lease_preferences: Vec<RegionId>,
    /// Closed-timestamp policy for ranges governed by this config.
    pub closed_ts_policy: ClosedTsPolicy,
    /// MVCC GC TTL (`gc.ttl`): committed history younger than this is
    /// never reclaimed, bounding how far back AOST reads can reach.
    pub gc_ttl: SimDuration,
}

impl ZoneConfig {
    /// Number of non-voting replicas implied by the config.
    pub fn num_non_voters(&self) -> usize {
        self.num_replicas.saturating_sub(self.num_voters)
    }

    /// A single-region config (pre-multi-region CRDB default): 3 voters in
    /// one region.
    pub fn single_region(home: RegionId) -> ZoneConfig {
        ZoneConfig {
            num_replicas: 3,
            num_voters: 3,
            constraints: vec![(home, 3)],
            voter_constraints: vec![(home, 3)],
            lease_preferences: vec![home],
            closed_ts_policy: ClosedTsPolicy::Lag,
            gc_ttl: DEFAULT_GC_TTL,
        }
    }
}

/// Derive the automatic zone configuration of §3.3.
///
/// * `home` — the home region (leaseholder placement; §3.3.1).
/// * `db_regions` — all regions of the database.
/// * `goal` — the survivability goal.
/// * `placement` — `Default` or `Restricted` (§3.3.4).
/// * `policy` — closed-timestamp policy (`Lead` for GLOBAL tables).
///
/// PLACEMENT RESTRICTED does not apply to GLOBAL tables and cannot be
/// combined with REGION survivability; callers enforce those rules (the SQL
/// layer rejects such DDL), but this function debug-asserts them.
pub fn derive_zone_config(
    home: RegionId,
    db_regions: &[RegionId],
    goal: SurvivalGoal,
    placement: PlacementPolicy,
    policy: ClosedTsPolicy,
) -> ZoneConfig {
    debug_assert!(db_regions.contains(&home), "home must be a database region");
    let n = db_regions.len();
    let others = || db_regions.iter().copied().filter(|&r| r != home);

    match goal {
        SurvivalGoal::Zone => {
            // §3.3.2: 3 voters in the home region (spread across zones), and
            // one non-voter in each other region (unless RESTRICTED).
            let restricted =
                placement == PlacementPolicy::Restricted && policy == ClosedTsPolicy::Lag;
            let num_non_voters = if restricted { 0 } else { n - 1 };
            let mut constraints = vec![(home, 3)];
            if !restricted {
                constraints.extend(others().map(|r| (r, 1)));
            }
            ZoneConfig {
                num_replicas: 3 + num_non_voters,
                num_voters: 3,
                constraints,
                voter_constraints: vec![(home, 3)],
                lease_preferences: vec![home],
                closed_ts_policy: policy,
                gc_ttl: DEFAULT_GC_TTL,
            }
        }
        SurvivalGoal::Region => {
            debug_assert!(n >= 3, "REGION survivability needs >= 3 regions");
            debug_assert!(
                placement == PlacementPolicy::Default,
                "PLACEMENT RESTRICTED is incompatible with REGION survivability"
            );
            // §3.3.3: 5 voters with 2 in the home region; max(2+(N-1),
            // num_voters) replicas with at least one replica per region so
            // stale reads can be served everywhere.
            let num_voters = 5;
            let num_replicas = (2 + (n - 1)).max(num_voters);
            let mut constraints = vec![(home, 2)];
            constraints.extend(others().map(|r| (r, 1)));
            ZoneConfig {
                num_replicas,
                num_voters,
                constraints,
                voter_constraints: vec![(home, 2)],
                lease_preferences: vec![home],
                closed_ts_policy: policy,
                gc_ttl: DEFAULT_GC_TTL,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regions(n: u32) -> Vec<RegionId> {
        (0..n).map(RegionId).collect()
    }

    #[test]
    fn zone_survivability_default_placement() {
        let cfg = derive_zone_config(
            RegionId(0),
            &regions(5),
            SurvivalGoal::Zone,
            PlacementPolicy::Default,
            ClosedTsPolicy::Lag,
        );
        // 3 voters + (N-1) non-voters (§3.3.2).
        assert_eq!(cfg.num_voters, 3);
        assert_eq!(cfg.num_replicas, 7);
        assert_eq!(cfg.num_non_voters(), 4);
        assert_eq!(cfg.voter_constraints, vec![(RegionId(0), 3)]);
        assert_eq!(cfg.lease_preferences, vec![RegionId(0)]);
        // Every non-home region gets one replica.
        for r in 1..5 {
            assert!(cfg.constraints.contains(&(RegionId(r), 1)));
        }
    }

    #[test]
    fn zone_survivability_restricted_placement() {
        let cfg = derive_zone_config(
            RegionId(1),
            &regions(3),
            SurvivalGoal::Zone,
            PlacementPolicy::Restricted,
            ClosedTsPolicy::Lag,
        );
        assert_eq!(cfg.num_replicas, 3);
        assert_eq!(cfg.num_non_voters(), 0);
        assert_eq!(cfg.constraints, vec![(RegionId(1), 3)]);
    }

    #[test]
    fn restricted_does_not_affect_global_tables() {
        // §3.3.4: PLACEMENT RESTRICTED does not apply to GLOBAL tables.
        let cfg = derive_zone_config(
            RegionId(0),
            &regions(3),
            SurvivalGoal::Zone,
            PlacementPolicy::Restricted,
            ClosedTsPolicy::Lead,
        );
        assert_eq!(cfg.num_replicas, 5); // 3 voters + 2 non-voters
        assert_eq!(cfg.closed_ts_policy, ClosedTsPolicy::Lead);
    }

    #[test]
    fn region_survivability_five_voters_two_home() {
        let cfg = derive_zone_config(
            RegionId(2),
            &regions(3),
            SurvivalGoal::Region,
            PlacementPolicy::Default,
            ClosedTsPolicy::Lag,
        );
        assert_eq!(cfg.num_voters, 5);
        // max(2 + (3-1), 5) = 5.
        assert_eq!(cfg.num_replicas, 5);
        assert_eq!(cfg.voter_constraints, vec![(RegionId(2), 2)]);
        assert!(cfg.constraints.contains(&(RegionId(0), 1)));
        assert!(cfg.constraints.contains(&(RegionId(1), 1)));
    }

    #[test]
    fn region_survivability_many_regions_replica_formula() {
        // N=10: max(2 + 9, 5) = 11 replicas, one per region at least.
        let cfg = derive_zone_config(
            RegionId(0),
            &regions(10),
            SurvivalGoal::Region,
            PlacementPolicy::Default,
            ClosedTsPolicy::Lag,
        );
        assert_eq!(cfg.num_replicas, 11);
        assert_eq!(cfg.num_voters, 5);
        assert_eq!(cfg.num_non_voters(), 6);
        for r in 1..10 {
            assert!(cfg.constraints.contains(&(RegionId(r), 1)));
        }
    }

    #[test]
    fn single_region_legacy_config() {
        let cfg = ZoneConfig::single_region(RegionId(0));
        assert_eq!(cfg.num_replicas, 3);
        assert_eq!(cfg.num_voters, 3);
        assert_eq!(cfg.closed_ts_policy, ClosedTsPolicy::Lag);
    }
}

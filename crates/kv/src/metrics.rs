//! Pre-bound [`mr_obs`] instrument handles for the KV layer.
//!
//! The cluster event loop and the transaction coordinator used to keep two
//! separate sets of ad-hoc `u64` counters; both now increment the same
//! registry instruments through the handles below. Handles are bound once at
//! cluster construction so the hot paths (one `Cell` store per increment)
//! never touch the registry's maps.
//!
//! Naming scheme: `kv.<component>.<what>`, labels sorted. See DESIGN.md
//! ("Observability") for the full metric table.

use mr_obs::{Counter, HistogramHandle, Registry};

/// Request kinds, used as the `kind` label on `kv.rpc.sent_by_kind` and as
/// RPC span names (`rpc.<kind>`).
pub(crate) const REQ_KINDS: [&str; 12] = [
    "get",
    "scan",
    "put",
    "end_txn",
    "commit_inline",
    "stage_txn",
    "query_intent",
    "recover_txn",
    "resolve_intent",
    "refresh",
    "push_txn",
    "negotiate",
];

/// Map a request to its `REQ_KINDS` index.
pub(crate) fn req_kind_index(req: &mr_proto::Request) -> usize {
    use mr_proto::Request::*;
    match req {
        Get { .. } => 0,
        Scan { .. } => 1,
        Put { .. } => 2,
        EndTxn { .. } => 3,
        CommitInline { .. } => 4,
        StageTxn { .. } => 5,
        QueryIntent { .. } => 6,
        RecoverTxn { .. } => 7,
        ResolveIntent { .. } => 8,
        Refresh { .. } => 9,
        PushTxn { .. } => 10,
        Negotiate { .. } => 11,
    }
}

/// Span name for an RPC carrying `req` (`"rpc.get"`, `"rpc.put"`, …).
pub(crate) fn rpc_span_name(req: &mr_proto::Request) -> &'static str {
    const NAMES: [&str; 12] = [
        "rpc.get",
        "rpc.scan",
        "rpc.put",
        "rpc.end_txn",
        "rpc.commit_inline",
        "rpc.stage_txn",
        "rpc.query_intent",
        "rpc.recover_txn",
        "rpc.resolve_intent",
        "rpc.refresh",
        "rpc.push_txn",
        "rpc.negotiate",
    ];
    NAMES[req_kind_index(req)]
}

/// Every KV instrument, bound once per cluster.
pub(crate) struct KvMetrics {
    pub rpcs_sent: Counter,
    pub rpcs_by_kind: [Counter; 12],
    pub follower_reads_served: Counter,
    pub follower_read_redirects: Counter,
    pub uncertainty_restarts: Counter,
    pub refreshes: Counter,
    pub refresh_failures: Counter,
    pub commit_waits: Counter,
    pub commit_wait_nanos: Counter,
    pub txn_commits: Counter,
    pub txn_aborts: Counter,
    pub txn_restarts: Counter,
    pub lease_transfers: Counter,
    pub events_processed: Counter,
    pub parked_requests: Counter,
    pub ev_rpc: Counter,
    pub ev_raft: Counter,
    pub ev_tick: Counter,
    pub ev_side: Counter,
    pub ev_wake: Counter,
    pub gc_versions_removed: Counter,
    /// Intent writes sent asynchronously at statement time (pipelining).
    pub pipelined_writes: Counter,
    /// Commits acknowledged off a STAGING record + in-flight writes (one
    /// consensus round instead of two).
    pub parallel_commit_acks: Counter,
    /// Parallel commits that had to fall back to an explicit commit because
    /// a pipelined write landed above the staged timestamp.
    pub parallel_commit_restages: Counter,
    /// Status-recovery procedures run against abandoned STAGING records.
    pub staging_recoveries: Counter,
    /// Recoveries that finalized the record as committed.
    pub staging_recovery_commits: Counter,
    /// Recoveries that aborted the record.
    pub staging_recovery_aborts: Counter,
    /// Commit-wait durations in nanoseconds (§6.2).
    pub commit_wait_latency: HistogramHandle,
    /// Commands that rode a coalesced multi-command Raft entry (group
    /// commit) instead of paying their own consensus round.
    pub proposals_batched: Counter,
    /// Multi-command Raft entries proposed (denominator for occupancy).
    pub entries_proposed: Counter,
    /// Leader heartbeat broadcasts actually sent; quiescence suppresses
    /// these, so the rate collapses once a range goes cold.
    pub heartbeats_sent: Counter,
    /// Leaseholder reads served off local state without touching Raft —
    /// proposals the read fast path avoided.
    pub read_fast_path: Counter,
    /// Commands per proposed Raft entry (mean > 1 means batching works).
    pub batch_occupancy: HistogramHandle,
}

impl KvMetrics {
    pub fn bind(r: &Registry) -> KvMetrics {
        let ev = |kind: &str| r.counter("kv.events.by_kind", &[("kind", kind)]);
        KvMetrics {
            rpcs_sent: r.counter("kv.rpc.sent", &[]),
            rpcs_by_kind: REQ_KINDS.map(|kind| r.counter("kv.rpc.sent_by_kind", &[("kind", kind)])),
            follower_reads_served: r.counter("kv.read.follower.served", &[]),
            follower_read_redirects: r.counter("kv.read.follower.redirects", &[]),
            uncertainty_restarts: r.counter("kv.txn.uncertainty_restarts", &[]),
            refreshes: r.counter("kv.txn.refreshes", &[]),
            refresh_failures: r.counter("kv.txn.refresh_failures", &[]),
            commit_waits: r.counter("kv.txn.commit_waits", &[]),
            commit_wait_nanos: r.counter("kv.txn.commit_wait_nanos", &[]),
            txn_commits: r.counter("kv.txn.commits", &[]),
            txn_aborts: r.counter("kv.txn.aborts", &[]),
            txn_restarts: r.counter("kv.txn.restarts", &[]),
            lease_transfers: r.counter("kv.lease.transfers", &[]),
            events_processed: r.counter("kv.events.processed", &[]),
            parked_requests: r.counter("kv.requests.parked", &[]),
            ev_rpc: ev("rpc"),
            ev_raft: ev("raft"),
            ev_tick: ev("tick"),
            ev_side: ev("side"),
            ev_wake: ev("wake"),
            gc_versions_removed: r.counter("kv.gc.versions_removed", &[]),
            pipelined_writes: r.counter("kv.txn.pipelined_writes", &[]),
            parallel_commit_acks: r.counter("kv.txn.parallel_commit.acks", &[]),
            parallel_commit_restages: r.counter("kv.txn.parallel_commit.restages", &[]),
            staging_recoveries: r.counter("kv.txn.staging_recovery.runs", &[]),
            staging_recovery_commits: r.counter("kv.txn.staging_recovery.commits", &[]),
            staging_recovery_aborts: r.counter("kv.txn.staging_recovery.aborts", &[]),
            commit_wait_latency: r.histogram("kv.txn.commit_wait.latency", &[]),
            proposals_batched: r.counter("raft.proposals_batched", &[]),
            entries_proposed: r.counter("raft.entries_proposed", &[]),
            heartbeats_sent: r.counter("raft.heartbeats_sent", &[]),
            read_fast_path: r.counter("raft.read_fast_path", &[]),
            batch_occupancy: r.histogram("raft.batch_occupancy", &[]),
        }
    }
}

/// Point-in-time copy of the KV counters, field-compatible with the old
/// `Metrics` struct so tests and harnesses read `cluster.metrics().X`.
#[derive(Clone, Copy, Debug, Default)]
pub struct MetricsView {
    pub rpcs_sent: u64,
    pub follower_reads_served: u64,
    pub follower_read_redirects: u64,
    pub uncertainty_restarts: u64,
    pub refreshes: u64,
    pub refresh_failures: u64,
    pub commit_waits: u64,
    pub commit_wait_nanos: u64,
    pub txn_commits: u64,
    pub txn_aborts: u64,
    pub txn_restarts: u64,
    pub lease_transfers: u64,
    /// Total calendar events processed (perf diagnostics).
    pub events_processed: u64,
    pub parked_requests: u64,
    pub ev_rpc: u64,
    pub ev_raft: u64,
    pub ev_tick: u64,
    pub ev_side: u64,
    pub ev_wake: u64,
    pub gc_versions_removed: u64,
    pub pipelined_writes: u64,
    pub parallel_commit_acks: u64,
    pub parallel_commit_restages: u64,
    pub staging_recoveries: u64,
    pub staging_recovery_commits: u64,
    pub staging_recovery_aborts: u64,
    pub proposals_batched: u64,
    pub entries_proposed: u64,
    pub heartbeats_sent: u64,
    pub read_fast_path: u64,
}

impl KvMetrics {
    pub fn view(&self) -> MetricsView {
        MetricsView {
            rpcs_sent: self.rpcs_sent.get(),
            follower_reads_served: self.follower_reads_served.get(),
            follower_read_redirects: self.follower_read_redirects.get(),
            uncertainty_restarts: self.uncertainty_restarts.get(),
            refreshes: self.refreshes.get(),
            refresh_failures: self.refresh_failures.get(),
            commit_waits: self.commit_waits.get(),
            commit_wait_nanos: self.commit_wait_nanos.get(),
            txn_commits: self.txn_commits.get(),
            txn_aborts: self.txn_aborts.get(),
            txn_restarts: self.txn_restarts.get(),
            lease_transfers: self.lease_transfers.get(),
            events_processed: self.events_processed.get(),
            parked_requests: self.parked_requests.get(),
            ev_rpc: self.ev_rpc.get(),
            ev_raft: self.ev_raft.get(),
            ev_tick: self.ev_tick.get(),
            ev_side: self.ev_side.get(),
            ev_wake: self.ev_wake.get(),
            gc_versions_removed: self.gc_versions_removed.get(),
            pipelined_writes: self.pipelined_writes.get(),
            parallel_commit_acks: self.parallel_commit_acks.get(),
            parallel_commit_restages: self.parallel_commit_restages.get(),
            staging_recoveries: self.staging_recoveries.get(),
            staging_recovery_commits: self.staging_recovery_commits.get(),
            staging_recovery_aborts: self.staging_recovery_aborts.get(),
            proposals_batched: self.proposals_batched.get(),
            entries_proposed: self.entries_proposed.get(),
            heartbeats_sent: self.heartbeats_sent.get(),
            read_fast_path: self.read_fast_path.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_handles_share_the_registry() {
        let r = Registry::new();
        let m = KvMetrics::bind(&r);
        m.txn_commits.inc();
        m.rpcs_by_kind[req_kind_index(&mr_proto::Request::PushTxn {
            pushee: mr_proto::TxnId(1),
            anchor: mr_proto::Key::from("a"),
        })]
        .inc();
        assert_eq!(r.counter_total("kv.txn.commits"), 1);
        assert_eq!(r.counter_total("kv.rpc.sent_by_kind"), 1);
        // A second bind sees the same instruments (single source of truth).
        let m2 = KvMetrics::bind(&r);
        assert_eq!(m2.txn_commits.get(), 1);
        assert_eq!(m.view().txn_commits, 1);
    }

    #[test]
    fn rpc_span_names_align_with_kinds() {
        let req = mr_proto::Request::Negotiate {
            spans: vec![mr_proto::Span::point(mr_proto::Key::from("k"))],
        };
        assert_eq!(rpc_span_name(&req), "rpc.negotiate");
        assert_eq!(REQ_KINDS[req_kind_index(&req)], "negotiate");
    }
}

//! Replication conformance reports.
//!
//! Built from live cluster state, the report classifies every range against
//! its own derived [`ZoneConfig`](crate::zone::ZoneConfig): is the range
//! fully replicated, do per-region (voter) constraints hold, and does the
//! leaseholder sit in a preferred region? This mirrors CockroachDB's
//! replication reports, which back the paper's claim that the high-level
//! multi-region abstractions (§3.3) always translate into conforming
//! placements. The JSON export is deterministic for a fixed seed (ranges
//! sorted by id, integers and fixed strings only) and the report is
//! queryable through `crdb_internal.replication_report`.

use std::collections::BTreeMap;

use mr_proto::RangeId;
use mr_sim::{SimTime, Topology};

use crate::range::{RangeDescriptor, RangeRegistry};

/// Conformance classification of one range, in decreasing severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RangeStatus {
    /// Fewer live voters than `num_voters`, or fewer live replicas than
    /// `num_replicas`.
    UnderReplicated,
    /// Per-region replica or voter constraints are not met.
    ViolatingConstraints,
    /// The leaseholder is outside every preferred region.
    WrongLeaseholder,
    /// Placement matches the zone config.
    Conforming,
}

impl RangeStatus {
    pub fn label(&self) -> &'static str {
        match self {
            RangeStatus::UnderReplicated => "under-replicated",
            RangeStatus::ViolatingConstraints => "violating-constraints",
            RangeStatus::WrongLeaseholder => "wrong-leaseholder",
            RangeStatus::Conforming => "conforming",
        }
    }
}

/// The verdict for one range: every problem found (classified
/// individually), in a fixed order. An empty list means conforming.
#[derive(Clone, Debug)]
pub struct RangeConformance {
    pub range: RangeId,
    pub problems: Vec<(RangeStatus, String)>,
}

impl RangeConformance {
    /// The most severe status among the problems (`Conforming` if none).
    pub fn status(&self) -> RangeStatus {
        self.problems
            .iter()
            .map(|&(s, _)| s)
            .min()
            .unwrap_or(RangeStatus::Conforming)
    }

    /// Whether any problem of the given class was found.
    pub fn has(&self, status: RangeStatus) -> bool {
        self.problems.iter().any(|&(s, _)| s == status)
    }

    pub fn detail(&self) -> String {
        self.problems
            .iter()
            .map(|(_, p)| p.as_str())
            .collect::<Vec<_>>()
            .join("; ")
    }
}

/// A point-in-time conformance report over every range in the registry.
#[derive(Clone, Debug)]
pub struct ReplicationReport {
    pub at: SimTime,
    /// One entry per range, sorted by range id.
    pub ranges: Vec<RangeConformance>,
}

impl ReplicationReport {
    /// Classify every registered range against its own zone config.
    pub fn build(at: SimTime, registry: &RangeRegistry, topo: &Topology) -> ReplicationReport {
        let mut ranges: Vec<RangeConformance> =
            registry.iter().map(|d| classify(d, topo)).collect();
        ranges.sort_by_key(|c| c.range.0);
        ReplicationReport { at, ranges }
    }

    /// Like [`ReplicationReport::build`], but suppress `WrongLeaseholder`
    /// for ranges whose lease was deliberately moved by the load-based
    /// rebalancer within the last `grace` window (`rebalanced` maps range →
    /// time of the move). A transient, intentional out-of-preference lease
    /// is not a conformance violation; once the grace window lapses without
    /// the rebalancer re-homing or re-affirming the lease, the report flags
    /// it again.
    pub fn build_with_grace(
        at: SimTime,
        registry: &RangeRegistry,
        topo: &Topology,
        rebalanced: &std::collections::HashMap<RangeId, SimTime>,
        grace: mr_sim::SimDuration,
    ) -> ReplicationReport {
        let mut report = ReplicationReport::build(at, registry, topo);
        for c in report.ranges.iter_mut() {
            if let Some(&t) = rebalanced.get(&c.range) {
                if at.0.saturating_sub(t.0) <= grace.nanos() {
                    c.problems
                        .retain(|&(s, _)| s != RangeStatus::WrongLeaseholder);
                }
            }
        }
        report
    }

    /// Number of ranges whose most severe status is `status`.
    pub fn count(&self, status: RangeStatus) -> usize {
        self.ranges.iter().filter(|c| c.status() == status).count()
    }

    /// Number of non-conforming ranges.
    pub fn violations(&self) -> usize {
        self.ranges.len() - self.count(RangeStatus::Conforming)
    }

    /// Deterministic JSON export: summary counts plus one object per range,
    /// sorted by range id.
    pub fn export_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"time_ns\": {},\n", self.at.0));
        out.push_str(&format!("  \"num_ranges\": {},\n", self.ranges.len()));
        out.push_str(&format!("  \"violations\": {},\n", self.violations()));
        for status in [
            RangeStatus::UnderReplicated,
            RangeStatus::ViolatingConstraints,
            RangeStatus::WrongLeaseholder,
            RangeStatus::Conforming,
        ] {
            out.push_str(&format!(
                "  \"{}\": {},\n",
                status.label(),
                self.count(status)
            ));
        }
        out.push_str("  \"ranges\": [\n");
        for (i, c) in self.ranges.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "    {{\"range\": {}, \"status\": \"{}\", \"detail\": \"{}\"}}",
                c.range.0,
                c.status().label(),
                mr_obs::export::json_escape(&c.detail())
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Classify one range descriptor against its zone config.
pub fn classify(desc: &RangeDescriptor, topo: &Topology) -> RangeConformance {
    let zc = &desc.zone_config;
    let mut problems = Vec::new();

    // Replication factors, counting only replicas on live nodes.
    let live_voters = desc.voters().filter(|&n| topo.is_node_alive(n)).count();
    let live_total = desc
        .replica_nodes()
        .filter(|&n| topo.is_node_alive(n))
        .count();
    if live_voters < zc.num_voters {
        problems.push((
            RangeStatus::UnderReplicated,
            format!(
                "under-replicated: {live_voters}/{} live voters",
                zc.num_voters
            ),
        ));
    }
    if live_total < zc.num_replicas {
        problems.push((
            RangeStatus::UnderReplicated,
            format!(
                "under-replicated: {live_total}/{} live replicas",
                zc.num_replicas
            ),
        ));
    }

    // Per-region constraints (replicas of any kind, then voters).
    let mut per_region = BTreeMap::new();
    let mut voters_per_region = BTreeMap::new();
    for p in &desc.replicas {
        if !topo.is_node_alive(p.node) {
            continue;
        }
        let r = topo.region_of(p.node);
        *per_region.entry(r).or_insert(0usize) += 1;
        if p.voting {
            *voters_per_region.entry(r).or_insert(0usize) += 1;
        }
    }
    for &(region, want) in &zc.constraints {
        let have = per_region.get(&region).copied().unwrap_or(0);
        if have < want {
            problems.push((
                RangeStatus::ViolatingConstraints,
                format!(
                    "constraint violated: {have}/{want} replicas in {}",
                    topo.region_name(region)
                ),
            ));
        }
    }
    for &(region, want) in &zc.voter_constraints {
        let have = voters_per_region.get(&region).copied().unwrap_or(0);
        if have < want {
            problems.push((
                RangeStatus::ViolatingConstraints,
                format!(
                    "voter constraint violated: {have}/{want} voters in {}",
                    topo.region_name(region)
                ),
            ));
        }
    }

    // Lease preference: the leaseholder must sit in one of the preferred
    // regions (when any are declared).
    if !zc.lease_preferences.is_empty() {
        let lh_region = topo.region_of(desc.leaseholder);
        if !zc.lease_preferences.contains(&lh_region) {
            problems.push((
                RangeStatus::WrongLeaseholder,
                format!(
                    "leaseholder n{} in {} outside preferred region {}",
                    desc.leaseholder.0,
                    topo.region_name(lh_region),
                    topo.region_name(zc.lease_preferences[0])
                ),
            ));
        }
    }

    RangeConformance {
        range: desc.id,
        problems,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::Placement;
    use crate::zone::ZoneConfig;
    use mr_proto::{Key, Span};
    use mr_sim::{NodeId, RegionId, RttMatrix, SimDuration};

    fn topo() -> Topology {
        Topology::build(
            &["us", "eu", "ap"],
            3,
            RttMatrix::uniform(3, SimDuration::from_millis(60)),
        )
    }

    fn desc(nodes: &[(u32, bool)], leaseholder: u32, zc: ZoneConfig) -> RangeDescriptor {
        RangeDescriptor {
            id: RangeId(1),
            span: Span::new(Key::from("a"), Key::from("b")),
            replicas: nodes
                .iter()
                .map(|&(n, voting)| Placement {
                    node: NodeId(n),
                    voting,
                })
                .collect(),
            leaseholder: NodeId(leaseholder),
            zone_config: zc,
        }
    }

    #[test]
    fn conforming_single_region_range() {
        let t = topo();
        let d = desc(
            &[(0, true), (1, true), (2, true)],
            0,
            ZoneConfig::single_region(RegionId(0)),
        );
        let c = classify(&d, &t);
        assert_eq!(c.status(), RangeStatus::Conforming);
        assert!(c.problems.is_empty());
    }

    #[test]
    fn dead_voter_is_under_replicated() {
        let mut t = topo();
        t.fail_node(NodeId(1));
        let d = desc(
            &[(0, true), (1, true), (2, true)],
            0,
            ZoneConfig::single_region(RegionId(0)),
        );
        let c = classify(&d, &t);
        assert_eq!(c.status(), RangeStatus::UnderReplicated);
        assert!(c.detail().contains("2/3 live voters"));
    }

    #[test]
    fn misplaced_replica_violates_constraints() {
        let t = topo();
        // Config wants 3 voters in region 0, but one voter lives in region 1.
        let d = desc(
            &[(0, true), (1, true), (3, true)],
            0,
            ZoneConfig::single_region(RegionId(0)),
        );
        let c = classify(&d, &t);
        assert_eq!(c.status(), RangeStatus::ViolatingConstraints);
        assert!(c.detail().contains("2/3 replicas in us"), "{}", c.detail());
        assert!(c.detail().contains("2/3 voters in us"));
    }

    #[test]
    fn out_of_preference_leaseholder_flagged() {
        let t = topo();
        let mut zc = ZoneConfig::single_region(RegionId(0));
        zc.constraints = vec![];
        zc.voter_constraints = vec![];
        let d = desc(&[(3, true), (4, true), (5, true)], 3, zc);
        let c = classify(&d, &t);
        assert_eq!(c.status(), RangeStatus::WrongLeaseholder);
        assert!(c.detail().contains("n3 in eu outside preferred region us"));
    }

    #[test]
    fn grace_window_suppresses_wrong_leaseholder_only_transiently() {
        let t = topo();
        let mut reg = RangeRegistry::new();
        let mut zc = ZoneConfig::single_region(RegionId(0));
        zc.constraints = vec![];
        zc.voter_constraints = vec![];
        // Leaseholder in eu while us is preferred: WrongLeaseholder.
        let mut d = desc(&[(3, true), (4, true), (5, true)], 3, zc);
        d.id = reg.next_range_id();
        reg.insert(d);

        let mut rebalanced = std::collections::HashMap::new();
        rebalanced.insert(RangeId(1), SimTime(1_000));
        let grace = SimDuration::from_secs(10);

        // Within the grace window the deliberate move is not a violation.
        let fresh = ReplicationReport::build_with_grace(
            SimTime(1_000 + SimDuration::from_secs(5).nanos()),
            &reg,
            &t,
            &rebalanced,
            grace,
        );
        assert_eq!(fresh.violations(), 0);
        assert_eq!(fresh.count(RangeStatus::Conforming), 1);

        // Past the window the same state is flagged again.
        let stale = ReplicationReport::build_with_grace(
            SimTime(1_000 + SimDuration::from_secs(11).nanos()),
            &reg,
            &t,
            &rebalanced,
            grace,
        );
        assert_eq!(stale.count(RangeStatus::WrongLeaseholder), 1);

        // Ranges never rebalanced are unaffected.
        let other = ReplicationReport::build_with_grace(
            SimTime(2_000),
            &reg,
            &t,
            &std::collections::HashMap::new(),
            grace,
        );
        assert_eq!(other.count(RangeStatus::WrongLeaseholder), 1);
    }

    #[test]
    fn report_counts_and_json_are_deterministic() {
        let t = topo();
        let mut reg = RangeRegistry::new();
        let mut good = desc(
            &[(0, true), (1, true), (2, true)],
            0,
            ZoneConfig::single_region(RegionId(0)),
        );
        good.id = reg.next_range_id();
        reg.insert(good);
        let mut bad = desc(
            &[(3, true), (4, true), (5, true)],
            3,
            ZoneConfig::single_region(RegionId(0)),
        );
        bad.id = reg.next_range_id();
        bad.span = Span::new(Key::from("c"), Key::from("d"));
        reg.insert(bad);

        let report = ReplicationReport::build(SimTime(42), &reg, &t);
        assert_eq!(report.ranges.len(), 2);
        assert_eq!(report.count(RangeStatus::Conforming), 1);
        assert_eq!(report.count(RangeStatus::ViolatingConstraints), 1);
        assert_eq!(report.violations(), 1);
        let json = report.export_json();
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains("\"status\": \"violating-constraints\""));
        assert_eq!(json, report.export_json());
    }
}

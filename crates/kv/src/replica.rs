//! Per-node replica state and request evaluation.
//!
//! A [`Replica`] is one copy of a Range living on a node: its MVCC store,
//! its Raft instance, and — when it holds the lease — the timestamp cache,
//! lock table, closed-timestamp promises, and transaction-record map.
//!
//! Evaluation happens in two phases, mirroring CockroachDB:
//!
//! 1. **Evaluate** (leaseholder, synchronous): check locks, forward the
//!    write timestamp above the timestamp cache / closed-timestamp target /
//!    newer committed versions, acquire the lock, and propose a fully
//!    determined command through Raft.
//! 2. **Apply** (every replica, on commit): deterministically apply the
//!    command to the MVCC store, advance the closed-timestamp tracker, and
//!    on the leaseholder, release locks, wake waiters, and answer the
//!    parked RPC.
//!
//! Reads never go through Raft: the leaseholder serves them from applied
//! state (recording them in the timestamp cache), and followers serve them
//! when the read's whole uncertainty window is closed (§5.1).

use std::collections::HashMap;

use mr_clock::{Hlc, Timestamp};
use mr_proto::{
    Key, KvError, RangeId, ReadCtx, Request, Response, TxnId, TxnMeta, TxnStatus, Value,
};
use mr_raft::{Peer, RaftMsg, RaftNode};
use mr_sim::{NodeId, SimTime};
use mr_storage::{lsm::Engine, wal::TxnRecData, MvccError, RecoveryInfo, TsCache};

use crate::closedts::{ClosedTsLeaseState, ClosedTsParams, ClosedTsTracker};
use crate::locks::{LockTable, WaiterId};
use crate::zone::ClosedTsPolicy;

/// The replicated command: an operation plus the closed-timestamp promise
/// serialized into the log with it (§5.1.1).
#[derive(Clone, Debug)]
pub struct Command {
    pub closed_ts: Timestamp,
    pub op: CmdOp,
}

/// The Raft payload: one log entry carries a *batch* of commands (group
/// commit). Commands evaluated close together — a transaction's pipelined
/// intents, its STAGING record, concurrent 1PC writes — coalesce into one
/// entry and therefore one consensus round; apply fans the batch back out
/// into per-command effects and responses.
pub type Batch = Vec<Command>;

/// Replicated operations.
#[derive(Clone, Debug)]
pub enum CmdOp {
    /// Lay down a write intent (the txn's write timestamp is final).
    Put {
        key: Key,
        value: Option<Value>,
        txn: TxnMeta,
    },
    /// Write the transaction record (stage, commit, or abort). `in_flight`
    /// is the parallel-commit write set and only meaningful for STAGING.
    TxnRecord {
        txn_id: TxnId,
        status: TxnStatus,
        commit_ts: Timestamp,
        in_flight: Vec<Key>,
    },
    /// Finalize an abandoned STAGING record: commit or abort, guarded at
    /// apply time on the record still being staged at `staged_ts` (log
    /// order at the anchor decides races against a coordinator re-stage).
    RecoverTxn {
        txn_id: TxnId,
        staged_ts: Timestamp,
        commit: bool,
    },
    /// Resolve an intent after its transaction finalized.
    Resolve {
        key: Key,
        txn_id: TxnId,
        status: TxnStatus,
        commit_ts: Timestamp,
    },
    /// Leader no-op: proposed by a new leader so that entries from previous
    /// terms commit (the standard Raft leader-completeness dance).
    Noop,
    /// Lease claim after a failover, replicated through Raft like CRDB's
    /// lease acquisitions. Committing it proves the claimant can reach a
    /// quorum (an isolated stale leader's claim never commits), and log
    /// order guarantees every prior-term entry is applied on the claimant
    /// before the lease — and with it the right to serve reads — moves.
    ClaimLease { node: NodeId },
    /// One-phase commit: writes + record + (usually) resolution in one
    /// command. With `resolve_inline = false` the intents stay locked until
    /// the coordinator resolves them (the Spanner-style ablation).
    Commit1PC {
        txn_id: TxnId,
        commit_ts: Timestamp,
        writes: Vec<(Key, Option<Value>)>,
        resolve_inline: bool,
    },
    /// Range split: a replicated range-descriptor mutation. Committing it
    /// through this range's log serializes the split against every write
    /// that precedes it — the cluster performs the descriptor surgery (and
    /// carves the MVCC store at `split_key` into the new range `rhs`) when
    /// the entry applies, so a transaction straddling the split sees either
    /// the whole pre-split range or two well-formed halves, never a torn
    /// keyspace.
    Split { split_key: Key, rhs: RangeId },
    /// Range merge: the adjacent right-hand range `rhs` is absorbed into
    /// this one. Like `Split`, committing through the log orders the merge
    /// against in-flight writes; the cluster applies the surgery.
    Merge { rhs: RangeId },
}

/// Where to send the RPC response.
#[derive(Clone, Copy, Debug)]
pub struct ReplyPath {
    pub gateway: NodeId,
    pub req_id: u64,
}

/// Deferred work produced while applying committed entries; the cluster
/// performs these after releasing the replica borrow.
#[derive(Debug)]
pub enum Effect {
    /// Answer an RPC.
    Reply {
        path: ReplyPath,
        result: Result<Response, KvError>,
    },
    /// Re-evaluate a previously parked request.
    ReEval { waiter: WaiterId },
    /// A replicated lease claim applied; the cluster updates the range
    /// registry (deduplicated by log index — every replica applies the
    /// same entry).
    LeaseApplied { node: NodeId, index: u64 },
    /// A replicated split applied; the cluster performs the descriptor and
    /// store surgery (deduplicated by log index, like `LeaseApplied`).
    SplitApplied {
        split_key: Key,
        rhs: RangeId,
        index: u64,
    },
    /// A replicated merge applied; the cluster absorbs `rhs`.
    MergeApplied { rhs: RangeId, index: u64 },
}

/// Outcome of evaluating a request.
pub enum EvalOutcome {
    /// Answer immediately.
    Reply(Result<Response, KvError>),
    /// The request is parked in a lock wait-queue; it will be re-evaluated
    /// when the lock releases. The cluster starts a txn-record pusher for
    /// the blocking transaction so intents orphaned by a dead coordinator
    /// are recovered.
    Parked { key: Key, holder: TxnMeta },
    /// A command was proposed; the response fires when it applies. The Raft
    /// messages must be delivered by the caller. Batched proposals produce
    /// no messages here — they ship on the next flush (or heartbeat).
    Proposed { msgs: Vec<(Peer, RaftMsg<Batch>)> },
}

/// Context the cluster supplies for each evaluation.
pub struct EvalCtx<'a> {
    pub now: SimTime,
    pub params: &'a ClosedTsParams,
    /// Whether this replica currently holds the lease.
    pub is_leaseholder: bool,
    /// Routing hint attached to redirect errors.
    pub leaseholder: Option<NodeId>,
    /// Intentionally injected bug (chaos-checker validation only): skip the
    /// follower closed-frontier gate, serving possibly-stale data.
    pub stale_read_bug: bool,
}

struct PendingProp {
    path: ReplyPath,
    response: Response,
    term: u64,
}

/// A transaction record stored at the anchor range.
#[derive(Clone, Debug)]
pub struct TxnRecord {
    pub status: TxnStatus,
    pub commit_ts: Timestamp,
    /// The in-flight write set carried by a STAGING record (empty once
    /// finalized): the keys a status recovery must query to decide the
    /// outcome.
    pub in_flight: Vec<Key>,
}

impl TxnRecord {
    pub fn finalized(status: TxnStatus, commit_ts: Timestamp) -> TxnRecord {
        TxnRecord {
            status,
            commit_ts,
            in_flight: Vec::new(),
        }
    }

    /// The storage-engine image of this record (WAL/checkpoint durability).
    pub fn to_storage(&self) -> TxnRecData {
        TxnRecData {
            status: self.status,
            commit_ts: self.commit_ts,
            in_flight: self.in_flight.clone(),
        }
    }

    /// Rebuild from the storage-engine image after crash recovery.
    pub fn from_storage(rec: &TxnRecData) -> TxnRecord {
        TxnRecord {
            status: rec.status,
            commit_ts: rec.commit_ts,
            in_flight: rec.in_flight.clone(),
        }
    }
}

/// A request parked in a lock wait-queue.
pub struct ParkedReq {
    pub req: Request,
    pub path: ReplyPath,
    /// The key whose lock the request is waiting on.
    pub key: Key,
}

/// One replica of a Range on one node.
pub struct Replica {
    pub range: RangeId,
    pub node: NodeId,
    /// This replica's Raft id.
    pub peer: Peer,
    /// Raft peer id → node, for message addressing.
    pub peer_nodes: Vec<NodeId>,
    pub store: Engine,
    pub raft: RaftNode<Batch>,
    pub tscache: TsCache,
    pub locks: LockTable,
    pub tracker: ClosedTsTracker,
    pub lease: ClosedTsLeaseState,
    pub policy: ClosedTsPolicy,
    /// Replicated transaction records (applied via `CmdOp::TxnRecord`).
    pub txn_records: HashMap<TxnId, TxnRecord>,
    /// In-flight proposals, keyed by `(log index, slot within the batch)`:
    /// apply fans each entry back out into per-slot responses.
    pending_props: HashMap<(u64, usize), PendingProp>,
    /// Commands evaluated but not yet appended to the Raft log: the
    /// group-commit staging area. Drained into a single multi-command
    /// entry by [`Replica::flush_batch`].
    batch_buf: Vec<(Command, Response, ReplyPath)>,
    /// Batch sizes of flushed proposals since the last metrics scrape
    /// (feeds the `raft.batch_occupancy` histogram).
    prop_occupancy: Vec<u32>,
    parked: HashMap<WaiterId, ParkedReq>,
    next_waiter: WaiterId,
    /// Term in which this replica last proposed a `ClaimLease` (dedups
    /// re-proposals while the claim is in flight; a new term re-arms).
    lease_claim_term: Option<u64>,
    /// Term in which this replica last proposed a `Split`/`Merge` (dedups
    /// re-proposals while one is in flight; cleared when any lifecycle
    /// entry applies or a new term starts).
    lifecycle_term: Option<u64>,
    /// Whether a raft group-commit flush event is already on the calendar
    /// for this replica (dedups flush scheduling per batch).
    pub flush_scheduled: bool,
}

impl Replica {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        range: RangeId,
        node: NodeId,
        peer: Peer,
        peer_nodes: Vec<NodeId>,
        raft: RaftNode<Batch>,
        policy: ClosedTsPolicy,
    ) -> Replica {
        Replica {
            range,
            node,
            peer,
            peer_nodes,
            store: Engine::new(),
            raft,
            tscache: TsCache::new(Timestamp::ZERO),
            locks: LockTable::new(),
            tracker: ClosedTsTracker::new(),
            lease: ClosedTsLeaseState::default(),
            policy,
            txn_records: HashMap::new(),
            pending_props: HashMap::new(),
            batch_buf: Vec::new(),
            prop_occupancy: Vec::new(),
            parked: HashMap::new(),
            next_waiter: 1,
            lease_claim_term: None,
            lifecycle_term: None,
            flush_scheduled: false,
        }
    }

    pub fn node_for_peer(&self, p: Peer) -> NodeId {
        self.peer_nodes[p as usize]
    }

    pub fn peer_for_node(&self, n: NodeId) -> Option<Peer> {
        self.peer_nodes
            .iter()
            .position(|&x| x == n)
            .map(|i| i as Peer)
    }

    /// Take a parked request back out (when re-evaluating or cancelling).
    pub fn unpark(&mut self, waiter: WaiterId) -> Option<ParkedReq> {
        self.parked.remove(&waiter)
    }

    pub fn parked_count(&self) -> usize {
        self.parked.len()
    }

    /// Drop all pending proposals and buffered commands (leadership lost);
    /// callers time out.
    pub fn clear_pending_props(&mut self) {
        self.pending_props.clear();
        self.batch_buf.clear();
    }

    /// Simulate a process crash that loses all volatile state. The storage
    /// engine recovers solely from its durable WAL + SSTs, the Raft log
    /// truncates to its fsynced horizon (`drop_unsynced_log`), and every
    /// purely in-memory structure restarts cold:
    ///
    /// * transaction records rebuild from the replayed WAL;
    /// * the closed-timestamp tracker resumes from the recovered frontier
    ///   (durable, carried in WAL entry records);
    /// * the timestamp cache is gone — its low-water rises to
    ///   `conservative` (past any read the old incarnation could have
    ///   served), and the lease promise inherits the same bound so no
    ///   post-restart write lands below a pre-crash promise;
    /// * the lock table, parked waiters, and pending proposals vanish
    ///   (their RPCs time out and re-route).
    pub fn crash_volatile(
        &mut self,
        conservative: Timestamp,
        drop_unsynced_log: bool,
    ) -> RecoveryInfo {
        let info = self.store.crash_and_recover();
        self.raft
            .crash_volatile(info.applied_index, drop_unsynced_log);
        self.txn_records = info
            .txn_records
            .iter()
            .map(|(id, rec)| (TxnId(*id), TxnRecord::from_storage(rec)))
            .collect();
        let mut tracker = ClosedTsTracker::new();
        tracker.on_entry_applied(info.closed_ts, info.applied_index);
        self.tracker = tracker;
        self.lease.inherit(conservative);
        let mut tscache = TsCache::new(Timestamp::ZERO);
        tscache.raise_low_water(conservative);
        self.tscache = tscache;
        self.locks = LockTable::new();
        self.parked.clear();
        self.clear_pending_props();
        self.lease_claim_term = None;
        self.lifecycle_term = None;
        self.flush_scheduled = false;
        info
    }

    // ---------------------------------------------------------------
    // Evaluation
    // ---------------------------------------------------------------

    /// Evaluate `req` on this replica.
    pub fn evaluate(
        &mut self,
        req: Request,
        path: ReplyPath,
        hlc: &mut Hlc,
        ctx: &EvalCtx<'_>,
    ) -> EvalOutcome {
        if ctx.is_leaseholder {
            self.evaluate_at_leaseholder(req, path, hlc, ctx)
        } else {
            self.evaluate_at_follower(req, ctx)
        }
    }

    fn evaluate_at_follower(&mut self, req: Request, ctx: &EvalCtx<'_>) -> EvalOutcome {
        match req {
            Request::Get { ctx: rctx, key } => {
                let closed = self.tracker.closed();
                if closed < rctx.uncertainty_limit && !ctx.stale_read_bug {
                    return EvalOutcome::Reply(Err(KvError::FollowerReadUnavailable {
                        range: self.range,
                        read_ts: rctx.read_ts,
                        closed_ts: closed,
                        leaseholder: ctx.leaseholder,
                    }));
                }
                match self.store.get(&key, &rctx) {
                    Ok(out) => EvalOutcome::Reply(Ok(Response::Get {
                        value: out.value,
                        value_ts: out.value_ts,
                    })),
                    Err(e) => EvalOutcome::Reply(Err(self.map_mvcc_err(e, ctx.leaseholder))),
                }
            }
            Request::Scan {
                ctx: rctx,
                span,
                max_keys,
            } => {
                let closed = self.tracker.closed();
                if closed < rctx.uncertainty_limit && !ctx.stale_read_bug {
                    return EvalOutcome::Reply(Err(KvError::FollowerReadUnavailable {
                        range: self.range,
                        read_ts: rctx.read_ts,
                        closed_ts: closed,
                        leaseholder: ctx.leaseholder,
                    }));
                }
                match self.store.scan(&span, &rctx, max_keys) {
                    Ok(rows) => EvalOutcome::Reply(Ok(Response::Scan {
                        rows: rows.into_iter().map(|(k, v, _)| (k, v)).collect(),
                    })),
                    Err(e) => EvalOutcome::Reply(Err(self.map_mvcc_err(e, ctx.leaseholder))),
                }
            }
            Request::Negotiate { spans } => EvalOutcome::Reply(Ok(self.negotiate(&spans))),
            _ => EvalOutcome::Reply(Err(KvError::NotLeaseholder {
                range: self.range,
                leaseholder: ctx.leaseholder,
            })),
        }
    }

    fn negotiate(&self, spans: &[mr_proto::Span]) -> Response {
        // §5.3.2: the highest timestamp servable locally without blocking is
        // the closed timestamp, capped below any conflicting intent.
        let mut max_safe = self.tracker.closed();
        for span in spans {
            if let Some(intent_ts) = self.store.min_intent_ts_in(span) {
                if !intent_ts.is_zero() {
                    max_safe = max_safe.min(intent_ts.prev());
                }
            }
        }
        Response::Negotiate {
            max_safe_ts: max_safe,
        }
    }

    fn map_mvcc_err(&self, e: MvccError, leaseholder: Option<NodeId>) -> KvError {
        match e {
            MvccError::WriteIntent { key, intent_txn } => KvError::WriteIntent {
                key,
                intent_txn,
                leaseholder,
            },
            MvccError::Uncertainty {
                key,
                read_ts,
                value_ts,
            } => KvError::Uncertainty {
                key,
                read_ts,
                value_ts,
            },
            MvccError::BelowGcThreshold { read_ts, threshold } => {
                KvError::BatchTimestampBeforeGC { read_ts, threshold }
            }
        }
    }

    fn evaluate_at_leaseholder(
        &mut self,
        req: Request,
        path: ReplyPath,
        hlc: &mut Hlc,
        ctx: &EvalCtx<'_>,
    ) -> EvalOutcome {
        match req {
            Request::Get { ctx: rctx, key } => self.lh_get(rctx, key, path),
            Request::Scan {
                ctx: rctx,
                span,
                max_keys,
            } => self.lh_scan(rctx, span, max_keys, path),
            Request::Put { txn, key, value } => self.lh_put(txn, key, value, path, hlc, ctx),
            Request::EndTxn { txn, commit } => self.lh_end_txn(txn, commit, path, hlc, ctx),
            Request::CommitInline {
                txn,
                writes,
                refresh_spans,
                local_reads_only,
                resolve_inline,
            } => self.lh_commit_inline(
                txn,
                writes,
                refresh_spans,
                local_reads_only,
                resolve_inline,
                path,
                hlc,
                ctx,
            ),
            Request::StageTxn { txn, in_flight } => {
                self.lh_stage_txn(txn, in_flight, path, hlc, ctx)
            }
            Request::QueryIntent { key, txn_id, ts } => {
                // Three-way verdict, decided in evaluation order at the
                // leaseholder (the sim's analogue of CRDB's latching):
                //  - the intent applied at or below `ts` → found;
                //  - the write is evaluated but not applied (lock held,
                //    proposal in flight) → undecidable now, retry — the
                //    proposal either lands (→ found) or dies with a
                //    leadership change (→ the new leaseholder has no lock
                //    and no intent, → miss);
                //  - neither → miss, made *stable* by bumping the timestamp
                //    cache: a late (re-)evaluation of the write is forwarded
                //    above `ts` and can no longer satisfy the staged commit.
                if self
                    .store
                    .intent(&key)
                    .is_some_and(|i| i.txn.id == txn_id && i.txn.write_ts <= ts)
                {
                    EvalOutcome::Reply(Ok(Response::QueryIntent { found: true }))
                } else if self
                    .locks
                    .holder(&key)
                    .is_some_and(|h| h.id == txn_id && h.write_ts <= ts)
                {
                    EvalOutcome::Reply(Err(KvError::WriteInFlight { key }))
                } else {
                    self.tscache.record_read(&key, ts, None);
                    EvalOutcome::Reply(Ok(Response::QueryIntent { found: false }))
                }
            }
            Request::RecoverTxn {
                txn_id,
                staged_ts,
                commit,
                ..
            } => self.lh_recover_txn(txn_id, staged_ts, commit, path, hlc, ctx),
            Request::ResolveIntent {
                key,
                txn_id,
                status,
                commit_ts,
            } => self.lh_resolve(key, txn_id, status, commit_ts, path, hlc, ctx),
            Request::Refresh {
                txn_id,
                span,
                from_ts,
                to_ts,
            } => self.lh_refresh(txn_id, span, from_ts, to_ts),
            Request::PushTxn { pushee, .. } => {
                let (status, commit_ts, in_flight) = match self.txn_records.get(&pushee) {
                    Some(rec) => (rec.status, rec.commit_ts, rec.in_flight.clone()),
                    None => (TxnStatus::Pending, Timestamp::ZERO, Vec::new()),
                };
                EvalOutcome::Reply(Ok(Response::PushTxn {
                    status,
                    commit_ts,
                    in_flight,
                }))
            }
            Request::Negotiate { spans } => EvalOutcome::Reply(Ok(self.negotiate(&spans))),
        }
    }

    /// Does a write by `txn` to `key` conflict with another transaction?
    /// Checks the in-memory lock table first, then falls back to applied
    /// intents in the store: the lock table is leaseholder-local, so after
    /// a lease transfer the new leaseholder starts with an empty table
    /// while foreign intents persist in replicated MVCC state. Intents
    /// *are* the durable lock table (CRDB's "discovered intent" path) —
    /// ignoring them here would let a 1PC or Put pass evaluation and then
    /// violate the lock discipline invariant at apply time.
    fn write_conflicts(&self, key: &Key, txn_id: mr_proto::TxnId) -> bool {
        if let Some(holder) = self.locks.holder(key) {
            return holder.id != txn_id;
        }
        self.store.intent(key).is_some_and(|i| i.txn.id != txn_id)
    }

    fn park(&mut self, req: Request, path: ReplyPath, key: Key) -> EvalOutcome {
        let waiter = self.next_waiter;
        self.next_waiter += 1;
        self.locks.enqueue(&key, waiter);
        self.parked.insert(
            waiter,
            ParkedReq {
                req,
                path,
                key: key.clone(),
            },
        );
        // Identify the blocking transaction: prefer the in-flight lock
        // holder, else the applied intent. If the lock table has no holder
        // (the intent predates this replica's lease — state copy or
        // failover), register it so the eventual resolve releases the queue.
        let holder = self
            .locks
            .holder(&key)
            .cloned()
            .or_else(|| self.store.intent(&key).map(|i| i.txn.clone()))
            .expect("parked without a blocking txn");
        self.locks.acquire(&key, holder.clone());
        EvalOutcome::Parked { key, holder }
    }

    fn lh_get(&mut self, rctx: ReadCtx, key: Key, path: ReplyPath) -> EvalOutcome {
        // Conflict with an in-flight (proposed, unapplied) write?
        let own = rctx.txn.as_ref().map(|t| t.id);
        if let Some(holder) = self.locks.holder(&key) {
            if Some(holder.id) != own && holder.write_ts <= rctx.uncertainty_limit {
                return self.park(
                    Request::Get {
                        ctx: rctx,
                        key: key.clone(),
                    },
                    path,
                    key,
                );
            }
        }
        match self.store.get(&key, &rctx) {
            Ok(out) => {
                self.tscache.record_read(&key, rctx.read_ts, own);
                EvalOutcome::Reply(Ok(Response::Get {
                    value: out.value,
                    value_ts: out.value_ts,
                }))
            }
            Err(MvccError::WriteIntent { key, .. }) => self.park(
                Request::Get {
                    ctx: rctx,
                    key: key.clone(),
                },
                path,
                key,
            ),
            Err(e @ MvccError::Uncertainty { .. }) => {
                // The read's snapshot attempt still protects its timestamp.
                self.tscache.record_read(&key, rctx.read_ts, own);
                EvalOutcome::Reply(Err(self.map_mvcc_err(e, None)))
            }
            Err(e @ MvccError::BelowGcThreshold { .. }) => {
                EvalOutcome::Reply(Err(self.map_mvcc_err(e, None)))
            }
        }
    }

    fn lh_scan(
        &mut self,
        rctx: ReadCtx,
        span: mr_proto::Span,
        max_keys: usize,
        path: ReplyPath,
    ) -> EvalOutcome {
        let own = rctx.txn.as_ref().map(|t| t.id);
        let conflict = self
            .locks
            .first_locked_in_span(&span, own)
            .filter(|(_, h)| h.write_ts <= rctx.uncertainty_limit)
            .map(|(k, _)| k.clone());
        if let Some(k) = conflict {
            return self.park(
                Request::Scan {
                    ctx: rctx,
                    span,
                    max_keys,
                },
                path,
                k,
            );
        }
        match self.store.scan(&span, &rctx, max_keys) {
            Ok(rows) => {
                self.tscache.record_span_read(&span, rctx.read_ts);
                EvalOutcome::Reply(Ok(Response::Scan {
                    rows: rows.into_iter().map(|(k, v, _)| (k, v)).collect(),
                }))
            }
            Err(MvccError::WriteIntent { key, .. }) => self.park(
                Request::Scan {
                    ctx: rctx,
                    span,
                    max_keys,
                },
                path,
                key,
            ),
            Err(e @ MvccError::Uncertainty { .. }) => {
                self.tscache.record_span_read(&span, rctx.read_ts);
                EvalOutcome::Reply(Err(self.map_mvcc_err(e, None)))
            }
            Err(e @ MvccError::BelowGcThreshold { .. }) => {
                EvalOutcome::Reply(Err(self.map_mvcc_err(e, None)))
            }
        }
    }

    fn lh_put(
        &mut self,
        txn: TxnMeta,
        key: Key,
        value: Option<Value>,
        path: ReplyPath,
        hlc: &mut Hlc,
        ctx: &EvalCtx<'_>,
    ) -> EvalOutcome {
        // Writes conflict with any foreign lock (or discovered foreign
        // intent), regardless of timestamp.
        if self.write_conflicts(&key, txn.id) {
            return self.park(
                Request::Put {
                    txn,
                    key: key.clone(),
                    value,
                },
                path,
                key,
            );
        }
        // Determine the final write timestamp.
        let mut ts = txn.write_ts;
        // 1. Above any prior read of this key by another transaction
        //    (serializability); the txn's own reads don't push its writes.
        ts = ts.forward(self.tscache.max_read_ts(&key, Some(txn.id)).next());
        // 2. Above the closed-timestamp promise. For GLOBAL (Lead) ranges
        //    this is what schedules the write in the future (§6.2.1).
        let skew = hlc.physical_clock().skew_nanos();
        self.lease.advance(ctx.params, self.policy, ctx.now, skew);
        ts = ts.forward(self.lease.min_write_ts());
        // 3. Above any newer committed version (write-too-old).
        if let Some(latest) = self.store.latest_committed_ts(&key) {
            ts = ts.forward(latest.next());
        }
        let mut meta = txn;
        meta.write_ts = ts;
        self.locks.acquire(&key, meta.clone());
        let cmd = Command {
            closed_ts: self.lease.promised(),
            op: CmdOp::Put {
                key,
                value,
                txn: meta,
            },
        };
        self.propose(cmd, Response::Put { written_ts: ts }, path, ctx.now)
    }

    /// One-phase commit (the CRDB 1PC fast path): evaluate every write,
    /// forward the commit timestamp past reads/closed-timestamps/newer
    /// versions, re-validate the transaction's read spans at the final
    /// timestamp, and propose a single command that writes, commits, and
    /// resolves atomically. Locks are held only from evaluation to
    /// application — one Raft round.
    #[allow(clippy::too_many_arguments)]
    fn lh_commit_inline(
        &mut self,
        txn: TxnMeta,
        writes: Vec<(Key, Option<Value>)>,
        refresh_spans: Vec<(mr_proto::Span, Timestamp)>,
        local_reads_only: bool,
        resolve_inline: bool,
        path: ReplyPath,
        hlc: &mut Hlc,
        ctx: &EvalCtx<'_>,
    ) -> EvalOutcome {
        // Replay protection: a timed-out first attempt may have left a
        // proposal that survives a leadership change and commits later. The
        // txn record is authoritative — a retry of an already-finalized
        // transaction must report the original outcome, never commit again
        // at a new timestamp.
        match self.txn_records.get(&txn.id) {
            Some(rec) if rec.status == TxnStatus::Committed => {
                let cts = rec.commit_ts;
                return EvalOutcome::Reply(Ok(Response::CommitInline { commit_ts: cts }));
            }
            Some(_) => {
                return EvalOutcome::Reply(Err(KvError::TxnAborted { id: txn.id }));
            }
            None => {}
        }
        // Conflict check across all write keys (locks and discovered
        // intents alike).
        for (key, _) in &writes {
            if self.write_conflicts(key, txn.id) {
                let k = key.clone();
                return self.park(
                    Request::CommitInline {
                        txn,
                        writes,
                        refresh_spans,
                        local_reads_only,
                        resolve_inline,
                    },
                    path,
                    k,
                );
            }
        }
        // Final commit timestamp.
        let mut ts = txn.write_ts;
        for (key, _) in &writes {
            ts = ts.forward(self.tscache.max_read_ts(key, Some(txn.id)).next());
            if let Some(latest) = self.store.latest_committed_ts(key) {
                ts = ts.forward(latest.next());
            }
        }
        let skew = hlc.physical_clock().skew_nanos();
        self.lease.advance(ctx.params, self.policy, ctx.now, skew);
        ts = ts.forward(self.lease.min_write_ts());
        // If the timestamp moved and some reads live on other ranges, we
        // cannot validate them here: refuse without side effects and let
        // the coordinator run the two-phase path.
        if ts > txn.write_ts && !local_reads_only {
            return EvalOutcome::Reply(Err(KvError::WriteTooOld {
                key: writes[0].0.clone(),
                attempted_ts: txn.write_ts,
                actual_ts: ts,
            }));
        }
        // Validate the read set at the final timestamp.
        for (span, from_ts) in &refresh_spans {
            if let Err(conflict_ts) = self.store.refresh_span(span, *from_ts, ts, txn.id) {
                return EvalOutcome::Reply(Err(KvError::RefreshFailed {
                    span_start: span.start.clone(),
                    conflict_ts,
                }));
            }
            self.tscache.record_span_read(span, ts);
        }
        // Acquire and propose.
        let mut meta = txn;
        meta.write_ts = ts;
        for (key, _) in &writes {
            self.locks.acquire(key, meta.clone());
        }
        let cmd = Command {
            closed_ts: self.lease.promised(),
            op: CmdOp::Commit1PC {
                txn_id: meta.id,
                commit_ts: ts,
                writes,
                resolve_inline,
            },
        };
        self.propose(cmd, Response::CommitInline { commit_ts: ts }, path, ctx.now)
    }

    fn lh_end_txn(
        &mut self,
        txn: TxnMeta,
        commit: bool,
        path: ReplyPath,
        hlc: &mut Hlc,
        ctx: &EvalCtx<'_>,
    ) -> EvalOutcome {
        // Replay protection: finalized txn records are immutable. A retried
        // EndTxn reports the recorded outcome instead of re-proposing. A
        // STAGING record is the normal precursor here — the explicit commit
        // (or abort) that finalizes a parallel commit falls through and
        // proposes.
        match self.txn_records.get(&txn.id) {
            Some(rec) if rec.status == TxnStatus::Staging => {}
            Some(rec) if rec.status == TxnStatus::Committed && commit => {
                let cts = rec.commit_ts;
                return EvalOutcome::Reply(Ok(Response::EndTxn { commit_ts: cts }));
            }
            Some(rec) if rec.status != TxnStatus::Committed && !commit => {
                return EvalOutcome::Reply(Ok(Response::EndTxn {
                    commit_ts: Timestamp::ZERO,
                }));
            }
            Some(_) => {
                return EvalOutcome::Reply(Err(KvError::TxnAborted { id: txn.id }));
            }
            None => {}
        }
        let status = if commit {
            TxnStatus::Committed
        } else {
            TxnStatus::Aborted
        };
        let skew = hlc.physical_clock().skew_nanos();
        self.lease.advance(ctx.params, self.policy, ctx.now, skew);
        let cmd = Command {
            closed_ts: self.lease.promised(),
            op: CmdOp::TxnRecord {
                txn_id: txn.id,
                status,
                commit_ts: txn.write_ts,
                in_flight: Vec::new(),
            },
        };
        self.propose(
            cmd,
            Response::EndTxn {
                commit_ts: txn.write_ts,
            },
            path,
            ctx.now,
        )
    }

    /// Write a STAGING record carrying the parallel commit's in-flight
    /// write set. Staged at the txn's current write timestamp — the
    /// coordinator compares each pipelined write's actual timestamp against
    /// it to decide whether the commit is implicit.
    fn lh_stage_txn(
        &mut self,
        txn: TxnMeta,
        in_flight: Vec<Key>,
        path: ReplyPath,
        hlc: &mut Hlc,
        ctx: &EvalCtx<'_>,
    ) -> EvalOutcome {
        // Replay / race protection: a recovery may have finalized the txn
        // before a (re-)stage arrives. Re-staging over an existing STAGING
        // record is allowed (timestamp moved after a refresh).
        match self.txn_records.get(&txn.id) {
            Some(rec) if rec.status == TxnStatus::Committed => {
                let cts = rec.commit_ts;
                return EvalOutcome::Reply(Ok(Response::StageTxn { commit_ts: cts }));
            }
            Some(rec) if rec.status == TxnStatus::Aborted => {
                return EvalOutcome::Reply(Err(KvError::TxnAborted { id: txn.id }));
            }
            _ => {}
        }
        let skew = hlc.physical_clock().skew_nanos();
        self.lease.advance(ctx.params, self.policy, ctx.now, skew);
        let cmd = Command {
            closed_ts: self.lease.promised(),
            op: CmdOp::TxnRecord {
                txn_id: txn.id,
                status: TxnStatus::Staging,
                commit_ts: txn.write_ts,
                in_flight,
            },
        };
        self.propose(
            cmd,
            Response::StageTxn {
                commit_ts: txn.write_ts,
            },
            path,
            ctx.now,
        )
    }

    /// Finalize an abandoned STAGING record on behalf of a contender. The
    /// decisive check reruns at apply time (guarded on the record still
    /// being staged at `staged_ts`), so a coordinator re-stage racing this
    /// proposal wins or loses by log order — never both outcomes.
    fn lh_recover_txn(
        &mut self,
        txn_id: TxnId,
        staged_ts: Timestamp,
        commit: bool,
        path: ReplyPath,
        hlc: &mut Hlc,
        ctx: &EvalCtx<'_>,
    ) -> EvalOutcome {
        match self.txn_records.get(&txn_id) {
            Some(rec) if rec.status.is_finalized() => {
                return EvalOutcome::Reply(Ok(Response::RecoverTxn {
                    status: rec.status,
                    commit_ts: rec.commit_ts,
                }));
            }
            Some(rec) if rec.status == TxnStatus::Staging && rec.commit_ts != staged_ts => {
                // Re-staged at a different timestamp: the coordinator is
                // alive and this recovery's evidence is stale.
                return EvalOutcome::Reply(Ok(Response::RecoverTxn {
                    status: TxnStatus::Staging,
                    commit_ts: rec.commit_ts,
                }));
            }
            _ => {}
        }
        let skew = hlc.physical_clock().skew_nanos();
        self.lease.advance(ctx.params, self.policy, ctx.now, skew);
        let (status, cts) = if commit {
            (TxnStatus::Committed, staged_ts)
        } else {
            (TxnStatus::Aborted, Timestamp::ZERO)
        };
        let cmd = Command {
            closed_ts: self.lease.promised(),
            op: CmdOp::RecoverTxn {
                txn_id,
                staged_ts,
                commit,
            },
        };
        // Deliberately NOT batched: the apply-time staged_ts guard decides
        // the race between this recovery and a coordinator re-stage by log
        // order, so the recovery must occupy its own entry at a definite
        // log position rather than ride in a coalesced batch whose flush
        // timing would blur that ordering.
        self.propose_unbatched(
            cmd,
            Response::RecoverTxn {
                status,
                commit_ts: cts,
            },
            path,
            ctx.now,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn lh_resolve(
        &mut self,
        key: Key,
        txn_id: TxnId,
        status: TxnStatus,
        commit_ts: Timestamp,
        path: ReplyPath,
        hlc: &mut Hlc,
        ctx: &EvalCtx<'_>,
    ) -> EvalOutcome {
        let skew = hlc.physical_clock().skew_nanos();
        self.lease.advance(ctx.params, self.policy, ctx.now, skew);
        let cmd = Command {
            closed_ts: self.lease.promised(),
            op: CmdOp::Resolve {
                key,
                txn_id,
                status,
                commit_ts,
            },
        };
        self.propose(cmd, Response::ResolveIntent, path, ctx.now)
    }

    fn lh_refresh(
        &mut self,
        txn_id: TxnId,
        span: mr_proto::Span,
        from_ts: Timestamp,
        to_ts: Timestamp,
    ) -> EvalOutcome {
        match self.store.refresh_span(&span, from_ts, to_ts, txn_id) {
            Ok(()) => {
                // Protect the refreshed reads against later writes below
                // the new timestamp.
                self.tscache.record_span_read(&span, to_ts);
                EvalOutcome::Reply(Ok(Response::Refresh))
            }
            Err(conflict_ts) => EvalOutcome::Reply(Err(KvError::RefreshFailed {
                span_start: span.start,
                conflict_ts,
            })),
        }
    }

    fn propose(
        &mut self,
        cmd: Command,
        response: Response,
        path: ReplyPath,
        _now: SimTime,
    ) -> EvalOutcome {
        // Group commit: the command is *buffered*, not yet appended — the
        // cluster schedules a flush, so commands evaluated close together —
        // a transaction's pipelined intents and its STAGING record — fold
        // into a single multi-command log entry and one consensus round.
        if !self.raft.is_leader() {
            return EvalOutcome::Reply(Err(KvError::NotLeaseholder {
                range: self.range,
                leaseholder: self.raft.leader_hint().map(|p| self.node_for_peer(p)),
            }));
        }
        self.batch_buf.push((cmd, response, path));
        EvalOutcome::Proposed { msgs: Vec::new() }
    }

    /// Propose a command as its *own* log entry, broadcast immediately —
    /// for operations whose apply-time semantics depend on strict log order
    /// against re-proposals (see [`Replica::lh_recover_txn`]). Any buffered
    /// batch is appended first so the log preserves evaluation order; the
    /// broadcast ships it too.
    fn propose_unbatched(
        &mut self,
        cmd: Command,
        response: Response,
        path: ReplyPath,
        now: SimTime,
    ) -> EvalOutcome {
        self.flush_buf_into_log();
        let term = self.raft.term();
        match self.raft.propose(vec![cmd], now) {
            Some((index, msgs)) => {
                self.pending_props.insert(
                    (index, 0),
                    PendingProp {
                        path,
                        response,
                        term,
                    },
                );
                EvalOutcome::Proposed { msgs }
            }
            None => EvalOutcome::Reply(Err(KvError::NotLeaseholder {
                range: self.range,
                leaseholder: self.raft.leader_hint().map(|p| self.node_for_peer(p)),
            })),
        }
    }

    /// Append the buffered commands as one multi-command entry, registering
    /// a per-slot pending proposal for each. No-op unless this replica
    /// leads and the buffer is non-empty.
    fn flush_buf_into_log(&mut self) {
        if self.batch_buf.is_empty() || !self.raft.is_leader() {
            return;
        }
        let buf = std::mem::take(&mut self.batch_buf);
        self.prop_occupancy.push(buf.len() as u32);
        let term = self.raft.term();
        let mut cmds = Vec::with_capacity(buf.len());
        let mut props = Vec::with_capacity(buf.len());
        for (cmd, response, path) in buf {
            cmds.push(cmd);
            props.push((response, path));
        }
        let index = self
            .raft
            .propose_batched(cmds)
            .expect("leadership checked above");
        for (slot, (response, path)) in props.into_iter().enumerate() {
            self.pending_props.insert(
                (index, slot),
                PendingProp {
                    path,
                    response,
                    term,
                },
            );
        }
    }

    /// Ship the buffered batch: append it to the log and broadcast every
    /// unsent entry. If leadership was lost since evaluation, the buffered
    /// commands cannot be proposed — each caller gets a `NotLeaseholder`
    /// redirect instead of a silent drop.
    pub fn flush_batch(&mut self, now: SimTime) -> (Vec<(Peer, RaftMsg<Batch>)>, Vec<Effect>) {
        let mut effects = Vec::new();
        if !self.raft.is_leader() && !self.batch_buf.is_empty() {
            let leaseholder = self.raft.leader_hint().map(|p| self.node_for_peer(p));
            for (_cmd, _response, path) in self.batch_buf.drain(..) {
                effects.push(Effect::Reply {
                    path,
                    result: Err(KvError::NotLeaseholder {
                        range: self.range,
                        leaseholder,
                    }),
                });
            }
            return (Vec::new(), effects);
        }
        self.flush_buf_into_log();
        (self.raft.flush_appends(now), effects)
    }

    /// Whether a flush would do work: buffered commands or appended-but-
    /// unsent entries.
    pub fn has_pending_batch(&self) -> bool {
        !self.batch_buf.is_empty() || self.raft.has_pending_broadcast()
    }

    /// Drain the per-proposal batch sizes accumulated since the last call
    /// (metrics scrape).
    pub fn take_prop_occupancy(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.prop_occupancy)
    }

    /// Propose a leader no-op if this replica leads a term whose log tail
    /// predates it (commits earlier-term entries; required after elections
    /// and leadership transfers). Deliberately NOT batched: the no-op must
    /// ship the instant leadership is established — nothing else may be in
    /// flight yet, and batching it behind a flush would delay
    /// leader-completeness for every prior-term entry.
    pub fn maybe_propose_leader_noop(&mut self, now: SimTime) -> Vec<(Peer, RaftMsg<Batch>)> {
        if !self.raft.is_leader() || self.raft.last_log_term() == self.raft.term() {
            return Vec::new();
        }
        let cmd = Command {
            closed_ts: self.tracker.closed(),
            op: CmdOp::Noop,
        };
        match self.raft.propose(vec![cmd], now) {
            Some((_, msgs)) => msgs,
            None => Vec::new(),
        }
    }

    /// Propose a replicated lease claim for this node (failover path). The
    /// caller decides *whether* a claim is warranted; this only guards
    /// against duplicate in-flight proposals within one term. Deliberately
    /// NOT batched: committing the claim is the proof the claimant reaches
    /// a quorum, and lease movement is gated on that commit — parking it in
    /// a buffer behind a flush would stall every redirected client, and no
    /// concurrent traffic exists on a range whose leaseholder just died.
    pub fn maybe_propose_lease_claim(&mut self, now: SimTime) -> Vec<(Peer, RaftMsg<Batch>)> {
        if !self.raft.is_leader() || self.lease_claim_term == Some(self.raft.term()) {
            return Vec::new();
        }
        let cmd = Command {
            closed_ts: self.tracker.closed(),
            op: CmdOp::ClaimLease { node: self.node },
        };
        match self.raft.propose(vec![cmd], now) {
            Some((_, msgs)) => {
                self.lease_claim_term = Some(self.raft.term());
                msgs
            }
            None => Vec::new(),
        }
    }

    /// Propose a range-lifecycle mutation (`Split` or `Merge`) as its own
    /// log entry. Deliberately NOT batched: the surgery the cluster runs at
    /// apply time re-installs every replica of the range, so the entry must
    /// sit at a definite log position with every previously evaluated write
    /// flushed ahead of it — log order is what makes a transaction
    /// straddling the split see a consistent keyspace. Returns `None` when
    /// this replica does not lead or an earlier lifecycle proposal is still
    /// in flight this term.
    pub fn propose_lifecycle(
        &mut self,
        op: CmdOp,
        now: SimTime,
    ) -> Option<Vec<(Peer, RaftMsg<Batch>)>> {
        if !self.raft.is_leader() || self.lifecycle_term == Some(self.raft.term()) {
            return None;
        }
        self.flush_buf_into_log();
        let cmd = Command {
            closed_ts: self.tracker.closed(),
            op,
        };
        match self.raft.propose(vec![cmd], now) {
            Some((_, msgs)) => {
                self.lifecycle_term = Some(self.raft.term());
                Some(msgs)
            }
            None => None,
        }
    }

    // ---------------------------------------------------------------
    // Application
    // ---------------------------------------------------------------

    /// Apply all newly committed entries, fanning each multi-command batch
    /// entry out into per-slot effects and responses. Lock releases, waiter
    /// wake-ups, and proposal responses only have observable work to do on
    /// the replica that evaluated the requests (the leaseholder); on other
    /// replicas those structures are empty.
    pub fn apply_committed(&mut self) -> Vec<Effect> {
        let entries = self.raft.take_committed();
        let mut effects = Vec::new();
        for entry in entries {
            let mut closed = Timestamp::ZERO;
            for (slot, cmd) in entry.payload.iter().enumerate() {
                closed = closed.max(cmd.closed_ts);
                self.apply_cmd(cmd, entry.index, entry.term, slot, &mut effects);
            }
            // Append on every Raft apply: the store mutations of this entry
            // become one framed WAL record (durable at the next sync).
            self.store.seal_entry(entry.index, closed);
        }
        effects
    }

    /// Install a transaction record, mirroring it into the storage engine's
    /// durable shadow so crash recovery restores coordinator state.
    fn put_txn_record(&mut self, txn_id: TxnId, rec: TxnRecord) {
        self.store.note_txn_record(
            txn_id.0,
            TxnRecData {
                status: rec.status,
                commit_ts: rec.commit_ts,
                in_flight: rec.in_flight.clone(),
            },
        );
        self.txn_records.insert(txn_id, rec);
    }

    /// Apply one command of a batch entry. `(index, slot)` addresses the
    /// pending proposal this command answers, so errors attribute to the
    /// exact command that failed, not the whole batch.
    fn apply_cmd(
        &mut self,
        cmd: &Command,
        index: u64,
        term: u64,
        slot: usize,
        effects: &mut Vec<Effect>,
    ) {
        let prop_key = (index, slot);
        match &cmd.op {
            CmdOp::Noop => {}
            CmdOp::ClaimLease { node } => {
                self.lease_claim_term = None;
                effects.push(Effect::LeaseApplied { node: *node, index });
            }
            CmdOp::Put { key, value, txn } => {
                // Lock discipline prevents conflicts while this replica
                // holds the lease, but a pipelined proposal can commit
                // *after* a lease failover — by then another transaction may
                // hold the key (locks are leaseholder-local, not
                // replicated). The store state is replicated, so the checks
                // below are deterministic across replicas.
                match self.store.put(key, value.clone(), txn) {
                    Ok(out) => {
                        if out.written_ts != txn.write_ts {
                            // Bumped above a later committed value: report
                            // the real timestamp so the coordinator refreshes
                            // (or a parallel commit restages) instead of
                            // acking at the staged timestamp.
                            if let Some(prop) = self.pending_props.get_mut(&prop_key) {
                                if let Response::Put { written_ts } = &mut prop.response {
                                    *written_ts = out.written_ts;
                                }
                            }
                        }
                    }
                    Err(_) => {
                        // Another transaction's intent occupies the key: the
                        // late write is dropped. Fail the proposal so the
                        // coordinator aborts rather than acking a write that
                        // never landed.
                        if let Some(prop) = self.pending_props.remove(&prop_key) {
                            let holder = self
                                .store
                                .intent(key)
                                .map(|i| i.txn.clone())
                                .expect("put only fails on a conflicting intent");
                            effects.push(Effect::Reply {
                                path: prop.path,
                                result: Err(KvError::WriteIntent {
                                    key: key.clone(),
                                    intent_txn: holder,
                                    leaseholder: None,
                                }),
                            });
                        }
                    }
                }
            }
            CmdOp::TxnRecord {
                txn_id,
                status,
                commit_ts,
                in_flight,
            } => {
                match self.txn_records.get(txn_id) {
                    Some(rec) if rec.status.is_finalized() => {
                        // Finalized records are immutable. A replayed entry
                        // agreeing with the recorded outcome reports the
                        // original commit timestamp; one that conflicts
                        // (e.g. a late stage after a recovery abort) fails.
                        let (rstatus, cts) = (rec.status, rec.commit_ts);
                        let agrees = match status {
                            TxnStatus::Committed => rstatus == TxnStatus::Committed,
                            TxnStatus::Aborted => rstatus == TxnStatus::Aborted,
                            // A stage landing on a committed record means a
                            // recovery already committed at the staged ts.
                            TxnStatus::Staging => rstatus == TxnStatus::Committed,
                            TxnStatus::Pending => false,
                        };
                        if agrees {
                            if let Some(prop) = self.pending_props.get_mut(&prop_key) {
                                match &mut prop.response {
                                    Response::EndTxn { commit_ts }
                                    | Response::StageTxn { commit_ts } => *commit_ts = cts,
                                    _ => {}
                                }
                            }
                        } else if let Some(prop) = self.pending_props.remove(&prop_key) {
                            effects.push(Effect::Reply {
                                path: prop.path,
                                result: Err(KvError::TxnAborted { id: *txn_id }),
                            });
                        }
                    }
                    // No record yet, or a STAGING record being re-staged or
                    // finalized: the new entry takes effect.
                    _ => {
                        self.put_txn_record(
                            *txn_id,
                            TxnRecord {
                                status: *status,
                                commit_ts: *commit_ts,
                                in_flight: in_flight.clone(),
                            },
                        );
                    }
                }
            }
            CmdOp::RecoverTxn {
                txn_id,
                staged_ts,
                commit,
            } => {
                let (status, cts) = match self.txn_records.get(txn_id) {
                    Some(rec)
                        if rec.status == TxnStatus::Staging && rec.commit_ts == *staged_ts =>
                    {
                        // Still staged at the timestamp the recovery
                        // examined: its verdict applies.
                        let (s, c) = if *commit {
                            (TxnStatus::Committed, *staged_ts)
                        } else {
                            (TxnStatus::Aborted, Timestamp::ZERO)
                        };
                        self.put_txn_record(*txn_id, TxnRecord::finalized(s, c));
                        (s, c)
                    }
                    // Re-staged or already finalized: leave the record and
                    // report its current disposition.
                    Some(rec) => (rec.status, rec.commit_ts),
                    None => {
                        // Never staged (the stage proposal was lost): write
                        // an abort so a late stage can no longer commit.
                        self.put_txn_record(
                            *txn_id,
                            TxnRecord::finalized(TxnStatus::Aborted, Timestamp::ZERO),
                        );
                        (TxnStatus::Aborted, Timestamp::ZERO)
                    }
                };
                if let Some(prop) = self.pending_props.get_mut(&prop_key) {
                    if let Response::RecoverTxn {
                        status: s,
                        commit_ts: c,
                    } = &mut prop.response
                    {
                        *s = status;
                        *c = cts;
                    }
                }
            }
            CmdOp::Commit1PC {
                txn_id,
                commit_ts,
                writes,
                resolve_inline,
            } => {
                if let Some((status, cts)) = self
                    .txn_records
                    .get(txn_id)
                    .map(|r| (r.status, r.commit_ts))
                {
                    // Replayed commit: a stalled first attempt and its retry
                    // both made it into the log (leadership change mid-commit).
                    // The first entry finalized the txn; drop the duplicate's
                    // writes, release any locks its evaluation acquired, and
                    // report the original timestamp to the waiting client.
                    for (key, _) in writes {
                        if self.locks.holder(key).is_some_and(|h| h.id == *txn_id) {
                            for w in self.locks.release(key) {
                                effects.push(Effect::ReEval { waiter: w });
                            }
                        }
                    }
                    if status == TxnStatus::Committed {
                        if let Some(prop) = self.pending_props.get_mut(&prop_key) {
                            if let Response::CommitInline { commit_ts } = &mut prop.response {
                                *commit_ts = cts;
                            }
                        }
                    } else if let Some(prop) = self.pending_props.remove(&prop_key) {
                        effects.push(Effect::Reply {
                            path: prop.path,
                            result: Err(KvError::TxnAborted { id: *txn_id }),
                        });
                    }
                } else {
                    self.apply_commit_1pc(txn_id, commit_ts, writes, *resolve_inline, effects);
                }
            }
            CmdOp::Split { split_key, rhs } => {
                // The descriptor/store surgery is cluster-level (it spans
                // replicas on several nodes); signal it, deduplicated there
                // by log index.
                self.lifecycle_term = None;
                effects.push(Effect::SplitApplied {
                    split_key: split_key.clone(),
                    rhs: *rhs,
                    index,
                });
            }
            CmdOp::Merge { rhs } => {
                self.lifecycle_term = None;
                effects.push(Effect::MergeApplied { rhs: *rhs, index });
            }
            CmdOp::Resolve {
                key,
                txn_id,
                status,
                commit_ts,
            } => {
                match status {
                    TxnStatus::Committed => {
                        self.store.commit_intent(key, *txn_id, *commit_ts);
                    }
                    TxnStatus::Aborted | TxnStatus::Pending | TxnStatus::Staging => {
                        self.store.abort_intent(key, *txn_id);
                    }
                }
                // Only release if the lock is still held by that txn (a
                // waiter may have acquired it since a stale resolve).
                if self.locks.holder(key).is_some_and(|h| h.id == *txn_id) {
                    for w in self.locks.release(key) {
                        effects.push(Effect::ReEval { waiter: w });
                    }
                }
            }
        }
        self.tracker.on_entry_applied(cmd.closed_ts, index);
        if let Some(prop) = self.pending_props.remove(&prop_key) {
            let result = if prop.term == term {
                Ok(prop.response)
            } else {
                // Our proposal was superseded by another leader's entry.
                Err(KvError::NotLeaseholder {
                    range: self.range,
                    leaseholder: None,
                })
            };
            effects.push(Effect::Reply {
                path: prop.path,
                result,
            });
        }
    }

    /// Apply a first-time (non-replayed) 1PC commit entry.
    fn apply_commit_1pc(
        &mut self,
        txn_id: &TxnId,
        commit_ts: &Timestamp,
        writes: &[(Key, Option<Value>)],
        resolve_inline: bool,
        effects: &mut Vec<Effect>,
    ) {
        for (key, value) in writes {
            // The intent commits in the same command, so the anchor
            // is immaterial; use the key itself.
            let meta = TxnMeta::new(*txn_id, key.clone(), *commit_ts);
            self.store
                .put(key, value.clone(), &meta)
                .expect("1PC lock discipline");
            if resolve_inline {
                self.store.commit_intent(key, *txn_id, *commit_ts);
                if self.locks.holder(key).is_some_and(|h| h.id == *txn_id) {
                    for w in self.locks.release(key) {
                        effects.push(Effect::ReEval { waiter: w });
                    }
                }
            }
            // else: the intent stays locked until the coordinator's
            // post-commit-wait resolve (Spanner-style ablation).
        }
        self.put_txn_record(
            *txn_id,
            TxnRecord::finalized(TxnStatus::Committed, *commit_ts),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_clock::SkewedClock;
    use mr_proto::Span;
    use mr_raft::RaftConfig;
    use mr_sim::SimDuration;

    fn solo_replica(policy: ClosedTsPolicy) -> (Replica, Hlc) {
        let cfg = RaftConfig {
            id: 0,
            voters: vec![0],
            learners: vec![],
            election_timeout: SimDuration::from_millis(500),
            heartbeat_interval: SimDuration::from_millis(100),
            quiesce: true,
        };
        let mut raft = RaftNode::new(cfg, SimTime::ZERO);
        raft.bootstrap_leader(SimTime::ZERO);
        let replica = Replica::new(RangeId(1), NodeId(0), 0, vec![NodeId(0)], raft, policy);
        (replica, Hlc::new(SkewedClock::zero()))
    }

    fn ectx(params: &ClosedTsParams, now_ms: u64) -> EvalCtx<'_> {
        EvalCtx {
            now: SimTime(SimDuration::from_millis(now_ms).nanos()),
            params,
            is_leaseholder: true,
            leaseholder: Some(NodeId(0)),
            stale_read_bug: false,
        }
    }

    fn path() -> ReplyPath {
        ReplyPath {
            gateway: NodeId(9),
            req_id: 1,
        }
    }

    fn txn_at(id: u64, ts: Timestamp) -> TxnMeta {
        TxnMeta::new(TxnId(id), Key::from("k"), ts)
    }

    /// Flush the buffered batch into the log (solo voter: commits
    /// instantly) and apply, returning every effect.
    fn flush_apply(r: &mut Replica) -> Vec<Effect> {
        let (_msgs, mut effects) = r.flush_batch(SimTime::ZERO);
        effects.extend(r.apply_committed());
        effects
    }

    #[allow(clippy::too_many_arguments)]
    fn do_put(
        r: &mut Replica,
        hlc: &mut Hlc,
        params: &ClosedTsParams,
        now_ms: u64,
        id: u64,
        ts: Timestamp,
        key: &str,
        val: &str,
    ) -> Timestamp {
        let out = r.evaluate(
            Request::Put {
                txn: txn_at(id, ts),
                key: Key::from(key),
                value: Some(Value::from(val)),
            },
            path(),
            hlc,
            &ectx(params, now_ms),
        );
        assert!(matches!(out, EvalOutcome::Proposed { .. }));
        let effects = flush_apply(r);
        match effects.iter().find_map(|e| match e {
            Effect::Reply {
                result: Ok(Response::Put { written_ts }),
                ..
            } => Some(*written_ts),
            _ => None,
        }) {
            Some(ts) => ts,
            None => panic!("no put reply in {effects:?}"),
        }
    }

    #[test]
    fn regional_write_lands_near_now() {
        let (mut r, mut hlc) = solo_replica(ClosedTsPolicy::Lag);
        let params = ClosedTsParams::default();
        let now = Timestamp::new(SimDuration::from_secs(10).nanos(), 0);
        let wts = do_put(&mut r, &mut hlc, &params, 10_000, 1, now, "k", "v");
        assert_eq!(wts, now);
        assert!(!wts.synthetic);
    }

    #[test]
    fn global_write_scheduled_in_future() {
        let (mut r, mut hlc) = solo_replica(ClosedTsPolicy::Lead);
        let params = ClosedTsParams::default();
        let now = Timestamp::new(SimDuration::from_secs(10).nanos(), 0);
        let wts = do_put(&mut r, &mut hlc, &params, 10_000, 1, now, "k", "v");
        // Scheduled past now + lead.
        assert!(wts.wall > now.wall + params.lead().nanos() - 1);
        assert!(wts.synthetic, "future-time writes are synthetic");
        // And the closed timestamp promised covers present time.
        assert!(r.tracker.closed().wall >= now.wall);
    }

    #[test]
    fn write_forwarded_above_tscache() {
        let (mut r, mut hlc) = solo_replica(ClosedTsPolicy::Lag);
        let params = ClosedTsParams::default();
        let read_ts = Timestamp::new(SimDuration::from_secs(20).nanos(), 0);
        // Serve a read at t=20s.
        let out = r.evaluate(
            Request::Get {
                ctx: ReadCtx::stale(read_ts),
                key: Key::from("k"),
            },
            path(),
            &mut hlc,
            &ectx(&params, 10_000),
        );
        assert!(matches!(out, EvalOutcome::Reply(Ok(_))));
        // A later write at t=15s must land above the read.
        let w = Timestamp::new(SimDuration::from_secs(15).nanos(), 0);
        let wts = do_put(&mut r, &mut hlc, &params, 10_000, 1, w, "k", "v");
        assert!(wts > read_ts);
    }

    #[test]
    fn conflicting_write_parks_until_resolve() {
        let (mut r, mut hlc) = solo_replica(ClosedTsPolicy::Lag);
        let params = ClosedTsParams::default();
        let t1 = Timestamp::new(1_000, 0);
        let w1 = do_put(&mut r, &mut hlc, &params, 1, 1, t1, "k", "a");
        // Second txn's write parks.
        let out = r.evaluate(
            Request::Put {
                txn: txn_at(2, Timestamp::new(2_000, 0)),
                key: Key::from("k"),
                value: Some(Value::from("b")),
            },
            path(),
            &mut hlc,
            &ectx(&params, 1),
        );
        assert!(matches!(out, EvalOutcome::Parked { .. }));
        assert_eq!(r.parked_count(), 1);
        // Resolve txn 1 commit; waiter wakes.
        let out = r.evaluate(
            Request::ResolveIntent {
                key: Key::from("k"),
                txn_id: TxnId(1),
                status: TxnStatus::Committed,
                commit_ts: w1,
            },
            ReplyPath {
                gateway: NodeId(9),
                req_id: 2,
            },
            &mut hlc,
            &ectx(&params, 2),
        );
        assert!(matches!(out, EvalOutcome::Proposed { .. }));
        let effects = flush_apply(&mut r);
        let reeval: Vec<_> = effects
            .iter()
            .filter(|e| matches!(e, Effect::ReEval { .. }))
            .collect();
        assert_eq!(reeval.len(), 1);
        // Value committed.
        let out = r.evaluate(
            Request::Get {
                ctx: ReadCtx::stale(w1),
                key: Key::from("k"),
            },
            path(),
            &mut hlc,
            &ectx(&params, 3),
        );
        match out {
            EvalOutcome::Reply(Ok(Response::Get { value, .. })) => {
                assert_eq!(value, Some(Value::from("a")))
            }
            _ => panic!("expected value"),
        }
    }

    #[test]
    fn reader_below_future_intent_not_blocked() {
        let (mut r, mut hlc) = solo_replica(ClosedTsPolicy::Lead);
        let params = ClosedTsParams::default();
        let now = Timestamp::new(SimDuration::from_secs(10).nanos(), 0);
        // Global write scheduled ~379ms in the future; lock held.
        let _ = r.evaluate(
            Request::Put {
                txn: txn_at(1, now),
                key: Key::from("k"),
                value: Some(Value::from("v")),
            },
            path(),
            &mut hlc,
            &ectx(&params, 10_000),
        );
        // Present-time reader with a 250ms uncertainty interval: the intent
        // is beyond its uncertainty limit, so it must NOT block.
        let rctx = ReadCtx::fresh(now, now.add_duration(SimDuration::from_millis(250)));
        let out = r.evaluate(
            Request::Get {
                ctx: rctx,
                key: Key::from("k"),
            },
            path(),
            &mut hlc,
            &ectx(&params, 10_000),
        );
        match out {
            EvalOutcome::Reply(Ok(Response::Get { value, .. })) => assert_eq!(value, None),
            o => panic!(
                "reader should not block: {:?}",
                matches!(o, EvalOutcome::Parked { .. })
            ),
        }
        // A reader whose uncertainty interval does reach the intent parks.
        let rctx = ReadCtx::fresh(now, now.add_duration(SimDuration::from_millis(700)));
        let out = r.evaluate(
            Request::Get {
                ctx: rctx,
                key: Key::from("k"),
            },
            path(),
            &mut hlc,
            &ectx(&params, 10_000),
        );
        assert!(matches!(out, EvalOutcome::Parked { .. }));
    }

    #[test]
    fn follower_read_requires_closed_interval() {
        let (mut r, mut hlc) = solo_replica(ClosedTsPolicy::Lag);
        let params = ClosedTsParams::default();
        let fctx = EvalCtx {
            now: SimTime(SimDuration::from_secs(10).nanos()),
            params: &params,
            is_leaseholder: false,
            leaseholder: Some(NodeId(7)),
            stale_read_bug: false,
        };
        let read_ts = Timestamp::new(SimDuration::from_secs(5).nanos(), 0);
        let out = r.evaluate(
            Request::Get {
                ctx: ReadCtx::stale(read_ts),
                key: Key::from("k"),
            },
            path(),
            &mut hlc,
            &fctx,
        );
        match out {
            EvalOutcome::Reply(Err(KvError::FollowerReadUnavailable { leaseholder, .. })) => {
                assert_eq!(leaseholder, Some(NodeId(7)));
            }
            _ => panic!("expected unavailable"),
        }
        // Close timestamps past the read: served.
        r.tracker.on_entry_applied(read_ts, 0);
        let out = r.evaluate(
            Request::Get {
                ctx: ReadCtx::stale(read_ts),
                key: Key::from("k"),
            },
            path(),
            &mut hlc,
            &fctx,
        );
        assert!(matches!(out, EvalOutcome::Reply(Ok(Response::Get { .. }))));
    }

    #[test]
    fn follower_rejects_writes() {
        let (mut r, mut hlc) = solo_replica(ClosedTsPolicy::Lag);
        let params = ClosedTsParams::default();
        let fctx = EvalCtx {
            now: SimTime::ZERO,
            params: &params,
            is_leaseholder: false,
            leaseholder: Some(NodeId(7)),
            stale_read_bug: false,
        };
        let out = r.evaluate(
            Request::Put {
                txn: txn_at(1, Timestamp::new(10, 0)),
                key: Key::from("k"),
                value: None,
            },
            path(),
            &mut hlc,
            &fctx,
        );
        assert!(matches!(
            out,
            EvalOutcome::Reply(Err(KvError::NotLeaseholder { .. }))
        ));
    }

    #[test]
    fn negotiate_caps_below_intents() {
        let (mut r, mut hlc) = solo_replica(ClosedTsPolicy::Lag);
        let params = ClosedTsParams::default();
        r.tracker.on_entry_applied(Timestamp::new(10_000, 0), 0);
        let out = r.evaluate(
            Request::Negotiate {
                spans: vec![Span::point(Key::from("k"))],
            },
            path(),
            &mut hlc,
            &ectx(&params, 0),
        );
        match out {
            EvalOutcome::Reply(Ok(Response::Negotiate { max_safe_ts })) => {
                assert_eq!(max_safe_ts, Timestamp::new(10_000, 0));
            }
            _ => panic!(),
        }
        // Intent at 5000 caps negotiation below it.
        let _ = r.evaluate(
            Request::Put {
                txn: txn_at(1, Timestamp::new(5_000, 0)),
                key: Key::from("k"),
                value: Some(Value::from("v")),
            },
            path(),
            &mut hlc,
            &ectx(&params, 0),
        );
        flush_apply(&mut r);
        let out = r.evaluate(
            Request::Negotiate {
                spans: vec![Span::point(Key::from("k"))],
            },
            path(),
            &mut hlc,
            &ectx(&params, 0),
        );
        match out {
            EvalOutcome::Reply(Ok(Response::Negotiate { max_safe_ts })) => {
                assert!(max_safe_ts < Timestamp::new(5_000, 0));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn refresh_protects_window() {
        let (mut r, mut hlc) = solo_replica(ClosedTsPolicy::Lag);
        let params = ClosedTsParams::default();
        let span = Span::new(Key::from("a"), Key::from("z"));
        // Refresh over an empty window succeeds and protects it.
        let out = r.evaluate(
            Request::Refresh {
                txn_id: TxnId(5),
                span: span.clone(),
                from_ts: Timestamp::new(100, 0),
                to_ts: Timestamp::new(5_000, 0),
            },
            path(),
            &mut hlc,
            &ectx(&params, 0),
        );
        assert!(matches!(out, EvalOutcome::Reply(Ok(Response::Refresh))));
        // A later write to a covered key is forwarded above the refresh.
        let wts = do_put(
            &mut r,
            &mut hlc,
            &params,
            0,
            6,
            Timestamp::new(200, 0),
            "m",
            "v",
        );
        assert!(wts > Timestamp::new(5_000, 0));
    }

    /// Evaluate a proposal-producing request, apply it, and return the reply.
    fn eval_apply(
        r: &mut Replica,
        hlc: &mut Hlc,
        params: &ClosedTsParams,
        req: Request,
    ) -> Result<Response, KvError> {
        let out = r.evaluate(req, path(), hlc, &ectx(params, 0));
        match out {
            EvalOutcome::Proposed { .. } => {
                let effects = flush_apply(r);
                effects
                    .into_iter()
                    .find_map(|e| match e {
                        Effect::Reply { result, .. } => Some(result),
                        _ => None,
                    })
                    .expect("no reply effect")
            }
            EvalOutcome::Reply(result) => result,
            EvalOutcome::Parked { .. } => panic!("unexpected park"),
        }
    }

    #[test]
    fn stage_then_explicit_end_txn_finalizes() {
        let (mut r, mut hlc) = solo_replica(ClosedTsPolicy::Lag);
        let params = ClosedTsParams::default();
        let ts = Timestamp::new(1_000, 0);
        let resp = eval_apply(
            &mut r,
            &mut hlc,
            &params,
            Request::StageTxn {
                txn: txn_at(1, ts),
                in_flight: vec![Key::from("a"), Key::from("b")],
            },
        );
        match resp {
            Ok(Response::StageTxn { commit_ts }) => assert_eq!(commit_ts, ts),
            r => panic!("{r:?}"),
        }
        // A pusher sees the staged record with its in-flight write set.
        let resp = eval_apply(
            &mut r,
            &mut hlc,
            &params,
            Request::PushTxn {
                pushee: TxnId(1),
                anchor: Key::from("k"),
            },
        );
        match resp {
            Ok(Response::PushTxn {
                status, in_flight, ..
            }) => {
                assert_eq!(status, TxnStatus::Staging);
                assert_eq!(in_flight, vec![Key::from("a"), Key::from("b")]);
            }
            r => panic!("{r:?}"),
        }
        // The explicit commit finalizes the staging record.
        let resp = eval_apply(
            &mut r,
            &mut hlc,
            &params,
            Request::EndTxn {
                txn: txn_at(1, ts),
                commit: true,
            },
        );
        assert!(matches!(resp, Ok(Response::EndTxn { commit_ts }) if commit_ts == ts));
        let rec = r.txn_records.get(&TxnId(1)).unwrap();
        assert_eq!(rec.status, TxnStatus::Committed);
        assert!(rec.in_flight.is_empty());
    }

    #[test]
    fn recovery_commits_when_every_intent_landed() {
        let (mut r, mut hlc) = solo_replica(ClosedTsPolicy::Lag);
        let params = ClosedTsParams::default();
        let ts = Timestamp::new(1_000, 0);
        let wts = do_put(&mut r, &mut hlc, &params, 1, 1, ts, "k", "v");
        let _ = eval_apply(
            &mut r,
            &mut hlc,
            &params,
            Request::StageTxn {
                txn: txn_at(1, wts),
                in_flight: vec![Key::from("k")],
            },
        );
        let resp = eval_apply(
            &mut r,
            &mut hlc,
            &params,
            Request::QueryIntent {
                key: Key::from("k"),
                txn_id: TxnId(1),
                ts: wts,
            },
        );
        assert!(matches!(resp, Ok(Response::QueryIntent { found: true })));
        let resp = eval_apply(
            &mut r,
            &mut hlc,
            &params,
            Request::RecoverTxn {
                txn_id: TxnId(1),
                anchor: Key::from("k"),
                staged_ts: wts,
                commit: true,
            },
        );
        match resp {
            Ok(Response::RecoverTxn { status, commit_ts }) => {
                assert_eq!(status, TxnStatus::Committed);
                assert_eq!(commit_ts, wts);
            }
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn recovery_abort_prevents_a_late_write_from_landing() {
        let (mut r, mut hlc) = solo_replica(ClosedTsPolicy::Lag);
        let params = ClosedTsParams::default();
        let ts = Timestamp::new(1_000, 0);
        let _ = eval_apply(
            &mut r,
            &mut hlc,
            &params,
            Request::StageTxn {
                txn: txn_at(1, ts),
                in_flight: vec![Key::from("k")],
            },
        );
        // The write never arrived: not found, and the miss is protected.
        let resp = eval_apply(
            &mut r,
            &mut hlc,
            &params,
            Request::QueryIntent {
                key: Key::from("k"),
                txn_id: TxnId(1),
                ts,
            },
        );
        assert!(matches!(resp, Ok(Response::QueryIntent { found: false })));
        // A late arrival of the txn's own write is forwarded above the
        // queried timestamp — it can no longer satisfy the staged commit.
        let wts = do_put(&mut r, &mut hlc, &params, 1, 1, ts, "k", "v");
        assert!(wts > ts, "late write must land above the query-intent ts");
        let resp = eval_apply(
            &mut r,
            &mut hlc,
            &params,
            Request::RecoverTxn {
                txn_id: TxnId(1),
                anchor: Key::from("k"),
                staged_ts: ts,
                commit: false,
            },
        );
        assert!(
            matches!(resp, Ok(Response::RecoverTxn { status, .. }) if status == TxnStatus::Aborted)
        );
        // A replayed stage after the recovery abort fails loudly.
        let resp = eval_apply(
            &mut r,
            &mut hlc,
            &params,
            Request::StageTxn {
                txn: txn_at(1, ts),
                in_flight: vec![Key::from("k")],
            },
        );
        assert!(matches!(resp, Err(KvError::TxnAborted { .. })));
    }

    #[test]
    fn recovery_skips_a_restaged_record() {
        let (mut r, mut hlc) = solo_replica(ClosedTsPolicy::Lag);
        let params = ClosedTsParams::default();
        let s1 = Timestamp::new(1_000, 0);
        let s2 = Timestamp::new(2_000, 0);
        for ts in [s1, s2] {
            let _ = eval_apply(
                &mut r,
                &mut hlc,
                &params,
                Request::StageTxn {
                    txn: txn_at(1, ts),
                    in_flight: vec![Key::from("k")],
                },
            );
        }
        // Recovery evidence gathered against the first stage is stale: the
        // record must be left staged (the coordinator is alive).
        let resp = eval_apply(
            &mut r,
            &mut hlc,
            &params,
            Request::RecoverTxn {
                txn_id: TxnId(1),
                anchor: Key::from("k"),
                staged_ts: s1,
                commit: false,
            },
        );
        match resp {
            Ok(Response::RecoverTxn { status, commit_ts }) => {
                assert_eq!(status, TxnStatus::Staging);
                assert_eq!(commit_ts, s2);
            }
            r => panic!("{r:?}"),
        }
        assert_eq!(
            r.txn_records.get(&TxnId(1)).unwrap().status,
            TxnStatus::Staging
        );
    }

    #[test]
    fn end_txn_writes_record_and_push_reads_it() {
        let (mut r, mut hlc) = solo_replica(ClosedTsPolicy::Lag);
        let params = ClosedTsParams::default();
        let commit_ts = Timestamp::new(1_000, 0);
        let out = r.evaluate(
            Request::EndTxn {
                txn: txn_at(3, commit_ts),
                commit: true,
            },
            path(),
            &mut hlc,
            &ectx(&params, 0),
        );
        assert!(matches!(out, EvalOutcome::Proposed { .. }));
        flush_apply(&mut r);
        let out = r.evaluate(
            Request::PushTxn {
                pushee: TxnId(3),
                anchor: Key::from("k"),
            },
            path(),
            &mut hlc,
            &ectx(&params, 0),
        );
        match out {
            EvalOutcome::Reply(Ok(Response::PushTxn {
                status,
                commit_ts: c,
                ..
            })) => {
                assert_eq!(status, TxnStatus::Committed);
                assert_eq!(c, commit_ts);
            }
            _ => panic!(),
        }
        // Unknown txn pushes as Pending.
        let out = r.evaluate(
            Request::PushTxn {
                pushee: TxnId(99),
                anchor: Key::from("k"),
            },
            path(),
            &mut hlc,
            &ectx(&params, 0),
        );
        match out {
            EvalOutcome::Reply(Ok(Response::PushTxn { status, .. })) => {
                assert_eq!(status, TxnStatus::Pending);
            }
            _ => panic!(),
        }
    }
}

//! The per-leaseholder lock table.
//!
//! Write intents act as exclusive locks. The lock table is the *synchronous*
//! lock authority at the leaseholder: a write acquires the lock at
//! evaluation time (before its intent has replicated), so concurrent
//! requests conflict correctly even against in-flight proposals. Requests
//! that conflict wait here, in FIFO order per key, until the intent is
//! resolved (§5.1.1: "the read blocks while it is redirected to the
//! leaseholder to engage in conflict resolution"). The replica layer
//! re-evaluates waiters when the lock is released.

use std::collections::{HashMap, VecDeque};

use mr_proto::{Key, Span, TxnMeta};

/// An opaque ticket identifying a waiting request (the replica layer maps it
/// back to the parked request and its reply path).
pub type WaiterId = u64;

#[derive(Debug, Default)]
struct KeyQueue {
    /// The transaction currently holding the lock, with its (evaluated)
    /// write timestamp — readers below the holder's timestamp need not wait.
    holder: Option<TxnMeta>,
    waiters: VecDeque<WaiterId>,
}

/// Lock state for one replica (consulted only while it holds the lease).
#[derive(Debug, Default)]
pub struct LockTable {
    queues: HashMap<Key, KeyQueue>,
}

impl LockTable {
    pub fn new() -> LockTable {
        LockTable::default()
    }

    /// Acquire (or refresh) the lock on `key` for `holder`. The caller must
    /// have verified no conflicting holder exists.
    pub fn acquire(&mut self, key: &Key, holder: TxnMeta) {
        let q = self.queues.entry(key.clone()).or_default();
        debug_assert!(
            q.holder.as_ref().is_none_or(|h| h.id == holder.id),
            "lock stolen on {key:?}"
        );
        q.holder = Some(holder);
    }

    /// Record that `waiter` is blocked on `key`.
    pub fn enqueue(&mut self, key: &Key, waiter: WaiterId) {
        self.queues
            .entry(key.clone())
            .or_default()
            .waiters
            .push_back(waiter);
    }

    /// The transaction currently holding the lock on `key`.
    pub fn holder(&self, key: &Key) -> Option<&TxnMeta> {
        self.queues.get(key).and_then(|q| q.holder.as_ref())
    }

    /// First locked key within `span` whose holder differs from `exclude`
    /// (used by scans to detect conflicts with in-flight writes).
    pub fn first_locked_in_span(
        &self,
        span: &Span,
        exclude: Option<mr_proto::TxnId>,
    ) -> Option<(&Key, &TxnMeta)> {
        self.queues
            .iter()
            .filter(|(k, q)| {
                span.contains(k) && q.holder.as_ref().is_some_and(|h| Some(h.id) != exclude)
            })
            .map(|(k, q)| (k, q.holder.as_ref().unwrap()))
            .min_by_key(|(k, _)| (*k).clone())
    }

    /// Number of requests waiting on `key`.
    pub fn waiter_count(&self, key: &Key) -> usize {
        self.queues.get(key).map_or(0, |q| q.waiters.len())
    }

    /// Total waiters across all keys (for metrics).
    pub fn total_waiters(&self) -> usize {
        self.queues.values().map(|q| q.waiters.len()).sum()
    }

    /// The lock on `key` was released: drain and return all waiters, in
    /// arrival order, for re-evaluation. (Re-evaluation may re-enqueue a
    /// waiter if another conflicting lock appears.)
    pub fn release(&mut self, key: &Key) -> Vec<WaiterId> {
        match self.queues.remove(key) {
            Some(q) => q.waiters.into(),
            None => Vec::new(),
        }
    }

    /// Remove a specific waiter (e.g. its request timed out). Returns true
    /// if it was present.
    pub fn cancel(&mut self, key: &Key, waiter: WaiterId) -> bool {
        if let Some(q) = self.queues.get_mut(key) {
            let before = q.waiters.len();
            q.waiters.retain(|&w| w != waiter);
            let removed = q.waiters.len() != before;
            if q.waiters.is_empty() && q.holder.is_none() {
                self.queues.remove(key);
            }
            return removed;
        }
        false
    }

    /// Keys with active queues (for tests/metrics).
    pub fn locked_key_count(&self) -> usize {
        self.queues.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_clock::Timestamp;
    use mr_proto::TxnId;

    fn meta(id: u64, ts: u64) -> TxnMeta {
        TxnMeta::new(TxnId(id), Key::from("a"), Timestamp::new(ts, 0))
    }

    #[test]
    fn fifo_per_key() {
        let mut lt = LockTable::new();
        let k = Key::from("k");
        lt.acquire(&k, meta(1, 10));
        lt.enqueue(&k, 10);
        lt.enqueue(&k, 11);
        lt.enqueue(&k, 12);
        assert_eq!(lt.waiter_count(&k), 3);
        assert_eq!(lt.holder(&k).unwrap().id, TxnId(1));
        assert_eq!(lt.release(&k), vec![10, 11, 12]);
        assert_eq!(lt.waiter_count(&k), 0);
        assert_eq!(lt.locked_key_count(), 0);
    }

    #[test]
    fn keys_are_independent() {
        let mut lt = LockTable::new();
        lt.acquire(&Key::from("a"), meta(1, 10));
        lt.enqueue(&Key::from("a"), 1);
        lt.enqueue(&Key::from("b"), 2);
        assert_eq!(lt.release(&Key::from("a")), vec![1]);
        assert_eq!(lt.waiter_count(&Key::from("b")), 1);
        assert_eq!(lt.total_waiters(), 1);
    }

    #[test]
    fn release_without_waiters_is_empty() {
        let mut lt = LockTable::new();
        assert!(lt.release(&Key::from("x")).is_empty());
    }

    #[test]
    fn cancel_removes_waiter() {
        let mut lt = LockTable::new();
        let k = Key::from("k");
        lt.acquire(&k, meta(1, 5));
        lt.enqueue(&k, 10);
        lt.enqueue(&k, 11);
        assert!(lt.cancel(&k, 10));
        assert!(!lt.cancel(&k, 10));
        assert_eq!(lt.release(&k), vec![11]);
    }

    #[test]
    fn span_lock_scan_finds_first_foreign_holder() {
        let mut lt = LockTable::new();
        lt.acquire(&Key::from("b"), meta(1, 5));
        lt.acquire(&Key::from("d"), meta(2, 7));
        let span = Span::new(Key::from("a"), Key::from("z"));
        // Excluding txn 1: first foreign lock is on "d".
        let (k, h) = lt.first_locked_in_span(&span, Some(TxnId(1))).unwrap();
        assert_eq!(k, &Key::from("d"));
        assert_eq!(h.id, TxnId(2));
        // Excluding nothing: "b" comes first.
        let (k, _) = lt.first_locked_in_span(&span, None).unwrap();
        assert_eq!(k, &Key::from("b"));
        // Disjoint span: nothing.
        assert!(lt
            .first_locked_in_span(&Span::new(Key::from("e"), Key::from("f")), None)
            .is_none());
    }

    #[test]
    fn reacquire_by_same_txn_updates_meta() {
        let mut lt = LockTable::new();
        let k = Key::from("k");
        lt.acquire(&k, meta(1, 5));
        lt.acquire(&k, meta(1, 9));
        assert_eq!(lt.holder(&k).unwrap().write_ts, Timestamp::new(9, 0));
    }
}

//! The fault-injection API: every way a nemesis can hurt the cluster.
//!
//! [`FaultKind`] is the closed vocabulary of injectable faults — node
//! crashes/restarts, zone and region crashes, pairwise region partitions,
//! full region isolation, clock skew, and the closed-timestamp regression
//! used by the invariant-monitor tests. Faults are applied through
//! [`Cluster::inject_fault`] (immediately) or [`Cluster::schedule_fault`]
//! (as a first-class timed event on the simulation calendar), and every
//! injection is recorded in the cluster event log as a `fault_injected`
//! event so `crdb_internal.cluster_events` and the offline history checker
//! can correlate anomalies with the exact fault (and schedule step) that
//! caused them.

use std::fmt;

use mr_proto::RangeId;
use mr_sim::{NodeId, RegionId, SimDuration, ZoneId};

use crate::cluster::Cluster;
use crate::events::EventKind;

/// One injectable fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail-stop one node (its raft log and MVCC state survive restart).
    CrashNode(NodeId),
    /// Crash one node AND drop its volatile state: the memtable, unsynced
    /// WAL tail, lock table, and timestamp cache vanish. Each replica
    /// recovers solely from its durable WAL + SSTs, so a later
    /// `RestartNode` resumes from exactly what was fsynced.
    CrashNodeVolatile(NodeId),
    /// [`FaultKind::CrashNodeVolatile`] for every node in a region.
    CrashRegionVolatile(RegionId),
    /// Bring a crashed node back.
    RestartNode(NodeId),
    /// Crash every node in one availability zone.
    CrashZone(ZoneId),
    /// Restart every node in one availability zone.
    RestartZone(ZoneId),
    /// Crash every node in a region (the paper's full-region failure).
    CrashRegion(RegionId),
    /// Restart every node in a region.
    RestartRegion(RegionId),
    /// Sever the links between two regions (both directions).
    PartitionRegions(RegionId, RegionId),
    /// Heal one pairwise region partition.
    HealPartition(RegionId, RegionId),
    /// Cut a region off from every other region; intra-region links stay
    /// up, so local follower reads keep working.
    IsolateRegion(RegionId),
    /// Undo a region isolation.
    RejoinRegion(RegionId),
    /// Set one node's physical-clock skew (must stay within `max_offset`
    /// for the cluster to be within spec; the nemesis may exceed it to
    /// probe the monitors).
    SkewClock { node: NodeId, skew_nanos: i64 },
    /// Forcibly regress the closed-timestamp frontier of one replica. The
    /// `closed_ts_monotonic` monitor must flag this at the next scrape.
    RegressClosedTs {
        range: RangeId,
        node: NodeId,
        delta: SimDuration,
    },
    /// Heal every partition and isolation and restart every crashed node.
    /// Clock skews are left as-is (skew is not a network fault).
    HealAll,
    /// Force a range split at `key` (admin split; the nemesis racing the
    /// topology against transactions). A no-op when the key's range cannot
    /// split there (boundary key, range unknown, leaseholder unreachable) —
    /// random schedules must stay valid whatever the current tiling is.
    SplitAt(mr_proto::Key),
    /// Force the range containing `key` to merge with its right-hand
    /// neighbor. Same no-op semantics as `SplitAt` when preconditions
    /// (adjacency, same zone config, live leaseholders) don't hold.
    MergeAt(mr_proto::Key),
}

impl FaultKind {
    /// The range the fault concerns, if any.
    pub fn range(&self) -> Option<RangeId> {
        match self {
            FaultKind::RegressClosedTs { range, .. } => Some(*range),
            _ => None,
        }
    }

    /// Whether the fault disrupts the cluster (vs. healing it). Setting a
    /// clock skew of zero counts as a heal: it restores the node to spec.
    pub fn is_heal(&self) -> bool {
        matches!(
            self,
            FaultKind::RestartNode(_)
                | FaultKind::RestartZone(_)
                | FaultKind::RestartRegion(_)
                | FaultKind::HealPartition(..)
                | FaultKind::RejoinRegion(_)
                | FaultKind::SkewClock { skew_nanos: 0, .. }
                | FaultKind::HealAll
        )
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::CrashNode(n) => write!(f, "crash {n}"),
            FaultKind::CrashNodeVolatile(n) => write!(f, "crash {n} (drop volatile)"),
            FaultKind::CrashRegionVolatile(r) => {
                write!(f, "crash region {r} (drop volatile)")
            }
            FaultKind::RestartNode(n) => write!(f, "restart {n}"),
            FaultKind::CrashZone(z) => write!(f, "crash zone {z}"),
            FaultKind::RestartZone(z) => write!(f, "restart zone {z}"),
            FaultKind::CrashRegion(r) => write!(f, "crash region {r}"),
            FaultKind::RestartRegion(r) => write!(f, "restart region {r}"),
            FaultKind::PartitionRegions(a, b) => write!(f, "partition {a} <-> {b}"),
            FaultKind::HealPartition(a, b) => write!(f, "heal partition {a} <-> {b}"),
            FaultKind::IsolateRegion(r) => write!(f, "isolate region {r}"),
            FaultKind::RejoinRegion(r) => write!(f, "rejoin region {r}"),
            FaultKind::SkewClock { node, skew_nanos } => {
                write!(f, "skew clock {node} by {skew_nanos}ns")
            }
            FaultKind::RegressClosedTs { range, node, delta } => {
                write!(f, "regress closed ts of {range} at {node} by {delta}")
            }
            FaultKind::HealAll => write!(f, "heal all"),
            FaultKind::SplitAt(key) => write!(f, "split at {key:?}"),
            FaultKind::MergeAt(key) => write!(f, "merge at {key:?}"),
        }
    }
}

impl Cluster {
    /// Apply `fault` right now and record it in the event log. `step` tags
    /// the event with the injecting schedule's step index, so checker
    /// violations can name the exact fault that preceded them.
    pub fn inject_fault(&mut self, fault: &FaultKind, step: Option<u32>) {
        match fault {
            FaultKind::CrashNode(n) => self.fail_node(*n),
            FaultKind::CrashNodeVolatile(n) => self.crash_node_volatile(*n),
            FaultKind::CrashRegionVolatile(r) => self.crash_region_volatile(*r),
            FaultKind::RestartNode(n) => self.revive_node(*n),
            FaultKind::CrashZone(z) => {
                self.topo_mut().fail_zone(*z);
                self.mark_orphaned_leases();
            }
            FaultKind::RestartZone(z) => self.topo_mut().revive_zone(*z),
            FaultKind::CrashRegion(r) => {
                self.topo_mut().fail_region(*r);
                self.mark_orphaned_leases();
            }
            FaultKind::RestartRegion(r) => self.topo_mut().revive_region(*r),
            FaultKind::PartitionRegions(a, b) => self.topo_mut().partition_regions(*a, *b),
            FaultKind::HealPartition(a, b) => self.topo_mut().heal_partition(*a, *b),
            FaultKind::IsolateRegion(r) => self.topo_mut().isolate_region(*r),
            FaultKind::RejoinRegion(r) => self.topo_mut().rejoin_region(*r),
            FaultKind::SkewClock { node, skew_nanos } => {
                self.set_node_skew(*node, *skew_nanos);
            }
            FaultKind::RegressClosedTs { range, node, delta } => {
                self.regress_closed_ts_internal(*range, *node, *delta);
            }
            FaultKind::HealAll => {
                self.topo_mut().heal_all_partitions();
                for n in self.topo_mut().node_ids().collect::<Vec<_>>() {
                    self.revive_node(n);
                }
            }
            FaultKind::SplitAt(key) => {
                self.admin_split_at(key.clone());
            }
            FaultKind::MergeAt(key) => {
                self.admin_merge_at(key.clone());
            }
        }
        let now = self.now();
        self.events.record(
            now,
            EventKind::FaultInjected {
                range: fault.range(),
                step,
                detail: fault.to_string(),
            },
        );
    }

    /// Schedule `fault` to be injected after `delay`, as a first-class
    /// timed event on the simulation calendar.
    pub fn schedule_fault(&mut self, delay: SimDuration, fault: FaultKind, step: Option<u32>) {
        self.schedule(
            delay,
            Box::new(move |c| {
                c.inject_fault(&fault, step);
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_sim::{RttMatrix, SimTime, Topology};

    fn cluster() -> Cluster {
        let topo = Topology::build(
            &RttMatrix::paper_table1_regions()[..3],
            3,
            RttMatrix::uniform(3, SimDuration::from_millis(60)),
        );
        Cluster::new(topo, crate::cluster::ClusterConfig::default())
    }

    #[test]
    fn inject_applies_and_logs() {
        let mut c = cluster();
        c.inject_fault(&FaultKind::CrashNode(NodeId(4)), Some(0));
        assert!(!c.topology().is_node_alive(NodeId(4)));
        c.inject_fault(&FaultKind::IsolateRegion(RegionId(2)), Some(1));
        assert!(!c.topology().reachable(NodeId(0), NodeId(6)));
        c.inject_fault(&FaultKind::HealAll, Some(2));
        assert!(c.topology().is_node_alive(NodeId(4)));
        assert!(c.topology().reachable(NodeId(0), NodeId(6)));
        assert_eq!(c.events.count_kind("fault_injected"), 3);
        let evs = c.events.events();
        assert_eq!(evs[0].kind.detail(), "step 0: crash n4");
        assert_eq!(evs[1].kind.detail(), "step 1: isolate region r2");
    }

    #[test]
    fn scheduled_faults_fire_on_the_calendar() {
        let mut c = cluster();
        c.schedule_fault(
            SimDuration::from_secs(5),
            FaultKind::CrashNode(NodeId(1)),
            None,
        );
        c.schedule_fault(
            SimDuration::from_secs(10),
            FaultKind::RestartNode(NodeId(1)),
            None,
        );
        c.run_until(SimTime(SimDuration::from_secs(6).nanos()));
        assert!(!c.topology().is_node_alive(NodeId(1)));
        c.run_until(SimTime(SimDuration::from_secs(11).nanos()));
        assert!(c.topology().is_node_alive(NodeId(1)));
        assert_eq!(c.events.count_kind("fault_injected"), 2);
    }

    #[test]
    fn fault_display_is_deterministic() {
        let f = FaultKind::RegressClosedTs {
            range: RangeId(3),
            node: NodeId(2),
            delta: SimDuration::from_secs(2),
        };
        assert_eq!(
            f.to_string(),
            "regress closed ts of rng3 at n2 by 2000.000ms"
        );
        assert!(!f.is_heal());
        assert!(FaultKind::HealAll.is_heal());
        assert_eq!(f.range(), Some(RangeId(3)));
        let s = FaultKind::SplitAt(mr_proto::Key::from("rs/k1"));
        assert_eq!(s.to_string(), "split at /rs/k1");
        assert!(!s.is_heal());
        let m = FaultKind::MergeAt(mr_proto::Key::from("zs/k1"));
        assert_eq!(m.to_string(), "merge at /zs/k1");
        assert!(!m.is_heal());
    }
}

//! The simulated cluster: nodes, transport, event dispatch, and admin
//! operations.
//!
//! A [`Cluster`] owns the event calendar, the network topology, every node
//! (HLC + replicas), the range registry, and the gateway-side state of open
//! transactions. All asynchrony is continuation-passing: an RPC carries a
//! boxed continuation that fires when the response (or a timeout) arrives.
//!
//! Periodic machinery:
//! * **Raft ticks** drive heartbeats and elections (failure recovery).
//! * The **closed-timestamp side transport** (§5.1.1) batches per-node
//!   closed-timestamp updates from leaseholders to followers so idle ranges
//!   keep advancing; GLOBAL (lead-policy) ranges always participate,
//!   lag-policy ranges participate when stale reads are in use.

use std::collections::HashMap;

use mr_clock::{ClockConfig, Hlc, SkewedClock, Timestamp};
use mr_obs::{Obs, SpanId};
use mr_proto::{Key, KvError, RangeId, Request, Response, Span, TxnId, Value};
use mr_raft::{Peer, RaftConfig, RaftMsg, RaftNode};
use mr_sim::{EventQueue, Link, NodeId, RegionId, SimDuration, SimRng, SimTime, Topology};
use mr_storage::ProtectedTimestamps;

use crate::allocator::{allocate, AllocError};
use crate::attribution::{self, Component, TxnAttrLog};
use crate::closedts::ClosedTsParams;
use crate::events::{EventKind, EventLog};
use crate::metrics::{req_kind_index, rpc_span_name, KvMetrics, MetricsView};
use crate::range::{RangeDescriptor, RangeLineage, RangeRegistry};
use crate::replica::{Batch, CmdOp, Effect, EvalCtx, EvalOutcome, Replica, ReplyPath};
use crate::report::{self, RangeStatus, ReplicationReport};
use crate::txn::TxnState;
use crate::zone::{ClosedTsPolicy, ZoneConfig};

/// Result alias for KV operations.
pub type KvResult<T> = Result<T, KvError>;

/// A continuation fired with an operation's outcome.
pub type Cont<T> = Box<dyn FnOnce(&mut Cluster, T)>;

/// Cluster-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    pub seed: u64,
    pub clock: ClockConfig,
    pub closed_ts: ClosedTsParams,
    /// Amplitude of per-node clock skew: offsets are drawn uniformly from
    /// `[-amplitude, +amplitude]`. Must be ≤ `max_offset / 2` for the
    /// cluster to be within spec.
    pub skew_amplitude: SimDuration,
    pub raft_heartbeat: SimDuration,
    pub raft_election_timeout: SimDuration,
    pub raft_tick_interval: SimDuration,
    pub side_transport_interval: SimDuration,
    /// Also run the side transport for lag-policy (REGIONAL) ranges,
    /// enabling stale follower reads of idle ranges. On by default; turn
    /// off for very large clusters that don't use stale reads.
    pub lag_side_transport: bool,
    /// If set, RPCs that receive no response within this duration fail with
    /// `RangeUnavailable` (the dist-sender then re-routes). `None` disables
    /// timeouts (fine when no failures are injected).
    pub rpc_timeout: Option<SimDuration>,
    /// Ablation (Spanner-style commit wait): hold locks through commit wait
    /// instead of resolving intents concurrently with it (§6.2 contrasts
    /// these; see the `ablation_commit_wait` bench).
    pub commit_wait_holds_locks: bool,
    /// Write pipelining: intent writes are proposed to Raft at statement
    /// time and tracked in flight by the coordinator, so statements return
    /// before replication completes. Off = every Put replicates before its
    /// statement returns (the pre-pipelining 2-RTT ablation baseline).
    pub pipelined_writes: bool,
    /// Parallel commits: commit writes a STAGING transaction record
    /// carrying the in-flight write set concurrently with the last
    /// pipelined intents, and acks the client once all of them succeed —
    /// one consensus round instead of two. Requires `pipelined_writes`.
    pub parallel_commits: bool,
    /// Delay between a leaseholder's first batched Raft proposal and the
    /// broadcast that ships it (group commit). The default of zero still
    /// coalesces proposals arriving at the same sim-instant — a txn's
    /// pipelined intents plus its STAGING record — into one consensus
    /// round, at no added latency.
    pub raft_flush_interval: SimDuration,
    /// Range quiescence: a leader with nothing in flight and fully
    /// caught-up followers stops heartbeating until the next proposal (or
    /// leadership doubt) wakes it. On by default; the `raft_probe` bench
    /// turns it off for the A/B heartbeat-rate comparison.
    pub raft_quiescence: bool,
    /// Print one line per request evaluation (debugging).
    pub trace: bool,
    /// Override the derived closed-timestamp `lead_slack` (ablations).
    pub lead_slack_override: Option<SimDuration>,
    /// MVCC garbage-collection cadence: every `gc_interval`, each range's
    /// GC threshold advances to the minimum of `now - gc.ttl` (the
    /// per-range [`ZoneConfig::gc_ttl`] knob), the closed-timestamp
    /// frontier of its live replicas, and the oldest protected timestamp;
    /// shadowed versions below the threshold are reclaimed at the next
    /// flush/compaction.
    pub gc_interval: SimDuration,
    /// Legacy cluster-wide GC TTL. Superseded by the per-range
    /// [`ZoneConfig::gc_ttl`] zone knob, which is what the GC pass reads;
    /// retained for configs that predate per-range TTLs.
    pub gc_ttl: SimDuration,
    /// Record structured trace spans from construction on (equivalent to
    /// `cluster.obs.tracer.set_enabled(true)` right after `new`).
    pub tracing: bool,
    /// Snapshot every registry instrument into the scrape series on this
    /// sim-time interval (`None` disables periodic scrapes).
    pub obs_scrape_interval: Option<SimDuration>,
    /// Escalate online invariant-monitor violations (closed-timestamp
    /// regressions, follower reads above the closed frontier, short commit
    /// waits, non-conforming placements) to panics. On by default so every
    /// test doubles as an invariant check; fault-injection tests that
    /// deliberately break an invariant turn it off and inspect
    /// `obs.monitors` instead.
    pub strict_monitors: bool,
    /// Dynamic range lifecycle: size/QPS-triggered splits, cold-range
    /// merges, and load-based lease/replica rebalancing. Off by default —
    /// clusters that enable it should also set `rpc_timeout`, because a
    /// split or merge drops uncommitted proposals and parked waiters of the
    /// reshaped ranges (clients recover by timeout + re-route).
    pub lifecycle: LifecycleConfig,
}

/// Trigger thresholds and pacing for the dynamic range lifecycle
/// (splits / merges / load-based rebalancing). See DESIGN.md §13.
#[derive(Clone, Copy, Debug)]
pub struct LifecycleConfig {
    /// Master switch; when false no lifecycle tick is ever scheduled.
    pub enabled: bool,
    /// Interval between lifecycle passes over the registry.
    pub interval: SimDuration,
    /// Split when a range's leaseholder store holds at least this many
    /// distinct keys.
    pub split_size_keys: usize,
    /// Split when a range's decayed QPS (read + write) reaches this many
    /// milli-queries/sec.
    pub split_qps_milli: u64,
    /// Merge a range into its left neighbor when *both* are below this
    /// decayed QPS (and jointly under half the size threshold).
    pub merge_qps_milli: u64,
    /// Hysteresis: a range touched by a split/merge (or an in-flight
    /// proposal) is left alone for this long, so fresh halves aren't
    /// immediately re-merged and vice versa.
    pub cooldown: SimDuration,
    /// Rebalance the lease toward a gateway region only when it generates
    /// at least this share (milli, 0..=1000) of the range's traffic.
    pub rebalance_share_milli: u64,
    /// Ignore ranges below this decayed QPS when rebalancing (noise floor).
    pub rebalance_min_qps_milli: u64,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        LifecycleConfig {
            enabled: false,
            interval: SimDuration::from_secs(2),
            split_size_keys: 512,
            split_qps_milli: 200_000,
            merge_qps_milli: 2_000,
            cooldown: SimDuration::from_secs(10),
            rebalance_share_milli: 600,
            rebalance_min_qps_milli: 10_000,
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        let clock = ClockConfig::default();
        ClusterConfig {
            seed: 0,
            clock,
            closed_ts: ClosedTsParams {
                max_clock_offset: clock.max_offset,
                ..ClosedTsParams::default()
            },
            skew_amplitude: SimDuration(clock.max_offset.nanos() / 4),
            raft_heartbeat: SimDuration::from_millis(500),
            raft_election_timeout: SimDuration::from_millis(2_000),
            raft_tick_interval: SimDuration::from_millis(250),
            side_transport_interval: SimDuration::from_millis(50),
            lag_side_transport: true,
            rpc_timeout: None,
            commit_wait_holds_locks: false,
            pipelined_writes: true,
            parallel_commits: true,
            raft_flush_interval: SimDuration::ZERO,
            raft_quiescence: true,
            trace: std::env::var("MR_TRACE").is_ok(),
            lead_slack_override: None,
            gc_interval: SimDuration::from_secs(60),
            gc_ttl: SimDuration::from_secs(30),
            tracing: false,
            obs_scrape_interval: Some(SimDuration::from_secs(1)),
            strict_monitors: true,
            lifecycle: LifecycleConfig::default(),
        }
    }
}

impl ClusterConfig {
    /// Set `max_clock_offset`, keeping the derived fields consistent.
    pub fn with_max_offset(mut self, offset: SimDuration) -> Self {
        self.clock = ClockConfig::new(offset);
        self.closed_ts.max_clock_offset = offset;
        self.skew_amplitude = SimDuration(offset.nanos() / 4);
        self
    }
}

/// Staleness mode for non-transactional reads (§5.3).
#[derive(Clone, Copy, Debug)]
pub enum Staleness {
    /// A fresh, linearizable read at the gateway's current timestamp.
    Fresh,
    /// Exact-staleness: read at `now - ago`.
    ExactAgo(SimDuration),
    /// Exact-staleness at an absolute timestamp.
    ExactAt(Timestamp),
    /// Bounded staleness via `with_max_staleness(bound)`: negotiate the
    /// freshest locally-servable timestamp, no older than `now - bound`.
    BoundedMaxStaleness(SimDuration),
    /// Bounded staleness via `with_min_timestamp(ts)`: negotiate the
    /// freshest locally-servable timestamp, no older than `ts`.
    BoundedMinTimestamp(Timestamp),
}

/// Options for non-transactional reads.
#[derive(Clone, Copy, Debug)]
pub struct ReadOptions {
    pub staleness: Staleness,
    /// For bounded staleness: fall back to the leaseholder when the bound
    /// cannot be served locally (vs. returning an error).
    pub fallback_to_leaseholder: bool,
}

impl Default for ReadOptions {
    fn default() -> Self {
        ReadOptions {
            staleness: Staleness::Fresh,
            fallback_to_leaseholder: true,
        }
    }
}

/// One simulated node: clock + replicas.
pub struct Node {
    pub id: NodeId,
    pub hlc: Hlc,
    pub replicas: HashMap<RangeId, Replica>,
}

/// Events on the simulation calendar.
enum Event {
    Rpc {
        from: NodeId,
        to: NodeId,
        env: Envelope,
    },
    Raft {
        to_node: NodeId,
        range: RangeId,
        gen: u32,
        from_peer: Peer,
        msg: RaftMsg<Batch>,
    },
    RaftTick,
    /// Ship one replica's batched Raft proposals (group-commit flush).
    RaftFlush {
        node: NodeId,
        range: RangeId,
    },
    SideTransport,
    GcTick,
    /// Periodic WAL fsync pass, scheduled only while the feature-gated
    /// `wal_skip_fsync_bug` is armed: with per-apply syncs deferred, this
    /// tick is the *only* fsync point, opening a window where acked writes
    /// are volatile.
    WalSyncTick,
    SideTransportDeliver {
        to: NodeId,
        updates: Vec<(RangeId, Timestamp, u64)>,
    },
    Wake(u64),
    RpcTimeout {
        req_id: u64,
    },
    /// Periodic observability scrape: refresh derived gauges and snapshot
    /// the registry into the scrape series.
    ObsScrape,
    /// Periodic range-lifecycle pass: split/merge triggers and one
    /// load-based rebalance step (scheduled only when
    /// `cfg.lifecycle.enabled`).
    LifecycleTick,
}

struct Envelope {
    req_id: u64,
    hlc_ts: Timestamp,
    body: Body,
}

enum Body {
    Req { range: RangeId, req: Request },
    Resp(KvResult<Response>),
}

struct PendingRpc {
    cont: Cont<KvResult<Response>>,
    /// The RPC's trace span, finished when the response/timeout arrives.
    /// Server-side evaluation attaches events to it via the request id.
    span: Option<SpanId>,
}

/// Attribution context of one in-flight RPC: the transaction it serves and
/// the latency component its round trip charges (if any), plus any time the
/// request spent parked behind a conflicting intent at the server. Also
/// feeds per-range latency regardless of transaction ownership.
struct ReqAttr {
    txn: Option<(TxnId, Component)>,
    sent_at: SimTime,
    range: RangeId,
    /// Set while the request sits in a lock wait-queue at the leaseholder.
    parked_at: Option<SimTime>,
    /// Completed lock-wait time within this round trip.
    parked_nanos: u64,
}

/// One in-flight transaction, as surfaced by [`Cluster::active_txns`].
#[derive(Clone, Debug)]
pub struct ActiveTxn {
    pub id: u64,
    pub gateway: NodeId,
    /// When the transaction opened (sim-time).
    pub start: SimTime,
    /// Its root trace span (`None` with tracing off).
    pub span: Option<SpanId>,
    /// Distinct ranges touched so far, sorted ascending.
    pub ranges: Vec<u64>,
}

/// Storage-engine/GC introspection of one range's leaseholder replica (see
/// [`Cluster::storage_info_of`]).
#[derive(Clone, Copy, Debug)]
pub struct RangeStorageInfo {
    /// The range's `gc.ttl` zone knob.
    pub gc_ttl: SimDuration,
    /// MVCC GC threshold: reads below this fail, history below is
    /// reclaimable.
    pub gc_threshold: Timestamp,
    pub memtable_versions: usize,
    pub sst_runs: usize,
    pub sst_versions: usize,
    pub wal_bytes: usize,
    pub wal_records: u64,
}

/// The simulated multi-region cluster.
pub struct Cluster {
    pub cfg: ClusterConfig,
    /// Observability bundle: metrics registry, tracer, scrape series,
    /// invariant monitors.
    pub obs: Obs,
    /// Append-only admin-plane event log (range lifecycle, lease transfers,
    /// row rehoming) backing `crdb_internal.cluster_events`.
    pub events: EventLog,
    /// Pre-bound instrument handles (hot-path increments).
    pub(crate) m: KvMetrics,
    /// Ambient trace parent: the span under which synchronously-entered
    /// client operations (txn begin, stale reads) open their spans. The SQL
    /// layer points this at the current statement's span.
    pub trace_parent: Option<SpanId>,
    /// Root span of the most recently *finished* SQL statement (set by the
    /// SQL layer), backing `crdb_internal.session_trace`.
    pub last_stmt_span: Option<SpanId>,
    queue: EventQueue<Event>,
    topo: Topology,
    rng: SimRng,
    nodes: Vec<Node>,
    registry: RangeRegistry,
    /// Reconfiguration generation per range (guards stale raft traffic).
    range_gens: HashMap<RangeId, u32>,
    pending: HashMap<u64, PendingRpc>,
    /// Attribution side-state for in-flight RPCs, keyed like `pending`.
    req_attr: HashMap<u64, ReqAttr>,
    /// Latency breakdowns of finished transactions, backing
    /// `crdb_internal.slow_txns` and the bench attribution export.
    pub attr_log: TxnAttrLog,
    wakes: HashMap<u64, Box<dyn FnOnce(&mut Cluster)>>,
    pub(crate) txns: HashMap<TxnId, TxnState>,
    next_req: u64,
    next_wake: u64,
    pub(crate) next_txn: u64,
    /// Client operations in flight (used by `run_until_quiescent`).
    outstanding_ops: usize,
    /// Active txn-record pushers, keyed by the blocked (range, key).
    pub(crate) active_pushers: std::collections::HashSet<(RangeId, Key)>,
    /// Last closed timestamp observed per replica by the scrape-time
    /// monotonicity monitor.
    monitor_closed: HashMap<(RangeId, NodeId), u64>,
    /// Whether the feature-gated follower-read bug is armed (see
    /// `arm_stale_read_bug`). Always false in normal builds.
    stale_read_bug: bool,
    /// Whether the feature-gated premature-ack bug is armed (see
    /// `arm_premature_ack_bug`). Always false in normal builds.
    pub(crate) premature_ack_bug: bool,
    /// Ranges whose recorded leaseholder crashed while holding the lease.
    /// An orphaned lease may be usurped by the next Raft leader even after
    /// the old holder restarts: the registry still names the old node, but
    /// a revived whole-region group can elect a *different* leader, and
    /// without this mark the alive-and-reachable guard in
    /// `maybe_claim_lease` would leave the lease pointing at a Raft
    /// follower forever (every proposal stalls, the range never recovers).
    orphaned_leases: std::collections::HashSet<RangeId>,
    /// Highest applied `ClaimLease` log index per range (all replicas of a
    /// range apply the same claim entry; only the first application moves
    /// the lease).
    lease_claims: HashMap<RangeId, u64>,
    /// Lifecycle lineage per range id (boot/split/merge origin, rebalance
    /// counters) — the `crdb_internal.ranges` lineage columns. Entries for
    /// retired ids (merged away) are kept as history.
    lineage: HashMap<RangeId, RangeLineage>,
    /// Last lifecycle action (proposal or application) touching a range;
    /// drives the split/merge cooldown hysteresis.
    last_lifecycle: HashMap<RangeId, SimTime>,
    /// Ranges whose lease was recently moved by the *load-based*
    /// rebalancer, possibly outside the configured preference. The
    /// replication report grants these a grace window (one cooldown) before
    /// flagging `WrongLeaseholder` — the next rebalance tick either keeps
    /// the move (still hot) or re-homes the lease.
    lease_rebalanced: HashMap<RangeId, SimTime>,
    /// Proposal time of an in-flight split, keyed by the parent range.
    split_pending: HashMap<RangeId, SimTime>,
    /// Propose→apply latency of every completed split, in order (nanos).
    split_latencies: Vec<u64>,
    /// When the lifecycle last split, merged, or rebalanced anything
    /// (convergence detection for benches).
    last_lifecycle_action: Option<SimTime>,
    /// Whether the feature-gated split-tscache bug is armed (see
    /// `arm_split_tscache_bug`). Always false in normal builds.
    split_tscache_bug: bool,
    /// Active protected timestamps (AOST/backup pins): per-range GC
    /// thresholds never advance past the oldest active protection.
    protected: ProtectedTimestamps,
    /// Whether the feature-gated WAL fsync-skip bug is armed (see
    /// `arm_wal_skip_fsync_bug`). Always false in normal builds.
    wal_skip_fsync_bug: bool,
}

impl Cluster {
    pub fn new(topo: Topology, mut cfg: ClusterConfig) -> Cluster {
        // A closed-timestamp promise must stay ahead of reader uncertainty
        // limits until the next side-transport publication lands: cover the
        // publication interval, twice the skew amplitude (gateway ahead,
        // leaseholder behind), and a fixed margin for delivery jitter.
        cfg.closed_ts.lead_slack = cfg.lead_slack_override.unwrap_or(
            cfg.side_transport_interval
                + SimDuration(2 * cfg.skew_amplitude.nanos())
                + SimDuration::from_millis(25),
        );
        let mut rng = SimRng::seed_from_u64(cfg.seed);
        let amp = cfg.skew_amplitude.nanos() as i64;
        let nodes = topo
            .node_ids()
            .map(|id| {
                let skew = if amp == 0 {
                    0
                } else {
                    rng.next_below(2 * amp as u64 + 1) as i64 - amp
                };
                Node {
                    id,
                    hlc: Hlc::new(SkewedClock::new(skew)),
                    replicas: HashMap::new(),
                }
            })
            .collect();
        let obs = Obs::new();
        if cfg.tracing {
            obs.tracer.set_enabled(true);
        }
        obs.monitors.set_strict(cfg.strict_monitors);
        let m = KvMetrics::bind(&obs.registry);
        let mut c = Cluster {
            cfg,
            obs,
            events: EventLog::new(),
            m,
            trace_parent: None,
            last_stmt_span: None,
            queue: EventQueue::new(),
            topo,
            rng,
            nodes,
            registry: RangeRegistry::new(),
            range_gens: HashMap::new(),
            pending: HashMap::new(),
            req_attr: HashMap::new(),
            attr_log: TxnAttrLog::new(),
            wakes: HashMap::new(),
            txns: HashMap::new(),
            next_req: 1,
            next_wake: 1,
            next_txn: 1,
            outstanding_ops: 0,
            active_pushers: std::collections::HashSet::new(),
            monitor_closed: HashMap::new(),
            stale_read_bug: false,
            premature_ack_bug: false,
            orphaned_leases: std::collections::HashSet::new(),
            lease_claims: HashMap::new(),
            lineage: HashMap::new(),
            last_lifecycle: HashMap::new(),
            lease_rebalanced: HashMap::new(),
            split_pending: HashMap::new(),
            split_latencies: Vec::new(),
            last_lifecycle_action: None,
            split_tscache_bug: false,
            protected: ProtectedTimestamps::new(),
            wal_skip_fsync_bug: false,
        };
        c.queue.schedule(cfg.raft_tick_interval, Event::RaftTick);
        c.queue
            .schedule(cfg.side_transport_interval, Event::SideTransport);
        c.queue.schedule(cfg.gc_interval, Event::GcTick);
        if let Some(interval) = cfg.obs_scrape_interval {
            c.queue.schedule(interval, Event::ObsScrape);
        }
        if cfg.lifecycle.enabled {
            c.queue
                .schedule(cfg.lifecycle.interval, Event::LifecycleTick);
        }
        c
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Mutable topology access for the fault-injection API (`fault.rs`).
    pub(crate) fn topo_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }

    pub fn registry(&self) -> &RangeRegistry {
        &self.registry
    }

    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Point-in-time copy of the KV counters (tests, harnesses). Richer
    /// queries — labels, histograms, dumps — go through `obs.registry`.
    pub fn metrics(&self) -> MetricsView {
        self.m.view()
    }

    /// In-flight (unfinished) transactions, sorted by id — the live
    /// registry behind `crdb_internal.active_operations`.
    pub fn active_txns(&self) -> Vec<ActiveTxn> {
        let mut out: Vec<ActiveTxn> = self
            .txns
            .values()
            .filter(|st| !st.finished)
            .map(|st| ActiveTxn {
                id: st.id.0,
                gateway: st.gateway,
                start: st.attr.start(),
                span: st.span,
                ranges: st.ranges.clone(),
            })
            .collect();
        out.sort_by_key(|t| t.id);
        out
    }

    /// Replication conformance report over every range, classified against
    /// its own zone config at the current sim-time. Ranges whose lease was
    /// moved by the load-based rebalancer within the lifecycle cooldown get
    /// a `WrongLeaseholder` grace window: the next rebalance tick either
    /// confirms the move (still hot) or re-homes the lease, so a transient
    /// load-following transfer is not reported as a violation.
    pub fn replication_report(&self) -> ReplicationReport {
        ReplicationReport::build_with_grace(
            self.queue.now(),
            &self.registry,
            &self.topo,
            &self.lease_rebalanced,
            self.cfg.lifecycle.cooldown,
        )
    }

    /// Lifecycle lineage of a range (split/merge origin, rebalance
    /// counters). `None` for ids never seen by the admin plane.
    pub fn lineage_of(&self, id: RangeId) -> Option<&RangeLineage> {
        self.lineage.get(&id)
    }

    /// Propose→apply latency of every completed split so far, in
    /// application order (nanoseconds).
    pub fn split_latencies(&self) -> &[u64] {
        &self.split_latencies
    }

    /// When the lifecycle last split, merged, or rebalanced anything.
    pub fn last_lifecycle_action(&self) -> Option<SimTime> {
        self.last_lifecycle_action
    }

    /// Invariant check after (re)placement: the allocator must never emit a
    /// placement that violates per-region constraints or puts the
    /// leaseholder outside the preferred regions. (Falling short of
    /// `num_replicas` is legal in clusters too small for the leftover
    /// stage, so under-replication is not checked here.)
    fn monitor_placement(&self, id: RangeId) {
        let Some(desc) = self.registry.get(id) else {
            return;
        };
        let c = report::classify(desc, &self.topo);
        let ok = !c.has(RangeStatus::ViolatingConstraints) && !c.has(RangeStatus::WrongLeaseholder);
        self.obs.monitors.check(
            &self.obs.registry,
            "placement_conformance",
            self.queue.now(),
            ok,
            || format!("range {id}: {}", c.detail()),
        );
    }

    /// The region name of a node's locality.
    pub fn region_name_of(&self, n: NodeId) -> &str {
        self.topo.region_name(self.topo.region_of(n))
    }

    /// The gateway's current HLC reading.
    pub fn hlc_now(&mut self, node: NodeId) -> Timestamp {
        let now = self.queue.now();
        self.nodes[node.0 as usize].hlc.now(now)
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0 as usize]
    }

    /// Override a node's clock skew (clock-misbehaviour tests, §6.2.3).
    pub fn set_node_skew(&mut self, node: NodeId, skew_nanos: i64) {
        self.nodes[node.0 as usize].hlc.set_skew_nanos(skew_nanos);
    }

    // ------------------------------------------------------------------
    // Failure injection
    // ------------------------------------------------------------------

    pub fn fail_node(&mut self, n: NodeId) {
        self.topo.fail_node(n);
        self.mark_orphaned_leases();
    }

    pub fn revive_node(&mut self, n: NodeId) {
        self.topo.revive_node(n);
    }

    /// Crash `n` AND drop its volatile state: each replica recovers right
    /// away from its durable WAL + SSTs (see [`Replica::crash_volatile`]),
    /// so a later [`Cluster::revive_node`] resumes from exactly what was
    /// fsynced before the crash.
    pub fn crash_node_volatile(&mut self, n: NodeId) {
        self.fail_node(n);
        self.recover_node_volatile(n);
    }

    /// [`Cluster::crash_node_volatile`] for every node in a region.
    pub fn crash_region_volatile(&mut self, r: RegionId) {
        let nodes = self.topo.all_nodes_in_region(r);
        self.topo.fail_region(r);
        self.mark_orphaned_leases();
        for n in nodes {
            self.recover_node_volatile(n);
        }
    }

    /// Replay every replica of `n` from durable state. The Raft log
    /// truncates to its fsynced horizon only under the armed fsync-skip
    /// bug — a correct node syncs its log at append time, so nothing is
    /// ever above the horizon.
    fn recover_node_volatile(&mut self, n: NodeId) {
        let now = self.queue.now();
        let params = self.cfg.closed_ts;
        let max_off = self.cfg.clock.max_offset;
        let drop_log = self.wal_skip_fsync_bug;
        let hlc_now = self.nodes[n.0 as usize].hlc.now(now);
        // Past any read or promise the old incarnation could have served:
        // its own uncertainty bound, forwarded to the closed-timestamp
        // policy target (lead ranges promise future timestamps).
        let bound = hlc_now.add_duration(max_off);
        let mut recovered: Vec<(RangeId, u64, u64)> = Vec::new();
        {
            let node = &mut self.nodes[n.0 as usize];
            let mut rids: Vec<RangeId> = node.replicas.keys().copied().collect();
            rids.sort_unstable();
            for rid in rids {
                let rep = node.replicas.get_mut(&rid).unwrap();
                let conservative = bound.forward(params.target(rep.policy, bound));
                let info = rep.crash_volatile(conservative, drop_log);
                recovered.push((rid, info.replayed_records, info.applied_index));
            }
        }
        for (range, replayed, applied_index) in recovered {
            // The recovered closed frontier comes from the last durable
            // entry record — legitimately below side-transport promises the
            // old incarnation observed. Reset the monotonicity monitor's
            // baseline for the new incarnation.
            self.monitor_closed.remove(&(range, n));
            self.events.record(
                now,
                EventKind::WalRecovered {
                    range,
                    node: n,
                    replayed,
                    applied_index,
                },
            );
        }
    }

    /// Pin `ts` against garbage collection cluster-wide: per-range GC
    /// thresholds will not pass it until the returned handle is
    /// [released](Cluster::release_protected_timestamp). Backs AOST reads
    /// and backups that must reach arbitrarily far back.
    pub fn protect_timestamp(&mut self, ts: Timestamp) -> u64 {
        self.protected.protect(ts)
    }

    /// Release a protected-timestamp pin. Idempotent.
    pub fn release_protected_timestamp(&mut self, id: u64) -> bool {
        self.protected.release(id)
    }

    /// Active protected-timestamp pins.
    pub fn protected_timestamp_count(&self) -> usize {
        self.protected.len()
    }

    /// Storage/GC introspection of one range, read from its leaseholder
    /// replica. Backs the `crdb_internal.ranges` gc/storage columns.
    pub fn storage_info_of(&self, range: RangeId) -> Option<RangeStorageInfo> {
        let desc = self.registry.get(range)?;
        let rep = self.nodes[desc.leaseholder.0 as usize]
            .replicas
            .get(&range)?;
        Some(RangeStorageInfo {
            gc_ttl: desc.zone_config.gc_ttl,
            gc_threshold: rep.store.gc_threshold(),
            memtable_versions: rep.store.mem_version_count(),
            sst_runs: rep.store.sst_count(),
            sst_versions: rep.store.sst_version_count(),
            wal_bytes: rep.store.wal_bytes(),
            wal_records: rep.store.wal_record_count(),
        })
    }

    pub fn fail_region_by_name(&mut self, name: &str) {
        let r = self
            .topo
            .region_by_name(name)
            .unwrap_or_else(|| panic!("unknown region {name}"));
        self.topo.fail_region(r);
        self.mark_orphaned_leases();
    }

    pub fn revive_region_by_name(&mut self, name: &str) {
        let r = self
            .topo
            .region_by_name(name)
            .unwrap_or_else(|| panic!("unknown region {name}"));
        self.topo.revive_region(r);
    }

    pub fn fail_zone_of(&mut self, n: NodeId) {
        let z = self.topo.zone_of(n);
        self.topo.fail_zone(z);
        self.mark_orphaned_leases();
    }

    /// Record every range whose current leaseholder is dead. Called after
    /// each crash-style fault: a lease held by a crashed node stays
    /// usurpable (see `maybe_claim_lease`) until a new leaseholder is
    /// established, even if the old holder is revived in the meantime.
    pub(crate) fn mark_orphaned_leases(&mut self) {
        let dead: Vec<RangeId> = self
            .registry
            .iter()
            .filter(|d| !self.topo.is_node_alive(d.leaseholder))
            .map(|d| d.id)
            .collect();
        self.orphaned_leases.extend(dead);
    }

    /// Fault injection for the invariant monitors: forcibly regress the
    /// closed-timestamp frontier of one replica. The `closed_ts_monotonic`
    /// monitor must flag this at the next observability scrape.
    ///
    /// Thin wrapper over the fault-injection API so callers get the
    /// `fault_injected` event for free; prefer
    /// [`Cluster::inject_fault`] with [`crate::fault::FaultKind::RegressClosedTs`].
    pub fn fault_regress_closed_ts(&mut self, range: RangeId, node: NodeId, delta: SimDuration) {
        self.inject_fault(
            &crate::fault::FaultKind::RegressClosedTs { range, node, delta },
            None,
        );
    }

    /// The regression itself, shared by the fault-injection API.
    pub(crate) fn regress_closed_ts_internal(
        &mut self,
        range: RangeId,
        node: NodeId,
        delta: SimDuration,
    ) {
        let rep = self.nodes[node.0 as usize]
            .replicas
            .get_mut(&range)
            .unwrap_or_else(|| panic!("no replica of {range} on {node}"));
        rep.tracker.fault_regress(delta.nanos());
    }

    /// Arm the intentionally injected follower-read bug: followers serve
    /// reads even when their closed frontier has not reached the read's
    /// uncertainty limit, so lagging or partitioned followers return stale
    /// data for reads that claim freshness. Exists solely to prove the
    /// chaos history checker catches real consistency violations.
    #[cfg(feature = "chaos-bug-stale-read")]
    pub fn arm_stale_read_bug(&mut self) {
        self.stale_read_bug = true;
    }

    /// Arm the intentionally injected parallel-commit bug: the coordinator
    /// acknowledges a commit as soon as the STAGING record is written,
    /// without waiting for the in-flight pipelined writes to replicate, so
    /// a crash in the wrong moment loses acknowledged writes. Exists solely
    /// to prove the chaos history checker catches a premature ack.
    #[cfg(feature = "chaos-bug-premature-ack")]
    pub fn arm_premature_ack_bug(&mut self) {
        self.premature_ack_bug = true;
    }

    /// Arm the intentionally injected split bug: a range split installs the
    /// RHS half *without* carrying over the parent's timestamp-cache bound,
    /// so a write racing the split can commit below a timestamp the parent
    /// range already served a read at. Exists solely to prove the chaos
    /// history checker catches a split that loses replicated read state.
    #[cfg(feature = "chaos-bug-split-tscache")]
    pub fn arm_split_tscache_bug(&mut self) {
        self.split_tscache_bug = true;
    }

    /// Arm the intentionally injected durability bug: per-apply WAL fsyncs
    /// and Raft-log syncs are deferred, and a periodic [`Event::WalSyncTick`]
    /// becomes the *only* fsync point. A volatile crash between ticks loses
    /// writes the cluster already acknowledged. Exists solely to prove the
    /// chaos history checker catches a node that acks before its WAL fsync
    /// point.
    #[cfg(feature = "chaos-bug-wal-skip-fsync")]
    pub fn arm_wal_skip_fsync_bug(&mut self) {
        self.wal_skip_fsync_bug = true;
        for node in &mut self.nodes {
            for rep in node.replicas.values_mut() {
                rep.store.defer_sync = true;
                rep.raft.set_defer_log_sync(true);
            }
        }
        self.queue
            .schedule(SimDuration::from_secs(3), Event::WalSyncTick);
    }

    // ------------------------------------------------------------------
    // Admin: ranges
    // ------------------------------------------------------------------

    /// Create a range covering `span`, placing replicas per `zone_config`.
    pub fn create_range(
        &mut self,
        span: Span,
        zone_config: ZoneConfig,
    ) -> Result<RangeId, AllocError> {
        let out = allocate(&self.topo, &zone_config)?;
        let id = self.registry.next_range_id();
        self.install_range(id, span, zone_config, &out.replicas, out.leaseholder, None);
        self.lineage
            .insert(id, RangeLineage::boot(self.queue.now()));
        self.events.record(
            self.queue.now(),
            EventKind::RangeCreated {
                range: id,
                leaseholder: out.leaseholder,
            },
        );
        self.monitor_placement(id);
        Ok(id)
    }

    fn install_range(
        &mut self,
        id: RangeId,
        span: Span,
        zone_config: ZoneConfig,
        replicas: &[crate::allocator::Placement],
        leaseholder: NodeId,
        seed_state: Option<SeedState>,
    ) {
        let now = self.queue.now();
        let peer_nodes: Vec<NodeId> = replicas.iter().map(|p| p.node).collect();
        let voters: Vec<Peer> = replicas
            .iter()
            .enumerate()
            .filter(|(_, p)| p.voting)
            .map(|(i, _)| i as Peer)
            .collect();
        let learners: Vec<Peer> = replicas
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.voting)
            .map(|(i, _)| i as Peer)
            .collect();
        let policy = zone_config.closed_ts_policy;
        for (i, p) in replicas.iter().enumerate() {
            let rcfg = RaftConfig {
                id: i as Peer,
                voters: voters.clone(),
                learners: learners.clone(),
                election_timeout: self.cfg.raft_election_timeout,
                heartbeat_interval: self.cfg.raft_heartbeat,
                quiesce: self.cfg.raft_quiescence,
            };
            let mut raft = RaftNode::new(rcfg, now);
            if p.node == leaseholder {
                raft.bootstrap_leader(now);
            }
            let mut rep = Replica::new(id, p.node, i as Peer, peer_nodes.clone(), raft, policy);
            if let Some(seed) = &seed_state {
                rep.store = seed.store.clone();
                rep.txn_records = seed.txn_records.clone();
                rep.tracker = seed.tracker.clone();
                // The cloned engine still carries the previous incarnation's
                // WAL identity (old apply indices); this Raft group restarts
                // log indices from scratch, so re-anchor the engine on a
                // fresh durable checkpoint at applied index 0.
                rep.store.rebaseline(
                    seed.txn_records
                        .iter()
                        .map(|(id, r)| (id.0, r.to_storage())),
                    0,
                    seed.tracker.closed(),
                    now.nanos(),
                );
                if p.node == leaseholder {
                    rep.lease.inherit(seed.promised);
                    rep.tscache.raise_low_water(seed.tscache_low_water);
                }
            }
            if self.wal_skip_fsync_bug {
                rep.store.defer_sync = true;
                rep.raft.set_defer_log_sync(true);
            }
            self.nodes[p.node.0 as usize].replicas.insert(id, rep);
        }
        self.registry.insert(RangeDescriptor {
            id,
            span,
            replicas: replicas.to_vec(),
            leaseholder,
            zone_config,
        });
        *self.range_gens.entry(id).or_insert(0) += 1;
        // The fresh Raft group restarts log indices from scratch, so any
        // per-log-index dedup state from a previous incarnation would
        // wrongly swallow this group's first claims.
        self.lease_claims.remove(&id);
    }

    /// Re-place a range under a new zone configuration (used by `ALTER
    /// TABLE ... SET LOCALITY` and survivability changes). State transfer is
    /// instantaneous — call between workload phases.
    pub fn reconfigure_range(
        &mut self,
        id: RangeId,
        zone_config: ZoneConfig,
    ) -> Result<(), AllocError> {
        let out = allocate(&self.topo, &zone_config)?;
        let desc = self
            .registry
            .remove(id)
            .unwrap_or_else(|| panic!("no such range {id}"));
        // Snapshot authoritative state from the current leaseholder.
        let lh = &self.nodes[desc.leaseholder.0 as usize].replicas[&id];
        let seed = SeedState {
            store: lh.store.clone(),
            txn_records: lh.txn_records.clone(),
            tracker: lh.tracker.clone(),
            promised: lh.lease.promised(),
            tscache_low_water: lh.tscache.low_water(),
        };
        for n in desc.replica_nodes().collect::<Vec<_>>() {
            self.nodes[n.0 as usize].replicas.remove(&id);
        }
        self.install_range(
            id,
            desc.span,
            zone_config,
            &out.replicas,
            out.leaseholder,
            Some(seed),
        );
        // The replica set changed; restart the monotonicity baseline.
        self.monitor_closed.retain(|&(rid, _), _| rid != id);
        self.events.record(
            self.queue.now(),
            EventKind::ZoneConfigChanged {
                range: id,
                leaseholder: out.leaseholder,
            },
        );
        self.monitor_placement(id);
        Ok(())
    }

    /// Move the lease (and Raft leadership) of `range` to `to`, which must
    /// host a voting replica.
    pub fn transfer_lease(&mut self, range: RangeId, to: NodeId) {
        let now = self.queue.now();
        let desc = self.registry.get(range).expect("no such range").clone();
        if desc.leaseholder == to {
            return;
        }
        assert!(
            desc.replicas.iter().any(|p| p.node == to && p.voting),
            "lease target must be a voting replica"
        );
        let old = desc.leaseholder;
        // Snapshot what the new leaseholder must inherit.
        let (promised, old_hlc) = {
            let node = &mut self.nodes[old.0 as usize];
            let hlc_now = node.hlc.now(now);
            let rep = node.replicas.get_mut(&range).expect("leaseholder replica");
            (rep.lease.promised(), hlc_now)
        };
        // Raft leadership transfer.
        let msgs = {
            let rep = self.nodes[old.0 as usize].replicas.get_mut(&range).unwrap();
            let target_peer = rep.peer_for_node(to).expect("target peer");
            rep.raft.transfer_leadership(target_peer)
        };
        self.dispatch_raft_msgs(old, range, msgs);
        // Lease metadata.
        {
            let rep = self.nodes[to.0 as usize]
                .replicas
                .get_mut(&range)
                .expect("target replica");
            rep.lease.inherit(promised);
            rep.tscache
                .raise_low_water(old_hlc.add_duration(self.cfg.clock.max_offset));
        }
        self.registry.get_mut(range).unwrap().leaseholder = to;
        self.orphaned_leases.remove(&range);
        self.m.lease_transfers.inc();
        self.events.record(
            now,
            EventKind::LeaseTransfer {
                range,
                from: old,
                to,
                cooperative: true,
            },
        );
    }

    /// Remove a range entirely (table drop or partition-layout rewrite).
    /// Any in-flight traffic for it is dropped.
    pub fn drop_range(&mut self, id: RangeId) {
        if let Some(desc) = self.registry.remove(id) {
            for n in desc.replica_nodes().collect::<Vec<_>>() {
                self.nodes[n.0 as usize].replicas.remove(&id);
            }
            *self.range_gens.entry(id).or_insert(0) += 1;
            self.monitor_closed.retain(|&(rid, _), _| rid != id);
            self.obs.load.forget_range(id.0);
            self.events
                .record(self.queue.now(), EventKind::RangeDropped { range: id });
        }
    }

    /// Read every live row of a range directly from its leaseholder's
    /// applied state (offline schema changes and DDL validation only).
    pub fn admin_scan_range(&mut self, id: RangeId) -> Vec<(Key, Value)> {
        let Some(desc) = self.registry.get(id) else {
            return Vec::new();
        };
        let (span, lh) = (desc.span.clone(), desc.leaseholder);
        let Some(rep) = self.nodes[lh.0 as usize].replicas.get(&id) else {
            return Vec::new();
        };
        rep.store.scan_latest_including_intents(&span)
    }

    /// Bulk-load a committed value into every replica of the covering
    /// range, bypassing the transaction protocol. For experiment setup only.
    pub fn preload(&mut self, key: Key, value: Value) {
        let ts = Timestamp::new(1, 0);
        let desc = self
            .registry
            .lookup(&key)
            .unwrap_or_else(|| panic!("no range covers {key:?}"))
            .clone();
        for n in desc.replica_nodes() {
            if let Some(rep) = self.nodes[n.0 as usize].replicas.get_mut(&desc.id) {
                rep.store.preload(key.clone(), value.clone(), ts);
            }
        }
    }

    // ------------------------------------------------------------------
    // Admin: range lifecycle (splits, merges, load-based rebalancing)
    // ------------------------------------------------------------------

    /// Force a split of the range containing `key` at exactly `key` (admin
    /// split; also the nemesis entry point). Returns the reserved RHS id if
    /// a split was proposed, `None` when preconditions fail (boundary key,
    /// unknown range, dead or non-leader leaseholder) — a no-op, so random
    /// fault schedules stay valid whatever the current tiling is.
    pub fn admin_split_at(&mut self, key: Key) -> Option<RangeId> {
        let desc = self.registry.lookup(&key)?.clone();
        if key == desc.span.start {
            return None;
        }
        self.propose_split(&desc, key)
    }

    /// Force the range containing `key` to merge with its right-hand
    /// neighbor. Same no-op semantics as [`Cluster::admin_split_at`] when
    /// preconditions (adjacency, identical zone config, live leaseholders)
    /// don't hold. Returns whether a merge was proposed.
    pub fn admin_merge_at(&mut self, key: Key) -> bool {
        let Some(ld) = self.registry.lookup(&key).cloned() else {
            return false;
        };
        if ld.span.end.is_empty() {
            return false; // unbounded span: no right-hand neighbor
        }
        let Some(rd) = self.registry.lookup(&ld.span.end).cloned() else {
            return false;
        };
        if rd.span.start != ld.span.end || rd.zone_config != ld.zone_config {
            return false;
        }
        self.propose_merge(&ld, rd.id)
    }

    /// The node whose replica currently leads `desc`'s Raft group, if any.
    /// Lifecycle commands must be proposed here: after a lease transfer the
    /// leaseholder and the Raft leader can be different replicas, and a
    /// proposal at a non-leader is refused.
    fn raft_leader_of(&self, desc: &RangeDescriptor) -> Option<NodeId> {
        desc.replicas.iter().map(|p| p.node).find(|&n| {
            self.topo.is_node_alive(n)
                && self.nodes[n.0 as usize]
                    .replicas
                    .get(&desc.id)
                    .is_some_and(|r| r.raft.is_leader())
        })
    }

    /// Propose a Raft-replicated `Split` through `desc`'s Raft leader. The
    /// RHS id is reserved *now* (concurrent proposals must not collide);
    /// the descriptor surgery happens when the entry applies
    /// ([`Cluster::apply_split`]), strictly after every command proposed
    /// before it — that log ordering is what makes a transaction straddling
    /// the split find its intents on the correct half.
    fn propose_split(&mut self, desc: &RangeDescriptor, split_key: Key) -> Option<RangeId> {
        let now = self.queue.now();
        // The surgery snapshots the leaseholder replica's state at apply
        // time, so a dead leaseholder means the split cannot complete.
        if !self.topo.is_node_alive(desc.leaseholder) {
            return None;
        }
        let leader = self.raft_leader_of(desc)?;
        let rhs = self.registry.next_range_id();
        let msgs = self.nodes[leader.0 as usize]
            .replicas
            .get_mut(&desc.id)?
            .propose_lifecycle(CmdOp::Split { split_key, rhs }, now)?;
        self.split_pending.insert(desc.id, now);
        self.last_lifecycle.insert(desc.id, now);
        self.dispatch_raft_msgs(leader, desc.id, msgs);
        self.pump_replica(leader, desc.id);
        Some(rhs)
    }

    /// Propose a Raft-replicated `Merge` of `rhs` into `ld` through `ld`'s
    /// Raft leader.
    fn propose_merge(&mut self, ld: &RangeDescriptor, rhs: RangeId) -> bool {
        let now = self.queue.now();
        let Some(rd) = self.registry.get(rhs) else {
            return false;
        };
        if !self.topo.is_node_alive(ld.leaseholder) || !self.topo.is_node_alive(rd.leaseholder) {
            return false;
        }
        let Some(leader) = self.raft_leader_of(ld) else {
            return false;
        };
        let msgs = self.nodes[leader.0 as usize]
            .replicas
            .get_mut(&ld.id)
            .and_then(|rep| rep.propose_lifecycle(CmdOp::Merge { rhs }, now));
        let Some(msgs) = msgs else {
            return false;
        };
        self.last_lifecycle.insert(ld.id, now);
        self.last_lifecycle.insert(rhs, now);
        self.dispatch_raft_msgs(leader, ld.id, msgs);
        self.pump_replica(leader, ld.id);
        true
    }

    /// A replicated `Split` entry applied: divide the parent's descriptor,
    /// MVCC store (intents included), transaction records, closed-timestamp
    /// tracker, and timestamp-cache bound between the two halves, atomically
    /// at one sim-instant. Self-deduplicating: the first application
    /// installs `rhs`, so a re-delivered effect finds it and bails (and the
    /// generation bump kills the old group's remaining Raft traffic).
    fn apply_split(&mut self, lhs: RangeId, split_key: Key, rhs: RangeId, _index: u64) {
        if self.registry.get(rhs).is_some() {
            return;
        }
        let Some(desc) = self.registry.get(lhs).cloned() else {
            return;
        };
        if split_key == desc.span.start || !desc.span.contains(&split_key) {
            return;
        }
        let now = self.queue.now();
        let lh = desc.leaseholder;
        let hlc_now = self.nodes[lh.0 as usize].hlc.now(now);
        let Some(rep) = self.nodes[lh.0 as usize].replicas.get(&lhs) else {
            return;
        };
        // Authoritative applied state from the leaseholder. Log order means
        // every command proposed before the split entry has already been
        // applied to this store — a transaction straddling the split finds
        // its intents (and record) on whichever half each key landed.
        let mut lhs_store = rep.store.clone();
        let txn_records = rep.txn_records.clone();
        let tracker = rep.tracker.clone();
        let promised = rep.lease.promised();
        let low_water = rep.tscache.low_water();
        let rhs_store = lhs_store.split_off(&split_key);
        // Reads the parent served are invisible to the halves' empty
        // timestamp caches, so both must refuse writes below anything the
        // parent could have served: its HLC plus the clock uncertainty
        // window (the same rule as a lease transfer).
        let bound = low_water.max(hlc_now.add_duration(self.cfg.clock.max_offset));
        let rhs_bound = if self.split_tscache_bug {
            // Injected canary: the RHS forgets the parent's read history.
            Timestamp::ZERO
        } else {
            bound
        };
        for n in desc.replica_nodes().collect::<Vec<_>>() {
            self.nodes[n.0 as usize].replicas.remove(&lhs);
        }
        self.registry.remove(lhs);
        let lhs_span = Span::new(desc.span.start.clone(), split_key.clone());
        let rhs_span = Span::new(split_key.clone(), desc.span.end.clone());
        self.install_range(
            lhs,
            lhs_span,
            desc.zone_config.clone(),
            &desc.replicas,
            lh,
            Some(SeedState {
                store: lhs_store,
                txn_records: txn_records.clone(),
                tracker: tracker.clone(),
                promised,
                tscache_low_water: bound,
            }),
        );
        self.install_range(
            rhs,
            rhs_span,
            desc.zone_config.clone(),
            &desc.replicas,
            lh,
            Some(SeedState {
                store: rhs_store,
                txn_records,
                tracker,
                promised,
                tscache_low_water: rhs_bound,
            }),
        );
        self.monitor_closed.retain(|&(rid, _), _| rid != lhs);
        // Both halves restart load accounting: the parent's decayed rates
        // and key samples no longer describe either half alone.
        self.obs.load.forget_range(lhs.0);
        self.last_lifecycle.insert(lhs, now);
        self.last_lifecycle.insert(rhs, now);
        let key_disp = format!("{split_key:?}");
        if let Some(l) = self.lineage.get_mut(&lhs) {
            l.splits += 1;
        }
        self.lineage
            .insert(rhs, RangeLineage::split_child(lhs, key_disp.clone(), now));
        if let Some(t0) = self.split_pending.remove(&lhs) {
            self.split_latencies.push((now - t0).nanos());
        }
        self.last_lifecycle_action = Some(now);
        self.events.record(
            now,
            EventKind::RangeSplit {
                range: lhs,
                rhs,
                split_key: key_disp,
            },
        );
    }

    /// A replicated `Merge` entry applied on the LHS group: absorb the
    /// right-hand neighbor's MVCC store, transaction records, and
    /// timestamp-cache bound, and re-install the union under the LHS id.
    /// Self-deduplicating: the first application removes `rhs` from the
    /// registry, so re-deliveries bail on the lookup.
    fn apply_merge(&mut self, lhs: RangeId, rhs: RangeId, _index: u64) {
        let Some(ld) = self.registry.get(lhs).cloned() else {
            return;
        };
        let Some(rd) = self.registry.get(rhs).cloned() else {
            return;
        };
        if ld.span.end.is_empty()
            || rd.span.start != ld.span.end
            || ld.zone_config != rd.zone_config
        {
            return;
        }
        let now = self.queue.now();
        let lh = ld.leaseholder;
        let off = self.cfg.clock.max_offset;
        let lhs_hlc = self.nodes[lh.0 as usize].hlc.now(now);
        let rhs_hlc = self.nodes[rd.leaseholder.0 as usize].hlc.now(now);
        let Some(lrep) = self.nodes[lh.0 as usize].replicas.get(&lhs) else {
            return;
        };
        let mut store = lrep.store.clone();
        let mut txn_records = lrep.txn_records.clone();
        let ltracker = lrep.tracker.clone();
        let lpromised = lrep.lease.promised();
        let llow = lrep.tscache.low_water();
        let Some(rrep) = self.nodes[rd.leaseholder.0 as usize].replicas.get(&rhs) else {
            return;
        };
        let rstore = rrep.store.clone();
        let rrecords = rrep.txn_records.clone();
        let rtracker = rrep.tracker.clone();
        let rpromised = rrep.lease.promised();
        let rlow = rrep.tscache.low_water();
        store.absorb(rstore);
        // Txn records are anchored at one key, which lives in exactly one
        // of the two spans — collisions cannot happen; keep both sides.
        for (id, rec) in rrecords {
            txn_records.entry(id).or_insert(rec);
        }
        // The merged closed frontier may take the further-ahead side: no
        // write below either side's lease promise can commit afterwards
        // (the merged lease inherits the max), so the stronger promise
        // holds for the whole union.
        let tracker = if rtracker.closed() > ltracker.closed() {
            rtracker
        } else {
            ltracker
        };
        let promised = lpromised.max(rpromised);
        let bound = llow
            .max(rlow)
            .max(lhs_hlc.add_duration(off))
            .max(rhs_hlc.add_duration(off));
        for n in ld.replica_nodes().collect::<Vec<_>>() {
            self.nodes[n.0 as usize].replicas.remove(&lhs);
        }
        for n in rd.replica_nodes().collect::<Vec<_>>() {
            self.nodes[n.0 as usize].replicas.remove(&rhs);
        }
        self.registry.remove(lhs);
        self.registry.remove(rhs);
        // Kill the absorbed group's stale Raft traffic (the install below
        // only bumps the surviving id's generation).
        *self.range_gens.entry(rhs).or_insert(0) += 1;
        self.install_range(
            lhs,
            Span::new(ld.span.start.clone(), rd.span.end.clone()),
            ld.zone_config.clone(),
            &ld.replicas,
            lh,
            Some(SeedState {
                store,
                txn_records,
                tracker,
                promised,
                tscache_low_water: bound,
            }),
        );
        self.monitor_closed
            .retain(|&(rid, _), _| rid != lhs && rid != rhs);
        self.obs.load.forget_range(lhs.0);
        self.obs.load.forget_range(rhs.0);
        self.lease_claims.remove(&rhs);
        self.orphaned_leases.remove(&rhs);
        self.lease_rebalanced.remove(&rhs);
        self.split_pending.remove(&rhs);
        self.last_lifecycle.insert(lhs, now);
        self.last_lifecycle.remove(&rhs);
        if let Some(l) = self.lineage.get_mut(&lhs) {
            l.merges_absorbed += 1;
        }
        if let Some(l) = self.lineage.get_mut(&rhs) {
            l.merged_into = Some(lhs);
        }
        self.last_lifecycle_action = Some(now);
        self.events
            .record(now, EventKind::RangeMerge { range: lhs, rhs });
    }

    /// One lifecycle pass (`cfg.lifecycle.interval`): QPS/size-triggered
    /// splits with the split key at the sampled-load median, cold-range
    /// merges of adjacent same-config neighbors, then one load-based
    /// rebalance step. Every trigger honors the per-range cooldown.
    fn handle_lifecycle_tick(&mut self) {
        self.queue
            .schedule(self.cfg.lifecycle.interval, Event::LifecycleTick);
        let now = self.queue.now();
        let lc = self.cfg.lifecycle;
        // Splits. Iterate a stable id snapshot: a proposal on a
        // single-voter group commits (and reshapes the registry)
        // synchronously.
        for id in self.registry.ids() {
            let Some(desc) = self.registry.get(id).cloned() else {
                continue;
            };
            if !self.cooldown_passed(id, now) || !self.topo.is_node_alive(desc.leaseholder) {
                continue;
            }
            let Some(rep) = self.nodes[desc.leaseholder.0 as usize].replicas.get(&id) else {
                continue;
            };
            let keys = rep.store.key_count();
            let qps = self
                .obs
                .load
                .snapshot_range(now, id.0)
                .map_or(0, |s| s.qps_milli);
            if keys < lc.split_size_keys && qps < lc.split_qps_milli {
                continue;
            }
            let Some(raw) = self.obs.load.split_key_suggestion(id.0) else {
                continue;
            };
            let split_key = Key::from_vec(raw);
            if split_key == desc.span.start || !desc.span.contains(&split_key) {
                continue;
            }
            self.propose_split(&desc, split_key);
        }
        // Merges: a cold range absorbs its cold right-hand neighbor when
        // both sit under the merge QPS floor and their joint size is well
        // below the split threshold (a merge must not immediately
        // re-trigger a split).
        for id in self.registry.ids() {
            let Some(ld) = self.registry.get(id).cloned() else {
                continue;
            };
            if ld.span.end.is_empty() || !self.cooldown_passed(id, now) {
                continue;
            }
            let Some(rd) = self.registry.lookup(&ld.span.end).cloned() else {
                continue;
            };
            if rd.span.start != ld.span.end
                || rd.zone_config != ld.zone_config
                || !self.cooldown_passed(rd.id, now)
            {
                continue;
            }
            let cold = |rid: RangeId| {
                self.obs
                    .load
                    .snapshot_range(now, rid.0)
                    .map_or(0, |s| s.qps_milli)
                    < lc.merge_qps_milli
            };
            if !cold(id) || !cold(rd.id) {
                continue;
            }
            let joint_keys: usize = [&ld, &rd]
                .iter()
                .filter_map(|d| {
                    self.nodes[d.leaseholder.0 as usize]
                        .replicas
                        .get(&d.id)
                        .map(|r| r.store.key_count())
                })
                .sum();
            if joint_keys * 2 >= lc.split_size_keys {
                continue;
            }
            self.propose_merge(&ld, rd.id);
        }
        self.rebalance_step(now);
    }

    /// Whether `id` is outside its lifecycle cooldown window.
    fn cooldown_passed(&self, id: RangeId, now: SimTime) -> bool {
        match self.last_lifecycle.get(&id) {
            Some(&t) => now - t >= self.cfg.lifecycle.cooldown,
            None => true,
        }
    }

    /// One load-based rebalance step: for the hottest range whose traffic
    /// is dominated by a region other than its leaseholder's, transfer the
    /// lease toward demand (a voting replica there) or move a non-voting
    /// replica into the region; then re-home previously-rebalanced leases
    /// whose hot spell has ended. At most one move per tick keeps
    /// convergence observable and the event stream readable.
    fn rebalance_step(&mut self, now: SimTime) {
        let lc = self.cfg.lifecycle;
        for s in self.obs.load.hot_ranges(now) {
            if s.qps_milli < lc.rebalance_min_qps_milli {
                break; // sorted hottest-first
            }
            let id = RangeId(s.range);
            let Some(desc) = self.registry.get(id).cloned() else {
                continue;
            };
            let Some((reg, share)) = self.obs.load.dominant_region(now, id.0) else {
                continue;
            };
            if share < lc.rebalance_share_milli {
                continue;
            }
            let dom = RegionId(reg);
            if dom == self.topo.region_of(desc.leaseholder) {
                continue;
            }
            if let Some(to) = crate::allocator::plan_lease_transfer(&self.topo, &desc, dom) {
                let from = desc.leaseholder;
                self.transfer_lease(id, to);
                self.lease_rebalanced.insert(id, now);
                if let Some(l) = self.lineage.get_mut(&id) {
                    l.lease_rebalances += 1;
                }
                self.last_lifecycle_action = Some(now);
                self.events.record(
                    now,
                    EventKind::LeaseRebalance {
                        range: id,
                        from,
                        to,
                    },
                );
                return;
            }
            if let Some((from, to)) = crate::allocator::plan_replica_move(&self.topo, &desc, dom) {
                self.move_replica(&desc, from, to, now);
                return;
            }
        }
        self.rehome_leases(now);
    }

    /// Relocate one replica (instant state transfer, like
    /// `reconfigure_range`), keeping the leaseholder in place.
    fn move_replica(&mut self, desc: &RangeDescriptor, from: NodeId, to: NodeId, now: SimTime) {
        let id = desc.id;
        let lh = desc.leaseholder;
        let Some(rep) = self.nodes[lh.0 as usize].replicas.get(&id) else {
            return;
        };
        let seed = SeedState {
            store: rep.store.clone(),
            txn_records: rep.txn_records.clone(),
            tracker: rep.tracker.clone(),
            promised: rep.lease.promised(),
            tscache_low_water: rep.tscache.low_water(),
        };
        let mut replicas = desc.replicas.clone();
        for p in replicas.iter_mut() {
            if p.node == from {
                p.node = to;
            }
        }
        for n in desc.replica_nodes().collect::<Vec<_>>() {
            self.nodes[n.0 as usize].replicas.remove(&id);
        }
        self.registry.remove(id);
        self.install_range(
            id,
            desc.span.clone(),
            desc.zone_config.clone(),
            &replicas,
            lh,
            Some(seed),
        );
        self.monitor_closed.retain(|&(rid, _), _| rid != id);
        self.last_lifecycle.insert(id, now);
        if let Some(l) = self.lineage.get_mut(&id) {
            l.replica_rebalances += 1;
        }
        self.last_lifecycle_action = Some(now);
        self.events.record(
            now,
            EventKind::ReplicaRebalance {
                range: id,
                from,
                to,
            },
        );
    }

    /// Leases previously moved by load: once the out-of-preference region
    /// no longer dominates, move the lease back into the configured
    /// preference and end the report grace window.
    fn rehome_leases(&mut self, now: SimTime) {
        let lc = self.cfg.lifecycle;
        let mut ids: Vec<RangeId> = self.lease_rebalanced.keys().copied().collect();
        ids.sort_unstable_by_key(|id| id.0);
        for id in ids {
            let Some(desc) = self.registry.get(id).cloned() else {
                self.lease_rebalanced.remove(&id);
                continue;
            };
            let prefs = desc.zone_config.lease_preferences.clone();
            let cur = self.topo.region_of(desc.leaseholder);
            if prefs.is_empty() || prefs.contains(&cur) {
                self.lease_rebalanced.remove(&id);
                continue;
            }
            // Still hot from where the lease sits? Keep it, refreshing the
            // grace window (the report keeps treating it as transient).
            let qps = self
                .obs
                .load
                .snapshot_range(now, id.0)
                .map_or(0, |s| s.qps_milli);
            if qps >= lc.rebalance_min_qps_milli {
                if let Some((reg, share)) = self.obs.load.dominant_region(now, id.0) {
                    if RegionId(reg) == cur && share >= lc.rebalance_share_milli {
                        self.lease_rebalanced.insert(id, now);
                        continue;
                    }
                }
            }
            for pref in prefs {
                if let Some(to) = crate::allocator::plan_lease_transfer(&self.topo, &desc, pref) {
                    self.transfer_lease(id, to);
                    self.lease_rebalanced.remove(&id);
                    self.last_lifecycle_action = Some(now);
                    break;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // The event loop
    // ------------------------------------------------------------------

    /// Process one event. Returns false when the calendar is empty.
    pub fn step(&mut self) -> bool {
        let Some((_, ev)) = self.queue.pop() else {
            return false;
        };
        self.m.events_processed.inc();
        match &ev {
            Event::Rpc { .. } => self.m.ev_rpc.inc(),
            Event::Raft { .. } | Event::RaftFlush { .. } => self.m.ev_raft.inc(),
            Event::RaftTick => self.m.ev_tick.inc(),
            Event::SideTransport | Event::SideTransportDeliver { .. } => self.m.ev_side.inc(),
            Event::Wake(_) => self.m.ev_wake.inc(),
            Event::RpcTimeout { .. }
            | Event::GcTick
            | Event::WalSyncTick
            | Event::ObsScrape
            | Event::LifecycleTick => {}
        }
        match ev {
            Event::Rpc { from, to, env } => self.handle_rpc(from, to, env),
            Event::Raft {
                to_node,
                range,
                gen,
                from_peer,
                msg,
            } => {
                if self.cfg.trace {
                    let kind = match &msg {
                        mr_raft::RaftMsg::AppendEntries {
                            entries, commit, ..
                        } => {
                            format!("append(n={}, commit={commit})", entries.len())
                        }
                        mr_raft::RaftMsg::AppendResp {
                            success,
                            match_index,
                            ..
                        } => {
                            format!("resp(ok={success}, match={match_index})")
                        }
                        mr_raft::RaftMsg::RequestVote { .. } => "vote?".into(),
                        mr_raft::RaftMsg::VoteResp { .. } => "vote!".into(),
                        mr_raft::RaftMsg::TimeoutNow { .. } => "timeoutnow".into(),
                        mr_raft::RaftMsg::Quiesce { commit, .. } => {
                            format!("quiesce(commit={commit})")
                        }
                    };
                    eprintln!(
                        "[{}] raft {from_peer}->{to_node} {range} {kind}",
                        self.queue.now()
                    );
                }
                self.handle_raft(to_node, range, gen, from_peer, msg)
            }
            Event::RaftTick => self.handle_raft_tick(),
            Event::RaftFlush { node, range } => self.handle_raft_flush(node, range),
            Event::SideTransport => self.handle_side_transport(),
            Event::GcTick => self.handle_gc_tick(),
            Event::WalSyncTick => self.handle_wal_sync_tick(),
            Event::SideTransportDeliver { to, updates } => {
                self.handle_side_transport_deliver(to, updates)
            }
            Event::Wake(id) => {
                if let Some(f) = self.wakes.remove(&id) {
                    f(self);
                }
            }
            Event::RpcTimeout { req_id } => {
                if let Some(p) = self.pending.remove(&req_id) {
                    let now = self.queue.now();
                    self.obs.tracer.attr(p.span, "result", "timeout");
                    self.obs.tracer.finish(p.span, now);
                    // Charge the timed-out round trip to its transaction
                    // (real elapsed time), but keep per-range latency clean:
                    // no response was served.
                    self.finish_req_attr(req_id, now, false);
                    (p.cont)(self, Err(KvError::RangeUnavailable { range: RangeId(0) }));
                }
            }
            Event::ObsScrape => self.handle_obs_scrape(),
            Event::LifecycleTick => self.handle_lifecycle_tick(),
        }
        true
    }

    /// Run until simulated time `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while self.queue.peek_time().is_some_and(|pt| pt <= t) {
            self.step();
        }
    }

    /// Run until all submitted client operations have completed. Panics if
    /// simulated time passes `deadline` first (indicates a hang).
    pub fn run_until_quiescent(&mut self, deadline: SimTime) {
        while self.outstanding_ops > 0 {
            assert!(
                self.queue.now() <= deadline,
                "cluster did not quiesce by {deadline}: {} ops outstanding",
                self.outstanding_ops
            );
            assert!(self.step(), "event queue drained with ops outstanding");
        }
    }

    pub fn outstanding_ops(&self) -> usize {
        self.outstanding_ops
    }

    pub(crate) fn op_started(&mut self) {
        self.outstanding_ops += 1;
    }

    pub(crate) fn op_finished(&mut self) {
        debug_assert!(self.outstanding_ops > 0);
        self.outstanding_ops -= 1;
    }

    /// Schedule `f` to run after `delay`.
    pub fn schedule(&mut self, delay: SimDuration, f: Box<dyn FnOnce(&mut Cluster)>) {
        let id = self.next_wake;
        self.next_wake += 1;
        self.wakes.insert(id, f);
        self.queue.schedule(delay, Event::Wake(id));
    }

    // ------------------------------------------------------------------
    // Transport
    // ------------------------------------------------------------------

    /// Send `req` to the replica of `range` on `target`; `cont` fires with
    /// the response, a routing error, or a timeout. Opens an `rpc.<kind>`
    /// span under `parent` covering the full round trip.
    pub(crate) fn send_request(
        &mut self,
        gateway: NodeId,
        target: NodeId,
        range: RangeId,
        req: Request,
        parent: Option<SpanId>,
        cont: Cont<KvResult<Response>>,
    ) {
        let req_id = self.next_req;
        self.next_req += 1;
        self.m.rpcs_sent.inc();
        self.m.rpcs_by_kind[req_kind_index(&req)].inc();
        let now = self.queue.now();
        // Lifecycle signals: which gateway region drives this range (lease
        // rebalancing) and which keys it is asked for (split-point median).
        self.obs
            .load
            .record_gateway(now, range.0, self.topo.region_of(gateway).0);
        self.obs
            .load
            .sample_key(range.0, req.routing_key().as_slice().to_vec());
        let span = self.obs.tracer.start(rpc_span_name(&req), parent, now);
        if span.is_some() {
            self.obs
                .tracer
                .attr(span, "from", format!("n{}", gateway.0));
            self.obs.tracer.attr(
                span,
                "from_region",
                self.region_name_of(gateway).to_string(),
            );
            self.obs.tracer.attr(span, "to", format!("n{}", target.0));
            self.obs
                .tracer
                .attr(span, "to_region", self.region_name_of(target).to_string());
            self.obs.tracer.attr(span, "range", format!("{range}"));
        }
        let hlc_ts = self.nodes[gateway.0 as usize].hlc.now(now);
        match self.topo.link(gateway, target, &mut self.rng) {
            Link::Deliver(d) => {
                self.req_attr.insert(
                    req_id,
                    ReqAttr {
                        txn: attribution::req_attribution(&req),
                        sent_at: now,
                        range,
                        parked_at: None,
                        parked_nanos: 0,
                    },
                );
                self.pending.insert(req_id, PendingRpc { cont, span });
                if let Some(t) = self.cfg.rpc_timeout {
                    self.queue.schedule(t, Event::RpcTimeout { req_id });
                }
                self.queue.schedule(
                    d,
                    Event::Rpc {
                        from: gateway,
                        to: target,
                        env: Envelope {
                            req_id,
                            hlc_ts,
                            body: Body::Req { range, req },
                        },
                    },
                );
            }
            Link::Unreachable => {
                self.obs.tracer.attr(span, "result", "unreachable");
                self.obs.tracer.finish(span, now);
                cont(self, Err(KvError::RangeUnavailable { range }));
            }
        }
    }

    /// Close an RPC's attribution entry: fold any still-open lock-wait
    /// interval, record per-range latency (responses only), and charge the
    /// round trip to the owning transaction's accumulator — carving the
    /// parked portion out as `lock_wait`.
    fn finish_req_attr(&mut self, req_id: u64, now: SimTime, served: bool) {
        let Some(mut a) = self.req_attr.remove(&req_id) else {
            return;
        };
        if let Some(p) = a.parked_at.take() {
            a.parked_nanos += (now - p).nanos();
        }
        if served {
            self.obs
                .load
                .record_latency(now, a.range.0, (now - a.sent_at).nanos());
        }
        if let Some((id, comp)) = a.txn {
            if let Some(st) = self.txns.get_mut(&id) {
                st.attr.charge_split(comp, a.sent_at, now, a.parked_nanos);
                if let Err(i) = st.ranges.binary_search(&a.range.0) {
                    st.ranges.insert(i, a.range.0);
                }
            }
        }
    }

    fn send_response(&mut self, from: NodeId, path: ReplyPath, result: KvResult<Response>) {
        let now = self.queue.now();
        let hlc_ts = self.nodes[from.0 as usize].hlc.now(now);
        match self.topo.link(from, path.gateway, &mut self.rng) {
            Link::Deliver(d) => {
                self.queue.schedule(
                    d,
                    Event::Rpc {
                        from,
                        to: path.gateway,
                        env: Envelope {
                            req_id: path.req_id,
                            hlc_ts,
                            body: Body::Resp(result),
                        },
                    },
                );
            }
            Link::Unreachable => {
                // Gateway unreachable; response dropped (its timeout fires).
            }
        }
    }

    fn dispatch_raft_msgs(
        &mut self,
        from_node: NodeId,
        range: RangeId,
        msgs: Vec<(Peer, RaftMsg<Batch>)>,
    ) {
        if msgs.is_empty() {
            return;
        }
        let gen = *self.range_gens.get(&range).unwrap_or(&0);
        let (peer_nodes, from_peer) = {
            match self.nodes[from_node.0 as usize].replicas.get(&range) {
                Some(rep) => (rep.peer_nodes.clone(), rep.peer),
                None => return,
            }
        };
        for (to_peer, msg) in msgs {
            let to_node = peer_nodes[to_peer as usize];
            match self.topo.link(from_node, to_node, &mut self.rng) {
                Link::Deliver(d) => {
                    self.queue.schedule(
                        d,
                        Event::Raft {
                            to_node,
                            range,
                            gen,
                            from_peer,
                            msg,
                        },
                    );
                }
                Link::Unreachable => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn handle_rpc(&mut self, from: NodeId, to: NodeId, env: Envelope) {
        if !self.topo.is_node_alive(to) {
            return;
        }
        let now = self.queue.now();
        self.nodes[to.0 as usize].hlc.update(env.hlc_ts, now);
        match env.body {
            Body::Req { range, req } => {
                let path = ReplyPath {
                    gateway: from,
                    req_id: env.req_id,
                };
                self.evaluate_at(to, range, req, path);
            }
            Body::Resp(result) => {
                if let Some(p) = self.pending.remove(&env.req_id) {
                    if p.span.is_some() {
                        let outcome = match &result {
                            Ok(_) => "ok".to_string(),
                            Err(e) => format!("err: {e}"),
                        };
                        self.obs.tracer.attr(p.span, "result", outcome);
                    }
                    self.obs.tracer.finish(p.span, now);
                    self.finish_req_attr(env.req_id, now, true);
                    (p.cont)(self, result);
                }
            }
        }
    }

    /// Evaluate a request on the replica of `range` at `node`, dispatching
    /// whatever the evaluation produces.
    pub(crate) fn evaluate_at(
        &mut self,
        node: NodeId,
        range: RangeId,
        req: Request,
        path: ReplyPath,
    ) {
        let now = self.queue.now();
        // A request re-entering evaluation after being unparked closes its
        // lock-wait interval (charged as `lock_wait` when the RPC finishes).
        if let Some(a) = self.req_attr.get_mut(&path.req_id) {
            if let Some(p) = a.parked_at.take() {
                a.parked_nanos += (now - p).nanos();
            }
        }
        let Some(desc) = self.registry.get(range) else {
            let key = req.routing_key().clone();
            self.send_response(node, path, Err(KvError::NoSuchRange { key }));
            return;
        };
        // A split may have narrowed this range while the RPC was in flight:
        // the id still routes, but the key now belongs to the other half.
        // Redirect so the dist-sender re-resolves against the registry —
        // serving from the narrowed replica would silently miss the moved
        // keys.
        if !desc.span.contains(req.routing_key()) {
            let err = KvError::NotLeaseholder {
                range,
                leaseholder: None,
            };
            self.send_response(node, path, Err(err));
            return;
        }
        let is_leaseholder = desc.leaseholder == node;
        let leaseholder = Some(desc.leaseholder);
        let params = self.cfg.closed_ts;
        let is_follower_read = !is_leaseholder && !req.is_write();
        // For the follower-read invariant monitor: the uncertainty limit a
        // point read or scan evaluates under (the follower gate requires the
        // closed frontier to have reached it).
        let read_limit = match &req {
            Request::Get { ctx, .. } | Request::Scan { ctx, .. } => Some(ctx.uncertainty_limit),
            _ => None,
        };
        let req_is_read = req.is_read();
        let req_is_write = req.is_write();
        let wbytes = attribution::write_bytes(&req);
        let has_replica = self.nodes[node.0 as usize].replicas.contains_key(&range);
        if !has_replica {
            let err = KvError::NotLeaseholder { range, leaseholder };
            self.send_response(node, path, Err(err));
            return;
        }
        let stale_read_bug = self.stale_read_bug;
        let outcome = {
            let n = &mut self.nodes[node.0 as usize];
            let Node { hlc, replicas, .. } = n;
            let rep = replicas.get_mut(&range).unwrap();
            let ctx = EvalCtx {
                now,
                params: &params,
                is_leaseholder,
                leaseholder,
                stale_read_bug,
            };
            rep.evaluate(req, path, hlc, &ctx)
        };
        if self.cfg.trace {
            let kind = match &outcome {
                EvalOutcome::Reply(Ok(_)) => "reply-ok".to_string(),
                EvalOutcome::Reply(Err(e)) => format!("reply-err {e}"),
                EvalOutcome::Parked { .. } => "parked".to_string(),
                EvalOutcome::Proposed { .. } => "proposed".to_string(),
            };
            eprintln!(
                "[{}] eval at {node} range {range} lh={is_leaseholder} -> {kind}",
                self.queue.now()
            );
        }
        // Server-side causality: annotate the in-flight RPC's span with
        // where and how the request evaluated.
        let rpc_span = self.pending.get(&path.req_id).and_then(|p| p.span);
        if rpc_span.is_some() {
            let kind = match &outcome {
                EvalOutcome::Reply(Ok(_)) => "reply-ok".to_string(),
                EvalOutcome::Reply(Err(e)) => format!("reply-err: {e}"),
                EvalOutcome::Parked { holder, .. } => format!("parked behind {}", holder.id),
                EvalOutcome::Proposed { .. } => "proposed to raft".to_string(),
            };
            let msg = format!(
                "eval at n{} ({}) lh={is_leaseholder}: {kind}",
                node.0,
                self.region_name_of(node)
            );
            self.obs.tracer.event(rpc_span, now, msg);
        }
        match outcome {
            EvalOutcome::Reply(result) => {
                if is_follower_read {
                    match &result {
                        Ok(_) => {
                            self.m.follower_reads_served.inc();
                            // A follower may only serve a read once its
                            // closed frontier covers the read's uncertainty
                            // limit (§5.1).
                            if let Some(limit) = read_limit {
                                let closed = self.nodes[node.0 as usize]
                                    .replicas
                                    .get(&range)
                                    .map(|r| r.tracker.closed());
                                if let Some(closed) = closed {
                                    self.obs.monitors.check(
                                        &self.obs.registry,
                                        "follower_read_closed",
                                        now,
                                        limit <= closed,
                                        || {
                                            format!(
                                                "range {range} at n{}: read limit {limit} above \
                                             closed frontier {closed}",
                                                node.0
                                            )
                                        },
                                    );
                                }
                            }
                        }
                        // Uncertainty is part of the protocol, not a
                        // locality miss; count only true redirects.
                        Err(e) if e.is_redirect() => self.m.follower_read_redirects.inc(),
                        Err(_) => {}
                    }
                } else if is_leaseholder && req_is_read && result.is_ok() {
                    // Leaseholder read fast path: served off local MVCC
                    // state under the leader lease, without touching Raft —
                    // one avoided proposal (and, on a quiesced range, no
                    // un-quiesce: reads don't wake the group).
                    self.m.read_fast_path.inc();
                }
                if req_is_read && result.is_ok() {
                    // Served read: one unit of per-range read load.
                    self.obs.load.record_read(now, range.0);
                }
                self.send_response(node, path, result);
            }
            EvalOutcome::Parked { key, holder } => {
                self.m.parked_requests.inc();
                if let Some(a) = self.req_attr.get_mut(&path.req_id) {
                    a.parked_at = Some(now);
                }
                self.start_pusher(node, range, key, holder);
            }
            EvalOutcome::Proposed { msgs } => {
                if req_is_write {
                    // Accepted write: per-range write load with its logical
                    // key+value payload.
                    self.obs.load.record_write(now, range.0, wbytes);
                }
                self.dispatch_raft_msgs(node, range, msgs);
                self.pump_replica(node, range);
                self.schedule_raft_flush(node, range);
            }
        }
    }

    /// Schedule a group-commit flush for a replica holding batched Raft
    /// proposals. One flush event serves every proposal accepted before it
    /// fires, so proposals landing at the same sim-instant — a txn's
    /// pipelined intents plus its STAGING record — replicate in a single
    /// consensus round. The heartbeat tick rebroadcast is the safety net if
    /// the flush is lost to a crash.
    fn schedule_raft_flush(&mut self, node: NodeId, range: RangeId) {
        let delay = self.cfg.raft_flush_interval;
        let Some(rep) = self.nodes[node.0 as usize].replicas.get_mut(&range) else {
            return;
        };
        if !rep.has_pending_batch() || rep.flush_scheduled {
            return;
        }
        rep.flush_scheduled = true;
        self.queue.schedule(delay, Event::RaftFlush { node, range });
    }

    fn handle_raft_flush(&mut self, node: NodeId, range: RangeId) {
        let now = self.queue.now();
        let (msgs, effects) = {
            let Some(rep) = self.nodes[node.0 as usize].replicas.get_mut(&range) else {
                return;
            };
            rep.flush_scheduled = false;
            rep.flush_batch(now)
        };
        if !self.topo.is_node_alive(node) {
            return;
        }
        // Effects here are NotLeaseholder replies for commands whose buffer
        // outlived this replica's leadership — they must still be answered.
        self.dispatch_effects(node, range, effects);
        self.dispatch_raft_msgs(node, range, msgs);
        self.pump_replica(node, range);
    }

    fn handle_raft(
        &mut self,
        to_node: NodeId,
        range: RangeId,
        gen: u32,
        from_peer: Peer,
        msg: RaftMsg<Batch>,
    ) {
        if !self.topo.is_node_alive(to_node) {
            return;
        }
        if self.range_gens.get(&range).copied().unwrap_or(0) != gen {
            return; // stale traffic from a reconfigured group
        }
        let now = self.queue.now();
        let (out, noop) = {
            let Some(rep) = self.nodes[to_node.0 as usize].replicas.get_mut(&range) else {
                return;
            };
            let out = rep.raft.step(from_peer, msg, now);
            let noop = rep.maybe_propose_leader_noop(now);
            (out, noop)
        };
        self.dispatch_raft_msgs(to_node, range, out);
        self.dispatch_raft_msgs(to_node, range, noop);
        self.pump_replica(to_node, range);
        self.maybe_claim_lease(to_node, range);
    }

    /// Apply committed entries on a replica and dispatch resulting effects,
    /// looping until no more effects are produced.
    fn pump_replica(&mut self, node: NodeId, range: RangeId) {
        let now_nanos = self.queue.now().nanos();
        loop {
            let effects = {
                let Some(rep) = self.nodes[node.0 as usize].replicas.get_mut(&range) else {
                    return;
                };
                let effects = rep.apply_committed();
                // Fsync point: every applied entry is sealed into the WAL;
                // sync before acking (no-op under the armed fsync-skip bug).
                rep.store.sync(now_nanos);
                effects
            };
            if effects.is_empty() {
                return;
            }
            self.dispatch_effects(node, range, effects);
        }
    }

    /// Dispatch replica effects: client replies, re-evaluations of unparked
    /// waiters, and lease-claim applications. Shared by the apply pump and
    /// the batch flush (which can emit `NotLeaseholder` replies for
    /// commands buffered across a leadership loss).
    fn dispatch_effects(&mut self, node: NodeId, range: RangeId, effects: Vec<Effect>) {
        for eff in effects {
            match eff {
                Effect::Reply { path, result } => {
                    let rpc_span = self.pending.get(&path.req_id).and_then(|p| p.span);
                    if rpc_span.is_some() {
                        let now = self.queue.now();
                        let msg = format!(
                            "raft applied at n{} ({}), replying",
                            node.0,
                            self.region_name_of(node)
                        );
                        self.obs.tracer.event(rpc_span, now, msg);
                    }
                    self.send_response(node, path, result);
                }
                Effect::ReEval { waiter } => {
                    // A split/merge applied earlier in this same effects
                    // batch may have removed the replica (surgery drops
                    // parked waiters; their RPCs time out and re-route).
                    let parked = self.nodes[node.0 as usize]
                        .replicas
                        .get_mut(&range)
                        .and_then(|rep| rep.unpark(waiter));
                    if let Some(p) = parked {
                        self.evaluate_at(node, range, p.req, p.path);
                    }
                }
                Effect::LeaseApplied {
                    node: claimant,
                    index,
                } => {
                    self.apply_lease_claim(range, claimant, index);
                }
                Effect::SplitApplied {
                    split_key,
                    rhs,
                    index,
                } => {
                    self.apply_split(range, split_key, rhs, index);
                }
                Effect::MergeApplied { rhs, index } => {
                    self.apply_merge(range, rhs, index);
                }
            }
        }
    }

    /// After Raft activity, align the lease with Raft leadership if the
    /// recorded leaseholder is gone (failover).
    fn maybe_claim_lease(&mut self, node: NodeId, range: RangeId) {
        let Some(desc) = self.registry.get(range) else {
            return;
        };
        if desc.leaseholder == node {
            // Note: the orphan mark (below) is deliberately NOT cleared
            // here even when this node's Raft claims leadership — after a
            // whole-group restart the old leaseholder still believes it
            // leads at its stale term until a competing election deposes
            // it, and clearing on that stale claim would re-wedge the
            // range. The mark only clears on an actual lease movement.
            return;
        }
        let old = desc.leaseholder;
        let became_leader = self.nodes[node.0 as usize]
            .replicas
            .get(&range)
            .is_some_and(|r| r.raft.is_leader());
        if !became_leader {
            return;
        }
        // Only usurp the lease from a dead or partitioned-away leaseholder;
        // cooperative transfers update the registry directly. A leaseholder
        // cut off by a region partition cannot commit (no quorum), so the
        // majority-side leader takes over — this is what keeps
        // REGION-survivable ranges available through a full region
        // partition, not just a region crash. One exception: a lease
        // orphaned by its holder's crash stays usurpable after the holder
        // restarts — a revived whole-region group can elect a different
        // leader, and the lease must follow it or the range stays wedged
        // (writes would propose into a Raft follower forever).
        if !self.orphaned_leases.contains(&range)
            && self.topo.is_node_alive(old)
            && self.topo.reachable(node, old)
        {
            return;
        }
        // The claim replicates through Raft rather than editing the
        // registry here: committing it proves this leader still reaches a
        // quorum (a stale minority-side leader would flap the lease back
        // and forth otherwise), and log order guarantees the claimant has
        // applied every earlier entry before it starts serving — a fresh
        // read served right after failover must observe writes that
        // committed just before it. The registry moves when the claim
        // applies (`apply_lease_claim`).
        let now = self.queue.now();
        let msgs = {
            let rep = self.nodes[node.0 as usize]
                .replicas
                .get_mut(&range)
                .unwrap();
            rep.maybe_propose_lease_claim(now)
        };
        self.dispatch_raft_msgs(node, range, msgs);
        self.pump_replica(node, range);
    }

    /// A replicated `ClaimLease` entry applied on some replica: move the
    /// lease to the claimant. Every replica of the range applies the same
    /// entry, so claims are deduplicated by log index.
    fn apply_lease_claim(&mut self, range: RangeId, to: NodeId, index: u64) {
        let last = self.lease_claims.get(&range).copied().unwrap_or(0);
        if index <= last {
            return;
        }
        self.lease_claims.insert(range, index);
        let Some(desc) = self.registry.get(range) else {
            return;
        };
        let old = desc.leaseholder;
        self.orphaned_leases.remove(&range);
        if old == to {
            return;
        }
        let now = self.queue.now();
        {
            let n = &mut self.nodes[to.0 as usize];
            let hlc_now = n.hlc.now(now);
            let rep = n.replicas.get_mut(&range).unwrap();
            // Respect promises the old leaseholder may have made: the best
            // lower bound we have is our own tracker, plus the uncertainty
            // window for reads the old leaseholder served near its demise.
            let inherited = rep.tracker.closed();
            rep.lease.inherit(inherited);
            rep.tscache
                .raise_low_water(hlc_now.add_duration(self.cfg.clock.max_offset));
        }
        self.registry.get_mut(range).unwrap().leaseholder = to;
        self.m.lease_transfers.inc();
        self.events.record(
            now,
            EventKind::LeaseTransfer {
                range,
                from: old,
                to,
                cooperative: false,
            },
        );
        self.repair_lease_preference(to, range);
    }

    /// After a failover usurpation, re-home the lease into the
    /// most-preferred region that still has a reachable voting replica.
    /// Raft elections pick whoever times out first, which may be outside
    /// the configured lease preferences; CRDB's allocator would move the
    /// lease back, and so do we. Applies only to the failover path —
    /// cooperative transfers are allowed to mis-home a lease (the
    /// replication report must be able to flag that).
    fn repair_lease_preference(&mut self, usurper: NodeId, range: RangeId) {
        let Some(desc) = self.registry.get(range) else {
            return;
        };
        let prefs = desc.zone_config.lease_preferences.clone();
        if prefs.is_empty() {
            return;
        }
        let usurper_region = self.topo.region_of(usurper);
        let mut target = None;
        'prefs: for pref in prefs {
            if pref == usurper_region {
                // Already in the best reachable preferred region.
                return;
            }
            for p in &desc.replicas {
                if p.voting
                    && self.topo.region_of(p.node) == pref
                    && self.topo.is_node_alive(p.node)
                    && self.topo.reachable(usurper, p.node)
                {
                    target = Some(p.node);
                    break 'prefs;
                }
            }
        }
        if let Some(to) = target {
            self.transfer_lease(range, to);
        }
    }

    fn handle_raft_tick(&mut self) {
        self.queue
            .schedule(self.cfg.raft_tick_interval, Event::RaftTick);
        let now = self.queue.now();
        let mut outbox: Vec<(NodeId, RangeId, Vec<(Peer, RaftMsg<Batch>)>)> = Vec::new();
        let mut flush_effects: Vec<(NodeId, RangeId, Vec<Effect>)> = Vec::new();
        let mut heartbeats = 0u64;
        for node in &mut self.nodes {
            if !self.topo.is_node_alive(node.id) {
                continue;
            }
            // Tick replicas in range-id order: HashMap iteration order is
            // not stable across processes, and the order of the resulting
            // messages decides the order of RNG draws (link jitter), which
            // same-seed determinism — and the chaos history replays built
            // on it — depend on.
            let mut rids: Vec<RangeId> = node.replicas.keys().copied().collect();
            rids.sort_unstable();
            for rid in rids {
                let rep = node.replicas.get_mut(&rid).unwrap();
                // Leadership doubt un-quiesces: a quiesced follower whose
                // last known leader is dead or unreachable restarts its
                // election clock — quiescence parks timers on the promise
                // that the leader will send traffic when needed, and a dead
                // leader never will.
                if rep.raft.is_quiesced() && !rep.raft.is_leader() {
                    if let Some(lh) = rep.raft.leader_hint() {
                        let lh_node = rep.node_for_peer(lh);
                        if !self.topo.is_node_alive(lh_node)
                            || !self.topo.reachable(node.id, lh_node)
                        {
                            rep.raft.unquiesce(now);
                        }
                    }
                }
                // Leadership follows the lease (CRDB colocates Raft
                // leadership with the leaseholder). A cooperative transfer
                // issued while a previous transfer's election was still in
                // flight finds the old leaseholder no longer leader, so its
                // TimeoutNow is never sent and nothing else would ever make
                // the new leaseholder campaign — the range would answer
                // NotLeaseholder from both nodes forever. Any leader that
                // notices the divergence hands leadership to the (live,
                // reachable) leaseholder; if the leaseholder is dead, the
                // orphaned-lease path reclaims the lease instead.
                if rep.raft.is_leader() {
                    if let Some(desc) = self.registry.get(rid) {
                        if desc.leaseholder != node.id
                            && self.topo.is_node_alive(desc.leaseholder)
                            && self.topo.reachable(node.id, desc.leaseholder)
                        {
                            if let Some(peer) = rep.peer_for_node(desc.leaseholder) {
                                let msgs = rep.raft.transfer_leadership(peer);
                                if !msgs.is_empty() {
                                    outbox.push((node.id, rid, msgs));
                                }
                            }
                        }
                    }
                }
                // Safety net: commands buffered for a flush that never
                // fired (the scheduling node crashed and restarted between
                // proposal and flush) must not sit forever.
                if rep.has_pending_batch() && !rep.flush_scheduled {
                    let (msgs, effs) = rep.flush_batch(now);
                    if !msgs.is_empty() {
                        outbox.push((node.id, rid, msgs));
                    }
                    if !effs.is_empty() {
                        flush_effects.push((node.id, rid, effs));
                    }
                }
                let msgs = rep.raft.tick(now);
                heartbeats += msgs
                    .iter()
                    .filter(|(_, m)| matches!(m, RaftMsg::AppendEntries { .. }))
                    .count() as u64;
                if !msgs.is_empty() {
                    outbox.push((node.id, rid, msgs));
                }
            }
        }
        self.m.heartbeats_sent.add(heartbeats);
        for (node, range, effs) in flush_effects {
            self.dispatch_effects(node, range, effs);
        }
        for (node, range, msgs) in outbox {
            self.dispatch_raft_msgs(node, range, msgs);
            self.maybe_claim_lease(node, range);
        }
    }

    /// Per-range MVCC garbage collection. Each range's threshold candidate
    /// is the minimum of three bounds: `now - gc.ttl` (zone config), the
    /// minimum applied closed timestamp across the range's *live* replicas
    /// (follower reads must keep working), and the oldest active protected
    /// timestamp. Each replica ratchets its local threshold monotonically
    /// and reclaims shadowed history at its next flush/compaction.
    fn handle_gc_tick(&mut self) {
        self.queue.schedule(self.cfg.gc_interval, Event::GcTick);
        let now = self.queue.now();
        let protected_min = self.protected.min();
        let mut removed = 0usize;
        let plans: Vec<(RangeId, Vec<NodeId>, SimDuration)> = self
            .registry
            .iter()
            .map(|d| {
                let nodes: Vec<NodeId> = d
                    .replica_nodes()
                    .filter(|&n| self.topo.is_node_alive(n))
                    .collect();
                (d.id, nodes, d.zone_config.gc_ttl)
            })
            .collect();
        for (range, live, ttl) in plans {
            // The frontier bound: no live replica may lose history it can
            // still serve follower reads from.
            let mut min_closed = Timestamp::MAX;
            for &n in &live {
                if let Some(rep) = self.nodes[n.0 as usize].replicas.get(&range) {
                    min_closed = min_closed.min(rep.tracker.closed());
                }
            }
            if min_closed == Timestamp::MAX {
                continue;
            }
            let candidate =
                mr_storage::gc_threshold(now.nanos(), ttl.nanos(), min_closed, protected_min);
            if candidate.is_zero() {
                continue;
            }
            for &n in &live {
                if let Some(rep) = self.nodes[n.0 as usize].replicas.get_mut(&range) {
                    let report = rep.store.maintain(candidate, now.nanos());
                    removed += report.mem_gc_removed + report.compact_removed;
                }
            }
        }
        self.m.gc_versions_removed.add(removed as u64);
    }

    /// Fsync every live replica's WAL and Raft log. Scheduled only while
    /// the `wal_skip_fsync_bug` is armed, where it is the sole fsync point
    /// (see [`Event::WalSyncTick`]).
    fn handle_wal_sync_tick(&mut self) {
        if !self.wal_skip_fsync_bug {
            return;
        }
        self.queue
            .schedule(SimDuration::from_secs(3), Event::WalSyncTick);
        let now_nanos = self.queue.now().nanos();
        for node in &mut self.nodes {
            if !self.topo.is_node_alive(node.id) {
                continue;
            }
            for rep in node.replicas.values_mut() {
                rep.store.sync_now(now_nanos);
                rep.raft.mark_log_synced();
            }
        }
    }

    /// Refresh derived gauges (closed-timestamp lag per policy, lock
    /// contention, in-flight ops) and snapshot the registry into the scrape
    /// series. Runs on `obs_scrape_interval`.
    fn handle_obs_scrape(&mut self) {
        if let Some(interval) = self.cfg.obs_scrape_interval {
            self.queue.schedule(interval, Event::ObsScrape);
        }
        self.scrape_now();
    }

    /// Run one observability scrape immediately (tests and benches call
    /// this before reading counters so scrape-drained instruments — batch
    /// occupancy, quiesced-range counts — reflect activity since the last
    /// periodic scrape).
    pub fn scrape_now(&mut self) {
        let now = self.queue.now();
        // Worst (largest) closed-timestamp lag across replicas, split by
        // policy. Negative values mean the closed frontier leads present
        // time, as lead-policy (GLOBAL) ranges are designed to.
        let mut worst_lag: Option<i64> = None;
        let mut worst_lead: Option<i64> = None;
        let mut waiters = 0u64;
        let mut locked_keys = 0u64;
        let mut closed_walls: Vec<(RangeId, NodeId, u64)> = Vec::new();
        for d in self.registry.iter() {
            let lead_policy = d.zone_config.closed_ts_policy == ClosedTsPolicy::Lead;
            for n in d.replica_nodes() {
                let Some(rep) = self.nodes[n.0 as usize].replicas.get(&d.id) else {
                    continue;
                };
                let lag = rep.tracker.lag_nanos(now.nanos());
                closed_walls.push((d.id, n, rep.tracker.closed().wall));
                let worst = if lead_policy {
                    &mut worst_lead
                } else {
                    &mut worst_lag
                };
                *worst = Some(worst.map_or(lag, |w| w.max(lag)));
                if n == d.leaseholder {
                    waiters += rep.locks.total_waiters() as u64;
                    locked_keys += rep.locks.locked_key_count() as u64;
                }
            }
        }
        // The closed-timestamp frontier of a replica must never move
        // backwards between scrapes (trackers only `forward`).
        for (rid, n, wall) in closed_walls {
            if let Some(prev) = self.monitor_closed.insert((rid, n), wall) {
                self.obs.monitors.check(
                    &self.obs.registry,
                    "closed_ts_monotonic",
                    now,
                    wall >= prev,
                    || {
                        format!(
                            "range {rid} replica n{}: closed frontier regressed {prev} -> {wall}",
                            n.0
                        )
                    },
                );
            }
        }
        // Group-commit accounting: drain per-replica batch occupancy
        // recorded since the last scrape, and count quiesced leaders.
        let mut quiesced = 0i64;
        let mut occupancy: Vec<u32> = Vec::new();
        for node in &mut self.nodes {
            let mut rids: Vec<RangeId> = node.replicas.keys().copied().collect();
            rids.sort_unstable();
            for rid in rids {
                let rep = node.replicas.get_mut(&rid).unwrap();
                occupancy.extend(rep.take_prop_occupancy());
                if rep.raft.is_leader() && rep.raft.is_quiesced() {
                    quiesced += 1;
                }
            }
        }
        for n in occupancy {
            self.m.batch_occupancy.record(n as u64);
            self.m.proposals_batched.add(n as u64);
            self.m.entries_proposed.inc();
        }
        // Storage-engine accounting, summed across replicas: WAL footprint,
        // LSM shape, bloom effectiveness, GC reclamation, recoveries.
        let mut wal_bytes = 0u64;
        let mut wal_records = 0u64;
        let mut sst_count = 0u64;
        let mut sst_versions = 0u64;
        let mut mem_versions = 0u64;
        let mut bloom_probes = 0u64;
        let mut bloom_skips = 0u64;
        let mut gc_reclaimed = 0u64;
        let mut flushes = 0u64;
        let mut compactions = 0u64;
        let mut recoveries = 0u64;
        for node in &self.nodes {
            for rep in node.replicas.values() {
                let s = rep.store.stats();
                wal_bytes += rep.store.wal_bytes() as u64;
                wal_records += rep.store.wal_record_count();
                sst_count += rep.store.sst_count() as u64;
                sst_versions += rep.store.sst_version_count() as u64;
                mem_versions += rep.store.mem_version_count() as u64;
                bloom_probes += s.bloom_probes.get();
                bloom_skips += s.bloom_skips.get();
                gc_reclaimed += s.gc_reclaimed;
                flushes += s.flushes;
                compactions += s.compactions;
                recoveries += s.recoveries;
            }
        }
        let r = &self.obs.registry;
        r.gauge("storage.wal_bytes", &[]).set(wal_bytes as i64);
        r.gauge("storage.wal_records", &[]).set(wal_records as i64);
        r.gauge("storage.sst_count", &[]).set(sst_count as i64);
        r.gauge("storage.sst_versions", &[])
            .set(sst_versions as i64);
        r.gauge("storage.memtable_versions", &[])
            .set(mem_versions as i64);
        r.gauge("storage.bloom_probes", &[])
            .set(bloom_probes as i64);
        r.gauge("storage.bloom_skips", &[]).set(bloom_skips as i64);
        r.gauge("storage.gc_reclaimed", &[])
            .set(gc_reclaimed as i64);
        r.gauge("storage.flushes", &[]).set(flushes as i64);
        r.gauge("storage.compactions", &[]).set(compactions as i64);
        r.gauge("storage.wal_recoveries", &[])
            .set(recoveries as i64);
        r.gauge("storage.protected_timestamps", &[])
            .set(self.protected.len() as i64);
        r.gauge("raft.quiesced_ranges", &[]).set(quiesced);
        r.gauge("kv.closedts.lag_nanos", &[("policy", "lag")])
            .set(worst_lag.unwrap_or(0));
        r.gauge("kv.closedts.lag_nanos", &[("policy", "lead")])
            .set(worst_lead.unwrap_or(0));
        r.gauge("kv.locks.waiters", &[]).set(waiters as i64);
        r.gauge("kv.locks.held_keys", &[]).set(locked_keys as i64);
        r.gauge("kv.ops.outstanding", &[])
            .set(self.outstanding_ops as i64);
        r.gauge("kv.load.tracked_ranges", &[])
            .set(self.obs.load.len() as i64);
        r.gauge("kv.attr.slow_txn_records", &[])
            .set(self.attr_log.len() as i64);
        r.gauge("obs.trace.retained_spans", &[])
            .set(self.obs.tracer.len() as i64);
        r.gauge("obs.trace.dropped_spans", &[])
            .set(self.obs.tracer.dropped() as i64);
        self.obs.scrape(now);
    }

    fn handle_side_transport(&mut self) {
        self.queue
            .schedule(self.cfg.side_transport_interval, Event::SideTransport);
        let now = self.queue.now();
        let params = self.cfg.closed_ts;
        let lag_enabled = self.cfg.lag_side_transport;
        // Batch updates per (source leaseholder, destination) pair — the
        // CRDB side transport is node-to-node, not per-range.
        let mut batches: HashMap<(NodeId, NodeId), Vec<(RangeId, Timestamp, u64)>> = HashMap::new();
        let descs: Vec<(RangeId, NodeId, ClosedTsPolicy, Vec<NodeId>)> = self
            .registry
            .iter()
            .map(|d| {
                (
                    d.id,
                    d.leaseholder,
                    d.zone_config.closed_ts_policy,
                    d.replica_nodes().collect(),
                )
            })
            .collect();
        for (rid, lh, policy, replica_nodes) in descs {
            if !self.topo.is_node_alive(lh) {
                continue;
            }
            if policy == ClosedTsPolicy::Lag && !lag_enabled {
                continue;
            }
            let node = &mut self.nodes[lh.0 as usize];
            let skew = node.hlc.physical_clock().skew_nanos();
            let Some(rep) = node.replicas.get_mut(&rid) else {
                continue;
            };
            if !rep.raft.is_leader() {
                continue;
            }
            let target = rep.lease.advance(&params, policy, now, skew);
            let index = rep.raft.last_index();
            // The leaseholder's own tracker advances immediately.
            let applied = rep.raft.applied_index();
            rep.tracker.on_side_transport(target, index, applied);
            for follower in replica_nodes.into_iter().filter(|&n| n != lh) {
                batches
                    .entry((lh, follower))
                    .or_default()
                    .push((rid, target, index));
            }
        }
        let mut batches: Vec<_> = batches.into_iter().collect();
        batches.sort_unstable_by_key(|((a, b), _)| (a.0, b.0));
        for ((from, to), updates) in batches {
            match self.topo.link(from, to, &mut self.rng) {
                Link::Deliver(d) => {
                    self.queue
                        .schedule(d, Event::SideTransportDeliver { to, updates });
                }
                Link::Unreachable => {}
            }
        }
    }

    fn handle_side_transport_deliver(
        &mut self,
        to: NodeId,
        updates: Vec<(RangeId, Timestamp, u64)>,
    ) {
        if !self.topo.is_node_alive(to) {
            return;
        }
        let node = &mut self.nodes[to.0 as usize];
        for (range, ts, index) in updates {
            if let Some(rep) = node.replicas.get_mut(&range) {
                let applied = rep.raft.applied_index();
                rep.tracker.on_side_transport(ts, index, applied);
            }
        }
    }
}

/// State copied into new replicas during reconfiguration.
struct SeedState {
    store: mr_storage::lsm::Engine,
    txn_records: HashMap<TxnId, crate::replica::TxnRecord>,
    tracker: crate::closedts::ClosedTsTracker,
    promised: Timestamp,
    tscache_low_water: Timestamp,
}

//! The gateway transaction coordinator.
//!
//! Implements the client-visible protocol of §5 and §6 on top of the
//! cluster transport:
//!
//! * serializable MVCC transactions with a fixed uncertainty interval
//!   (§6.1): reads that observe a committed value inside the interval bump
//!   their timestamp, *refresh* their read set, and retry;
//! * read refreshes at commit when the write timestamp was forwarded (by
//!   the timestamp cache, a newer committed version, or a closed-timestamp
//!   target);
//! * **global transactions** (§6.2): writes to GLOBAL (lead-policy) ranges
//!   come back with future-time timestamps; the coordinator *commit-waits*
//!   until its local HLC passes the commit timestamp — concurrently with
//!   asynchronous intent resolution (unlike Spanner, which holds locks for
//!   the duration; see the `commit_wait_holds_locks` ablation flag);
//! * readers observing future-time values commit-wait at most
//!   `max_clock_offset` before completing (§6.2);
//! * follower reads: fresh reads on lead-policy ranges and stale reads
//!   route to the nearest replica, with leaseholder fallback on redirects;
//! * bounded-staleness reads (§5.3.2): a negotiation phase picks the
//!   freshest timestamp servable locally, then the read runs there.

use std::cell::RefCell;
use std::rc::Rc;

use mr_clock::Timestamp;
use mr_obs::SpanId;
use mr_proto::{Key, KvError, ReadCtx, Request, Response, Span, TxnId, TxnMeta, TxnStatus, Value};
use mr_sim::{NodeId, SimDuration, SimTime};

use crate::attribution::{AttrAcc, Component, TxnAttrRecord, COMPONENTS};
use crate::cluster::{Cluster, Cont, KvResult, ReadOptions, Staleness};
use crate::zone::ClosedTsPolicy;

/// Maximum transparent re-routes before an error surfaces to the caller.
const MAX_ATTEMPTS: u8 = 16;

/// A client's handle to an open transaction.
#[derive(Clone, Copy, Debug)]
pub struct TxnHandle {
    pub id: TxnId,
    pub gateway: NodeId,
}

/// Coordinator-side tracking of pipelined (in-flight) intent writes: Put
/// RPCs issued at statement time that the commit must join (§ write
/// pipelining / parallel commits).
pub(crate) struct PipelineState {
    /// Pipelined Put RPCs issued but not yet acknowledged.
    outstanding: usize,
    /// Highest timestamp an acknowledged pipelined write landed at.
    max_written_ts: Timestamp,
    /// First terminal error a pipelined write reported.
    failed: Option<KvError>,
    /// Continuation armed by commit/rollback, fired when `outstanding`
    /// drains to zero.
    waiter: Option<Box<dyn FnOnce(&mut Cluster)>>,
}

impl Default for PipelineState {
    fn default() -> Self {
        PipelineState {
            outstanding: 0,
            max_written_ts: Timestamp::ZERO,
            failed: None,
            waiter: None,
        }
    }
}

/// Join of the two arms of a parallel commit: the STAGING record write and
/// the outstanding pipelined intents.
struct StageJoin {
    stage: Option<KvResult<Timestamp>>,
    puts_done: bool,
    cont: Option<Cont<KvResult<Timestamp>>>,
}

/// Coordinator-side transaction state.
pub(crate) struct TxnState {
    pub id: TxnId,
    pub gateway: NodeId,
    /// MVCC snapshot the transaction reads at.
    pub read_ts: Timestamp,
    /// Fixed upper bound of the uncertainty interval (does not move on
    /// restarts within the same transaction, §6.1).
    pub uncertainty_limit: Timestamp,
    /// Provisional commit timestamp.
    pub write_ts: Timestamp,
    /// Anchor key of the transaction record (first write).
    pub anchor: Option<Key>,
    /// Read spans with the timestamp at which each was (last) validated.
    pub reads: Vec<(Span, Timestamp)>,
    /// Keys with intents laid down (two-phase path only).
    pub intents: Vec<Key>,
    /// Writes buffered at the coordinator until commit (CRDB-style write
    /// buffering enabling the 1PC fast path). Last write per key wins.
    pub buffered: Vec<(Key, Option<Value>)>,
    pub epoch: u32,
    pub finished: bool,
    /// The transaction's trace span (operation spans nest under it).
    pub span: Option<SpanId>,
    /// In-flight pipelined writes (`cfg.pipelined_writes`).
    pub pipeline: Rc<RefCell<PipelineState>>,
    /// Keys with a pipelined intent write issued — the in-flight write set
    /// a parallel commit stages.
    pub sent: Vec<Key>,
    /// A sent key was written again: its issued intent holds a stale value,
    /// so commit falls back to re-putting every buffered write.
    pub rewrote_sent: bool,
    /// Latency attribution accumulator (RPC / replication / lock-wait /
    /// commit-wait / retry components, watermark-unioned).
    pub attr: AttrAcc,
    /// Whether the transaction reached a commit (vs abort/rollback).
    pub committed: bool,
    /// Distinct ranges touched by attributed RPCs, sorted ascending.
    pub ranges: Vec<u64>,
}

impl TxnState {
    fn meta(&self) -> TxnMeta {
        TxnMeta {
            id: self.id,
            anchor: self.anchor.clone().unwrap_or_else(|| Key::MIN.clone()),
            write_ts: self.write_ts,
            epoch: self.epoch,
        }
    }
}

/// Overlay a transaction's buffered writes onto scan results: buffered
/// values replace or add rows; buffered deletes remove them.
fn overlay_buffer(
    rows: Vec<(Key, Value)>,
    buffered: &[(Key, Option<Value>)],
    span: &Span,
) -> Vec<(Key, Value)> {
    let relevant: Vec<&(Key, Option<Value>)> =
        buffered.iter().filter(|(k, _)| span.contains(k)).collect();
    if relevant.is_empty() {
        return rows;
    }
    let mut out: Vec<(Key, Value)> = rows
        .into_iter()
        .filter(|(k, _)| !relevant.iter().any(|(bk, _)| bk == k))
        .collect();
    for (k, v) in relevant {
        if let Some(v) = v {
            out.push((k.clone(), v.clone()));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// How to pick the serving replica.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RouteMode {
    Leaseholder,
    Nearest,
}

impl Cluster {
    // ------------------------------------------------------------------
    // Transaction lifecycle
    // ------------------------------------------------------------------

    /// Open a transaction coordinated by `gateway`. Its trace span nests
    /// under the ambient `trace_parent` (the SQL statement, if any).
    pub fn txn_begin(&mut self, gateway: NodeId) -> TxnHandle {
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        let read_ts = self.hlc_now(gateway);
        let limit = read_ts.add_duration(self.cfg.clock.max_offset);
        let span = self.obs.tracer.start("txn", self.trace_parent, self.now());
        if span.is_some() {
            self.obs.tracer.attr(span, "txn", format!("{id}"));
            self.obs
                .tracer
                .attr(span, "gateway", format!("n{}", gateway.0));
            self.obs.tracer.attr(
                span,
                "gateway_region",
                self.region_name_of(gateway).to_string(),
            );
        }
        self.txns.insert(
            id,
            TxnState {
                id,
                gateway,
                read_ts,
                uncertainty_limit: limit,
                write_ts: read_ts,
                anchor: None,
                reads: Vec::new(),
                intents: Vec::new(),
                buffered: Vec::new(),
                epoch: 0,
                finished: false,
                span,
                pipeline: Rc::new(RefCell::new(PipelineState::default())),
                sent: Vec::new(),
                rewrote_sent: false,
                attr: AttrAcc::new(self.now()),
                committed: false,
                ranges: Vec::new(),
            },
        );
        TxnHandle { id, gateway }
    }

    /// Transactional point read.
    pub fn txn_get(&mut self, h: TxnHandle, key: Key, cont: Cont<KvResult<Option<Value>>>) {
        let policy = self.policy_of(&key);
        let parent = self.txn_span(h.id);
        let (span, cont) = self.instrument_op("kv.get", policy, h.gateway, parent, cont);
        self.txn_get_inner(h.id, key, span, cont);
    }

    /// Transactional scan (bounded by `max_keys`).
    pub fn txn_scan(
        &mut self,
        h: TxnHandle,
        span: Span,
        max_keys: usize,
        cont: Cont<KvResult<Vec<(Key, Value)>>>,
    ) {
        let policy = self.policy_of(&span.start);
        let parent = self.txn_span(h.id);
        let (tspan, cont) = self.instrument_op("kv.scan", policy, h.gateway, parent, cont);
        self.txn_scan_inner(h.id, span, max_keys, tspan, cont);
    }

    /// Transactional write (`None` deletes).
    pub fn txn_put(
        &mut self,
        h: TxnHandle,
        key: Key,
        value: Option<Value>,
        cont: Cont<KvResult<()>>,
    ) {
        let policy = self.policy_of(&key);
        let parent = self.txn_span(h.id);
        let (_, cont) = self.instrument_op("kv.put", policy, h.gateway, parent, cont);
        self.txn_put_inner(h.id, key, value, cont);
    }

    /// Commit. Returns the commit timestamp after any required read
    /// refresh, the EndTxn round-trip, and commit wait.
    pub fn txn_commit(&mut self, h: TxnHandle, cont: Cont<KvResult<Timestamp>>) {
        // Label commit latency by the policy of the written ranges: a
        // lead-policy key anywhere makes this a global transaction (§6.2).
        let policy = match self.txns.get(&h.id) {
            Some(st) if st.buffered.is_empty() && st.intents.is_empty() => "ro",
            Some(st) => {
                let key = st.buffered.first().map(|(k, _)| k.clone());
                match key {
                    Some(k) => self.policy_of(&k),
                    None => "ro",
                }
            }
            None => "ro",
        };
        let parent = self.txn_span(h.id);
        let (span, cont) = self.instrument_op("kv.commit", policy, h.gateway, parent, cont);
        self.txn_commit_inner(h.id, span, cont);
    }

    /// Abort, resolving any intents.
    pub fn txn_rollback(&mut self, h: TxnHandle, cont: Cont<KvResult<()>>) {
        let parent = self.txn_span(h.id);
        let (_, cont) = self.instrument_op("kv.rollback", "none", h.gateway, parent, cont);
        let Some(st) = self.txns.get_mut(&h.id) else {
            cont(self, Ok(()));
            return;
        };
        if st.finished {
            cont(self, Ok(()));
            return;
        }
        st.finished = true;
        self.m.txn_aborts.inc();
        let id = h.id;
        // Join any in-flight pipelined writes before resolving: resolving a
        // key whose Put is still in flight would race and orphan the intent.
        self.join_pipeline(
            id,
            Box::new(move |c| {
                c.finalize_intents(id, TxnStatus::Aborted, Timestamp::ZERO);
                c.finish_txn_span(id);
                cont(c, Ok(()));
            }),
        );
    }

    // ------------------------------------------------------------------
    // Non-transactional reads (stale reads, §5.3)
    // ------------------------------------------------------------------

    /// A standalone read. `Fresh` runs as an implicit read-only
    /// transaction (linearizable, commit-waits if it observes future-time
    /// values); the stale variants run lock-free at a fixed or negotiated
    /// timestamp on the nearest replica.
    pub fn read(
        &mut self,
        gateway: NodeId,
        key: Key,
        opts: ReadOptions,
        cont: Cont<KvResult<Option<Value>>>,
    ) {
        match opts.staleness {
            Staleness::Fresh => {
                let h = self.txn_begin(gateway);
                self.txn_get(
                    h,
                    key,
                    Box::new(move |c, res| match res {
                        Ok(v) => c.txn_commit(
                            h,
                            Box::new(move |c2, cres| match cres {
                                Ok(_) => cont(c2, Ok(v)),
                                Err(e) => cont(c2, Err(e)),
                            }),
                        ),
                        Err(e) => {
                            c.txn_rollback(h, Box::new(move |c2, _| cont(c2, Err(e))));
                        }
                    }),
                );
            }
            Staleness::ExactAt(ts) => {
                let (span, cont) = self.instrument_read(gateway, "kv.read.stale", &key, cont);
                self.stale_read_at(gateway, key, ts, span, cont);
            }
            Staleness::ExactAgo(ago) => {
                let now = self.hlc_now(gateway);
                let ts = Timestamp::new(now.wall.saturating_sub(ago.nanos()), 0);
                let (span, cont) = self.instrument_read(gateway, "kv.read.stale", &key, cont);
                self.stale_read_at(gateway, key, ts, span, cont);
            }
            Staleness::BoundedMaxStaleness(bound) => {
                let now = self.hlc_now(gateway);
                let min_ts = Timestamp::new(now.wall.saturating_sub(bound.nanos()), 0);
                let (span, cont) = self.instrument_read(gateway, "kv.read.bounded", &key, cont);
                self.bounded_staleness_read(gateway, key, min_ts, opts, span, cont);
            }
            Staleness::BoundedMinTimestamp(min_ts) => {
                let (span, cont) = self.instrument_read(gateway, "kv.read.bounded", &key, cont);
                self.bounded_staleness_read(gateway, key, min_ts, opts, span, cont);
            }
        }
    }

    /// Instrument a standalone stale read/scan under the ambient parent.
    fn instrument_read<T: 'static>(
        &mut self,
        gateway: NodeId,
        op: &'static str,
        key: &Key,
        cont: Cont<KvResult<T>>,
    ) -> (Option<SpanId>, Cont<KvResult<T>>) {
        let policy = self.policy_of(key);
        let parent = self.trace_parent;
        self.instrument_op(op, policy, gateway, parent, cont)
    }

    /// A standalone scan, with the same staleness options as [`Cluster::read`].
    pub fn scan(
        &mut self,
        gateway: NodeId,
        span: Span,
        max_keys: usize,
        opts: ReadOptions,
        cont: Cont<KvResult<Vec<(Key, Value)>>>,
    ) {
        match opts.staleness {
            Staleness::Fresh => {
                let h = self.txn_begin(gateway);
                self.txn_scan(
                    h,
                    span,
                    max_keys,
                    Box::new(move |c, res| match res {
                        Ok(rows) => c.txn_commit(
                            h,
                            Box::new(move |c2, cres| match cres {
                                Ok(_) => cont(c2, Ok(rows)),
                                Err(e) => cont(c2, Err(e)),
                            }),
                        ),
                        Err(e) => {
                            c.txn_rollback(h, Box::new(move |c2, _| cont(c2, Err(e))));
                        }
                    }),
                );
            }
            Staleness::ExactAt(ts) => {
                let (tspan, cont) =
                    self.instrument_read(gateway, "kv.scan.stale", &span.start, cont);
                self.stale_scan_at(gateway, span, ts, max_keys, tspan, cont);
            }
            Staleness::ExactAgo(ago) => {
                let now = self.hlc_now(gateway);
                let ts = Timestamp::new(now.wall.saturating_sub(ago.nanos()), 0);
                let (tspan, cont) =
                    self.instrument_read(gateway, "kv.scan.stale", &span.start, cont);
                self.stale_scan_at(gateway, span, ts, max_keys, tspan, cont);
            }
            Staleness::BoundedMaxStaleness(bound) => {
                let now_ts = self.hlc_now(gateway);
                let min_ts = Timestamp::new(now_ts.wall.saturating_sub(bound.nanos()), 0);
                let (tspan, cont) =
                    self.instrument_read(gateway, "kv.scan.bounded", &span.start, cont);
                self.bounded_scan(gateway, span, min_ts, now_ts, max_keys, tspan, cont);
            }
            Staleness::BoundedMinTimestamp(min_ts) => {
                let now_ts = self.hlc_now(gateway);
                let (tspan, cont) =
                    self.instrument_read(gateway, "kv.scan.bounded", &span.start, cont);
                self.bounded_scan(gateway, span, min_ts, now_ts, max_keys, tspan, cont);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn bounded_scan(
        &mut self,
        gateway: NodeId,
        span: Span,
        min_ts: Timestamp,
        now_ts: Timestamp,
        max_keys: usize,
        tspan: Option<SpanId>,
        cont: Cont<KvResult<Vec<(Key, Value)>>>,
    ) {
        let negotiate = Request::Negotiate {
            spans: vec![span.clone()],
        };
        let start = span.start.clone();
        self.dist_send(
            gateway,
            start,
            RouteMode::Nearest,
            negotiate,
            MAX_ATTEMPTS,
            tspan,
            Box::new(move |c, res| match res {
                Ok(Response::Negotiate { max_safe_ts }) => {
                    let chosen = max_safe_ts.min(now_ts).forward(min_ts);
                    c.stale_scan_at(gateway, span, chosen, max_keys, tspan, cont);
                }
                Ok(_) => unreachable!("negotiate returned unexpected response"),
                Err(e) => cont(c, Err(e)),
            }),
        );
    }

    fn stale_scan_at(
        &mut self,
        gateway: NodeId,
        span: Span,
        ts: Timestamp,
        max_keys: usize,
        tspan: Option<SpanId>,
        cont: Cont<KvResult<Vec<(Key, Value)>>>,
    ) {
        let rctx = ReadCtx::stale(ts);
        let start = span.start.clone();
        self.dist_send(
            gateway,
            start,
            RouteMode::Nearest,
            Request::Scan {
                ctx: rctx,
                span,
                max_keys,
            },
            MAX_ATTEMPTS,
            tspan,
            Box::new(move |c, res| match res {
                Ok(Response::Scan { rows }) => cont(c, Ok(rows)),
                Ok(_) => unreachable!("scan returned non-scan response"),
                Err(e) => cont(c, Err(e)),
            }),
        );
    }

    // ------------------------------------------------------------------
    // Internals: operation wrappers
    // ------------------------------------------------------------------

    /// Wrap a client operation: track it for `run_until_quiescent`, open an
    /// operation span under `parent`, and — on success — record its latency
    /// in `kv.op.latency{op, policy, region}`. Returns the operation span
    /// (the parent for the operation's RPCs) and the wrapped continuation.
    fn instrument_op<T: 'static>(
        &mut self,
        op: &'static str,
        policy: &'static str,
        gateway: NodeId,
        parent: Option<SpanId>,
        cont: Cont<KvResult<T>>,
    ) -> (Option<SpanId>, Cont<KvResult<T>>) {
        self.op_started();
        let start = self.now();
        let span = self.obs.tracer.start(op, parent, start);
        if span.is_some() {
            self.obs
                .tracer
                .attr(span, "gateway", format!("n{}", gateway.0));
            self.obs.tracer.attr(
                span,
                "gateway_region",
                self.region_name_of(gateway).to_string(),
            );
            self.obs.tracer.attr(span, "policy", policy);
        }
        let wrapped: Cont<KvResult<T>> = Box::new(move |c, v| {
            c.op_finished();
            let now = c.now();
            match &v {
                Ok(_) => {
                    let region = c.region_name_of(gateway).to_string();
                    c.obs
                        .registry
                        .histogram(
                            "kv.op.latency",
                            &[("op", op), ("policy", policy), ("region", &region)],
                        )
                        .record((now - start).nanos());
                    c.obs.tracer.attr(span, "result", "ok");
                }
                Err(e) => c.obs.tracer.attr(span, "result", format!("err: {e}")),
            }
            c.obs.tracer.finish(span, now);
            cont(c, v);
        });
        (span, wrapped)
    }

    /// The closed-timestamp policy label for the range covering `key`.
    fn policy_of(&self, key: &Key) -> &'static str {
        match self.registry().lookup(key) {
            Some(d) => match d.zone_config.closed_ts_policy {
                ClosedTsPolicy::Lead => "lead",
                ClosedTsPolicy::Lag => "lag",
            },
            None => "none",
        }
    }

    /// The trace span of an open transaction, if any.
    pub(crate) fn txn_span(&self, id: TxnId) -> Option<SpanId> {
        self.txns.get(&id).and_then(|st| st.span)
    }

    /// Close a transaction's span once it reaches a terminal state, and
    /// roll its latency attribution up into histograms, span attributes,
    /// and the slow-transaction log.
    fn finish_txn_span(&mut self, id: TxnId) {
        let span = self.txn_span(id);
        let now = self.now();
        self.finalize_txn_attr(id, now);
        self.obs.tracer.finish(span, now);
    }

    /// One-shot attribution rollup for a finished transaction. Straggler
    /// RPCs completing after this (an aborted pipeline's in-flight writes)
    /// no longer charge the accumulator.
    fn finalize_txn_attr(&mut self, id: TxnId, now: SimTime) {
        let Some(st) = self.txns.get_mut(&id) else {
            return;
        };
        if st.attr.is_done() {
            return;
        }
        let start = st.attr.start();
        let breakdown = st.attr.finalize(now);
        let (gateway, span, committed) = (st.gateway, st.span, st.committed);
        let ranges = st.ranges.clone();
        for (c, n) in COMPONENTS.iter().zip(breakdown.comp_nanos.iter()) {
            self.obs
                .registry
                .histogram("kv.txn.attr.latency", &[("comp", c.label())])
                .record(*n);
            self.obs.tracer.attr(span, c.attr_key(), n.to_string());
        }
        self.obs
            .registry
            .histogram("kv.txn.attr.latency", &[("comp", "other")])
            .record(breakdown.other_nanos);
        self.obs
            .registry
            .histogram("kv.txn.attr.latency", &[("comp", "total")])
            .record(breakdown.total_nanos);
        self.obs
            .tracer
            .attr(span, "attr.other", breakdown.other_nanos.to_string());
        self.attr_log.record(TxnAttrRecord {
            txn_id: id.0,
            gateway: gateway.0 as u64,
            start,
            breakdown,
            committed,
            root_span: span.map(|s| s.raw()),
            ranges,
        });
    }

    // ------------------------------------------------------------------
    // Internals: routing
    // ------------------------------------------------------------------

    fn route(
        &mut self,
        gateway: NodeId,
        key: &Key,
        mode: RouteMode,
    ) -> KvResult<(mr_proto::RangeId, NodeId)> {
        let desc = self
            .registry()
            .lookup(key)
            .ok_or_else(|| KvError::NoSuchRange { key: key.clone() })?;
        let target = match mode {
            RouteMode::Leaseholder => desc.leaseholder,
            RouteMode::Nearest => desc
                .nearest_replica(self.topology(), gateway)
                .unwrap_or(desc.leaseholder),
        };
        Ok((desc.id, target))
    }

    /// Send with transparent redirect handling: `NotLeaseholder`,
    /// `FollowerReadUnavailable`, and follower `WriteIntent` errors re-route
    /// to the leaseholder; timeouts re-resolve the route and retry. Every
    /// attempt's RPC span nests under `parent` (usually the operation span),
    /// so traces show the whole re-route history of one logical send.
    #[allow(clippy::too_many_arguments)]
    fn dist_send(
        &mut self,
        gateway: NodeId,
        key: Key,
        mode: RouteMode,
        req: Request,
        attempts: u8,
        parent: Option<SpanId>,
        cont: Cont<KvResult<Response>>,
    ) {
        let (range, target) = match self.route(gateway, &key, mode) {
            Ok(rt) => rt,
            Err(e) => {
                cont(self, Err(e));
                return;
            }
        };
        let retry_req = req.clone();
        self.send_request(
            gateway,
            target,
            range,
            req,
            parent,
            Box::new(move |c, res| match res {
                Ok(resp) => cont(c, Ok(resp)),
                Err(e) if e.is_redirect() && attempts > 0 => {
                    let now = c.now();
                    c.obs
                        .tracer
                        .event(parent, now, format!("redirect to leaseholder: {e}"));
                    c.dist_send(
                        gateway,
                        key,
                        RouteMode::Leaseholder,
                        retry_req,
                        attempts - 1,
                        parent,
                        cont,
                    );
                }
                Err(KvError::RangeUnavailable { .. }) if attempts > 0 => {
                    // Route may have moved (failover); back off and retry.
                    let now = c.now();
                    c.obs.tracer.event(parent, now, "unavailable, backing off");
                    c.schedule(
                        SimDuration::from_millis(250),
                        Box::new(move |c2| {
                            c2.dist_send(gateway, key, mode, retry_req, attempts - 1, parent, cont);
                        }),
                    );
                }
                Err(e) => cont(c, Err(e)),
            }),
        );
    }

    /// Routing mode for a transactional read of `key`.
    fn read_route_mode(&self, id: TxnId, key: &Key) -> RouteMode {
        let Some(st) = self.txns.get(&id) else {
            return RouteMode::Leaseholder;
        };
        // Read-your-writes must see our own (unreplicated-yet) intent.
        if st.intents.contains(key) {
            return RouteMode::Leaseholder;
        }
        match self.registry().lookup(key) {
            // GLOBAL tables serve consistent present-time reads from any
            // replica (§6); REGIONAL fresh reads need the leaseholder.
            Some(d) if d.zone_config.closed_ts_policy == ClosedTsPolicy::Lead => RouteMode::Nearest,
            _ => RouteMode::Leaseholder,
        }
    }

    // ------------------------------------------------------------------
    // Internals: transactional reads
    // ------------------------------------------------------------------

    fn txn_get_inner(
        &mut self,
        id: TxnId,
        key: Key,
        tspan: Option<SpanId>,
        cont: Cont<KvResult<Option<Value>>>,
    ) {
        let Some(st) = self.txns.get(&id) else {
            cont(self, Err(KvError::TxnNotFound { id }));
            return;
        };
        if st.finished {
            cont(self, Err(KvError::TxnAborted { id }));
            return;
        }
        // Read-your-writes: buffered writes win over replicated state.
        if let Some((_, v)) = st.buffered.iter().rev().find(|(k, _)| *k == key) {
            let v = v.clone();
            cont(self, Ok(v));
            return;
        }
        let rctx = ReadCtx {
            read_ts: st.read_ts,
            uncertainty_limit: st.uncertainty_limit,
            txn: Some(st.meta()),
        };
        let gateway = st.gateway;
        let mode = self.read_route_mode(id, &key);
        let retry_key = key.clone();
        self.dist_send(
            gateway,
            key.clone(),
            mode,
            Request::Get { ctx: rctx, key },
            MAX_ATTEMPTS,
            tspan,
            Box::new(move |c, res| match res {
                Ok(Response::Get { value, .. }) => {
                    if let Some(st) = c.txns.get_mut(&id) {
                        let at = st.read_ts;
                        st.reads.push((Span::point(retry_key), at));
                    }
                    cont(c, Ok(value));
                }
                Ok(_) => unreachable!("get returned non-get response"),
                Err(KvError::Uncertainty { value_ts, .. }) => {
                    c.txn_uncertainty_restart(
                        id,
                        value_ts,
                        Box::new(move |c2, r| match r {
                            Ok(()) => c2.txn_get_inner(id, retry_key, tspan, cont),
                            Err(e) => cont(c2, Err(e)),
                        }),
                    );
                }
                Err(e) => cont(c, Err(e)),
            }),
        );
    }

    fn txn_scan_inner(
        &mut self,
        id: TxnId,
        span: Span,
        max_keys: usize,
        tspan: Option<SpanId>,
        cont: Cont<KvResult<Vec<(Key, Value)>>>,
    ) {
        let Some(st) = self.txns.get(&id) else {
            cont(self, Err(KvError::TxnNotFound { id }));
            return;
        };
        if st.finished {
            cont(self, Err(KvError::TxnAborted { id }));
            return;
        }
        let rctx = ReadCtx {
            read_ts: st.read_ts,
            uncertainty_limit: st.uncertainty_limit,
            txn: Some(st.meta()),
        };
        let gateway = st.gateway;
        // Scans always go to the leaseholder (they may span in-flight
        // writes; simulation-scale tables keep one range per partition, so
        // a scan never crosses ranges within a partition).
        let retry_span = span.clone();
        self.dist_send(
            gateway,
            span.start.clone(),
            RouteMode::Leaseholder,
            Request::Scan {
                ctx: rctx,
                span,
                max_keys,
            },
            MAX_ATTEMPTS,
            tspan,
            Box::new(move |c, res| match res {
                Ok(Response::Scan { rows }) => {
                    let rows = match c.txns.get_mut(&id) {
                        Some(st) => {
                            let at = st.read_ts;
                            st.reads.push((retry_span.clone(), at));
                            overlay_buffer(rows, &st.buffered, &retry_span)
                        }
                        None => rows,
                    };
                    cont(c, Ok(rows));
                }
                Ok(_) => unreachable!("scan returned non-scan response"),
                Err(KvError::Uncertainty { value_ts, .. }) => {
                    c.txn_uncertainty_restart(
                        id,
                        value_ts,
                        Box::new(move |c2, r| match r {
                            Ok(()) => c2.txn_scan_inner(id, retry_span, max_keys, tspan, cont),
                            Err(e) => cont(c2, Err(e)),
                        }),
                    );
                }
                Err(e) => cont(c, Err(e)),
            }),
        );
    }

    /// Handle a read that observed a value in its uncertainty interval:
    /// bump the read timestamp to the value's, refresh prior reads, and let
    /// the caller retry (§6.1, §6.2).
    fn txn_uncertainty_restart(
        &mut self,
        id: TxnId,
        value_ts: Timestamp,
        cont: Cont<KvResult<()>>,
    ) {
        self.m.uncertainty_restarts.inc();
        let span = self.txn_span(id);
        let now = self.now();
        self.obs.tracer.event(
            span,
            now,
            format!("uncertainty restart: value at {value_ts}"),
        );
        let Some(st) = self.txns.get_mut(&id) else {
            cont(self, Err(KvError::TxnNotFound { id }));
            return;
        };
        let new_ts = st.read_ts.forward(value_ts);
        st.write_ts = st.write_ts.forward(new_ts);
        self.txn_refresh_reads(id, new_ts, cont);
    }

    /// Refresh all read spans to `to_ts`; on success the transaction's read
    /// timestamp moves there.
    fn txn_refresh_reads(&mut self, id: TxnId, to_ts: Timestamp, cont: Cont<KvResult<()>>) {
        let Some(st) = self.txns.get_mut(&id) else {
            cont(self, Err(KvError::TxnNotFound { id }));
            return;
        };
        let gateway = st.gateway;
        let spans: Vec<(Span, Timestamp)> = st
            .reads
            .iter()
            .filter(|(_, at)| *at < to_ts)
            .cloned()
            .collect();
        if spans.is_empty() {
            st.read_ts = st.read_ts.forward(to_ts);
            cont(self, Ok(()));
            return;
        }
        self.m.refreshes.inc();
        let tspan = self.txn_span(id);
        let now = self.now();
        self.obs.tracer.event(
            tspan,
            now,
            format!("refreshing {} read span(s) to {to_ts}", spans.len()),
        );
        let remaining = Rc::new(RefCell::new((spans.len(), Some(cont), false)));
        for (span, from_ts) in spans {
            let state = Rc::clone(&remaining);
            let req = Request::Refresh {
                txn_id: id,
                span: span.clone(),
                from_ts,
                to_ts,
            };
            self.dist_send(
                gateway,
                span.start.clone(),
                RouteMode::Leaseholder,
                req,
                MAX_ATTEMPTS,
                tspan,
                Box::new(move |c, res| {
                    let mut s = state.borrow_mut();
                    if s.2 {
                        return; // already failed
                    }
                    match res {
                        Ok(_) => {
                            s.0 -= 1;
                            if s.0 == 0 {
                                let cont = s.1.take().expect("refresh cont");
                                drop(s);
                                if let Some(st) = c.txns.get_mut(&id) {
                                    st.read_ts = st.read_ts.forward(to_ts);
                                    for (_, at) in st.reads.iter_mut() {
                                        *at = (*at).forward(to_ts);
                                    }
                                }
                                cont(c, Ok(()));
                            }
                        }
                        Err(e) => {
                            s.2 = true;
                            let cont = s.1.take().expect("refresh cont");
                            drop(s);
                            c.m.refresh_failures.inc();
                            // The transaction must restart from scratch.
                            c.abort_after_failure(id);
                            cont(c, Err(e));
                        }
                    }
                }),
            );
        }
    }

    /// Mark the transaction dead and clean up its intents.
    fn abort_after_failure(&mut self, id: TxnId) {
        if let Some(st) = self.txns.get_mut(&id) {
            if !st.finished {
                st.finished = true;
                self.m.txn_restarts.inc();
                let span = self.txn_span(id);
                let now = self.now();
                self.obs.tracer.event(span, now, "aborted for client retry");
                self.finalize_intents(id, TxnStatus::Aborted, Timestamp::ZERO);
                self.finish_txn_span(id);
            }
        }
    }

    // ------------------------------------------------------------------
    // Internals: writes and commit
    // ------------------------------------------------------------------

    fn txn_put_inner(
        &mut self,
        id: TxnId,
        key: Key,
        value: Option<Value>,
        cont: Cont<KvResult<()>>,
    ) {
        let Some(st) = self.txns.get_mut(&id) else {
            cont(self, Err(KvError::TxnNotFound { id }));
            return;
        };
        if st.finished {
            cont(self, Err(KvError::TxnAborted { id }));
            return;
        }
        if st.anchor.is_none() {
            st.anchor = Some(key.clone());
        }
        // Buffer the write: read-your-writes always serves from the buffer.
        match st.buffered.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = value.clone(),
            None => st.buffered.push((key.clone(), value.clone())),
        }
        if !self.cfg.pipelined_writes {
            // Legacy: writes flush at commit (1PC when single-range).
            cont(self, Ok(()));
            return;
        }
        // Write pipelining: propose the intent now and return before it
        // replicates; the commit joins the in-flight set.
        let st = self.txns.get_mut(&id).unwrap();
        if st.sent.contains(&key) {
            // The issued intent now holds a stale value; commit falls back
            // to the re-putting slow path.
            st.rewrote_sent = true;
            cont(self, Ok(()));
            return;
        }
        st.sent.push(key.clone());
        let meta = st.meta();
        let gateway = st.gateway;
        let pl = Rc::clone(&st.pipeline);
        pl.borrow_mut().outstanding += 1;
        self.m.pipelined_writes.inc();
        let tspan = self.txn_span(id);
        let record_key = key.clone();
        self.dist_send(
            gateway,
            key.clone(),
            RouteMode::Leaseholder,
            Request::Put {
                txn: meta,
                key,
                value,
            },
            MAX_ATTEMPTS,
            tspan,
            Box::new(move |c, res| {
                if c.cfg.trace {
                    eprintln!("[pc] put txn={id} key={record_key:?} res={res:?}");
                }
                match res {
                    Ok(Response::Put { written_ts }) => {
                        {
                            let mut p = pl.borrow_mut();
                            p.max_written_ts = p.max_written_ts.forward(written_ts);
                        }
                        if let Some(txn) = c.txns.get_mut(&id) {
                            txn.write_ts = txn.write_ts.forward(written_ts);
                            txn.intents.push(record_key);
                        }
                    }
                    Ok(_) => unreachable!("put returned non-put response"),
                    Err(e) => {
                        {
                            let mut p = pl.borrow_mut();
                            if p.failed.is_none() {
                                p.failed = Some(e);
                            }
                        }
                        // The intent may have landed anyway; remember the
                        // key so an abort resolves it.
                        if let Some(txn) = c.txns.get_mut(&id) {
                            txn.intents.push(record_key);
                        }
                    }
                }
                let waiter = {
                    let mut p = pl.borrow_mut();
                    p.outstanding -= 1;
                    if p.outstanding == 0 {
                        p.waiter.take()
                    } else {
                        None
                    }
                };
                if let Some(w) = waiter {
                    w(c);
                }
            }),
        );
        cont(self, Ok(()));
    }

    fn txn_commit_inner(
        &mut self,
        id: TxnId,
        tspan: Option<SpanId>,
        cont: Cont<KvResult<Timestamp>>,
    ) {
        let Some(st) = self.txns.get(&id) else {
            cont(self, Err(KvError::TxnNotFound { id }));
            return;
        };
        if st.finished {
            cont(self, Err(KvError::TxnAborted { id }));
            return;
        }
        let gateway = st.gateway;
        if st.buffered.is_empty() && st.intents.is_empty() {
            // Read-only: complete locally. Commit-wait if the read
            // timestamp became future-time by observing a future value
            // (§6.2: reader-side commit wait, capped at max_clock_offset).
            let commit_ts = st.read_ts;
            let finish: Box<dyn FnOnce(&mut Cluster)> = Box::new(move |c: &mut Cluster| {
                if let Some(st) = c.txns.get_mut(&id) {
                    st.finished = true;
                    st.committed = true;
                }
                c.m.txn_commits.inc();
                c.finish_txn_span(id);
                cont(c, Ok(commit_ts));
            });
            self.commit_wait(gateway, commit_ts, Some(id), tspan, finish);
            return;
        }
        // Pipelined writes are already in flight as intents: join them and
        // commit via the parallel-commits (or explicit two-phase) path.
        if !st.sent.is_empty() {
            self.txn_commit_pipelined(id, tspan, cont);
            return;
        }
        // 1PC fast path: every buffered write lands in one range.
        let single_range = {
            let mut range = None;
            let mut ok = true;
            for (key, _) in &st.buffered {
                match self.registry().lookup(key) {
                    Some(d) if range.is_none() => range = Some(d.id),
                    Some(d) if range == Some(d.id) => {}
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                range
            } else {
                None
            }
        };
        if let Some(range) = single_range {
            let span = self.registry().get(range).map(|d| d.span.clone());
            let st = self.txns.get(&id).unwrap();
            let local_reads_only = match &span {
                Some(span) => st.reads.iter().all(|(s, _)| span.contains_span(s)),
                None => false,
            };
            let resolve_inline = !self.cfg.commit_wait_holds_locks;
            let req = Request::CommitInline {
                txn: st.meta(),
                writes: st.buffered.clone(),
                refresh_spans: if local_reads_only {
                    st.reads.clone()
                } else {
                    Vec::new()
                },
                local_reads_only,
                resolve_inline,
            };
            let anchor = st.meta().anchor;
            self.dist_send(
                gateway,
                anchor,
                RouteMode::Leaseholder,
                req,
                MAX_ATTEMPTS,
                tspan,
                Box::new(move |c, res| match res {
                    Ok(Response::CommitInline { commit_ts }) => {
                        if let Some(st) = c.txns.get_mut(&id) {
                            st.finished = true;
                            st.committed = true;
                            // Spanner-style ablation: locks were kept; the
                            // coordinator resolves them after commit wait.
                            if c.cfg.commit_wait_holds_locks {
                                st.intents = st.buffered.iter().map(|(k, _)| k.clone()).collect();
                            }
                        }
                        c.m.txn_commits.inc();
                        let finish: Box<dyn FnOnce(&mut Cluster)> =
                            Box::new(move |c2: &mut Cluster| {
                                if c2.cfg.commit_wait_holds_locks {
                                    c2.finalize_intents(id, TxnStatus::Committed, commit_ts);
                                }
                                c2.finish_txn_span(id);
                                cont(c2, Ok(commit_ts))
                            });
                        c.commit_wait(gateway, commit_ts, Some(id), tspan, finish);
                    }
                    Ok(_) => unreachable!("commit-inline returned unexpected response"),
                    Err(KvError::WriteTooOld { .. }) => {
                        // Timestamp must move but remote reads need a real
                        // refresh: fall back to the two-phase path.
                        c.txn_commit_slow(id, tspan, cont);
                    }
                    Err(e) => {
                        c.abort_after_failure(id);
                        cont(c, Err(e));
                    }
                }),
            );
            return;
        }
        self.txn_commit_slow(id, tspan, cont);
    }

    /// Run `f` once every pipelined write has been acknowledged. The
    /// non-parallel commit paths and rollback join the pipeline before
    /// touching the write set.
    fn join_pipeline(&mut self, id: TxnId, f: Box<dyn FnOnce(&mut Cluster)>) {
        let Some(st) = self.txns.get(&id) else {
            f(self);
            return;
        };
        let pl = Rc::clone(&st.pipeline);
        let mut p = pl.borrow_mut();
        if p.outstanding == 0 {
            drop(p);
            f(self);
        } else {
            debug_assert!(p.waiter.is_none(), "one pipeline joiner at a time");
            p.waiter = Some(f);
        }
    }

    /// Commit a transaction whose writes were pipelined.
    fn txn_commit_pipelined(
        &mut self,
        id: TxnId,
        tspan: Option<SpanId>,
        cont: Cont<KvResult<Timestamp>>,
    ) {
        let st = self.txns.get(&id).expect("checked by caller");
        if st.rewrote_sent {
            // A pipelined intent holds a stale value. Join the in-flight
            // set (so a late old-value Put cannot overwrite a fresh one),
            // then re-put every buffered write and finish two-phase.
            self.join_pipeline(
                id,
                Box::new(move |c| {
                    let failed = c
                        .txns
                        .get(&id)
                        .and_then(|st| st.pipeline.borrow_mut().failed.take());
                    if let Some(e) = failed {
                        c.abort_after_failure(id);
                        cont(c, Err(e));
                        return;
                    }
                    c.txn_commit_slow(id, tspan, cont);
                }),
            );
            return;
        }
        if !self.cfg.parallel_commits {
            // Pipelining without parallel commits (ablation): join, then
            // the ordinary refresh + EndTxn round — two consensus rounds.
            self.join_pipeline(
                id,
                Box::new(move |c| {
                    let failed = c
                        .txns
                        .get(&id)
                        .and_then(|st| st.pipeline.borrow_mut().failed.take());
                    if let Some(e) = failed {
                        c.abort_after_failure(id);
                        cont(c, Err(e));
                        return;
                    }
                    if let Some(st) = c.txns.get_mut(&id) {
                        st.buffered.clear();
                    }
                    c.txn_finish_two_phase(id, tspan, cont);
                }),
            );
            return;
        }
        // Parallel commit. If the write timestamp already moved above the
        // read snapshot (tscache bump, closed-timestamp target), refresh
        // before staging: the staged timestamp must be one the transaction's
        // reads are valid at.
        let (read_ts, write_ts) = (st.read_ts, st.write_ts);
        if write_ts > read_ts {
            self.txn_refresh_reads(
                id,
                write_ts,
                Box::new(move |c, r| match r {
                    Ok(()) => c.txn_stage(id, tspan, cont),
                    // Refresh failure already aborted the transaction.
                    Err(e) => cont(c, Err(e)),
                }),
            );
        } else {
            self.txn_stage(id, tspan, cont);
        }
    }

    /// The parallel-commit hinge: write the STAGING record (carrying the
    /// in-flight write set) concurrently with the outstanding pipelined
    /// intents and ack the client once both arms succeed — the transaction
    /// is then *implicitly committed* after a single consensus round. An
    /// explicit EndTxn finalizes the record asynchronously after the ack;
    /// contenders that find the STAGING record first run status recovery
    /// (`staging_recover`) instead of waiting.
    fn txn_stage(&mut self, id: TxnId, tspan: Option<SpanId>, cont: Cont<KvResult<Timestamp>>) {
        let Some(st) = self.txns.get_mut(&id) else {
            cont(self, Err(KvError::TxnNotFound { id }));
            return;
        };
        let gateway = st.gateway;
        let meta = st.meta();
        let staged_ts = meta.write_ts;
        let in_flight = st.sent.clone();
        // Every write is in flight as an intent; nothing left to flush.
        st.buffered.clear();
        let pl = Rc::clone(&st.pipeline);
        let now = self.now();
        let pspan = self.obs.tracer.start("txn.pipeline", tspan, now);
        if pspan.is_some() {
            self.obs.tracer.attr(pspan, "txn", format!("{id}"));
            self.obs
                .tracer
                .attr(pspan, "staged_ts", format!("{staged_ts}"));
            self.obs
                .tracer
                .attr(pspan, "in_flight", in_flight.len().to_string());
            self.obs
                .tracer
                .attr(pspan, "outstanding", pl.borrow().outstanding.to_string());
        }
        let join = Rc::new(RefCell::new(StageJoin {
            stage: None,
            puts_done: false,
            cont: Some(cont),
        }));
        {
            let mut p = pl.borrow_mut();
            if p.outstanding == 0 || self.premature_ack_bug {
                // No writes outstanding — or (injected bug) don't wait for
                // them: the ack then races replication and a crash can lose
                // acknowledged writes. The chaos checker must catch this.
                join.borrow_mut().puts_done = true;
            } else {
                let join2 = Rc::clone(&join);
                let pl2 = Rc::clone(&pl);
                p.waiter = Some(Box::new(move |c| {
                    join2.borrow_mut().puts_done = true;
                    Cluster::stage_try_complete(c, id, staged_ts, tspan, pspan, &join2, &pl2);
                }));
            }
        }
        let join2 = Rc::clone(&join);
        let pl2 = Rc::clone(&pl);
        let anchor = meta.anchor.clone();
        self.dist_send(
            gateway,
            anchor,
            RouteMode::Leaseholder,
            Request::StageTxn {
                txn: meta,
                in_flight,
            },
            MAX_ATTEMPTS,
            pspan,
            Box::new(move |c, res| {
                join2.borrow_mut().stage = Some(match res {
                    Ok(Response::StageTxn { commit_ts }) => Ok(commit_ts),
                    Ok(_) => unreachable!("stage returned unexpected response"),
                    Err(e) => Err(e),
                });
                Cluster::stage_try_complete(c, id, staged_ts, tspan, pspan, &join2, &pl2);
            }),
        );
    }

    /// Complete a parallel commit once both arms of the join have reported.
    fn stage_try_complete(
        c: &mut Cluster,
        id: TxnId,
        staged_ts: Timestamp,
        tspan: Option<SpanId>,
        pspan: Option<SpanId>,
        join: &Rc<RefCell<StageJoin>>,
        pl: &Rc<RefCell<PipelineState>>,
    ) {
        let (stage_res, cont) = {
            let mut j = join.borrow_mut();
            if j.stage.is_none() || !j.puts_done || j.cont.is_none() {
                return;
            }
            (j.stage.take().unwrap(), j.cont.take().unwrap())
        };
        let now = c.now();
        c.obs.tracer.finish(pspan, now);
        let (failed, max_written) = {
            let mut p = pl.borrow_mut();
            (p.failed.take(), p.max_written_ts)
        };
        let gateway = c.txns.get(&id).map(|st| st.gateway).expect("txn state");
        if c.cfg.trace {
            eprintln!(
                "[pc] stage-complete txn={id} staged={staged_ts} res={stage_res:?} failed={failed:?} maxw={max_written}"
            );
        }
        if let Err(e) = stage_res {
            // The record's fate is unknown (timeout, failover): write an
            // explicit ABORT — it beats zombie stage retries and pins
            // any concurrent recovery to one outcome.
            c.txn_abort_staged(id);
            cont(c, Err(e));
            return;
        }
        if let Some(e) = failed {
            // A pipelined write failed terminally: the STAGING record must
            // not stay recoverable-as-committed.
            c.txn_abort_staged(id);
            cont(c, Err(e));
            return;
        }
        if max_written > staged_ts {
            // A pipelined write landed above the staged timestamp, so the
            // commit is not implicit. Refresh reads to the higher timestamp
            // and commit explicitly (the restage path — one extra round).
            c.m.parallel_commit_restages.inc();
            c.obs.tracer.event(
                tspan,
                now,
                format!("restage: write at {max_written} above staged {staged_ts}"),
            );
            c.txn_finish_two_phase(id, tspan, cont);
            return;
        }
        // Implicitly committed: STAGING record written and every in-flight
        // write at or below the staged timestamp. Ack after commit wait;
        // make the commit explicit asynchronously.
        c.m.parallel_commit_acks.inc();
        c.m.txn_commits.inc();
        if let Some(st) = c.txns.get_mut(&id) {
            st.finished = true;
            st.committed = true;
        }
        let finish: Box<dyn FnOnce(&mut Cluster)> = Box::new(move |c2: &mut Cluster| {
            c2.txn_make_explicit(id, staged_ts);
            c2.finish_txn_span(id);
            cont(c2, Ok(staged_ts));
        });
        c.commit_wait(gateway, staged_ts, Some(id), tspan, finish);
    }

    /// Asynchronously convert an implicit commit (STAGING record + all
    /// writes landed) into an explicit one, then resolve the intents. The
    /// record must finalize *before* any intent resolves: a recovery that
    /// finds the record STAGING probes for the in-flight intents, and
    /// resolving one early would read as "write lost" and abort a committed
    /// transaction.
    fn txn_make_explicit(&mut self, id: TxnId, commit_ts: Timestamp) {
        let Some(st) = self.txns.get(&id) else { return };
        let gateway = st.gateway;
        let meta = st.meta();
        let anchor = meta.anchor.clone();
        let tspan = self.txn_span(id);
        // Track as an op so `run_until_quiescent` covers finalization.
        self.op_started();
        self.dist_send(
            gateway,
            anchor,
            RouteMode::Leaseholder,
            Request::EndTxn {
                txn: meta,
                commit: true,
            },
            8,
            tspan,
            Box::new(move |c, res| {
                if c.cfg.trace {
                    eprintln!("[pc] make-explicit txn={id} cts={commit_ts} res={res:?}");
                }
                if let Ok(Response::EndTxn { .. }) = res {
                    c.finalize_intents(id, TxnStatus::Committed, commit_ts);
                }
                // On error the intents stay; contenders' pushers recover.
                c.op_finished();
            }),
        );
    }

    /// Abort a transaction whose STAGING record may exist: write an
    /// explicit ABORT record first, then resolve the intents. If the record
    /// turns out COMMITTED — a recovery raced us and found every write —
    /// the intents are left to the contenders' pushers; the client already
    /// received an ambiguous error.
    fn txn_abort_staged(&mut self, id: TxnId) {
        let Some(st) = self.txns.get_mut(&id) else {
            return;
        };
        if st.finished {
            return;
        }
        st.finished = true;
        self.m.txn_restarts.inc();
        let gateway = st.gateway;
        let meta = st.meta();
        let anchor = meta.anchor.clone();
        let tspan = self.txn_span(id);
        let now = self.now();
        self.obs
            .tracer
            .event(tspan, now, "parallel commit failed: aborting");
        self.op_started();
        self.dist_send(
            gateway,
            anchor,
            RouteMode::Leaseholder,
            Request::EndTxn {
                txn: meta,
                commit: false,
            },
            8,
            tspan,
            Box::new(move |c, res| {
                if let Ok(Response::EndTxn { .. }) = res {
                    c.finalize_intents(id, TxnStatus::Aborted, Timestamp::ZERO);
                }
                c.op_finished();
            }),
        );
        self.finish_txn_span(id);
    }

    /// Two-phase commit: flush buffered writes as intents (in parallel),
    /// refresh reads if the write timestamp moved, write the transaction
    /// record, then resolve intents concurrently with commit wait (§6.2).
    fn txn_commit_slow(
        &mut self,
        id: TxnId,
        tspan: Option<SpanId>,
        cont: Cont<KvResult<Timestamp>>,
    ) {
        let Some(st) = self.txns.get_mut(&id) else {
            cont(self, Err(KvError::TxnNotFound { id }));
            return;
        };
        let gateway = st.gateway;
        let writes: Vec<(Key, Option<Value>)> = std::mem::take(&mut st.buffered);
        let meta = st.meta();
        if writes.is_empty() {
            // Buffer already flushed (retried fallback): go straight on.
            self.txn_finish_two_phase(id, tspan, cont);
            return;
        }
        let total = writes.len();
        let state = Rc::new(RefCell::new((total, Some(cont), false)));
        for (key, value) in writes {
            let st = Rc::clone(&state);
            let record_key = key.clone();
            self.dist_send(
                gateway,
                key.clone(),
                RouteMode::Leaseholder,
                Request::Put {
                    txn: meta.clone(),
                    key,
                    value,
                },
                MAX_ATTEMPTS,
                tspan,
                Box::new(move |c, res| {
                    let mut s = st.borrow_mut();
                    if s.2 {
                        return;
                    }
                    match res {
                        Ok(Response::Put { written_ts }) => {
                            if let Some(txn) = c.txns.get_mut(&id) {
                                txn.write_ts = txn.write_ts.forward(written_ts);
                                txn.intents.push(record_key);
                            }
                            s.0 -= 1;
                            if s.0 == 0 {
                                let cont = s.1.take().expect("commit cont");
                                drop(s);
                                c.txn_finish_two_phase(id, tspan, cont);
                            }
                        }
                        Ok(_) => unreachable!("put returned non-put response"),
                        Err(e) => {
                            s.2 = true;
                            let cont = s.1.take().expect("commit cont");
                            drop(s);
                            c.abort_after_failure(id);
                            cont(c, Err(e));
                        }
                    }
                }),
            );
        }
    }

    /// After intents are in place: refresh reads if needed, then EndTxn.
    fn txn_finish_two_phase(
        &mut self,
        id: TxnId,
        tspan: Option<SpanId>,
        cont: Cont<KvResult<Timestamp>>,
    ) {
        let Some(st) = self.txns.get(&id) else {
            cont(self, Err(KvError::TxnNotFound { id }));
            return;
        };
        let (read_ts, write_ts) = (st.read_ts, st.write_ts);
        if write_ts > read_ts {
            self.txn_refresh_reads(
                id,
                write_ts,
                Box::new(move |c, r| match r {
                    Ok(()) => c.txn_send_end(id, tspan, cont),
                    Err(e) => cont(c, Err(e)),
                }),
            );
        } else {
            self.txn_send_end(id, tspan, cont);
        }
    }

    fn txn_send_end(&mut self, id: TxnId, tspan: Option<SpanId>, cont: Cont<KvResult<Timestamp>>) {
        let Some(st) = self.txns.get(&id) else {
            cont(self, Err(KvError::TxnNotFound { id }));
            return;
        };
        let gateway = st.gateway;
        let meta = st.meta();
        let anchor = meta.anchor.clone();
        self.dist_send(
            gateway,
            anchor,
            RouteMode::Leaseholder,
            Request::EndTxn {
                txn: meta,
                commit: true,
            },
            MAX_ATTEMPTS,
            tspan,
            Box::new(move |c, res| match res {
                Ok(Response::EndTxn { commit_ts }) => {
                    if let Some(st) = c.txns.get_mut(&id) {
                        st.finished = true;
                        st.committed = true;
                    }
                    c.m.txn_commits.inc();
                    if c.cfg.commit_wait_holds_locks {
                        // Spanner-style ablation: resolve intents (release
                        // locks) only after commit wait completes.
                        let finish: Box<dyn FnOnce(&mut Cluster)> =
                            Box::new(move |c2: &mut Cluster| {
                                c2.finalize_intents(id, TxnStatus::Committed, commit_ts);
                                c2.finish_txn_span(id);
                                cont(c2, Ok(commit_ts));
                            });
                        c.commit_wait(gateway, commit_ts, Some(id), tspan, finish);
                    } else {
                        // CRDB: intent resolution proceeds concurrently with
                        // commit wait (§6.2) — locks release while we wait.
                        c.finalize_intents(id, TxnStatus::Committed, commit_ts);
                        let finish: Box<dyn FnOnce(&mut Cluster)> =
                            Box::new(move |c2: &mut Cluster| {
                                c2.finish_txn_span(id);
                                cont(c2, Ok(commit_ts))
                            });
                        c.commit_wait(gateway, commit_ts, Some(id), tspan, finish);
                    }
                }
                Ok(_) => unreachable!("end txn returned unexpected response"),
                Err(e) => {
                    c.abort_after_failure(id);
                    cont(c, Err(e));
                }
            }),
        );
    }

    /// Fire-and-forget intent resolution for every write of `id`.
    fn finalize_intents(&mut self, id: TxnId, status: TxnStatus, commit_ts: Timestamp) {
        let Some(st) = self.txns.get(&id) else { return };
        let gateway = st.gateway;
        let intents = st.intents.clone();
        for key in intents {
            let req = Request::ResolveIntent {
                key: key.clone(),
                txn_id: id,
                status,
                commit_ts,
            };
            let tspan = self.txn_span(id);
            self.dist_send(
                gateway,
                key,
                RouteMode::Leaseholder,
                req,
                8,
                tspan,
                Box::new(|_, _| {}),
            );
        }
    }

    /// Delay `f` until the gateway's HLC exceeds `ts` (no-op when already
    /// past). This is the §6.2 commit wait: local-clock-only, unlike
    /// Spanner's wait for global clock consensus.
    fn commit_wait(
        &mut self,
        gateway: NodeId,
        ts: Timestamp,
        txn: Option<TxnId>,
        parent: Option<SpanId>,
        f: Box<dyn FnOnce(&mut Cluster)>,
    ) {
        let now = self.now();
        let wait = self.node(gateway).hlc.time_until_passed(ts, now);
        if wait == SimDuration::ZERO {
            f(self);
        } else {
            let wait_start = now;
            self.m.commit_waits.inc();
            self.m.commit_wait_nanos.add(wait.nanos());
            self.m.commit_wait_latency.record(wait.nanos());
            let span = self.obs.tracer.start("txn.commit_wait", parent, now);
            self.obs.tracer.attr(span, "commit_ts", format!("{ts}"));
            self.obs
                .tracer
                .attr(span, "wait_nanos", wait.nanos().to_string());
            self.schedule(
                wait,
                Box::new(move |c| {
                    let now = c.now();
                    c.obs.tracer.finish(span, now);
                    if let Some(id) = txn {
                        if let Some(st) = c.txns.get_mut(&id) {
                            st.attr.charge(Component::CommitWait, wait_start, now);
                        }
                    }
                    // §6.2 correctness hinges on the wait being long enough:
                    // once it elapses, the gateway clock must have passed the
                    // (future-time) commit timestamp, so no later reader can
                    // see the value before real time reaches it.
                    let remaining = c.node(gateway).hlc.time_until_passed(ts, now);
                    c.obs.monitors.check(
                        &c.obs.registry,
                        "commit_wait",
                        now,
                        remaining == SimDuration::ZERO,
                        || {
                            format!(
                                "commit wait at n{} ended {} ns before clock passed commit ts {ts}",
                                gateway.0,
                                remaining.nanos()
                            )
                        },
                    );
                    f(c)
                }),
            );
        }
    }

    // ------------------------------------------------------------------
    // Internals: the transaction-record pusher
    // ------------------------------------------------------------------

    /// A request parked behind `holder`'s lock on `key`. Start (at most one
    /// per blocked key) a pusher that periodically asks the holder's anchor
    /// range for its disposition; if the holder has finalized — e.g. its
    /// coordinator died after committing — the pusher resolves the intent
    /// itself, unblocking the queue. While the holder is still `Pending`
    /// the waiters simply keep waiting (CRDB's behaviour without deadlock
    /// detection; our workloads are single-key or key-ordered).
    pub(crate) fn start_pusher(
        &mut self,
        node: NodeId,
        range: mr_proto::RangeId,
        key: Key,
        holder: TxnMeta,
    ) {
        if !self.active_pushers.insert((range, key.clone())) {
            if self.cfg.trace {
                eprintln!("[pusher] dedup {range} {key:?}");
            }
            return;
        }
        if self.cfg.trace {
            eprintln!("[pusher] start {range} {key:?} holder {}", holder.id);
        }
        let delay = SimDuration::from_millis(100);
        self.schedule(
            delay,
            Box::new(move |c| c.pusher_tick(node, range, key, holder, 0)),
        );
    }

    /// Pushes a holder found `Pending` this many times (at 1s apart) are
    /// escalated to an abort: the holder's coordinator is presumed dead —
    /// CRDB's expired-heartbeat push. Without this, an intent whose
    /// coordinator gave up before writing any record (its cleanup exhausted
    /// its retries during a leadership change) blocks waiters forever.
    const PUSH_EXPIRY_ROUNDS: u32 = 5;

    fn pusher_tick(
        &mut self,
        node: NodeId,
        range: mr_proto::RangeId,
        key: Key,
        holder: TxnMeta,
        rounds: u32,
    ) {
        // Stop when the block is gone, this replica lost the lease, or the
        // node died (waiters will time out / re-route).
        let still_leaseholder = self
            .registry()
            .get(range)
            .is_some_and(|d| d.leaseholder == node);
        let still_blocked = self.node(node).replicas.get(&range).is_some_and(|r| {
            r.locks.holder(&key).map(|h| h.id) == Some(holder.id)
                || r.store.intent(&key).map(|i| i.txn.id) == Some(holder.id)
        });
        if !still_blocked || !still_leaseholder || !self.topology().is_node_alive(node) {
            if self.cfg.trace {
                eprintln!(
                    "[pusher] stop {range} {key:?} blocked={still_blocked} lh={still_leaseholder}"
                );
            }
            self.active_pushers.remove(&(range, key));
            return;
        }
        if self.cfg.trace {
            eprintln!("[pusher] push {range} {key:?} -> {}", holder.id);
        }
        let push = Request::PushTxn {
            pushee: holder.id,
            anchor: holder.anchor.clone(),
        };
        let anchor = holder.anchor.clone();
        self.dist_send(
            node,
            anchor,
            RouteMode::Leaseholder,
            push,
            4,
            None,
            Box::new(move |c, res| match res {
                Ok(Response::PushTxn {
                    status: status @ (TxnStatus::Committed | TxnStatus::Aborted),
                    commit_ts,
                    ..
                }) => {
                    // The holder finalized: resolve its intent ourselves.
                    c.active_pushers.remove(&(range, key.clone()));
                    let resolve = Request::ResolveIntent {
                        key: key.clone(),
                        txn_id: holder.id,
                        status,
                        commit_ts,
                    };
                    c.dist_send(
                        node,
                        key,
                        RouteMode::Leaseholder,
                        resolve,
                        4,
                        None,
                        Box::new(|_, _| {}),
                    );
                }
                Ok(Response::PushTxn {
                    status: TxnStatus::Staging,
                    commit_ts,
                    in_flight,
                }) => {
                    // The holder staged a parallel commit but its coordinator
                    // hasn't finalized (it may be dead): run status recovery.
                    c.staging_recover(node, range, key, holder, commit_ts, in_flight);
                }
                Ok(Response::PushTxn {
                    status: TxnStatus::Pending,
                    ..
                }) if rounds + 1 >= Self::PUSH_EXPIRY_ROUNDS => {
                    // No record after repeated pushes: the coordinator is
                    // presumed dead, its intents abandoned. Finalize the
                    // holder as aborted through the RecoverTxn apply-time
                    // CAS — `staged_ts` ZERO can never match a genuine
                    // STAGING record (staged timestamps are real HLC
                    // readings), so a coordinator racing this abort with a
                    // stage or commit wins or loses by log order, and the
                    // record's authoritative disposition drives resolution.
                    if c.cfg.trace {
                        eprintln!("[pusher] expire {range} {key:?} holder {}", holder.id);
                    }
                    c.recover_finalize(
                        node,
                        range,
                        key,
                        holder,
                        Timestamp::ZERO,
                        false,
                        Vec::new(),
                        None,
                    );
                }
                _ => {
                    // Still pending (or push failed): try again later.
                    c.schedule(
                        SimDuration::from_millis(1_000),
                        Box::new(move |c2| c2.pusher_tick(node, range, key, holder, rounds + 1)),
                    );
                }
            }),
        );
    }

    /// Status recovery for a transaction found in STAGING (§ parallel
    /// commits). Probe every in-flight write with QueryIntent at the staged
    /// timestamp: if all landed, the transaction is implicitly committed and
    /// we finalize it as COMMITTED; if any is missing, the probe's timestamp
    /// -cache bump guarantees it can never land at or below the staged
    /// timestamp, so the transaction can be finalized as ABORTED. Exactly
    /// one outcome wins: RecoverTxn is an apply-time CAS on the record.
    fn staging_recover(
        &mut self,
        node: NodeId,
        range: mr_proto::RangeId,
        key: Key,
        holder: TxnMeta,
        staged_ts: Timestamp,
        in_flight: Vec<Key>,
    ) {
        self.m.staging_recoveries.inc();
        if self.cfg.trace {
            eprintln!(
                "[pc] recover txn={} staged={staged_ts} in_flight={in_flight:?}",
                holder.id
            );
        }
        let now = self.now();
        let rspan = self.obs.tracer.start("txn.staging_recovery", None, now);
        if rspan.is_some() {
            self.obs.tracer.attr(rspan, "txn", format!("{}", holder.id));
            self.obs
                .tracer
                .attr(rspan, "staged_ts", format!("{staged_ts}"));
            self.obs
                .tracer
                .attr(rspan, "in_flight", in_flight.len().to_string());
        }
        if in_flight.is_empty() {
            // Nothing was in flight when the record staged: implicit commit.
            self.recover_finalize(node, range, key, holder, staged_ts, true, in_flight, rspan);
            return;
        }
        // (remaining probes, all found so far, any probe errored)
        let state = Rc::new(RefCell::new((in_flight.len(), true, false)));
        for qkey in in_flight.clone() {
            let state2 = Rc::clone(&state);
            let key2 = key.clone();
            let holder2 = holder.clone();
            let in_flight2 = in_flight.clone();
            let probe = Request::QueryIntent {
                key: qkey.clone(),
                txn_id: holder.id,
                ts: staged_ts,
            };
            self.dist_send(
                node,
                qkey,
                RouteMode::Leaseholder,
                probe,
                4,
                rspan,
                Box::new(move |c, res| {
                    let done = {
                        let mut s = state2.borrow_mut();
                        match res {
                            Ok(Response::QueryIntent { found }) => s.1 &= found,
                            Ok(_) => unreachable!("query intent returned wrong response"),
                            Err(_) => s.2 = true,
                        }
                        s.0 -= 1;
                        s.0 == 0
                    };
                    if !done {
                        return;
                    }
                    let (_, all_found, any_err) = *state2.borrow();
                    if !all_found {
                        // A definitive miss trumps probe errors: the
                        // QueryIntent miss bumped the timestamp cache, so
                        // the write can never land below the staged ts.
                        c.recover_finalize(
                            node, range, key2, holder2, staged_ts, false, in_flight2, rspan,
                        );
                    } else if any_err {
                        // Inconclusive: retry the push later.
                        let now = c.now();
                        c.obs.tracer.event(rspan, now, "probe inconclusive; retry");
                        c.obs.tracer.finish(rspan, now);
                        c.schedule(
                            SimDuration::from_millis(1_000),
                            Box::new(move |c2| c2.pusher_tick(node, range, key2, holder2, 0)),
                        );
                    } else {
                        c.recover_finalize(
                            node, range, key2, holder2, staged_ts, true, in_flight2, rspan,
                        );
                    }
                }),
            );
        }
    }

    /// Write the recovery verdict through RecoverTxn and resolve the
    /// holder's intents with whatever status the record actually finalized
    /// to (the coordinator may have won the race with a different verdict).
    #[allow(clippy::too_many_arguments)]
    fn recover_finalize(
        &mut self,
        node: NodeId,
        range: mr_proto::RangeId,
        key: Key,
        holder: TxnMeta,
        staged_ts: Timestamp,
        commit: bool,
        in_flight: Vec<Key>,
        rspan: Option<SpanId>,
    ) {
        let recover = Request::RecoverTxn {
            txn_id: holder.id,
            anchor: holder.anchor.clone(),
            staged_ts,
            commit,
        };
        let anchor = holder.anchor.clone();
        self.dist_send(
            node,
            anchor,
            RouteMode::Leaseholder,
            recover,
            4,
            rspan,
            Box::new(move |c, res| {
                if c.cfg.trace {
                    eprintln!(
                        "[pc] recover-finalize txn={} staged={staged_ts} verdict_commit={commit} res={res:?}",
                        holder.id
                    );
                }
                let now = c.now();
                match res {
                    Ok(Response::RecoverTxn { status, commit_ts }) if status.is_finalized() => {
                        if status == TxnStatus::Committed {
                            c.m.staging_recovery_commits.inc();
                        } else {
                            c.m.staging_recovery_aborts.inc();
                        }
                        c.obs.tracer.attr(rspan, "outcome", format!("{status:?}"));
                        c.obs.tracer.finish(rspan, now);
                        c.active_pushers.remove(&(range, key.clone()));
                        // Resolve the blocked key and every in-flight write
                        // with the *record's* status — authoritative even if
                        // it differs from our verdict.
                        let mut keys = in_flight;
                        if !keys.contains(&key) {
                            keys.push(key);
                        }
                        for rkey in keys {
                            let resolve = Request::ResolveIntent {
                                key: rkey.clone(),
                                txn_id: holder.id,
                                status,
                                commit_ts,
                            };
                            c.dist_send(
                                node,
                                rkey,
                                RouteMode::Leaseholder,
                                resolve,
                                4,
                                None,
                                Box::new(|_, _| {}),
                            );
                        }
                    }
                    Ok(Response::RecoverTxn { .. }) => {
                        // The record re-staged at a new timestamp (the
                        // coordinator is alive and restarting the commit):
                        // back off and push again.
                        c.obs.tracer.event(rspan, now, "record re-staged; retry");
                        c.obs.tracer.finish(rspan, now);
                        c.schedule(
                            SimDuration::from_millis(1_000),
                            Box::new(move |c2| c2.pusher_tick(node, range, key, holder, 0)),
                        );
                    }
                    Ok(_) => unreachable!("recover returned wrong response"),
                    Err(_) => {
                        c.obs.tracer.event(rspan, now, "recover failed; retry");
                        c.obs.tracer.finish(rspan, now);
                        c.schedule(
                            SimDuration::from_millis(1_000),
                            Box::new(move |c2| c2.pusher_tick(node, range, key, holder, 0)),
                        );
                    }
                }
            }),
        );
    }

    // ------------------------------------------------------------------
    // Internals: stale reads
    // ------------------------------------------------------------------

    fn stale_read_at(
        &mut self,
        gateway: NodeId,
        key: Key,
        ts: Timestamp,
        tspan: Option<SpanId>,
        cont: Cont<KvResult<Option<Value>>>,
    ) {
        let rctx = ReadCtx::stale(ts);
        self.dist_send(
            gateway,
            key.clone(),
            RouteMode::Nearest,
            Request::Get { ctx: rctx, key },
            MAX_ATTEMPTS,
            tspan,
            Box::new(move |c, res| match res {
                Ok(Response::Get { value, .. }) => cont(c, Ok(value)),
                Ok(_) => unreachable!("get returned non-get response"),
                Err(e) => cont(c, Err(e)),
            }),
        );
    }

    fn bounded_staleness_read(
        &mut self,
        gateway: NodeId,
        key: Key,
        min_ts: Timestamp,
        opts: ReadOptions,
        tspan: Option<SpanId>,
        cont: Cont<KvResult<Option<Value>>>,
    ) {
        let now_ts = self.hlc_now(gateway);
        let negotiate = Request::Negotiate {
            spans: vec![Span::point(key.clone())],
        };
        let nkey = key.clone();
        self.dist_send(
            gateway,
            nkey,
            RouteMode::Nearest,
            negotiate,
            MAX_ATTEMPTS,
            tspan,
            Box::new(move |c, res| match res {
                Ok(Response::Negotiate { max_safe_ts }) => {
                    // Freshest locally-servable timestamp, capped at now.
                    let chosen = max_safe_ts.min(now_ts);
                    if chosen >= min_ts {
                        c.stale_read_at(gateway, key, chosen, tspan, cont);
                    } else if opts.fallback_to_leaseholder {
                        // Serve from the leaseholder at the staleness bound.
                        let rctx = ReadCtx::stale(min_ts);
                        c.dist_send(
                            gateway,
                            key.clone(),
                            RouteMode::Leaseholder,
                            Request::Get { ctx: rctx, key },
                            MAX_ATTEMPTS,
                            tspan,
                            Box::new(move |c2, res| match res {
                                Ok(Response::Get { value, .. }) => cont(c2, Ok(value)),
                                Ok(_) => unreachable!(),
                                Err(e) => cont(c2, Err(e)),
                            }),
                        );
                    } else {
                        cont(
                            c,
                            Err(KvError::StalenessBoundExceeded {
                                min_ts,
                                max_safe_ts,
                            }),
                        );
                    }
                }
                Ok(_) => unreachable!("negotiate returned unexpected response"),
                Err(e) => cont(c, Err(e)),
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(k: &str, v: &str) -> (Key, Value) {
        (Key::from(k), Value::from(v))
    }

    #[test]
    fn overlay_replaces_adds_and_deletes() {
        let span = Span::new(Key::from("a"), Key::from("z"));
        let rows = vec![kv("b", "old_b"), kv("d", "old_d"), kv("f", "old_f")];
        let buffered: Vec<(Key, Option<Value>)> = vec![
            (Key::from("b"), Some(Value::from("new_b"))), // replace
            (Key::from("c"), Some(Value::from("new_c"))), // add
            (Key::from("d"), None),                       // delete
            (Key::from("zz"), Some(Value::from("out"))),  // outside span
        ];
        let out = overlay_buffer(rows, &buffered, &span);
        let keys: Vec<&[u8]> = out.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![b"b".as_slice(), b"c", b"f"]);
        assert_eq!(out[0].1, Value::from("new_b"));
        assert_eq!(out[1].1, Value::from("new_c"));
        assert_eq!(out[2].1, Value::from("old_f"));
    }

    #[test]
    fn overlay_noop_without_relevant_buffer() {
        let span = Span::new(Key::from("a"), Key::from("m"));
        let rows = vec![kv("b", "x")];
        let buffered = vec![(Key::from("q"), Some(Value::from("y")))];
        let out = overlay_buffer(rows.clone(), &buffered, &span);
        assert_eq!(out, rows);
    }
}

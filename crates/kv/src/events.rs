//! Bounded cluster event log.
//!
//! Structured admin-plane events — range creation, zone-config changes,
//! lease transfers (cooperative and failover), row rehoming — recorded in
//! simulation order with a sequence number and sim-time. The log backs the
//! `crdb_internal.cluster_events` virtual table and feeds the online
//! invariant monitors; its JSON export is deterministic for a fixed seed
//! (integers and fixed strings only, append order).
//!
//! Retention is a ring: once `cap` events are held, each new record evicts
//! the oldest and bumps a `dropped` counter. Sequence numbers stay globally
//! monotone across evictions, so a reader can always tell truncated history
//! (first retained `seq` > `dropped` gap) from empty history.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use mr_proto::RangeId;
use mr_sim::{NodeId, SimTime};

/// What happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A range was created and its replicas placed.
    RangeCreated { range: RangeId, leaseholder: NodeId },
    /// A range was removed (table drop or partition-layout rewrite).
    RangeDropped { range: RangeId },
    /// A range was re-placed under a new zone config (`SET LOCALITY`,
    /// survivability or placement changes).
    ZoneConfigChanged { range: RangeId, leaseholder: NodeId },
    /// The lease moved. `cooperative` distinguishes planned transfers from
    /// failover usurpation of a dead leaseholder.
    LeaseTransfer {
        range: RangeId,
        from: NodeId,
        to: NodeId,
        cooperative: bool,
    },
    /// A REGIONAL BY ROW row moved between region partitions (automatic
    /// rehoming, §2.3.2). Recorded by the SQL layer.
    RowRehomed {
        from_region: String,
        to_region: String,
    },
    /// A fault was injected through the fault-injection API (nemesis
    /// schedules, chaos tests). `step` is the 0-based index within the
    /// injecting `FaultSchedule`, when one drove the injection.
    FaultInjected {
        range: Option<RangeId>,
        step: Option<u32>,
        detail: String,
    },
    /// A range split: `range` (the LHS, which keeps its id) shed everything
    /// at or above `split_key` into the new range `rhs`.
    RangeSplit {
        range: RangeId,
        rhs: RangeId,
        split_key: String,
    },
    /// Two adjacent ranges merged: `rhs` was absorbed into `range`.
    RangeMerge { range: RangeId, rhs: RangeId },
    /// The load-based rebalancer moved the lease toward demand (outside the
    /// configured preference is allowed, transiently).
    LeaseRebalance {
        range: RangeId,
        from: NodeId,
        to: NodeId,
    },
    /// The load-based rebalancer moved a non-voting replica toward demand.
    ReplicaRebalance {
        range: RangeId,
        from: NodeId,
        to: NodeId,
    },
    /// A replica recovered from its write-ahead log after a volatile
    /// crash: `replayed` durable records rebuilt the memtable, resuming at
    /// Raft `applied_index`.
    WalRecovered {
        range: RangeId,
        node: NodeId,
        replayed: u64,
        applied_index: u64,
    },
}

impl EventKind {
    /// Stable kind label used by exports and the virtual table.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::RangeCreated { .. } => "range_created",
            EventKind::RangeDropped { .. } => "range_dropped",
            EventKind::ZoneConfigChanged { .. } => "zone_config_changed",
            EventKind::LeaseTransfer { .. } => "lease_transfer",
            EventKind::RowRehomed { .. } => "row_rehomed",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::RangeSplit { .. } => "range_split",
            EventKind::RangeMerge { .. } => "range_merge",
            EventKind::LeaseRebalance { .. } => "lease_rebalance",
            EventKind::ReplicaRebalance { .. } => "replica_rebalance",
            EventKind::WalRecovered { .. } => "wal_recovered",
        }
    }

    /// The range the event concerns, if any.
    pub fn range(&self) -> Option<RangeId> {
        match self {
            EventKind::RangeCreated { range, .. }
            | EventKind::RangeDropped { range }
            | EventKind::ZoneConfigChanged { range, .. }
            | EventKind::LeaseTransfer { range, .. }
            | EventKind::RangeSplit { range, .. }
            | EventKind::RangeMerge { range, .. }
            | EventKind::LeaseRebalance { range, .. }
            | EventKind::ReplicaRebalance { range, .. }
            | EventKind::WalRecovered { range, .. } => Some(*range),
            EventKind::RowRehomed { .. } => None,
            EventKind::FaultInjected { range, .. } => *range,
        }
    }

    /// Human-readable detail string (deterministic: ids and fixed text).
    pub fn detail(&self) -> String {
        match self {
            EventKind::RangeCreated { leaseholder, .. } => {
                format!("leaseholder n{}", leaseholder.0)
            }
            EventKind::RangeDropped { .. } => String::new(),
            EventKind::ZoneConfigChanged { leaseholder, .. } => {
                format!("leaseholder n{}", leaseholder.0)
            }
            EventKind::LeaseTransfer {
                from,
                to,
                cooperative,
                ..
            } => format!(
                "n{} -> n{} ({})",
                from.0,
                to.0,
                if *cooperative {
                    "cooperative"
                } else {
                    "failover"
                }
            ),
            EventKind::RowRehomed {
                from_region,
                to_region,
            } => format!("{from_region} -> {to_region}"),
            EventKind::FaultInjected { step, detail, .. } => match step {
                Some(s) => format!("step {s}: {detail}"),
                None => detail.clone(),
            },
            EventKind::RangeSplit { rhs, split_key, .. } => {
                format!("at {split_key} -> rng{}", rhs.0)
            }
            EventKind::RangeMerge { rhs, .. } => format!("absorbed rng{}", rhs.0),
            EventKind::LeaseRebalance { from, to, .. } => {
                format!("n{} -> n{} (load)", from.0, to.0)
            }
            EventKind::ReplicaRebalance { from, to, .. } => {
                format!("n{} -> n{} (load)", from.0, to.0)
            }
            EventKind::WalRecovered {
                node,
                replayed,
                applied_index,
                ..
            } => format!(
                "n{} replayed {replayed} wal records to applied index {applied_index}",
                node.0
            ),
        }
    }
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct ClusterEvent {
    pub seq: u64,
    pub at: SimTime,
    pub kind: EventKind,
}

/// Default event retention. Admin-plane events are low-rate (range
/// lifecycle, lease movement), so this covers long runs; sustained chaos
/// schedules roll over with `dropped` accounting.
pub const DEFAULT_EVENT_CAP: usize = 65_536;

struct EventLogInner {
    events: VecDeque<ClusterEvent>,
    cap: usize,
    next_seq: u64,
    dropped: u64,
}

/// The bounded log. Cloning shares the underlying store (the SQL layer
/// holds a handle alongside the cluster).
#[derive(Clone)]
pub struct EventLog {
    inner: Rc<RefCell<EventLogInner>>,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::with_capacity(DEFAULT_EVENT_CAP)
    }
}

impl EventLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// A log retaining at most `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "event capacity must be positive");
        EventLog {
            inner: Rc::new(RefCell::new(EventLogInner {
                events: VecDeque::new(),
                cap,
                next_seq: 1,
                dropped: 0,
            })),
        }
    }

    /// Append one event; returns its sequence number (1-based, monotone
    /// across evictions).
    pub fn record(&self, at: SimTime, kind: EventKind) -> u64 {
        let mut inner = self.inner.borrow_mut();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.events.len() == inner.cap {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(ClusterEvent { seq, at, kind });
        seq
    }

    /// Retained events (excludes evicted ones).
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by the retention cap so far.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Copy of the retained log in append order.
    pub fn events(&self) -> Vec<ClusterEvent> {
        self.inner.borrow().events.iter().cloned().collect()
    }

    /// Count of retained events with the given kind label.
    pub fn count_kind(&self, label: &str) -> usize {
        self.inner
            .borrow()
            .events
            .iter()
            .filter(|e| e.kind.label() == label)
            .count()
    }

    /// Deterministic JSON export: one object per event, append order.
    pub fn export_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, e) in self.inner.borrow().events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let range = e
                .kind
                .range()
                .map(|r| r.0.to_string())
                .unwrap_or_else(|| "null".into());
            out.push_str(&format!(
                "  {{\"seq\": {}, \"time_ns\": {}, \"kind\": \"{}\", \"range\": {}, \"detail\": \"{}\"}}",
                e.seq,
                e.at.0,
                e.kind.label(),
                range,
                mr_obs::export::json_escape(&e.kind.detail())
            ));
        }
        out.push_str("\n]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_appends_in_order_and_exports() {
        let log = EventLog::new();
        let s1 = log.record(
            SimTime(10),
            EventKind::RangeCreated {
                range: RangeId(1),
                leaseholder: NodeId(0),
            },
        );
        let s2 = log.record(
            SimTime(20),
            EventKind::LeaseTransfer {
                range: RangeId(1),
                from: NodeId(0),
                to: NodeId(3),
                cooperative: true,
            },
        );
        let s3 = log.record(
            SimTime(30),
            EventKind::RowRehomed {
                from_region: "us-east1".into(),
                to_region: "europe-west2".into(),
            },
        );
        assert_eq!((s1, s2, s3), (1, 2, 3));
        assert_eq!(log.len(), 3);
        assert_eq!(log.count_kind("lease_transfer"), 1);
        let evs = log.events();
        assert_eq!(evs[1].kind.range(), Some(RangeId(1)));
        assert_eq!(evs[1].kind.detail(), "n0 -> n3 (cooperative)");
        assert_eq!(evs[2].kind.range(), None);
        let json = log.export_json();
        assert!(json.contains("\"kind\": \"range_created\""));
        assert!(json.contains("\"range\": null"));
        // Deterministic: same content renders the same bytes.
        assert_eq!(json, log.export_json());
    }

    #[test]
    fn retention_cap_evicts_oldest_keeping_monotone_seqs() {
        let log = EventLog::with_capacity(2);
        for i in 0..5 {
            let seq = log.record(SimTime(i), EventKind::RangeDropped { range: RangeId(i) });
            assert_eq!(seq, i + 1);
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let evs = log.events();
        assert_eq!(evs.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![4, 5]);
        // The next record continues the global sequence.
        assert_eq!(
            log.record(SimTime(9), EventKind::RangeDropped { range: RangeId(9) }),
            6
        );
    }
}

//! Append-only cluster event log.
//!
//! Structured admin-plane events — range creation, zone-config changes,
//! lease transfers (cooperative and failover), row rehoming — recorded in
//! simulation order with a sequence number and sim-time. The log backs the
//! `crdb_internal.cluster_events` virtual table and feeds the online
//! invariant monitors; its JSON export is deterministic for a fixed seed
//! (integers and fixed strings only, append order).

use std::cell::RefCell;
use std::rc::Rc;

use mr_proto::RangeId;
use mr_sim::{NodeId, SimTime};

/// What happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A range was created and its replicas placed.
    RangeCreated { range: RangeId, leaseholder: NodeId },
    /// A range was removed (table drop or partition-layout rewrite).
    RangeDropped { range: RangeId },
    /// A range was re-placed under a new zone config (`SET LOCALITY`,
    /// survivability or placement changes).
    ZoneConfigChanged { range: RangeId, leaseholder: NodeId },
    /// The lease moved. `cooperative` distinguishes planned transfers from
    /// failover usurpation of a dead leaseholder.
    LeaseTransfer {
        range: RangeId,
        from: NodeId,
        to: NodeId,
        cooperative: bool,
    },
    /// A REGIONAL BY ROW row moved between region partitions (automatic
    /// rehoming, §2.3.2). Recorded by the SQL layer.
    RowRehomed {
        from_region: String,
        to_region: String,
    },
    /// A fault was injected through the fault-injection API (nemesis
    /// schedules, chaos tests). `step` is the 0-based index within the
    /// injecting `FaultSchedule`, when one drove the injection.
    FaultInjected {
        range: Option<RangeId>,
        step: Option<u32>,
        detail: String,
    },
}

impl EventKind {
    /// Stable kind label used by exports and the virtual table.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::RangeCreated { .. } => "range_created",
            EventKind::RangeDropped { .. } => "range_dropped",
            EventKind::ZoneConfigChanged { .. } => "zone_config_changed",
            EventKind::LeaseTransfer { .. } => "lease_transfer",
            EventKind::RowRehomed { .. } => "row_rehomed",
            EventKind::FaultInjected { .. } => "fault_injected",
        }
    }

    /// The range the event concerns, if any.
    pub fn range(&self) -> Option<RangeId> {
        match self {
            EventKind::RangeCreated { range, .. }
            | EventKind::RangeDropped { range }
            | EventKind::ZoneConfigChanged { range, .. }
            | EventKind::LeaseTransfer { range, .. } => Some(*range),
            EventKind::RowRehomed { .. } => None,
            EventKind::FaultInjected { range, .. } => *range,
        }
    }

    /// Human-readable detail string (deterministic: ids and fixed text).
    pub fn detail(&self) -> String {
        match self {
            EventKind::RangeCreated { leaseholder, .. } => {
                format!("leaseholder n{}", leaseholder.0)
            }
            EventKind::RangeDropped { .. } => String::new(),
            EventKind::ZoneConfigChanged { leaseholder, .. } => {
                format!("leaseholder n{}", leaseholder.0)
            }
            EventKind::LeaseTransfer {
                from,
                to,
                cooperative,
                ..
            } => format!(
                "n{} -> n{} ({})",
                from.0,
                to.0,
                if *cooperative {
                    "cooperative"
                } else {
                    "failover"
                }
            ),
            EventKind::RowRehomed {
                from_region,
                to_region,
            } => format!("{from_region} -> {to_region}"),
            EventKind::FaultInjected { step, detail, .. } => match step {
                Some(s) => format!("step {s}: {detail}"),
                None => detail.clone(),
            },
        }
    }
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct ClusterEvent {
    pub seq: u64,
    pub at: SimTime,
    pub kind: EventKind,
}

/// The append-only log. Cloning shares the underlying store (the SQL layer
/// holds a handle alongside the cluster).
#[derive(Clone, Default)]
pub struct EventLog {
    events: Rc<RefCell<Vec<ClusterEvent>>>,
}

impl EventLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one event; returns its sequence number (1-based).
    pub fn record(&self, at: SimTime, kind: EventKind) -> u64 {
        let mut ev = self.events.borrow_mut();
        let seq = ev.len() as u64 + 1;
        ev.push(ClusterEvent { seq, at, kind });
        seq
    }

    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of the log in append order.
    pub fn events(&self) -> Vec<ClusterEvent> {
        self.events.borrow().clone()
    }

    /// Count of events with the given kind label.
    pub fn count_kind(&self, label: &str) -> usize {
        self.events
            .borrow()
            .iter()
            .filter(|e| e.kind.label() == label)
            .count()
    }

    /// Deterministic JSON export: one object per event, append order.
    pub fn export_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, e) in self.events.borrow().iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let range = e
                .kind
                .range()
                .map(|r| r.0.to_string())
                .unwrap_or_else(|| "null".into());
            out.push_str(&format!(
                "  {{\"seq\": {}, \"time_ns\": {}, \"kind\": \"{}\", \"range\": {}, \"detail\": \"{}\"}}",
                e.seq,
                e.at.0,
                e.kind.label(),
                range,
                mr_obs::export::json_escape(&e.kind.detail())
            ));
        }
        out.push_str("\n]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_appends_in_order_and_exports() {
        let log = EventLog::new();
        let s1 = log.record(
            SimTime(10),
            EventKind::RangeCreated {
                range: RangeId(1),
                leaseholder: NodeId(0),
            },
        );
        let s2 = log.record(
            SimTime(20),
            EventKind::LeaseTransfer {
                range: RangeId(1),
                from: NodeId(0),
                to: NodeId(3),
                cooperative: true,
            },
        );
        let s3 = log.record(
            SimTime(30),
            EventKind::RowRehomed {
                from_region: "us-east1".into(),
                to_region: "europe-west2".into(),
            },
        );
        assert_eq!((s1, s2, s3), (1, 2, 3));
        assert_eq!(log.len(), 3);
        assert_eq!(log.count_kind("lease_transfer"), 1);
        let evs = log.events();
        assert_eq!(evs[1].kind.range(), Some(RangeId(1)));
        assert_eq!(evs[1].kind.detail(), "n0 -> n3 (cooperative)");
        assert_eq!(evs[2].kind.range(), None);
        let json = log.export_json();
        assert!(json.contains("\"kind\": \"range_created\""));
        assert!(json.contains("\"range\": null"));
        // Deterministic: same content renders the same bytes.
        assert_eq!(json, log.export_json());
    }
}

//! Per-transaction latency attribution.
//!
//! Every committed (or aborted) transaction's end-to-end latency is broken
//! into named components so `crdb_internal.slow_txns` and the bench exports
//! can answer *where the time went*: gateway→leaseholder RPC time for
//! reads, replication round trips for writes, lock-wait behind conflicting
//! intents, §6.2 commit wait, and retry machinery (read refreshes).
//!
//! ## No double counting
//!
//! A pipelined transaction overlaps its RPCs: two Puts and the STAGING
//! record can all be in flight at once. Summing their individual durations
//! would attribute more time than the transaction actually took. The
//! accumulator therefore keeps a **watermark**: each charge covers only
//! `[max(seg_start, watermark), seg_end]` and then advances the watermark
//! to `seg_end`. Charges arrive in completion order — sim-time is monotone
//! — so the charged segments form an exact interval union of the busy
//! time. Whatever the union does not cover (coordinator think time,
//! scheduling gaps, retry backoff) lands in the derived `other` bucket:
//! `other = total − Σ components`, so the breakdown always sums to the
//! end-to-end latency by construction, and `other` staying small is the
//! signal that the named components explain the transaction.
//!
//! Lock wait is carved out of an RPC's round trip rather than charged as a
//! separate segment: the leaseholder records how long the request sat
//! parked behind a conflicting intent, and the completion charge splits
//! the round trip into `lock_wait` (the parked portion) and the transport
//! component (the rest).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use mr_sim::SimTime;

/// A named latency component. `other` is derived at finalize, not charged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Component {
    /// Read RPC round trips (gateway → leaseholder/follower → gateway).
    Rpc,
    /// Write RPC round trips: intent writes, transaction-record writes —
    /// each includes its Raft consensus round (replication RTT).
    Replication,
    /// Time parked behind a conflicting intent at the leaseholder.
    LockWait,
    /// §6.2 commit wait at the gateway.
    CommitWait,
    /// Retry machinery: read refreshes after timestamp forwarding.
    Retry,
}

/// All chargeable components, in export order.
pub const COMPONENTS: [Component; 5] = [
    Component::Rpc,
    Component::Replication,
    Component::LockWait,
    Component::CommitWait,
    Component::Retry,
];

impl Component {
    pub fn label(self) -> &'static str {
        match self {
            Component::Rpc => "rpc",
            Component::Replication => "replication",
            Component::LockWait => "lock_wait",
            Component::CommitWait => "commit_wait",
            Component::Retry => "retry",
        }
    }

    /// Static span-attribute key (`attr.<label>`).
    pub fn attr_key(self) -> &'static str {
        match self {
            Component::Rpc => "attr.rpc",
            Component::Replication => "attr.replication",
            Component::LockWait => "attr.lock_wait",
            Component::CommitWait => "attr.commit_wait",
            Component::Retry => "attr.retry",
        }
    }

    fn index(self) -> usize {
        match self {
            Component::Rpc => 0,
            Component::Replication => 1,
            Component::LockWait => 2,
            Component::CommitWait => 3,
            Component::Retry => 4,
        }
    }
}

/// Watermark-based component accumulator, one per open transaction.
#[derive(Clone, Debug)]
pub struct AttrAcc {
    start: SimTime,
    /// Everything at or before this instant has been charged (or deliberately
    /// skipped into `other`). Advances with each charge; never retreats.
    watermark: SimTime,
    nanos: [u64; COMPONENTS.len()],
    done: bool,
}

impl AttrAcc {
    pub fn new(start: SimTime) -> AttrAcc {
        AttrAcc {
            start,
            watermark: start,
            nanos: [0; COMPONENTS.len()],
            done: false,
        }
    }

    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Charge `[seg_start, seg_end]` to `comp`, counting only the part past
    /// the watermark (exact interval union under overlapping RPCs).
    pub fn charge(&mut self, comp: Component, seg_start: SimTime, seg_end: SimTime) {
        self.charge_split(comp, seg_start, seg_end, 0);
    }

    /// Like [`charge`](Self::charge), but carve `lock_nanos` of the charged
    /// portion out as `lock_wait` (time the request sat parked server-side
    /// within this round trip).
    pub fn charge_split(
        &mut self,
        comp: Component,
        seg_start: SimTime,
        seg_end: SimTime,
        lock_nanos: u64,
    ) {
        if self.done {
            return;
        }
        let eff_start = self.watermark.max(seg_start);
        if seg_end <= eff_start {
            return;
        }
        let dur = (seg_end - eff_start).nanos();
        let lock = lock_nanos.min(dur);
        self.nanos[Component::LockWait.index()] += lock;
        self.nanos[comp.index()] += dur - lock;
        self.watermark = seg_end;
    }

    pub fn get(&self, comp: Component) -> u64 {
        self.nanos[comp.index()]
    }

    /// Close the accumulator: total end-to-end nanos and the derived
    /// `other` remainder. Later charges (straggler RPCs of an aborted
    /// pipeline) are ignored.
    pub fn finalize(&mut self, now: SimTime) -> AttrBreakdown {
        self.done = true;
        let total = (now - self.start).nanos();
        let charged: u64 = self.nanos.iter().sum();
        AttrBreakdown {
            total_nanos: total,
            comp_nanos: self.nanos,
            other_nanos: total.saturating_sub(charged),
        }
    }

    pub fn is_done(&self) -> bool {
        self.done
    }
}

/// A finalized attribution: components + remainder summing to `total`.
#[derive(Clone, Copy, Debug)]
pub struct AttrBreakdown {
    pub total_nanos: u64,
    /// Indexed like [`COMPONENTS`].
    pub comp_nanos: [u64; COMPONENTS.len()],
    pub other_nanos: u64,
}

/// One finished transaction's attribution record.
#[derive(Clone, Debug)]
pub struct TxnAttrRecord {
    pub txn_id: u64,
    pub gateway: u64,
    pub start: SimTime,
    pub breakdown: AttrBreakdown,
    pub committed: bool,
    /// Raw id of the transaction's root trace span (`None` with tracing
    /// off) — the join key against `crdb_internal.session_trace`.
    pub root_span: Option<u64>,
    /// Distinct ranges the transaction's attributed RPCs touched, sorted
    /// ascending — joins against `crdb_internal.hot_ranges`.
    pub ranges: Vec<u64>,
}

/// Default retention for finished-transaction attribution records.
pub const DEFAULT_ATTR_CAP: usize = 16_384;

struct TxnAttrLogInner {
    records: VecDeque<TxnAttrRecord>,
    cap: usize,
    dropped: u64,
}

/// Bounded ring of finished transactions with their latency breakdowns,
/// backing `crdb_internal.slow_txns`. Cloning shares the store.
#[derive(Clone)]
pub struct TxnAttrLog {
    inner: Rc<RefCell<TxnAttrLogInner>>,
}

impl Default for TxnAttrLog {
    fn default() -> Self {
        TxnAttrLog::with_capacity(DEFAULT_ATTR_CAP)
    }
}

impl TxnAttrLog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "attribution capacity must be positive");
        TxnAttrLog {
            inner: Rc::new(RefCell::new(TxnAttrLogInner {
                records: VecDeque::new(),
                cap,
                dropped: 0,
            })),
        }
    }

    pub fn record(&self, rec: TxnAttrRecord) {
        let mut inner = self.inner.borrow_mut();
        if inner.records.len() == inner.cap {
            inner.records.pop_front();
            inner.dropped += 1;
        }
        inner.records.push_back(rec);
    }

    pub fn len(&self) -> usize {
        self.inner.borrow().records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted by the retention cap so far.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Retained records in finish order.
    pub fn records(&self) -> Vec<TxnAttrRecord> {
        self.inner.borrow().records.iter().cloned().collect()
    }

    /// The `k` slowest retained transactions, by total latency descending;
    /// ties break on ascending txn id (deterministic).
    pub fn slowest(&self, k: usize) -> Vec<TxnAttrRecord> {
        let mut recs = self.records();
        recs.sort_by(|a, b| {
            b.breakdown
                .total_nanos
                .cmp(&a.breakdown.total_nanos)
                .then(a.txn_id.cmp(&b.txn_id))
        });
        recs.truncate(k);
        recs
    }

    /// Deterministic JSON export of the `k` slowest transactions.
    pub fn export_json(&self, k: usize) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.slowest(k).iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "  {{\"txn\": {}, \"gateway\": {}, \"start_ns\": {}, \"total_nanos\": {}",
                r.txn_id, r.gateway, r.start.0, r.breakdown.total_nanos
            ));
            for (c, n) in COMPONENTS.iter().zip(r.breakdown.comp_nanos.iter()) {
                out.push_str(&format!(", \"{}\": {}", c.label(), n));
            }
            let root = r
                .root_span
                .map(|s| s.to_string())
                .unwrap_or_else(|| "null".into());
            let ranges: Vec<String> = r.ranges.iter().map(|r| r.to_string()).collect();
            out.push_str(&format!(
                ", \"other_nanos\": {}, \"committed\": {}, \"root_span\": {}, \"ranges\": [{}]}}",
                r.breakdown.other_nanos,
                if r.committed { "true" } else { "false" },
                root,
                ranges.join(", ")
            ));
        }
        out.push_str("\n]\n");
        out
    }
}

/// The transaction an RPC runs on behalf of, and the component its round
/// trip charges. Background traffic (intent resolution, pushes, recovery
/// probes) returns `None`: it is not on any client's latency path.
pub(crate) fn req_attribution(req: &mr_proto::Request) -> Option<(mr_proto::TxnId, Component)> {
    use mr_proto::Request::*;
    match req {
        Get { ctx, .. } | Scan { ctx, .. } => ctx.txn.as_ref().map(|t| (t.id, Component::Rpc)),
        Put { txn, .. } | EndTxn { txn, .. } | CommitInline { txn, .. } | StageTxn { txn, .. } => {
            Some((txn.id, Component::Replication))
        }
        Refresh { txn_id, .. } => Some((*txn_id, Component::Retry)),
        QueryIntent { .. }
        | RecoverTxn { .. }
        | ResolveIntent { .. }
        | PushTxn { .. }
        | Negotiate { .. } => None,
    }
}

/// Logical bytes a write request puts on the wire toward MVCC state (keys
/// plus values) — the `write_bytes` dimension of per-range load.
pub(crate) fn write_bytes(req: &mr_proto::Request) -> u64 {
    use mr_proto::Request::*;
    let kv = |k: &mr_proto::Key, v: &Option<mr_proto::Value>| {
        (k.len() + v.as_ref().map_or(0, |v| v.len())) as u64
    };
    match req {
        Put { key, value, .. } => kv(key, value),
        CommitInline { writes, .. } => writes.iter().map(|(k, v)| kv(k, v)).sum(),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime(n)
    }

    #[test]
    fn watermark_prevents_double_counting_overlaps() {
        let mut a = AttrAcc::new(t(0));
        // Two overlapping RPCs: [0, 100] and [50, 150].
        a.charge(Component::Replication, t(0), t(100));
        a.charge(Component::Replication, t(50), t(150));
        assert_eq!(a.get(Component::Replication), 150);
        let b = a.finalize(t(150));
        assert_eq!(b.total_nanos, 150);
        assert_eq!(b.other_nanos, 0);
    }

    #[test]
    fn gaps_fall_into_other() {
        let mut a = AttrAcc::new(t(0));
        a.charge(Component::Rpc, t(10), t(40));
        a.charge(Component::CommitWait, t(60), t(90));
        let b = a.finalize(t(100));
        assert_eq!(b.comp_nanos[Component::Rpc.index()], 30);
        assert_eq!(b.comp_nanos[Component::CommitWait.index()], 30);
        assert_eq!(b.total_nanos, 100);
        // [0,10) + [40,60) + [90,100) uncharged.
        assert_eq!(b.other_nanos, 40);
    }

    #[test]
    fn split_carves_lock_wait_out_of_the_round_trip() {
        let mut a = AttrAcc::new(t(0));
        a.charge_split(Component::Replication, t(0), t(100), 30);
        assert_eq!(a.get(Component::LockWait), 30);
        assert_eq!(a.get(Component::Replication), 70);
        // Lock time is clamped to the charged portion.
        let mut b = AttrAcc::new(t(0));
        b.charge(Component::Rpc, t(0), t(90));
        b.charge_split(Component::Replication, t(0), t(100), 500);
        assert_eq!(b.get(Component::LockWait), 10);
        assert_eq!(b.get(Component::Replication), 0);
    }

    #[test]
    fn charges_after_finalize_are_ignored() {
        let mut a = AttrAcc::new(t(0));
        a.charge(Component::Rpc, t(0), t(10));
        a.finalize(t(10));
        a.charge(Component::Rpc, t(10), t(50));
        assert_eq!(a.get(Component::Rpc), 10);
    }

    #[test]
    fn log_ranks_by_total_then_id_and_bounds_growth() {
        let log = TxnAttrLog::with_capacity(3);
        let rec = |id: u64, total: u64| TxnAttrRecord {
            txn_id: id,
            gateway: 0,
            start: t(0),
            breakdown: AttrBreakdown {
                total_nanos: total,
                comp_nanos: [0; COMPONENTS.len()],
                other_nanos: total,
            },
            committed: true,
            root_span: Some(id),
            ranges: vec![1, 2],
        };
        log.record(rec(1, 50));
        log.record(rec(2, 80));
        log.record(rec(3, 80));
        log.record(rec(4, 10));
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 1);
        let top: Vec<u64> = log.slowest(2).iter().map(|r| r.txn_id).collect();
        assert_eq!(top, vec![2, 3]);
        let json = log.export_json(10);
        assert!(json.contains("\"total_nanos\": 80"));
        assert!(json.contains("\"root_span\": 2"));
        assert!(json.contains("\"ranges\": [1, 2]"));
        assert_eq!(json, log.export_json(10));
    }

    /// A refresh after timestamp forwarding (the in-transaction retry
    /// machinery) charges `retry`, and the breakdown still sums exactly.
    #[test]
    fn refresh_round_trips_charge_retry_and_sum_exactly() {
        let mut a = AttrAcc::new(t(0));
        a.charge(Component::Replication, t(0), t(100)); // Put hits WriteTooOld
        a.charge(Component::Retry, t(100), t(160)); // Refresh round trip
        a.charge(Component::Replication, t(160), t(260)); // re-issued Put
        a.charge(Component::CommitWait, t(260), t(300));
        let b = a.finalize(t(300));
        assert_eq!(b.comp_nanos[Component::Retry.index()], 60);
        assert_eq!(
            b.comp_nanos.iter().sum::<u64>() + b.other_nanos,
            b.total_nanos
        );
        assert_eq!(b.other_nanos, 0);
    }

    /// Statement-level retries restart the transaction: the aborted
    /// attempt's whole busy time is charged to `retry` in the statement
    /// aggregate (the way EXPLAIN ANALYZE folds attempts together), and the
    /// merged breakdown still sums exactly to end-to-end latency.
    #[test]
    fn aborted_attempt_folds_into_retry_with_exact_sum() {
        // Attempt 1: a write that aborts at t=120 after 100ns of
        // replication work.
        let mut attempt1 = AttrAcc::new(t(0));
        attempt1.charge(Component::Replication, t(0), t(100));
        let b1 = attempt1.finalize(t(120));

        // Attempt 2 (the retry, beginning where attempt 1 ended) commits.
        let mut attempt2 = AttrAcc::new(t(120));
        attempt2.charge(Component::Replication, t(120), t(250));
        attempt2.charge(Component::CommitWait, t(250), t(280));
        let b2 = attempt2.finalize(t(280));

        // Statement view: final attempt keeps its components; every prior
        // attempt's total (busy + idle) is retry overhead.
        let mut comp = b2.comp_nanos;
        comp[Component::Retry.index()] += b1.total_nanos;
        let other = b2.other_nanos;
        let stmt_total = 280; // end-to-end from first attempt's start
        assert_eq!(comp[Component::Retry.index()], 120);
        assert_eq!(comp[Component::Replication.index()], 130);
        assert_eq!(comp[Component::CommitWait.index()], 30);
        assert_eq!(comp.iter().sum::<u64>() + other, stmt_total);
    }

    #[test]
    fn request_attribution_classifies_kinds() {
        use mr_clock::Timestamp;
        use mr_proto::{Key, ReadCtx, Request, TxnId, TxnMeta};
        let meta = TxnMeta {
            id: TxnId(7),
            anchor: Key::from("a"),
            write_ts: Timestamp::ZERO,
            epoch: 0,
        };
        let mut ctx = ReadCtx::stale(Timestamp::ZERO);
        ctx.txn = Some(meta.clone());
        let get = Request::Get {
            ctx,
            key: Key::from("k"),
        };
        assert_eq!(req_attribution(&get), Some((TxnId(7), Component::Rpc)));
        let put = Request::Put {
            txn: meta.clone(),
            key: Key::from("k"),
            value: Some(mr_proto::Value::from("vv")),
        };
        assert_eq!(
            req_attribution(&put),
            Some((TxnId(7), Component::Replication))
        );
        assert_eq!(write_bytes(&put), 3);
        let push = Request::PushTxn {
            pushee: TxnId(7),
            anchor: Key::from("a"),
        };
        assert_eq!(req_attribution(&push), None);
    }
}

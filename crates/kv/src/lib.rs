//! The distributed KV layer: ranges, leases, placement, replication, and
//! transactions.
//!
//! This crate assembles the paper's machinery on top of the substrates:
//!
//! * [`zone`] — zone configurations and the §3.3 automatic derivation from
//!   (table locality, survivability goal, placement policy);
//! * [`fault`] — the fault-injection API: node/zone/region crashes,
//!   region partitions and isolation, clock skew, closed-timestamp
//!   regression — injectable immediately or as timed calendar events;
//! * [`allocator`] — constraint-satisfying, diversity-scored replica
//!   placement (§3.2);
//! * [`range`] — range descriptors and the key → range routing table;
//! * [`locks`] — per-leaseholder lock wait-queues;
//! * [`metrics`] — pre-bound [`mr_obs`] instrument handles shared by the
//!   event loop and the transaction coordinator;
//! * [`closedts`] — closed-timestamp targets, trackers and the side
//!   transport (§5.1.1, §6.2.1);
//! * [`replica`] — per-node replica state: MVCC store, Raft instance,
//!   timestamp cache, request evaluation at leaseholders and followers;
//! * [`events`] — the append-only cluster event log (range creation, lease
//!   transfers, zone-config changes, row rehoming) backing
//!   `crdb_internal.cluster_events`;
//! * [`report`] — replication conformance reports classifying every range
//!   against its derived zone config;
//! * [`cluster`] — the simulated cluster: event dispatch, RPC transport,
//!   Raft delivery, admin operations (range creation, lease transfer,
//!   failure handling);
//! * [`txn`] — the gateway transaction coordinator: serializable MVCC
//!   transactions with read refreshes, uncertainty restarts, follower
//!   reads, bounded-staleness negotiation, and the §6 *global transaction*
//!   protocol (future-time writes + commit wait).

pub mod allocator;
pub mod attribution;
pub mod closedts;
pub mod cluster;
pub mod events;
pub mod fault;
pub mod locks;
pub mod metrics;
pub mod range;
pub mod replica;
pub mod report;
pub mod txn;
pub mod zone;

pub use allocator::{allocate, AllocError, AllocationOutcome, Placement, ReplicaRole};
pub use attribution::{AttrBreakdown, Component, TxnAttrLog, TxnAttrRecord, COMPONENTS};
pub use closedts::{ClosedTsParams, ClosedTsTracker};
pub use cluster::{Cluster, ClusterConfig, KvResult, ReadOptions, Staleness};
pub use events::{ClusterEvent, EventKind, EventLog};
pub use fault::FaultKind;
pub use metrics::MetricsView;
pub use range::{RangeDescriptor, RangeRegistry};
pub use report::{RangeConformance, RangeStatus, ReplicationReport};
pub use txn::TxnHandle;
pub use zone::{derive_zone_config, ClosedTsPolicy, PlacementPolicy, SurvivalGoal, ZoneConfig};

//! Closed timestamps (§5.1.1, §6.2.1).
//!
//! A closed timestamp is a promise by the leaseholder that no *new* writes
//! will be accepted at or below it. Promises travel to followers in two
//! ways: attached to every Raft command, and via a periodic *side
//! transport* for idle ranges. A follower may serve a read at `T` only once
//! it has (a) received a closed timestamp ≥ `T` and (b) applied the log
//! prefix that the promise covers.
//!
//! REGIONAL ranges close time in the past (`now - lag`, default 3s). GLOBAL
//! ranges close time in the future at target
//! `now + L_raft + L_replicate + max_clock_offset` so that present-time
//! reads (plus their uncertainty intervals) are already closed on every
//! replica by the time they happen (§6.2.1).

use mr_clock::Timestamp;
use mr_sim::{SimDuration, SimTime};

use crate::zone::ClosedTsPolicy;

/// Parameters for closed-timestamp target computation.
#[derive(Clone, Copy, Debug)]
pub struct ClosedTsParams {
    /// How far in the past REGIONAL ranges close (default 3s).
    pub lag: SimDuration,
    /// Estimated Raft consensus latency for this range (1 RTT to the
    /// nearest quorum; §6.2.1 cites 2-5ms ZONE / 20-30ms REGION).
    pub raft_latency: SimDuration,
    /// Estimated time for a committed entry to reach the furthest follower
    /// (§6.2.1 cites 100-125ms).
    pub replicate_latency: SimDuration,
    /// Extra slack covering the side-transport publication interval and
    /// residual gateway↔leaseholder clock skew, so that a promise is still
    /// ahead of every reader's uncertainty limit when the *next* promise
    /// arrives. (§6.2.1 folds this into its latency estimates; we make it
    /// explicit. The cluster derives it from the side-transport interval
    /// and the configured skew amplitude.)
    pub lead_slack: SimDuration,
    /// Maximum tolerated clock skew (uncertainty interval width).
    pub max_clock_offset: SimDuration,
}

impl ClosedTsParams {
    pub const DEFAULT_LAG_SECS: u64 = 3;

    /// The future-time lead for GLOBAL ranges:
    /// `L_raft + L_replicate + slack + max_clock_offset`.
    pub fn lead(&self) -> SimDuration {
        self.raft_latency + self.replicate_latency + self.lead_slack + self.max_clock_offset
    }

    /// The closed-timestamp target for a leaseholder whose clock reads
    /// `now_ts`.
    pub fn target(&self, policy: ClosedTsPolicy, now_ts: Timestamp) -> Timestamp {
        match policy {
            ClosedTsPolicy::Lag => Timestamp::new(now_ts.wall.saturating_sub(self.lag.nanos()), 0),
            // Future-time targets are synthetic: no clock has reached them.
            ClosedTsPolicy::Lead => {
                Timestamp::new(now_ts.wall + self.lead().nanos(), 0).as_synthetic()
            }
        }
    }
}

impl Default for ClosedTsParams {
    fn default() -> Self {
        ClosedTsParams {
            lag: SimDuration::from_secs(Self::DEFAULT_LAG_SECS),
            raft_latency: SimDuration::from_millis(4),
            replicate_latency: SimDuration::from_millis(150),
            lead_slack: SimDuration::from_millis(175),
            max_clock_offset: SimDuration::from_millis(250),
        }
    }
}

/// Follower-side tracker for the closed timestamp of one replica.
///
/// Closed timestamps arrive either on applied Raft entries (immediately
/// usable: applying the entry proves the prefix is applied) or via the side
/// transport, which references a log index that must be applied before the
/// promise activates.
#[derive(Clone, Debug, Default)]
pub struct ClosedTsTracker {
    /// Active closed timestamp: reads at or below this are safe (modulo
    /// intents).
    active: Timestamp,
    /// Side-transport promise awaiting log application: `(ts, index)`.
    pending: Option<(Timestamp, u64)>,
}

impl ClosedTsTracker {
    pub fn new() -> ClosedTsTracker {
        ClosedTsTracker::default()
    }

    /// The closed timestamp currently usable for follower reads.
    pub fn closed(&self) -> Timestamp {
        self.active
    }

    /// Signed distance from `now_wall` back to the closed frontier, in
    /// nanoseconds. Negative when the frontier *leads* present time, as on
    /// lead-policy (GLOBAL) ranges. Exposed as the `kv.closedts.lag_nanos`
    /// gauge at every observability scrape.
    pub fn lag_nanos(&self, now_wall: u64) -> i64 {
        now_wall as i64 - self.active.wall as i64
    }

    /// A Raft entry carrying `closed` was applied.
    pub fn on_entry_applied(&mut self, closed: Timestamp, applied_index: u64) {
        self.active = self.active.forward(closed);
        self.activate_pending(applied_index);
    }

    /// A side-transport update arrived: `closed` holds once `index` is
    /// applied.
    pub fn on_side_transport(&mut self, closed: Timestamp, index: u64, applied_index: u64) {
        if applied_index >= index {
            self.active = self.active.forward(closed);
        } else {
            match self.pending {
                Some((ts, _)) if ts >= closed => {}
                _ => self.pending = Some((closed, index)),
            }
        }
    }

    /// Fault injection for the online invariant monitors: forcibly move the
    /// active closed timestamp *backwards* by `delta_nanos`. Real trackers
    /// only ever `forward`; tests use this to prove that the
    /// `closed_ts_monotonic` monitor detects a regressing frontier.
    pub fn fault_regress(&mut self, delta_nanos: u64) {
        self.active = Timestamp::new(self.active.wall.saturating_sub(delta_nanos), 0);
    }

    fn activate_pending(&mut self, applied_index: u64) {
        if let Some((ts, idx)) = self.pending {
            if applied_index >= idx {
                self.active = self.active.forward(ts);
                self.pending = None;
            }
        }
    }
}

/// Leaseholder-side closed timestamp state: the highest target ever
/// promised. Writes must be forwarded above this.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClosedTsLeaseState {
    promised: Timestamp,
}

impl ClosedTsLeaseState {
    /// Compute the next closed-timestamp target at `now`, never regressing.
    pub fn advance(
        &mut self,
        params: &ClosedTsParams,
        policy: ClosedTsPolicy,
        now: SimTime,
        clock_skew: i64,
    ) -> Timestamp {
        let phys = ((now.nanos() as i64) + clock_skew).max(0) as u64;
        let target = params.target(policy, Timestamp::new(phys, 0));
        self.promised = self.promised.forward(target);
        self.promised
    }

    /// The highest timestamp promised closed so far.
    pub fn promised(&self) -> Timestamp {
        self.promised
    }

    /// Adopt a promise made by a previous leaseholder (lease transfer or
    /// failover): this leaseholder must never write below it.
    pub fn inherit(&mut self, promised: Timestamp) {
        self.promised = self.promised.forward(promised);
    }

    /// Minimum timestamp a new write may use: just above the promise.
    pub fn min_write_ts(&self) -> Timestamp {
        self.promised.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_target_is_in_the_past() {
        let p = ClosedTsParams::default();
        let now = Timestamp::new(SimDuration::from_secs(10).nanos(), 0);
        let t = p.target(ClosedTsPolicy::Lag, now);
        assert_eq!(t.wall, SimDuration::from_secs(7).nanos());
        assert!(!t.synthetic);
    }

    #[test]
    fn lag_target_saturates_at_zero() {
        let p = ClosedTsParams::default();
        let t = p.target(ClosedTsPolicy::Lag, Timestamp::new(5, 0));
        assert_eq!(t.wall, 0);
    }

    #[test]
    fn lead_target_is_future_and_synthetic() {
        let p = ClosedTsParams {
            raft_latency: SimDuration::from_millis(4),
            replicate_latency: SimDuration::from_millis(125),
            lead_slack: SimDuration::from_millis(100),
            max_clock_offset: SimDuration::from_millis(250),
            ..ClosedTsParams::default()
        };
        assert_eq!(p.lead(), SimDuration::from_millis(479));
        let now = Timestamp::new(SimDuration::from_secs(1).nanos(), 0);
        let t = p.target(ClosedTsPolicy::Lead, now);
        assert_eq!(
            t.wall,
            SimDuration::from_secs(1).nanos() + SimDuration::from_millis(479).nanos()
        );
        assert!(t.synthetic);
    }

    #[test]
    fn tracker_entry_applied() {
        let mut t = ClosedTsTracker::new();
        t.on_entry_applied(Timestamp::new(100, 0), 1);
        assert_eq!(t.closed(), Timestamp::new(100, 0));
        // Never regresses.
        t.on_entry_applied(Timestamp::new(50, 0), 2);
        assert_eq!(t.closed(), Timestamp::new(100, 0));
    }

    #[test]
    fn tracker_side_transport_waits_for_application() {
        let mut t = ClosedTsTracker::new();
        // Promise at index 5 while only 3 applied: pending.
        t.on_side_transport(Timestamp::new(200, 0), 5, 3);
        assert_eq!(t.closed(), Timestamp::ZERO);
        // Applying index 5 activates it.
        t.on_entry_applied(Timestamp::new(150, 0), 5);
        assert_eq!(t.closed(), Timestamp::new(200, 0));
    }

    #[test]
    fn tracker_side_transport_immediate_when_applied() {
        let mut t = ClosedTsTracker::new();
        t.on_side_transport(Timestamp::new(300, 0), 2, 2);
        assert_eq!(t.closed(), Timestamp::new(300, 0));
    }

    #[test]
    fn lease_state_never_regresses() {
        let p = ClosedTsParams::default();
        let mut s = ClosedTsLeaseState::default();
        let t1 = s.advance(
            &p,
            ClosedTsPolicy::Lead,
            SimTime(SimDuration::from_secs(10).nanos()),
            0,
        );
        // Clock goes "backwards" (skew change): promise holds.
        let t2 = s.advance(
            &p,
            ClosedTsPolicy::Lead,
            SimTime(SimDuration::from_secs(9).nanos()),
            0,
        );
        assert_eq!(t2, t1);
        assert!(s.min_write_ts() > s.promised());
    }

    #[test]
    fn lease_state_applies_skew() {
        let p = ClosedTsParams::default();
        let mut a = ClosedTsLeaseState::default();
        let mut b = ClosedTsLeaseState::default();
        let now = SimTime(SimDuration::from_secs(100).nanos());
        let ta = a.advance(&p, ClosedTsPolicy::Lag, now, 1_000_000);
        let tb = b.advance(&p, ClosedTsPolicy::Lag, now, -1_000_000);
        assert_eq!(ta.wall - tb.wall, 2_000_000);
    }
}

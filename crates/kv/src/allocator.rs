//! The replica allocator: maps a [`ZoneConfig`] onto concrete nodes.
//!
//! CRDB guarantees that replicas are spread across independent failure
//! domains while satisfying constraints, ranking candidates by a *diversity
//! score* that favors nodes not sharing localities with already-placed
//! replicas (§3.2). This module implements that scheme: constrained
//! placement first (per-region minimums), then free placement by diversity,
//! with deterministic tie-breaking by node id.

use std::collections::HashMap;

use mr_sim::{NodeId, RegionId, Topology};

use crate::zone::ZoneConfig;

/// One placed replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    pub node: NodeId,
    pub voting: bool,
}

/// Role of the replica slot an allocation constraint applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaRole {
    Voter,
    NonVoter,
}

impl std::fmt::Display for ReplicaRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaRole::Voter => write!(f, "voter"),
            ReplicaRole::NonVoter => write!(f, "non-voter"),
        }
    }
}

/// Allocation failure: not enough live nodes to satisfy the config. Names
/// the unsatisfiable constraint — which region (if any) and which replica
/// role — so conformance reports can say *why* a range cannot be placed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllocError {
    pub missing_region: Option<RegionId>,
    /// Resolved name of `missing_region`, for human-readable errors.
    pub region_name: Option<String>,
    /// Which replica role the failed constraint wanted.
    pub role: ReplicaRole,
    pub wanted: usize,
    pub available: usize,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.region_name, self.missing_region) {
            (Some(name), _) => write!(
                f,
                "cannot place {} {} replica(s) in region {name:?}: only {} available",
                self.wanted, self.role, self.available
            ),
            (None, Some(r)) => write!(
                f,
                "cannot place {} {} replica(s) in {r}: only {} available",
                self.wanted, self.role, self.available
            ),
            (None, None) => write!(
                f,
                "cannot place {} {} replica(s): only {} nodes available",
                self.wanted, self.role, self.available
            ),
        }
    }
}
impl std::error::Error for AllocError {}

/// Diversity score of adding `candidate` to a partial placement: the number
/// of locality tiers (region, zone) it does *not* share with any already
/// placed replica. Higher is more diverse.
fn diversity_score(topo: &Topology, placed: &[NodeId], candidate: NodeId) -> usize {
    let mut score = 2;
    for &p in placed {
        if topo.region_of(p) == topo.region_of(candidate) {
            score = score.min(1);
            if topo.zone_of(p) == topo.zone_of(candidate) {
                score = 0;
            }
        }
    }
    score
}

/// Pick `count` nodes from `pool` maximizing diversity w.r.t. `placed`
/// (greedy, deterministic). Chosen nodes are appended to `placed` and
/// removed from `pool`.
fn pick_diverse(
    topo: &Topology,
    placed: &mut Vec<NodeId>,
    pool: &mut Vec<NodeId>,
    count: usize,
) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let best = pool
            .iter()
            .enumerate()
            .max_by_key(|(_, &n)| (diversity_score(topo, placed, n), std::cmp::Reverse(n.0)))
            .map(|(i, _)| i);
        let Some(i) = best else { break };
        let n = pool.remove(i);
        placed.push(n);
        out.push(n);
    }
    out
}

/// Allocate replicas for a range according to `cfg`.
///
/// Voters are placed first (satisfying `voter_constraints`, then filling up
/// to `num_voters` by diversity), then non-voters satisfy the remaining
/// `constraints`. The leaseholder is the first voter in the first available
/// lease-preference region.
pub fn allocate(topo: &Topology, cfg: &ZoneConfig) -> Result<AllocationOutcome, AllocError> {
    let mut placed: Vec<NodeId> = Vec::new();
    let mut voters: Vec<NodeId> = Vec::new();
    let mut non_voters: Vec<NodeId> = Vec::new();

    // Live nodes per region.
    let mut pools: HashMap<RegionId, Vec<NodeId>> = HashMap::new();
    for n in topo.node_ids().filter(|&n| topo.is_node_alive(n)) {
        pools.entry(topo.region_of(n)).or_default().push(n);
    }
    for pool in pools.values_mut() {
        pool.sort_unstable_by_key(|n| n.0);
    }

    // 1. Voter constraints.
    for &(region, want) in &cfg.voter_constraints {
        let pool = pools.entry(region).or_default();
        let got = pick_diverse(topo, &mut placed, pool, want);
        if got.len() < want {
            return Err(AllocError {
                missing_region: Some(region),
                region_name: Some(topo.region_name(region).to_string()),
                role: ReplicaRole::Voter,
                wanted: want,
                available: got.len(),
            });
        }
        voters.extend(got);
    }

    // 2. Remaining voters by diversity over all pools. No region may hold
    //    a quorum on its own (otherwise its failure takes the range down —
    //    the REGION survivability invariant, §3.3.3): cap unconstrained
    //    voter placement at a minority per region. Explicit
    //    voter_constraints may exceed the cap deliberately.
    let minority_cap = ((cfg.num_voters.saturating_sub(1)) / 2).max(1);
    while voters.len() < cfg.num_voters {
        let region_voter_count = |r: RegionId, voters: &[NodeId]| {
            voters.iter().filter(|&&v| topo.region_of(v) == r).count()
        };
        let mut all: Vec<NodeId> = pools
            .values()
            .flatten()
            .copied()
            .filter(|&n| {
                let constrained = cfg
                    .voter_constraints
                    .iter()
                    .find(|(r, _)| *r == topo.region_of(n))
                    .map(|(_, c)| *c)
                    .unwrap_or(0);
                region_voter_count(topo.region_of(n), &voters) < minority_cap.max(constrained)
            })
            .collect();
        all.sort_unstable_by_key(|n| n.0);
        let got = pick_diverse(topo, &mut placed, &mut all, 1);
        let Some(&n) = got.first() else {
            return Err(AllocError {
                missing_region: None,
                region_name: None,
                role: ReplicaRole::Voter,
                wanted: cfg.num_voters,
                available: voters.len(),
            });
        };
        pools
            .get_mut(&topo.region_of(n))
            .unwrap()
            .retain(|&x| x != n);
        voters.push(n);
    }

    // 3. Per-region constraints for the remaining (non-voting) replicas.
    //    A region's constraint is already partially satisfied by voters.
    for &(region, want) in &cfg.constraints {
        let have = placed
            .iter()
            .filter(|&&n| topo.region_of(n) == region)
            .count();
        if have >= want {
            continue;
        }
        let pool = pools.entry(region).or_default();
        let got = pick_diverse(topo, &mut placed, pool, want - have);
        if got.len() < want - have {
            return Err(AllocError {
                missing_region: Some(region),
                region_name: Some(topo.region_name(region).to_string()),
                role: ReplicaRole::NonVoter,
                wanted: want,
                available: have + got.len(),
            });
        }
        non_voters.extend(got);
    }

    // 4. Any leftover replica budget, by diversity.
    while voters.len() + non_voters.len() < cfg.num_replicas {
        let mut all: Vec<NodeId> = pools.values().flatten().copied().collect();
        all.sort_unstable_by_key(|n| n.0);
        let got = pick_diverse(topo, &mut placed, &mut all, 1);
        let Some(&n) = got.first() else { break };
        pools
            .get_mut(&topo.region_of(n))
            .unwrap()
            .retain(|&x| x != n);
        non_voters.push(n);
    }

    // 5. Leaseholder: first lease-preference region with a voter.
    let leaseholder = cfg
        .lease_preferences
        .iter()
        .find_map(|&r| voters.iter().find(|&&v| topo.region_of(v) == r).copied())
        .unwrap_or(voters[0]);

    let mut replicas: Vec<Placement> = voters
        .iter()
        .map(|&node| Placement { node, voting: true })
        .collect();
    replicas.extend(non_voters.iter().map(|&node| Placement {
        node,
        voting: false,
    }));

    Ok(AllocationOutcome {
        replicas,
        leaseholder,
    })
}

/// Result of a successful allocation.
#[derive(Clone, Debug)]
pub struct AllocationOutcome {
    pub replicas: Vec<Placement>,
    pub leaseholder: NodeId,
}

/// Load-based lease rebalancing: the voting replica of `desc` in `toward`
/// the lease should move to when that region dominates the range's traffic.
/// Deterministic (lowest live node id); `None` when the range has no live
/// voter there (the rebalancer then considers a replica move instead).
pub fn plan_lease_transfer(
    topo: &Topology,
    desc: &crate::range::RangeDescriptor,
    toward: RegionId,
) -> Option<NodeId> {
    desc.replicas
        .iter()
        .filter(|p| p.voting && topo.is_node_alive(p.node) && topo.region_of(p.node) == toward)
        .map(|p| p.node)
        .min_by_key(|n| n.0)
}

/// Load-based replica rebalancing: relocate one non-voting replica toward
/// `toward` without violating the zone config. Returns `(from, to)` — the
/// replica to move and its destination (the lowest-id live node in `toward`
/// without a replica) — or `None` when the range already has a replica
/// there, no destination exists, or every candidate move would leave the
/// range under-replicated or constraint-violating. Voters are never moved
/// this way: quorum placement is the survivability plan, not load's.
pub fn plan_replica_move(
    topo: &Topology,
    desc: &crate::range::RangeDescriptor,
    toward: RegionId,
) -> Option<(NodeId, NodeId)> {
    if desc
        .replicas
        .iter()
        .any(|p| topo.region_of(p.node) == toward)
    {
        return None;
    }
    let to = topo
        .node_ids()
        .filter(|&n| {
            topo.region_of(n) == toward && topo.is_node_alive(n) && !desc.has_replica_on(n)
        })
        .min_by_key(|n| n.0)?;
    for p in desc.replicas.iter().filter(|p| !p.voting) {
        let mut cand = desc.clone();
        for q in cand.replicas.iter_mut() {
            if q.node == p.node {
                q.node = to;
            }
        }
        let c = crate::report::classify(&cand, topo);
        if !c.has(crate::report::RangeStatus::ViolatingConstraints)
            && !c.has(crate::report::RangeStatus::UnderReplicated)
        {
            return Some((p.node, to));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::{
        derive_zone_config, ClosedTsPolicy, PlacementPolicy, SurvivalGoal, ZoneConfig,
    };
    use mr_sim::RttMatrix;

    fn topo5x3() -> Topology {
        Topology::build(
            &RttMatrix::paper_table1_regions(),
            3,
            RttMatrix::paper_table1(),
        )
    }

    fn regions(n: u32) -> Vec<RegionId> {
        (0..n).map(RegionId).collect()
    }

    #[test]
    fn zone_survival_places_three_voters_across_home_zones() {
        let topo = topo5x3();
        let cfg = derive_zone_config(
            RegionId(0),
            &regions(5),
            SurvivalGoal::Zone,
            PlacementPolicy::Default,
            ClosedTsPolicy::Lag,
        );
        let out = allocate(&topo, &cfg).unwrap();
        let voters: Vec<_> = out.replicas.iter().filter(|p| p.voting).collect();
        assert_eq!(voters.len(), 3);
        for v in &voters {
            assert_eq!(topo.region_of(v.node), RegionId(0));
        }
        // All in distinct zones.
        let zones: std::collections::HashSet<_> =
            voters.iter().map(|v| topo.zone_of(v.node)).collect();
        assert_eq!(zones.len(), 3);
        // One non-voter in each other region.
        let nv: Vec<_> = out.replicas.iter().filter(|p| !p.voting).collect();
        assert_eq!(nv.len(), 4);
        let nv_regions: std::collections::HashSet<_> =
            nv.iter().map(|p| topo.region_of(p.node)).collect();
        assert_eq!(nv_regions.len(), 4);
        assert!(!nv_regions.contains(&RegionId(0)));
        // Leaseholder in the home region, and is a voter.
        assert_eq!(topo.region_of(out.leaseholder), RegionId(0));
        assert!(voters.iter().any(|v| v.node == out.leaseholder));
    }

    #[test]
    fn region_survival_spreads_voters() {
        let topo = topo5x3();
        let cfg = derive_zone_config(
            RegionId(1),
            &regions(5),
            SurvivalGoal::Region,
            PlacementPolicy::Default,
            ClosedTsPolicy::Lag,
        );
        let out = allocate(&topo, &cfg).unwrap();
        let voters: Vec<_> = out.replicas.iter().filter(|p| p.voting).collect();
        assert_eq!(voters.len(), 5);
        let home_voters = voters
            .iter()
            .filter(|v| topo.region_of(v.node) == RegionId(1))
            .count();
        assert_eq!(home_voters, 2);
        // No region loss removes quorum: voters span >= 3 regions with at
        // most 2 in any region.
        let mut per_region: HashMap<RegionId, usize> = HashMap::new();
        for v in &voters {
            *per_region.entry(topo.region_of(v.node)).or_default() += 1;
        }
        assert!(per_region.values().all(|&c| c <= 2));
        assert!(per_region.len() >= 3);
        // Every region has at least one replica (stale reads everywhere).
        let all_regions: std::collections::HashSet<_> = out
            .replicas
            .iter()
            .map(|p| topo.region_of(p.node))
            .collect();
        assert_eq!(all_regions.len(), 5);
        assert_eq!(topo.region_of(out.leaseholder), RegionId(1));
    }

    #[test]
    fn restricted_placement_stays_home() {
        let topo = topo5x3();
        let cfg = derive_zone_config(
            RegionId(2),
            &regions(5),
            SurvivalGoal::Zone,
            PlacementPolicy::Restricted,
            ClosedTsPolicy::Lag,
        );
        let out = allocate(&topo, &cfg).unwrap();
        assert_eq!(out.replicas.len(), 3);
        for p in &out.replicas {
            assert_eq!(topo.region_of(p.node), RegionId(2));
        }
    }

    #[test]
    fn allocation_fails_without_enough_nodes() {
        let topo = Topology::build(
            &["only"],
            2,
            RttMatrix::uniform(1, mr_sim::SimDuration::ZERO),
        );
        let cfg = ZoneConfig::single_region(RegionId(0));
        let err = allocate(&topo, &cfg).unwrap_err();
        assert_eq!(err.missing_region, Some(RegionId(0)));
        assert_eq!(err.region_name.as_deref(), Some("only"));
        assert_eq!(err.role, ReplicaRole::Voter);
        assert_eq!(err.wanted, 3);
        assert_eq!(err.available, 2);
        let msg = err.to_string();
        assert!(msg.contains("\"only\""), "error names the region: {msg}");
        assert!(msg.contains("voter"), "error names the role: {msg}");
    }

    #[test]
    fn allocation_skips_dead_nodes() {
        let mut topo = topo5x3();
        // Kill one home-region node: allocation should fail for 3 voters in
        // 2 remaining zones... actually it succeeds with 2 distinct zones
        // only if 3 nodes exist. Only 2 remain, so it errors.
        topo.fail_node(NodeId(0));
        let cfg = ZoneConfig::single_region(RegionId(0));
        let err = allocate(&topo, &cfg).unwrap_err();
        assert_eq!(err.available, 2);
        assert_eq!(err.role, ReplicaRole::Voter);
    }

    #[test]
    fn region_survival_unsatisfiable_names_region_and_role() {
        // Three regions with one node each: SURVIVE REGION FAILURE derives
        // two home-region voters, but the home region only has one node.
        let topo = Topology::build(
            &["us-east1", "europe-west2", "asia-northeast1"],
            1,
            RttMatrix::uniform(3, mr_sim::SimDuration::from_millis(50)),
        );
        let cfg = derive_zone_config(
            RegionId(0),
            &regions(3),
            SurvivalGoal::Region,
            PlacementPolicy::Default,
            ClosedTsPolicy::Lag,
        );
        let err = allocate(&topo, &cfg).unwrap_err();
        assert_eq!(err.missing_region, Some(RegionId(0)));
        assert_eq!(err.region_name.as_deref(), Some("us-east1"));
        assert_eq!(err.role, ReplicaRole::Voter);
        assert_eq!(err.wanted, 2);
        assert_eq!(err.available, 1);
        let msg = err.to_string();
        assert!(
            msg.contains("\"us-east1\"") && msg.contains("voter"),
            "constraint not named: {msg}"
        );
    }

    #[test]
    fn replicas_never_reuse_a_node() {
        let topo = topo5x3();
        let cfg = derive_zone_config(
            RegionId(0),
            &regions(5),
            SurvivalGoal::Region,
            PlacementPolicy::Default,
            ClosedTsPolicy::Lead,
        );
        let out = allocate(&topo, &cfg).unwrap();
        let mut nodes: Vec<_> = out.replicas.iter().map(|p| p.node).collect();
        let before = nodes.len();
        nodes.sort_unstable_by_key(|n| n.0);
        nodes.dedup();
        assert_eq!(nodes.len(), before);
    }

    #[test]
    fn lease_and_replica_rebalance_planning() {
        use crate::range::RangeDescriptor;
        use mr_proto::{Key, RangeId, Span};
        let mut topo = topo5x3();
        let mut zc = ZoneConfig::single_region(RegionId(0));
        zc.constraints = vec![];
        zc.voter_constraints = vec![];
        let desc = RangeDescriptor {
            id: RangeId(1),
            span: Span::new(Key::from("a"), Key::from("b")),
            replicas: vec![
                Placement {
                    node: NodeId(0),
                    voting: true,
                },
                Placement {
                    node: NodeId(1),
                    voting: true,
                },
                Placement {
                    node: NodeId(3), // region 1
                    voting: true,
                },
                Placement {
                    node: NodeId(6), // region 2
                    voting: false,
                },
            ],
            leaseholder: NodeId(0),
            zone_config: zc,
        };
        // Lease toward region 1: its voting replica.
        assert_eq!(
            plan_lease_transfer(&topo, &desc, RegionId(1)),
            Some(NodeId(3))
        );
        // No voter in region 2 → no lease plan there.
        assert_eq!(plan_lease_transfer(&topo, &desc, RegionId(2)), None);
        // A replica already sits in region 2 → nothing to move.
        assert_eq!(plan_replica_move(&topo, &desc, RegionId(2)), None);
        // Region 3 has no replica: the non-voter relocates to its lowest
        // live node.
        assert_eq!(
            plan_replica_move(&topo, &desc, RegionId(3)),
            Some((NodeId(6), NodeId(9)))
        );
        // Dead candidates are skipped entirely.
        topo.fail_node(NodeId(3));
        assert_eq!(plan_lease_transfer(&topo, &desc, RegionId(1)), None);
        // While a voter is down the planner refuses to shuffle replicas at
        // all (the range is under-replicated; load can wait).
        assert_eq!(plan_replica_move(&topo, &desc, RegionId(3)), None);
        topo.revive_node(NodeId(3));
        topo.fail_node(NodeId(9));
        assert_eq!(
            plan_replica_move(&topo, &desc, RegionId(3)),
            Some((NodeId(6), NodeId(10)))
        );
    }

    #[test]
    fn deterministic_allocation() {
        let topo = topo5x3();
        let cfg = derive_zone_config(
            RegionId(0),
            &regions(5),
            SurvivalGoal::Region,
            PlacementPolicy::Default,
            ClosedTsPolicy::Lag,
        );
        let a = allocate(&topo, &cfg).unwrap();
        let b = allocate(&topo, &cfg).unwrap();
        assert_eq!(a.replicas, b.replicas);
        assert_eq!(a.leaseholder, b.leaseholder);
    }
}

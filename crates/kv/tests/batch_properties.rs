//! Property tests for proposal batching at the replica level: under random
//! interleavings of concurrent transactions (batched 1PC commits and
//! pipelined intents) with cooperative lease/leadership transfers landing
//! mid-batch, every client response hook fires exactly once — nothing
//! dropped when a buffered batch outlives its leadership, nothing fired
//! twice when a flush races a transfer — and the surviving state reflects
//! the committed writes in apply order.
//!
//! Un-batched proposals interleave naturally: every lease transfer drives
//! a `ClaimLease` through the direct (un-batched) path between the
//! workload's batched commands.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use proptest::prelude::*;

use mr_clock::Timestamp;
use mr_kv::cluster::{Cluster, ClusterConfig, ReadOptions};
use mr_kv::zone::{derive_zone_config, ClosedTsPolicy, PlacementPolicy, SurvivalGoal};
use mr_proto::{Key, Span, Value};
use mr_sim::{NodeId, RegionId, RttMatrix, SimDuration, SimTime, Topology};

const KEYS: usize = 4;

/// Outcome slot for one launched transaction; written exactly once by its
/// final callback.
#[derive(Debug)]
struct TxnRec {
    /// Keys (indices into the shared pool) the txn wrote.
    keys: Vec<usize>,
    /// `None` until the commit/rollback callback fires; `Some(Ok(ts))` on
    /// commit, `Some(Err(()))` on abort.
    outcome: Option<Result<Timestamp, ()>>,
}

fn small_cluster(seed: u64) -> Cluster {
    let topo = Topology::build(
        &RttMatrix::paper_table1_regions()[..3],
        3,
        RttMatrix::from_upper_millis(3, &[&[63, 87], &[132]]),
    );
    let mut c = Cluster::new(
        topo,
        ClusterConfig {
            seed,
            // A short flush window widens the race between buffering a
            // proposal and losing leadership — the case under test.
            raft_flush_interval: SimDuration::from_millis(2),
            // Requests parked at a replica that then loses its lease are
            // only re-routed by the client timeout (the pusher stops when
            // its replica is no longer the leaseholder).
            rpc_timeout: Some(SimDuration::from_secs(1)),
            ..ClusterConfig::default()
        },
    );
    let zc = derive_zone_config(
        RegionId(0),
        &(0..3).map(RegionId).collect::<Vec<_>>(),
        SurvivalGoal::Zone,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    );
    c.create_range(Span::all(), zc).unwrap();
    c.run_until(SimTime(SimDuration::from_secs(3).nanos()));
    c
}

fn key_name(i: usize) -> String {
    format!("k{i}")
}

/// Launch one transaction writing `keys` in order, recording its outcome
/// in `recs[idx]` exactly once.
fn launch_txn(c: &mut Cluster, gateway: NodeId, idx: usize, recs: Rc<RefCell<Vec<TxnRec>>>) {
    fn record(recs: &Rc<RefCell<Vec<TxnRec>>>, idx: usize, outcome: Result<Timestamp, ()>) {
        let prev = recs.borrow_mut()[idx].outcome.replace(outcome);
        assert!(prev.is_none(), "txn {idx} response hook fired twice");
    }

    fn put_chain(
        c: &mut Cluster,
        h: mr_kv::TxnHandle,
        idx: usize,
        mut keys: std::vec::IntoIter<usize>,
        recs: Rc<RefCell<Vec<TxnRec>>>,
    ) {
        match keys.next() {
            Some(k) => {
                let key = Key::from(key_name(k).as_str());
                let val = Value::from(format!("w{idx}").as_str());
                c.txn_put(
                    h,
                    key,
                    Some(val),
                    Box::new(move |c, res| match res {
                        Ok(()) => put_chain(c, h, idx, keys, recs),
                        Err(_) => {
                            c.txn_rollback(h, Box::new(move |_c, _| record(&recs, idx, Err(()))))
                        }
                    }),
                );
            }
            None => c.txn_commit(
                h,
                Box::new(move |_c, res| match res {
                    Ok(ts) => record(&recs, idx, Ok(ts)),
                    Err(_) => record(&recs, idx, Err(())),
                }),
            ),
        }
    }

    let keys = recs.borrow()[idx].keys.clone();
    let h = c.txn_begin(gateway);
    put_chain(c, h, idx, keys.into_iter(), recs);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Random interleavings of batched proposals and leadership transfers:
    /// every transaction's response hook fires exactly once, and a final
    /// read of every key observes the newest committed write (or a write
    /// whose outcome the client saw as an error — an abort that raced).
    #[test]
    fn batched_proposals_survive_leadership_changes(
        seed in 0u64..1000,
        schedule in prop::collection::vec((any::<u8>(), any::<u8>()), 10..50),
    ) {
        let mut c = small_cluster(seed);
        let range = {
            let mut ids = c.registry().ids();
            ids.sort_unstable();
            ids[0]
        };
        let recs: Rc<RefCell<Vec<TxnRec>>> = Rc::new(RefCell::new(Vec::new()));

        for (action, r) in schedule {
            match action % 8 {
                // Single-key txn (1PC fast path — one batched command).
                0..=2 => {
                    let idx = recs.borrow().len();
                    recs.borrow_mut().push(TxnRec {
                        keys: vec![r as usize % KEYS],
                        outcome: None,
                    });
                    launch_txn(&mut c, NodeId(r as u32 % 3), idx, recs.clone());
                }
                // Two-key txn (pipelined intents share a batch). Keys in
                // ascending order: all writers lock in the same order, so
                // conflicts park and push rather than deadlock.
                3..=4 => {
                    let idx = recs.borrow().len();
                    let k = r as usize % KEYS;
                    let k2 = (k + 1) % KEYS;
                    recs.borrow_mut().push(TxnRec {
                        keys: vec![k.min(k2), k.max(k2)],
                        outcome: None,
                    });
                    launch_txn(&mut c, NodeId(r as u32 % 3), idx, recs.clone());
                }
                // Cooperative lease + Raft leadership transfer: lands
                // between (or inside) flush windows, so buffered batches
                // outlive their leadership.
                5 => c.transfer_lease(range, NodeId(r as u32 % 3)),
                // Let in-flight work overlap the next action.
                _ => {
                    let dt = SimDuration::from_millis(1 + (r as u64 % 4));
                    let t = SimTime(c.now().nanos() + dt.nanos());
                    c.run_until(t);
                }
            }
        }
        let deadline = SimTime(c.now().nanos() + SimDuration::from_secs(600).nanos());
        c.run_until_quiescent(deadline);

        // Exactly-once response delivery: every launched txn resolved (the
        // double-fire case asserts inside `record`).
        let recs = Rc::try_unwrap(recs)
            .expect("txn continuations still pending")
            .into_inner();
        for (i, rec) in recs.iter().enumerate() {
            prop_assert!(rec.outcome.is_some(), "txn {i} response hook never fired");
        }

        // The batched path was actually exercised.
        c.scrape_now();
        prop_assert!(c.metrics().entries_proposed > 0, "no batched entries proposed");

        // Apply-order check: per key, the newest committed value (or an
        // aborted-to-the-client value that raced) is what a final read
        // observes. Values map back to txn indices by construction.
        let mut newest: HashMap<usize, (Timestamp, usize)> = HashMap::new();
        for (i, rec) in recs.iter().enumerate() {
            if let Some(Ok(ts)) = rec.outcome {
                for &k in &rec.keys {
                    let e = newest.entry(k).or_insert((ts, i));
                    if ts > e.0 {
                        *e = (ts, i);
                    }
                }
            }
        }
        // Let the last leadership transfer settle before the final reads.
        c.run_until(SimTime(c.now().nanos() + SimDuration::from_secs(5).nanos()));
        for k in 0..KEYS {
            let mut read_result: Option<Option<Value>> = None;
            // A transfer issued at the very end of the schedule can leave
            // the range briefly leaderless; retry through it.
            for _ in 0..5 {
                let got: Rc<RefCell<Option<Result<Option<Value>, mr_proto::KvError>>>> =
                    Rc::new(RefCell::new(None));
                let g2 = got.clone();
                c.read(
                    NodeId(0),
                    Key::from(key_name(k).as_str()),
                    ReadOptions::default(),
                    Box::new(move |_c, res| {
                        *g2.borrow_mut() = Some(res);
                    }),
                );
                let deadline = SimTime(c.now().nanos() + SimDuration::from_secs(600).nanos());
                c.run_until_quiescent(deadline);
                let res = got.borrow_mut().take().expect("final read incomplete");
                match res {
                    Ok(v) => {
                        read_result = Some(v);
                        break;
                    }
                    Err(_) => {
                        c.run_until(SimTime(c.now().nanos() + SimDuration::from_secs(2).nanos()));
                    }
                }
            }
            let got = read_result.expect("final read kept failing");
            match (&newest.get(&k), &got) {
                (None, None) => {}
                (None, Some(v)) => {
                    // Only a client-side abort could have left a value.
                    let s = String::from_utf8(v.0.to_vec()).unwrap();
                    let idx: usize = s.trim_start_matches('w').parse().unwrap();
                    prop_assert!(
                        matches!(recs[idx].outcome, Some(Err(()))),
                        "key {k}: unexplained value {s}"
                    );
                }
                (Some(_), None) => prop_assert!(false, "key {k}: committed write lost"),
                (Some((ts, idx)), Some(v)) => {
                    let s = String::from_utf8(v.0.to_vec()).unwrap();
                    let got_idx: usize = s.trim_start_matches('w').parse().unwrap();
                    if got_idx != *idx {
                        // A racing abort may land above the newest commit,
                        // but a committed write must never be shadowed by
                        // an *older* committed one.
                        let newer_abort = matches!(recs[got_idx].outcome, Some(Err(())));
                        prop_assert!(
                            newer_abort,
                            "key {k}: read w{got_idx}, expected w{idx} (commit ts {ts})"
                        );
                    }
                }
            }
        }
    }
}

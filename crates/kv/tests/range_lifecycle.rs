//! End-to-end tests of the dynamic range lifecycle: admin and load-driven
//! splits, cold-range merges, transactions straddling a split, and
//! load-based lease rebalancing with report grace.

use std::cell::RefCell;
use std::rc::Rc;

use mr_clock::Timestamp;
use mr_kv::cluster::{Cluster, ClusterConfig, LifecycleConfig, ReadOptions};
use mr_kv::report::RangeStatus;
use mr_kv::zone::{derive_zone_config, ClosedTsPolicy, PlacementPolicy, SurvivalGoal};
use mr_proto::{Key, KvError, RangeId, Span, Value};
use mr_sim::{NodeId, RegionId, RttMatrix, SimDuration, SimTime, Topology};

const US_EAST: RegionId = RegionId(0);

fn paper_topology() -> Topology {
    Topology::build(
        &RttMatrix::paper_table1_regions(),
        3,
        RttMatrix::paper_table1(),
    )
}

fn all_regions() -> Vec<RegionId> {
    (0..5).map(RegionId).collect()
}

/// Lifecycle-enabled clusters set an RPC timeout: a split or merge drops
/// uncommitted proposals of the reshaped ranges and clients recover by
/// timeout + re-route.
fn config() -> ClusterConfig {
    ClusterConfig {
        rpc_timeout: Some(SimDuration::from_secs(2)),
        ..ClusterConfig::default()
    }
}

fn cluster(cfg: ClusterConfig) -> Cluster {
    Cluster::new(paper_topology(), cfg)
}

fn deadline() -> SimTime {
    SimTime(SimDuration::from_secs(600).nanos())
}

fn gw(region: u32) -> NodeId {
    NodeId(region * 3)
}

fn write_key(c: &mut Cluster, gateway: NodeId, key: &str, val: &str) -> Timestamp {
    let result: Rc<RefCell<Option<Timestamp>>> = Rc::new(RefCell::new(None));
    let r2 = Rc::clone(&result);
    let h = c.txn_begin(gateway);
    c.txn_put(
        h,
        Key::from(key),
        Some(Value::from(val)),
        Box::new(move |c, res| {
            res.unwrap();
            c.txn_commit(
                h,
                Box::new(move |_c, res| {
                    *r2.borrow_mut() = Some(res.unwrap());
                }),
            );
        }),
    );
    c.run_until_quiescent(deadline());
    let ts = result.borrow().expect("commit did not complete");
    ts
}

fn read_key(c: &mut Cluster, gateway: NodeId, key: &str) -> Result<Option<Value>, KvError> {
    let result: Rc<RefCell<Option<Result<Option<Value>, KvError>>>> = Rc::new(RefCell::new(None));
    let r2 = Rc::clone(&result);
    c.read(
        gateway,
        Key::from(key),
        ReadOptions::default(),
        Box::new(move |_c, res| {
            *r2.borrow_mut() = Some(res);
        }),
    );
    c.run_until_quiescent(deadline());
    let res = result.borrow_mut().take().expect("read did not complete");
    res
}

fn single_region_zc() -> mr_kv::zone::ZoneConfig {
    derive_zone_config(
        US_EAST,
        &all_regions(),
        SurvivalGoal::Zone,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    )
}

/// Every key committed before a split stays readable afterwards, the
/// registry tiles the keyspace in two, and the event log + lineage record
/// the split.
#[test]
fn admin_split_preserves_data_and_reroutes() {
    let mut c = cluster(config());
    let lhs = c.create_range(Span::all(), single_region_zc()).unwrap();
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));

    for k in ["a1", "b1", "m1", "x1", "z1"] {
        write_key(&mut c, gw(0), k, &format!("v-{k}"));
    }
    let rhs = c.admin_split_at(Key::from("m")).expect("split proposed");
    c.run_until(SimTime(SimDuration::from_secs(10).nanos()));

    assert_eq!(c.registry().len(), 2);
    let ld = c.registry().get(lhs).expect("lhs survives").clone();
    let rd = c.registry().get(rhs).expect("rhs installed").clone();
    assert_eq!(ld.span.end, Key::from("m"));
    assert_eq!(rd.span.start, Key::from("m"));
    assert!(rd.span.end.is_empty(), "rhs inherits the unbounded end");
    assert_eq!(c.events.count_kind("range_split"), 1);

    // Lineage: the RHS knows its parent and split key; the LHS counts the
    // split.
    let rl = c.lineage_of(rhs).expect("rhs lineage");
    assert_eq!(rl.origin, "split");
    assert_eq!(rl.parent, Some(lhs));
    assert_eq!(rl.split_key.as_deref(), Some("/m"));
    assert_eq!(c.lineage_of(lhs).unwrap().splits, 1);
    assert!(!c.split_latencies().is_empty());

    // Data landed on the right halves and reads re-route transparently.
    let lhs_keys: Vec<String> = c
        .admin_scan_range(lhs)
        .into_iter()
        .map(|(k, _)| format!("{k:?}"))
        .collect();
    assert_eq!(lhs_keys, ["/a1", "/b1"]);
    assert_eq!(c.admin_scan_range(rhs).len(), 3);
    for k in ["a1", "b1", "m1", "x1", "z1"] {
        assert_eq!(
            read_key(&mut c, gw(0), k).unwrap(),
            Some(Value::from(format!("v-{k}").as_str())),
            "key {k} lost across the split"
        );
    }
    // And both halves accept new writes.
    write_key(&mut c, gw(0), "b2", "v-b2");
    write_key(&mut c, gw(0), "x2", "v-x2");
    assert_eq!(
        read_key(&mut c, gw(0), "x2").unwrap(),
        Some(Value::from("v-x2"))
    );
}

/// A merge absorbs the right-hand neighbor back into one range holding the
/// union of the data, and merge-after-split restores the original tiling.
#[test]
fn admin_merge_restores_single_range() {
    let mut c = cluster(config());
    let lhs = c.create_range(Span::all(), single_region_zc()).unwrap();
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));
    for k in ["a1", "m1", "z1"] {
        write_key(&mut c, gw(0), k, &format!("v-{k}"));
    }
    let rhs = c.admin_split_at(Key::from("m")).expect("split proposed");
    c.run_until(SimTime(SimDuration::from_secs(10).nanos()));
    assert_eq!(c.registry().len(), 2);

    assert!(c.admin_merge_at(Key::from("a")), "merge proposed");
    c.run_until(SimTime(SimDuration::from_secs(15).nanos()));

    assert_eq!(c.registry().len(), 1);
    assert!(c.registry().get(rhs).is_none(), "rhs absorbed");
    let d = c.registry().get(lhs).expect("lhs survives").clone();
    assert_eq!(d.span, Span::all());
    assert_eq!(c.events.count_kind("range_merge"), 1);
    assert_eq!(c.lineage_of(lhs).unwrap().merges_absorbed, 1);
    assert_eq!(c.lineage_of(rhs).unwrap().merged_into, Some(lhs));
    assert_eq!(c.admin_scan_range(lhs).len(), 3);
    for k in ["a1", "m1", "z1"] {
        assert_eq!(
            read_key(&mut c, gw(0), k).unwrap(),
            Some(Value::from(format!("v-{k}").as_str())),
            "key {k} lost across the merge"
        );
    }
    // The re-merged range accepts writes across the healed boundary.
    write_key(&mut c, gw(0), "m2", "v-m2");
    assert_eq!(
        read_key(&mut c, gw(0), "m2").unwrap(),
        Some(Value::from("v-m2"))
    );
}

/// A transaction whose writes straddle the split point, with the split
/// racing between its puts and its commit, still commits atomically: the
/// split carries intents and the transaction record to the right halves.
#[test]
fn txn_straddling_a_split_commits() {
    let mut c = cluster(config());
    c.create_range(Span::all(), single_region_zc()).unwrap();
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));

    let h = c.txn_begin(gw(0));
    let put_done: Rc<RefCell<u32>> = Rc::new(RefCell::new(0));
    for k in ["a1", "z1"] {
        let done = Rc::clone(&put_done);
        c.txn_put(
            h,
            Key::from(k),
            Some(Value::from("straddle")),
            Box::new(move |_c, res| {
                res.unwrap();
                *done.borrow_mut() += 1;
            }),
        );
    }
    // Let the puts land as intents, then split between them.
    c.run_until(SimTime(SimDuration::from_secs(6).nanos()));
    assert_eq!(*put_done.borrow(), 2, "puts finished before the split");
    c.admin_split_at(Key::from("m")).expect("split proposed");
    c.run_until(SimTime(SimDuration::from_secs(8).nanos()));
    assert_eq!(c.registry().len(), 2);

    let committed: Rc<RefCell<Option<Timestamp>>> = Rc::new(RefCell::new(None));
    let c2 = Rc::clone(&committed);
    c.txn_commit(
        h,
        Box::new(move |_c, res| {
            *c2.borrow_mut() = Some(res.unwrap());
        }),
    );
    c.run_until_quiescent(deadline());
    assert!(committed.borrow().is_some(), "straddling txn must commit");
    for k in ["a1", "z1"] {
        assert_eq!(
            read_key(&mut c, gw(0), k).unwrap(),
            Some(Value::from("straddle")),
            "write {k} lost across the racing split"
        );
    }
}

/// With the lifecycle enabled, a range growing past the size threshold
/// splits on its own at the sampled-load median, and the halves keep every
/// committed key.
#[test]
fn size_triggered_split_fires_under_load() {
    let mut cfg = config();
    cfg.lifecycle = LifecycleConfig {
        enabled: true,
        split_size_keys: 16,
        ..LifecycleConfig::default()
    };
    let mut c = cluster(cfg);
    c.create_range(Span::all(), single_region_zc()).unwrap();
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));

    let keys: Vec<String> = (0..30).map(|i| format!("user/{i:03}")).collect();
    for k in &keys {
        write_key(&mut c, gw(0), k, "payload");
    }
    c.run_until(SimTime(c.now().0 + SimDuration::from_secs(30).nanos()));

    assert!(
        c.registry().len() >= 2,
        "no split after driving {} keys",
        keys.len()
    );
    assert!(c.events.count_kind("range_split") >= 1);
    assert!(c.last_lifecycle_action().is_some());
    // The split key is an observed request key, never the span start.
    let split_children: Vec<RangeId> = c
        .registry()
        .iter()
        .map(|d| d.id)
        .filter(|&id| c.lineage_of(id).is_some_and(|l| l.origin == "split"))
        .collect();
    assert!(!split_children.is_empty());
    for k in &keys {
        assert_eq!(
            read_key(&mut c, gw(0), k).unwrap(),
            Some(Value::from("payload")),
            "key {k} lost across the automatic split"
        );
    }
}

/// Two adjacent ranges that go cold merge back automatically once the
/// cooldown and QPS floors allow it.
#[test]
fn cold_adjacent_ranges_merge_automatically() {
    let mut cfg = config();
    cfg.lifecycle = LifecycleConfig {
        enabled: true,
        ..LifecycleConfig::default()
    };
    let mut c = cluster(cfg);
    let lhs = c.create_range(Span::all(), single_region_zc()).unwrap();
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));
    write_key(&mut c, gw(0), "a1", "v");
    write_key(&mut c, gw(0), "z1", "v");
    c.admin_split_at(Key::from("m")).expect("split proposed");
    c.run_until(SimTime(SimDuration::from_secs(8).nanos()));
    assert_eq!(c.registry().len(), 2);

    // No more traffic: decayed QPS sinks under the merge floor, the
    // cooldown lapses, and the lifecycle merges the halves back.
    c.run_until(SimTime(SimDuration::from_secs(120).nanos()));
    assert_eq!(c.registry().len(), 1, "cold halves did not merge back");
    assert!(c.events.count_kind("range_merge") >= 1);
    assert_eq!(c.registry().get(lhs).unwrap().span, Span::all());
    for k in ["a1", "z1"] {
        assert_eq!(read_key(&mut c, gw(0), k).unwrap(), Some(Value::from("v")));
    }
}

/// Sustained remote traffic moves the lease toward the demanding region;
/// the replication report treats the deliberate move as conforming during
/// the grace window; and once traffic stops the lease re-homes into the
/// configured preference.
#[test]
fn lease_rebalances_toward_demand_then_rehomes() {
    let mut cfg = config();
    cfg.lifecycle = LifecycleConfig {
        enabled: true,
        rebalance_min_qps_milli: 500,
        ..LifecycleConfig::default()
    };
    let mut c = cluster(cfg);
    // Region-survivable: voters spread across regions, so eu has a voter
    // the lease can move to. Lease preference stays us-east.
    let zc = derive_zone_config(
        US_EAST,
        &all_regions(),
        SurvivalGoal::Region,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    );
    let id = c.create_range(Span::all(), zc).unwrap();
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));
    write_key(&mut c, gw(0), "k1", "v1");
    assert_eq!(
        c.topology()
            .region_of(c.registry().get(id).unwrap().leaseholder),
        US_EAST
    );

    // Hammer the range from eu (region 1) until the rebalancer reacts.
    let eu = RegionId(1);
    for _ in 0..300 {
        read_key(&mut c, gw(1), "k1").unwrap();
        if c.topology()
            .region_of(c.registry().get(id).unwrap().leaseholder)
            == eu
        {
            break;
        }
    }
    assert_eq!(
        c.topology()
            .region_of(c.registry().get(id).unwrap().leaseholder),
        eu,
        "lease did not follow demand"
    );
    assert!(c.events.count_kind("lease_rebalance") >= 1);
    assert!(c.lineage_of(id).unwrap().lease_rebalances >= 1);
    // The deliberate move is not reported as a leaseholder violation.
    let report = c.replication_report();
    assert_eq!(
        report.count(RangeStatus::WrongLeaseholder),
        0,
        "transient rebalance flagged: {}",
        report.export_json()
    );

    // Traffic stops: the load decays and the lease re-homes to us-east.
    let t0 = c.now();
    c.run_until(SimTime(t0.0 + SimDuration::from_secs(120).nanos()));
    assert_eq!(
        c.topology()
            .region_of(c.registry().get(id).unwrap().leaseholder),
        US_EAST,
        "lease did not re-home after the hot spell"
    );
    assert_eq!(c.replication_report().violations(), 0);
}

//! End-to-end tests of the KV stack: cluster transport + Raft replication +
//! leases + closed timestamps + the transaction coordinator, on the paper's
//! five-region topology (Table 1 RTTs).

use std::cell::RefCell;
use std::rc::Rc;

use mr_clock::Timestamp;
use mr_kv::cluster::{Cluster, ClusterConfig, ReadOptions, Staleness};
use mr_kv::zone::{derive_zone_config, ClosedTsPolicy, PlacementPolicy, SurvivalGoal};
use mr_proto::{Key, KvError, Span, Value};
use mr_sim::{NodeId, RegionId, RttMatrix, SimDuration, SimTime, Topology};

const US_EAST: RegionId = RegionId(0);

fn paper_topology() -> Topology {
    Topology::build(
        &RttMatrix::paper_table1_regions(),
        3,
        RttMatrix::paper_table1(),
    )
}

fn all_regions() -> Vec<RegionId> {
    (0..5).map(RegionId).collect()
}

fn cluster(cfg: ClusterConfig) -> Cluster {
    Cluster::new(paper_topology(), cfg)
}

fn deadline() -> SimTime {
    SimTime(SimDuration::from_secs(600).nanos())
}

/// First node of a region (clients connect to a collocated gateway).
fn gw(region: u32) -> NodeId {
    NodeId(region * 3)
}

/// Run a write transaction to completion, returning (commit_ts, latency).
fn write_key(c: &mut Cluster, gateway: NodeId, key: &str, val: &str) -> (Timestamp, SimDuration) {
    let start = c.now();
    let result: Rc<RefCell<Option<Timestamp>>> = Rc::new(RefCell::new(None));
    let r2 = Rc::clone(&result);
    let h = c.txn_begin(gateway);
    let key = Key::from(key);
    let val = Value::from(val);
    c.txn_put(
        h,
        key,
        Some(val),
        Box::new(move |c, res| {
            res.unwrap();
            c.txn_commit(
                h,
                Box::new(move |_c, res| {
                    *r2.borrow_mut() = Some(res.unwrap());
                }),
            );
        }),
    );
    c.run_until_quiescent(deadline());
    let ts = result.borrow().expect("commit did not complete");
    (ts, c.now() - start)
}

/// Run a read to completion, returning (value, latency).
fn read_key(
    c: &mut Cluster,
    gateway: NodeId,
    key: &str,
    opts: ReadOptions,
) -> (Result<Option<Value>, KvError>, SimDuration) {
    let start = c.now();
    let result: Rc<RefCell<Option<Result<Option<Value>, KvError>>>> = Rc::new(RefCell::new(None));
    let r2 = Rc::clone(&result);
    c.read(
        gateway,
        Key::from(key),
        opts,
        Box::new(move |_c, res| {
            *r2.borrow_mut() = Some(res);
        }),
    );
    c.run_until_quiescent(deadline());
    let res = result.borrow_mut().take().expect("read did not complete");
    (res, c.now() - start)
}

fn fresh() -> ReadOptions {
    ReadOptions::default()
}

#[test]
fn regional_write_and_read_from_home_region_is_fast() {
    let mut c = cluster(ClusterConfig::default());
    let zc = derive_zone_config(
        US_EAST,
        &all_regions(),
        SurvivalGoal::Zone,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    );
    c.create_range(Span::all(), zc).unwrap();
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));

    let (_, wlat) = write_key(&mut c, gw(0), "k1", "v1");
    // Local gateway + in-region raft quorum: a few ms.
    assert!(
        wlat < SimDuration::from_millis(30),
        "home-region write took {wlat}"
    );
    let (val, rlat) = read_key(&mut c, gw(0), "k1", fresh());
    assert_eq!(val.unwrap(), Some(Value::from("v1")));
    assert!(
        rlat < SimDuration::from_millis(10),
        "home-region read took {rlat}"
    );
}

#[test]
fn regional_remote_access_pays_wan_round_trips() {
    let mut c = cluster(ClusterConfig::default());
    let zc = derive_zone_config(
        US_EAST,
        &all_regions(),
        SurvivalGoal::Zone,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    );
    c.create_range(Span::all(), zc).unwrap();
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));

    // From europe-west2 (region 2), RTT to us-east1 is 87ms.
    let (_, wlat) = write_key(&mut c, gw(2), "k1", "v1");
    assert!(
        wlat >= SimDuration::from_millis(87),
        "remote write unexpectedly fast: {wlat}"
    );
    let (val, rlat) = read_key(&mut c, gw(2), "k1", fresh());
    assert_eq!(val.unwrap(), Some(Value::from("v1")));
    assert!(
        rlat >= SimDuration::from_millis(80),
        "remote fresh read should cross the WAN: {rlat}"
    );
}

#[test]
fn stale_read_is_served_by_local_non_voting_replica() {
    let mut c = cluster(ClusterConfig::default());
    let zc = derive_zone_config(
        US_EAST,
        &all_regions(),
        SurvivalGoal::Zone,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    );
    c.create_range(Span::all(), zc).unwrap();
    write_key(&mut c, gw(0), "k1", "v1");
    // Let replication + closed timestamps advance well past the write.
    c.run_until(SimTime(SimDuration::from_secs(10).nanos()));

    let before = c.metrics().follower_reads_served;
    let opts = ReadOptions {
        staleness: Staleness::ExactAgo(SimDuration::from_secs(5)),
        fallback_to_leaseholder: true,
    };
    // From australia-southeast1 (region 4) — 198ms from the leaseholder.
    let (val, rlat) = read_key(&mut c, gw(4), "k1", opts);
    assert_eq!(val.unwrap(), Some(Value::from("v1")));
    assert!(
        rlat < SimDuration::from_millis(5),
        "stale read should be region-local: {rlat}"
    );
    assert_eq!(c.metrics().follower_reads_served, before + 1);
}

#[test]
fn bounded_staleness_negotiates_local_timestamp() {
    let mut c = cluster(ClusterConfig::default());
    let zc = derive_zone_config(
        US_EAST,
        &all_regions(),
        SurvivalGoal::Zone,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    );
    c.create_range(Span::all(), zc).unwrap();
    write_key(&mut c, gw(0), "k1", "v1");
    c.run_until(SimTime(SimDuration::from_secs(10).nanos()));

    let opts = ReadOptions {
        staleness: Staleness::BoundedMaxStaleness(SimDuration::from_secs(30)),
        fallback_to_leaseholder: false,
    };
    let (val, rlat) = read_key(&mut c, gw(3), "k1", opts);
    assert_eq!(val.unwrap(), Some(Value::from("v1")));
    // Negotiation + read, both at the local replica.
    assert!(
        rlat < SimDuration::from_millis(5),
        "bounded-staleness read should stay local: {rlat}"
    );
}

#[test]
fn global_table_reads_fast_everywhere_writes_pay_commit_wait() {
    let mut c = cluster(ClusterConfig::default());
    let zc = derive_zone_config(
        US_EAST,
        &all_regions(),
        SurvivalGoal::Zone,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lead,
    );
    c.create_range(Span::all(), zc).unwrap();
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));

    // Write from the primary region: commit wait ≈ closed-ts lead (≈ raft +
    // replication + max_offset ≈ 380ms with defaults).
    let (commit_ts, wlat) = write_key(&mut c, gw(0), "g1", "v1");
    assert!(commit_ts.synthetic, "global commits are future-time");
    assert!(
        wlat >= SimDuration::from_millis(300),
        "global write should commit-wait: {wlat}"
    );
    assert!(
        wlat <= SimDuration::from_millis(800),
        "global write unexpectedly slow: {wlat}"
    );

    // Wait for replication, then read from every region: all local & fresh.
    c.run_until(SimTime(SimDuration::from_secs(10).nanos()));
    for region in 0..5u32 {
        let (val, rlat) = read_key(&mut c, gw(region), "g1", fresh());
        assert_eq!(val.unwrap(), Some(Value::from("v1")), "region {region}");
        assert!(
            rlat < SimDuration::from_millis(10),
            "global read from region {region} took {rlat}"
        );
    }
    assert!(c.metrics().follower_reads_served >= 4);
}

#[test]
fn global_reader_observing_recent_write_commit_waits_briefly() {
    let mut c = cluster(ClusterConfig::default());
    let zc = derive_zone_config(
        US_EAST,
        &all_regions(),
        SurvivalGoal::Zone,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lead,
    );
    c.create_range(Span::all(), zc).unwrap();
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));

    // Start the write but do NOT wait for it to finish: read concurrently
    // from a remote region once the value has replicated.
    let h = c.txn_begin(gw(0));
    let done = Rc::new(RefCell::new(false));
    let d2 = Rc::clone(&done);
    c.txn_put(
        h,
        Key::from("g1"),
        Some(Value::from("v1")),
        Box::new(move |c, res| {
            res.unwrap();
            c.txn_commit(
                h,
                Box::new(move |_c, res| {
                    res.unwrap();
                    *d2.borrow_mut() = true;
                }),
            );
        }),
    );
    // Replication to the far follower takes ~1 one-way WAN delay; the write
    // sits at a future timestamp. Read just after replication lands: the
    // value is within the reader's uncertainty window → uncertainty restart
    // + reader-side commit wait (bounded by max_offset).
    c.run_until(SimTime(SimDuration::from_millis(5_450).nanos()));
    let before_restarts = c.metrics().uncertainty_restarts;
    let (val, rlat) = read_key(&mut c, gw(4), "g1", fresh());
    assert_eq!(val.unwrap(), Some(Value::from("v1")));
    assert!(
        c.metrics().uncertainty_restarts > before_restarts,
        "reader should have hit the uncertainty window"
    );
    // Reader-side commit wait is bounded by max_clock_offset (250ms) plus
    // redirects and the uncertainty-refresh round-trip — still well below
    // the writer's full closed-timestamp lead (~580ms).
    assert!(
        rlat <= SimDuration::from_millis(550),
        "reader commit wait out of bounds: {rlat}"
    );
    assert!(*done.borrow(), "writer should eventually finish");
}

#[test]
fn read_write_conflict_blocks_reader_during_two_phase_commit() {
    let mut c = cluster(ClusterConfig::default());
    let zc = derive_zone_config(
        US_EAST,
        &all_regions(),
        SurvivalGoal::Zone,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    );
    // Two ranges so the writing transaction takes the two-phase path and
    // holds intents while its commit crosses the WAN.
    c.create_range(Span::new(Key::from("a"), Key::from("m")), zc.clone())
        .unwrap();
    c.create_range(Span::new(Key::from("m"), Key::default()), zc) // empty end = unbounded
        .unwrap();
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));

    // A remote (europe) transaction writes to both ranges and commits; its
    // intents are pinned while Put/EndTxn/Resolve round-trips cross the WAN.
    let h = c.txn_begin(gw(2));
    let commit_done = Rc::new(RefCell::new(false));
    let cd = Rc::clone(&commit_done);
    c.txn_put(
        h,
        Key::from("k1"),
        Some(Value::from("v1")),
        Box::new(move |c, res| {
            res.unwrap();
            c.txn_put(
                h,
                Key::from("z1"),
                Some(Value::from("v2")),
                Box::new(move |c2, res| {
                    res.unwrap();
                    c2.txn_commit(
                        h,
                        Box::new(move |_c, res| {
                            res.unwrap();
                            *cd.borrow_mut() = true;
                        }),
                    );
                }),
            );
        }),
    );
    // Let the intents land at the us-east leaseholders (one-way WAN ~44ms)
    // but not the full commit (~3 half-round-trips).
    let t0 = c.now();
    c.run_until(SimTime((t0 + SimDuration::from_millis(60)).nanos()));
    assert!(!*commit_done.borrow(), "commit should still be in flight");

    // A fresh read from the home region blocks on the intent.
    let read_result: Rc<RefCell<Option<Option<Value>>>> = Rc::new(RefCell::new(None));
    let rr = Rc::clone(&read_result);
    c.read(
        gw(0),
        Key::from("k1"),
        fresh(),
        Box::new(move |_c, res| {
            *rr.borrow_mut() = Some(res.unwrap());
        }),
    );
    c.run_until(SimTime((t0 + SimDuration::from_millis(80)).nanos()));
    assert!(read_result.borrow().is_none(), "read should be blocked");

    // Once the writer commits and resolves, the read unblocks and observes
    // the value.
    c.run_until_quiescent(deadline());
    assert!(*commit_done.borrow());
    assert_eq!(
        read_result.borrow().clone().flatten(),
        Some(Value::from("v1"))
    );
}

#[test]
fn write_write_conflict_serializes() {
    let mut c = cluster(ClusterConfig::default());
    let zc = derive_zone_config(
        US_EAST,
        &all_regions(),
        SurvivalGoal::Zone,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    );
    c.create_range(Span::all(), zc).unwrap();
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));

    // Two concurrent writers to the same key.
    let mut commits: Vec<Rc<RefCell<Option<Timestamp>>>> = Vec::new();
    for i in 0..2 {
        let h = c.txn_begin(gw(i));
        let slot: Rc<RefCell<Option<Timestamp>>> = Rc::new(RefCell::new(None));
        let s2 = Rc::clone(&slot);
        commits.push(slot);
        c.txn_put(
            h,
            Key::from("hot"),
            Some(Value::from(if i == 0 { "a" } else { "b" })),
            Box::new(move |c, res| {
                res.unwrap();
                c.txn_commit(
                    h,
                    Box::new(move |_c, res| {
                        *s2.borrow_mut() = Some(res.unwrap());
                    }),
                );
            }),
        );
    }
    c.run_until_quiescent(deadline());
    let t0 = commits[0].borrow().unwrap();
    let t1 = commits[1].borrow().unwrap();
    assert_ne!(t0, t1, "conflicting writes must serialize");
    // The later committer's value wins.
    let (val, _) = read_key(&mut c, gw(0), "hot", fresh());
    let expect = if t0 > t1 { "a" } else { "b" };
    assert_eq!(val.unwrap(), Some(Value::from(expect)));
}

#[test]
fn region_survivability_survives_home_region_failure() {
    let cfg = ClusterConfig {
        rpc_timeout: Some(SimDuration::from_secs(3)),
        ..ClusterConfig::default()
    };
    let mut c = cluster(cfg);
    let zc = derive_zone_config(
        US_EAST,
        &all_regions(),
        SurvivalGoal::Region,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    );
    c.create_range(Span::all(), zc).unwrap();
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));
    write_key(&mut c, gw(0), "k1", "before");

    // Kill the home region. Raft elects a new leader among the surviving
    // voters; the lease follows it.
    c.fail_region_by_name("us-east1");
    c.run_until(SimTime(SimDuration::from_secs(30).nanos()));

    // Writes and reads still succeed from a surviving region.
    let (_, _) = write_key(&mut c, gw(1), "k2", "after");
    let (val, _) = read_key(&mut c, gw(1), "k1", fresh());
    assert_eq!(val.unwrap(), Some(Value::from("before")));
    let (val, _) = read_key(&mut c, gw(1), "k2", fresh());
    assert_eq!(val.unwrap(), Some(Value::from("after")));
    assert!(c.metrics().lease_transfers >= 1);
}

#[test]
fn zone_survivability_loses_writes_on_home_region_failure() {
    let cfg = ClusterConfig {
        rpc_timeout: Some(SimDuration::from_millis(500)),
        ..ClusterConfig::default()
    };
    let mut c = cluster(cfg);
    let zc = derive_zone_config(
        US_EAST,
        &all_regions(),
        SurvivalGoal::Zone,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    );
    c.create_range(Span::all(), zc).unwrap();
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));
    write_key(&mut c, gw(0), "k1", "v1");
    c.run_until(SimTime(SimDuration::from_secs(10).nanos()));

    c.fail_region_by_name("us-east1");
    c.run_until(SimTime(SimDuration::from_secs(15).nanos()));

    // All three voters are gone: writes cannot find a quorum and fail.
    let failed: Rc<RefCell<Option<KvError>>> = Rc::new(RefCell::new(None));
    let f2 = Rc::clone(&failed);
    let h = c.txn_begin(gw(1));
    c.txn_put(
        h,
        Key::from("k2"),
        Some(Value::from("v2")),
        Box::new(move |c, res| {
            res.unwrap(); // buffered locally; the commit is what fails
            c.txn_commit(
                h,
                Box::new(move |_c, res| {
                    *f2.borrow_mut() = Some(res.unwrap_err());
                }),
            );
        }),
    );
    c.run_until_quiescent(deadline());
    assert!(matches!(
        failed.borrow().as_ref(),
        Some(KvError::RangeUnavailable { .. })
    ));

    // But stale reads from surviving non-voting replicas still work
    // (§6.2.2), at timestamps the dead leaseholder had already closed
    // (with the default 3s lag, anything ≤ failure_time - 3s).
    let opts = ReadOptions {
        staleness: Staleness::ExactAt(Timestamp::new(SimDuration::from_secs(6).nanos(), 0)),
        fallback_to_leaseholder: false,
    };
    let (val, rlat) = read_key(&mut c, gw(1), "k1", opts);
    assert_eq!(val.unwrap(), Some(Value::from("v1")));
    assert!(
        rlat < SimDuration::from_millis(5),
        "surviving-replica stale read should be local: {rlat}"
    );
}

#[test]
fn zone_survivability_survives_single_zone_failure() {
    let cfg = ClusterConfig {
        rpc_timeout: Some(SimDuration::from_secs(3)),
        ..ClusterConfig::default()
    };
    let mut c = cluster(cfg);
    let zc = derive_zone_config(
        US_EAST,
        &all_regions(),
        SurvivalGoal::Zone,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    );
    c.create_range(Span::all(), zc).unwrap();
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));
    write_key(&mut c, gw(0), "k1", "v1");

    // Fail the zone of the current leaseholder.
    let lh = c.registry().iter().next().unwrap().leaseholder;
    c.fail_zone_of(lh);
    c.run_until(SimTime(SimDuration::from_secs(30).nanos()));

    // The two surviving in-region voters elect a leader; writes continue
    // from another gateway in the home region.
    let gateway = c
        .topology()
        .nodes_in_region(US_EAST)
        .first()
        .copied()
        .expect("survivors in home region");
    let (_, wlat) = write_key(&mut c, gateway, "k2", "v2");
    assert!(wlat < SimDuration::from_secs(2), "write took {wlat}");
    let (val, _) = read_key(&mut c, gateway, "k1", fresh());
    assert_eq!(val.unwrap(), Some(Value::from("v1")));
}

#[test]
fn lease_transfer_moves_fast_reads() {
    let mut c = cluster(ClusterConfig::default());
    // Region-survivable so voters exist outside the home region.
    let zc = derive_zone_config(
        US_EAST,
        &all_regions(),
        SurvivalGoal::Region,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    );
    let range = c.create_range(Span::all(), zc).unwrap();
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));
    write_key(&mut c, gw(0), "k1", "v1");

    // Find a voter outside us-east1 and hand it the lease.
    let target = {
        let desc = c.registry().get(range).unwrap();
        let topo = c.topology();
        desc.replicas
            .iter()
            .filter(|p| p.voting && topo.region_of(p.node) != US_EAST)
            .map(|p| p.node)
            .next()
            .expect("remote voter")
    };
    let target_region = c.topology().region_of(target).0;
    c.transfer_lease(range, target);
    c.run_until(SimTime(SimDuration::from_secs(10).nanos()));

    // Fresh reads from the new home region are now local.
    let (val, rlat) = read_key(&mut c, gw(target_region), "k1", fresh());
    assert_eq!(val.unwrap(), Some(Value::from("v1")));
    assert!(
        rlat < SimDuration::from_millis(10),
        "read after lease transfer took {rlat}"
    );
    // Writes are serializable across the transfer (tscache low-water).
    let (_, _) = write_key(&mut c, gw(target_region), "k1", "v2");
    let (val, _) = read_key(&mut c, gw(target_region), "k1", fresh());
    assert_eq!(val.unwrap(), Some(Value::from("v2")));
}

#[test]
fn uncertainty_interval_enforces_real_time_order_across_skewed_clocks() {
    // Reader's clock is slower than the writer's: without uncertainty
    // intervals the reader would miss the write.
    let cfg = ClusterConfig {
        skew_amplitude: SimDuration::ZERO,
        ..ClusterConfig::default()
    };
    let mut c = cluster(cfg);
    // Manually skew: writer gateway fast by 100ms, reader slow by 100ms
    // (within the 250ms bound).
    c.set_node_skew(gw(0), 100_000_000);
    c.set_node_skew(gw(1), -100_000_000);
    let zc = derive_zone_config(
        US_EAST,
        &all_regions(),
        SurvivalGoal::Zone,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    );
    c.create_range(Span::all(), zc).unwrap();
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));

    // Write completes in real time before the read begins.
    write_key(&mut c, gw(0), "k1", "v1");
    let (val, _) = read_key(&mut c, gw(1), "k1", fresh());
    assert_eq!(
        val.unwrap(),
        Some(Value::from("v1")),
        "linearizability: read after write must observe it"
    );
}

#[test]
fn read_your_writes_within_txn() {
    let mut c = cluster(ClusterConfig::default());
    let zc = derive_zone_config(
        US_EAST,
        &all_regions(),
        SurvivalGoal::Zone,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    );
    c.create_range(Span::all(), zc).unwrap();
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));

    let h = c.txn_begin(gw(0));
    let seen: Rc<RefCell<Option<Option<Value>>>> = Rc::new(RefCell::new(None));
    let s2 = Rc::clone(&seen);
    c.txn_put(
        h,
        Key::from("k1"),
        Some(Value::from("mine")),
        Box::new(move |c, res| {
            res.unwrap();
            c.txn_get(
                h,
                Key::from("k1"),
                Box::new(move |c2, res| {
                    *s2.borrow_mut() = Some(res.unwrap());
                    c2.txn_commit(
                        h,
                        Box::new(|_c, res| {
                            res.unwrap();
                        }),
                    );
                }),
            );
        }),
    );
    c.run_until_quiescent(deadline());
    assert_eq!(seen.borrow().clone().flatten(), Some(Value::from("mine")));
}

#[test]
fn txn_scan_sees_consistent_snapshot() {
    let mut c = cluster(ClusterConfig::default());
    let zc = derive_zone_config(
        US_EAST,
        &all_regions(),
        SurvivalGoal::Zone,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    );
    c.create_range(Span::all(), zc).unwrap();
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));
    write_key(&mut c, gw(0), "a", "1");
    write_key(&mut c, gw(0), "b", "2");
    write_key(&mut c, gw(0), "c", "3");

    let h = c.txn_begin(gw(0));
    let rows: Rc<RefCell<Vec<(Key, Value)>>> = Rc::new(RefCell::new(Vec::new()));
    let r2 = Rc::clone(&rows);
    c.txn_scan(
        h,
        Span::new(Key::from("a"), Key::from("z")),
        100,
        Box::new(move |c, res| {
            *r2.borrow_mut() = res.unwrap();
            c.txn_commit(
                h,
                Box::new(|_c, res| {
                    res.unwrap();
                }),
            );
        }),
    );
    c.run_until_quiescent(deadline());
    let rows = rows.borrow();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0].0, Key::from("a"));
    assert_eq!(rows[2].1, Value::from("3"));
}

#[test]
fn restricted_placement_denies_remote_stale_reads() {
    let mut c = cluster(ClusterConfig::default());
    let zc = derive_zone_config(
        US_EAST,
        &all_regions(),
        SurvivalGoal::Zone,
        PlacementPolicy::Restricted,
        ClosedTsPolicy::Lag,
    );
    c.create_range(Span::all(), zc).unwrap();
    write_key(&mut c, gw(0), "k1", "v1");
    c.run_until(SimTime(SimDuration::from_secs(10).nanos()));

    // All replicas are domiciled in us-east1, so a "nearest replica" stale
    // read from asia must cross the WAN.
    let opts = ReadOptions {
        staleness: Staleness::ExactAgo(SimDuration::from_secs(5)),
        fallback_to_leaseholder: true,
    };
    let (val, rlat) = read_key(&mut c, gw(3), "k1", opts);
    assert_eq!(val.unwrap(), Some(Value::from("v1")));
    assert!(
        rlat >= SimDuration::from_millis(100),
        "restricted placement should force remote reads: {rlat}"
    );
}

#[test]
fn excessive_clock_skew_permits_stale_reads_but_not_corruption() {
    // §6.2.3: single-key linearizability relies on clocks staying within
    // max_clock_offset. Violate the bound deliberately: a write committed
    // in real time can fall outside a slow reader's uncertainty window and
    // be missed (a stale read) — while serializability (and the data
    // itself) is unaffected.
    let cfg = ClusterConfig {
        skew_amplitude: SimDuration::ZERO,
        ..ClusterConfig::default()
    };
    let mut c = cluster(cfg);
    // Writer's gateway runs 200ms fast, reader's 200ms slow: pairwise skew
    // 400ms >> the 250ms bound.
    c.set_node_skew(gw(0), 200_000_000);
    c.set_node_skew(gw(1), -200_000_000);
    let zc = derive_zone_config(
        US_EAST,
        &all_regions(),
        SurvivalGoal::Zone,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    );
    c.create_range(Span::all(), zc).unwrap();
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));
    write_key(&mut c, gw(0), "k1", "old");
    c.run_until(SimTime(SimDuration::from_secs(6).nanos()));

    // Fresh overwrite from the fast clock...
    write_key(&mut c, gw(0), "k1", "new");
    // ...and an immediate fresh read via the slow clock: its read
    // timestamp + 250ms uncertainty window ends ~150ms short of the
    // write's timestamp, so the (completed!) write is invisible — the
    // §6.2.3 stale-read anomaly.
    let (val, _) = read_key(&mut c, gw(1), "k1", fresh());
    assert_eq!(
        val.unwrap(),
        Some(Value::from("old")),
        "out-of-bounds skew should reproduce the stale-read anomaly"
    );

    // The anomaly is bounded staleness, not corruption: once real time
    // passes the write's timestamp, every reader sees it.
    c.run_until(SimTime(c.now().nanos() + SimDuration::from_secs(1).nanos()));
    let (val, _) = read_key(&mut c, gw(1), "k1", fresh());
    assert_eq!(val.unwrap(), Some(Value::from("new")));
}

#[test]
fn gc_collects_old_versions_without_breaking_reads() {
    let cfg = ClusterConfig {
        gc_interval: SimDuration::from_secs(10),
        gc_ttl: SimDuration::from_secs(15),
        ..ClusterConfig::default()
    };
    let mut c = cluster(cfg);
    let zc = derive_zone_config(
        US_EAST,
        &all_regions(),
        SurvivalGoal::Zone,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    );
    c.create_range(Span::all(), zc).unwrap();
    c.run_until(SimTime(SimDuration::from_secs(2).nanos()));
    // Ten versions of the same key over 10 seconds.
    for i in 0..10 {
        write_key(&mut c, gw(0), "k1", &format!("v{i}"));
        let t = c.now();
        c.run_until(SimTime(t.nanos() + SimDuration::from_secs(1).nanos()));
    }
    // Far past the TTL: old versions get collected.
    c.run_until(SimTime(SimDuration::from_secs(60).nanos()));
    assert!(
        c.metrics().gc_versions_removed > 0,
        "GC should have removed shadowed versions"
    );
    // Fresh reads still see the newest value...
    let (val, _) = read_key(&mut c, gw(1), "k1", fresh());
    assert_eq!(val.unwrap(), Some(Value::from("v9")));
    // ...and stale reads within the TTL window still work.
    let opts = ReadOptions {
        staleness: Staleness::ExactAgo(SimDuration::from_secs(5)),
        fallback_to_leaseholder: true,
    };
    let (val, _) = read_key(&mut c, gw(2), "k1", opts);
    assert_eq!(val.unwrap(), Some(Value::from("v9")));
}

#[test]
fn aost_read_below_gc_threshold_errors_unless_protected() {
    let cfg = ClusterConfig {
        gc_interval: SimDuration::from_secs(5),
        ..ClusterConfig::default()
    };
    let mut c = cluster(cfg);
    let zc = derive_zone_config(
        US_EAST,
        &all_regions(),
        SurvivalGoal::Zone,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    );
    // Default zone gc.ttl: 10s.
    c.create_range(Span::all(), zc).unwrap();
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));
    let (old_ts, _) = write_key(&mut c, gw(0), "k1", "old");
    c.run_until(SimTime(SimDuration::from_secs(6).nanos()));
    // Pin the old version's timestamp before GC can pass it.
    let pin = c.protect_timestamp(old_ts);
    // Overwrite-heavy phase, far past the TTL.
    for i in 0..20 {
        write_key(&mut c, gw(0), "k1", &format!("v{i}"));
        let t = c.now();
        c.run_until(SimTime(t.nanos() + SimDuration::from_secs(2).nanos()));
    }
    let aost = |ts| ReadOptions {
        staleness: Staleness::ExactAt(ts),
        fallback_to_leaseholder: true,
    };
    // The protection held the threshold: the AOST read reaches history
    // far older than the TTL and sees exactly the old value.
    let (val, _) = read_key(&mut c, gw(1), "k1", aost(old_ts));
    assert_eq!(
        val.unwrap(),
        Some(Value::from("old")),
        "protected AOST read must see the pinned version"
    );
    // Release the pin; the next GC pass advances the threshold past it.
    assert!(c.release_protected_timestamp(pin));
    let t = c.now();
    c.run_until(SimTime(t.nanos() + SimDuration::from_secs(20).nanos()));
    let (val, _) = read_key(&mut c, gw(1), "k1", aost(old_ts));
    match val {
        Err(KvError::BatchTimestampBeforeGC { read_ts, threshold }) => {
            assert_eq!(read_ts, old_ts);
            assert!(threshold > read_ts);
        }
        other => panic!("expected BatchTimestampBeforeGC, got {other:?}"),
    }
    // Fresh reads are untouched by GC.
    let (val, _) = read_key(&mut c, gw(0), "k1", fresh());
    assert_eq!(val.unwrap(), Some(Value::from("v19")));
}

#[test]
fn volatile_crash_recovers_from_wal_and_serves_all_acked_writes() {
    let mut c = cluster(ClusterConfig::default());
    let zc = derive_zone_config(
        US_EAST,
        &all_regions(),
        SurvivalGoal::Zone,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    );
    c.create_range(Span::all(), zc).unwrap();
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));

    write_key(&mut c, gw(0), "k1", "v1");
    write_key(&mut c, gw(0), "k2", "v2");

    // Crash the home-region leaseholder, dropping its volatile state: the
    // memtable and unsynced tail are gone; the replica replays its WAL.
    c.inject_fault(&mr_kv::fault::FaultKind::CrashNodeVolatile(NodeId(0)), None);
    assert!(
        c.events.count_kind("wal_recovered") >= 1,
        "volatile crash must trigger WAL recovery"
    );
    let t = c.now();
    c.run_until(SimTime(t.nanos() + SimDuration::from_secs(2).nanos()));

    // The range fails over and keeps accepting writes while n0 is down
    // (via a live gateway in the same region).
    write_key(&mut c, NodeId(1), "k3", "v3");

    // Revive: the recovered replica catches up through normal replication
    // and every acknowledged write is still there.
    c.inject_fault(&mr_kv::fault::FaultKind::RestartNode(NodeId(0)), None);
    let t = c.now();
    c.run_until(SimTime(t.nanos() + SimDuration::from_secs(5).nanos()));
    for (k, v) in [("k1", "v1"), ("k2", "v2"), ("k3", "v3")] {
        let (val, _) = read_key(&mut c, gw(0), k, fresh());
        assert_eq!(val.unwrap(), Some(Value::from(v)), "lost {k} across crash");
    }
}

//! Property tests for range split/merge/rebalance interleavings.
//!
//! Each case drives a random interleaving of admin splits, admin merges,
//! writes, and cross-region reads — deliberately *without* quiescing
//! between steps, so descriptor surgery races in-flight transactions and
//! the lifecycle controller's periodic tick (rebalancing enabled with a
//! low QPS floor). A transaction opened before the first step keeps
//! intents on both edges of the keyspace across every reshape and must
//! still commit at the end.
//!
//! Invariants checked at quiescence, whatever the interleaving:
//!
//! * **Tiling** — the live range descriptors partition the keyspace:
//!   sorted by start key they begin at `Key::MIN`, each start equals the
//!   previous end, and the last end is unbounded. No gaps, no overlaps.
//! * **Durability** — every key's visible value is the one written by
//!   the successful write with the greatest commit timestamp; no write
//!   is lost or resurrected by a split or merge.
//! * **Intent carryover** — the long-lived straddling transaction
//!   commits and both its intents survive as visible values.
//! * **Merge-after-split idempotence** — merging left-to-right until one
//!   range remains restores `Span::all()` with the union of the data.

use std::cell::RefCell;
use std::rc::Rc;

use mr_clock::Timestamp;
use mr_kv::cluster::{Cluster, ClusterConfig, LifecycleConfig, ReadOptions};
use mr_kv::zone::{derive_zone_config, ClosedTsPolicy, PlacementPolicy, SurvivalGoal};
use mr_proto::{Key, Span, Value};
use mr_sim::{NodeId, RegionId, RttMatrix, SimDuration, SimTime, Topology};
use proptest::collection::vec;
use proptest::prelude::*;

/// Keys the random writes target.
const DATA_KEYS: [&str; 8] = ["a1", "c1", "f1", "j1", "n1", "r1", "v1", "y1"];
/// Candidate split points, interleaved between the data keys.
const SPLIT_KEYS: [&str; 7] = ["b", "e", "h", "l", "p", "t", "x"];
/// Keys of the long-lived straddling transaction (never written by the
/// random ops, so nothing contends with its intents).
const STRADDLE_LO: &str = "a0";
const STRADDLE_HI: &str = "z9";

#[derive(Clone, Copy, Debug)]
enum Op {
    /// Propose an admin split at `SPLIT_KEYS[i]` (no-op on an existing
    /// boundary).
    Split(usize),
    /// Propose merging the range containing `DATA_KEYS[i]` with its right
    /// neighbor (no-op at the keyspace edge or mid-surgery).
    Merge(usize),
    /// Start an asynchronous single-key write from the home region and let
    /// it race whatever comes next.
    Write(usize),
    /// Fire a fresh read from region `r % 5` — cross-region traffic the
    /// load-based rebalancer can react to.
    ReadFrom(u32),
    /// Drain everything in flight.
    Settle,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..SPLIT_KEYS.len()).prop_map(Op::Split),
        (0..DATA_KEYS.len()).prop_map(Op::Merge),
        // Writes listed twice: the interleavings should be write-heavy so
        // surgery keeps racing live transactions.
        (0..DATA_KEYS.len()).prop_map(Op::Write),
        (0..DATA_KEYS.len()).prop_map(Op::Write),
        (0..5u32).prop_map(Op::ReadFrom),
        Just(Op::Settle),
    ]
}

struct WriteProbe {
    key: usize,
    value: String,
    result: Rc<RefCell<Option<Result<Timestamp, String>>>>,
}

fn async_write(c: &mut Cluster, gateway: NodeId, key: &str, value: &str) -> WriteProbe {
    let result: Rc<RefCell<Option<Result<Timestamp, String>>>> = Rc::new(RefCell::new(None));
    let r2 = Rc::clone(&result);
    let h = c.txn_begin(gateway);
    c.txn_put(
        h,
        Key::from(key),
        Some(Value::from(value)),
        Box::new(move |c, res| match res {
            Ok(()) => c.txn_commit(
                h,
                Box::new(move |_c, res| {
                    *r2.borrow_mut() = Some(res.map_err(|e| format!("{e:?}")));
                }),
            ),
            Err(e) => c.txn_rollback(
                h,
                Box::new(move |_c, _| {
                    *r2.borrow_mut() = Some(Err(format!("{e:?}")));
                }),
            ),
        }),
    );
    WriteProbe {
        key: 0,
        value: value.to_string(),
        result,
    }
}

fn read_value(c: &mut Cluster, gateway: NodeId, key: &str) -> Option<Value> {
    let result: Rc<RefCell<Option<Option<Value>>>> = Rc::new(RefCell::new(None));
    let r2 = Rc::clone(&result);
    c.read(
        gateway,
        Key::from(key),
        ReadOptions::default(),
        Box::new(move |_c, res| {
            *r2.borrow_mut() = Some(res.expect("quiesced read must succeed"));
        }),
    );
    c.run_until_quiescent(deadline(c));
    let v = result.borrow_mut().take().expect("read completed");
    v
}

fn deadline(c: &Cluster) -> SimTime {
    SimTime(c.now().0 + SimDuration::from_secs(600).nanos())
}

fn advance(c: &mut Cluster, ms: u64) {
    let t = SimTime(c.now().0 + SimDuration::from_millis(ms).nanos());
    c.run_until(t);
}

/// Assert the live descriptors tile the whole keyspace with no gap or
/// overlap.
fn assert_tiling(c: &Cluster) {
    let mut spans: Vec<Span> = c.registry().iter().map(|d| d.span.clone()).collect();
    spans.sort_by(|a, b| a.start.cmp(&b.start));
    assert!(!spans.is_empty());
    assert!(
        spans[0].start.is_empty(),
        "keyspace must start at Key::MIN: {spans:?}"
    );
    for w in spans.windows(2) {
        assert!(
            !w[0].end.is_empty() && w[0].end == w[1].start,
            "gap or overlap between {:?} and {:?}",
            w[0],
            w[1]
        );
    }
    assert!(
        spans.last().unwrap().end.is_empty(),
        "keyspace must end unbounded: {spans:?}"
    );
}

fn run_case(ops: &[Op]) {
    let topo = Topology::build(
        &RttMatrix::paper_table1_regions(),
        3,
        RttMatrix::paper_table1(),
    );
    let cfg = ClusterConfig {
        rpc_timeout: Some(SimDuration::from_secs(2)),
        lifecycle: LifecycleConfig {
            enabled: true,
            // Low floor so the cross-region reads can trigger lease
            // rebalancing mid-interleaving.
            rebalance_min_qps_milli: 500,
            ..LifecycleConfig::default()
        },
        ..ClusterConfig::default()
    };
    let mut c = Cluster::new(topo, cfg);
    let home = RegionId(0);
    let regions: Vec<RegionId> = (0..5).map(RegionId).collect();
    let zc = derive_zone_config(
        home,
        &regions,
        SurvivalGoal::Region,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    );
    c.create_range(Span::all(), zc).unwrap();
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));
    let gw = NodeId(0);

    // Open the straddling transaction: intents at both edges of the
    // keyspace, held across every split and merge the ops produce.
    let straddle_done: Rc<RefCell<u32>> = Rc::new(RefCell::new(0));
    let h = c.txn_begin(gw);
    for k in [STRADDLE_LO, STRADDLE_HI] {
        let done = Rc::clone(&straddle_done);
        c.txn_put(
            h,
            Key::from(k),
            Some(Value::from("straddle")),
            Box::new(move |_c, res| {
                res.unwrap();
                *done.borrow_mut() += 1;
            }),
        );
    }
    c.run_until_quiescent(deadline(&c));
    assert_eq!(*straddle_done.borrow(), 2);

    let mut probes: Vec<WriteProbe> = Vec::new();
    let mut seq = 0u32;
    for op in ops {
        match *op {
            Op::Split(i) => {
                // May legitimately refuse (existing boundary, or the key's
                // range is mid-surgery); refusal must not disturb anything.
                let _ = c.admin_split_at(Key::from(SPLIT_KEYS[i]));
                advance(&mut c, 500);
            }
            Op::Merge(i) => {
                let _ = c.admin_merge_at(Key::from(DATA_KEYS[i]));
                advance(&mut c, 500);
            }
            Op::Write(i) => {
                seq += 1;
                let mut p = async_write(&mut c, gw, DATA_KEYS[i], &format!("v{seq}"));
                p.key = i;
                probes.push(p);
                // Deliberately short: the write's commit races the next op.
                advance(&mut c, 50);
            }
            Op::ReadFrom(r) => {
                c.read(
                    NodeId((r % 5) * 3),
                    Key::from(DATA_KEYS[(r as usize) % DATA_KEYS.len()]),
                    ReadOptions::default(),
                    Box::new(|_c, _res| {}),
                );
                advance(&mut c, 50);
            }
            Op::Settle => {
                c.run_until_quiescent(deadline(&c));
            }
        }
    }
    c.run_until_quiescent(deadline(&c));

    // The straddling transaction must still commit: its intents and its
    // record were carried through every reshape.
    let committed: Rc<RefCell<Option<Timestamp>>> = Rc::new(RefCell::new(None));
    let c2 = Rc::clone(&committed);
    c.txn_commit(
        h,
        Box::new(move |_c, res| {
            *c2.borrow_mut() = Some(res.unwrap());
        }),
    );
    c.run_until_quiescent(deadline(&c));
    assert!(committed.borrow().is_some(), "straddling txn must commit");

    assert_tiling(&c);

    // Expected state: per key, the successful write with the greatest
    // commit timestamp (concurrent writes may order either way; their
    // timestamps are the truth).
    let mut expect: Vec<Option<(Timestamp, String)>> = vec![None; DATA_KEYS.len()];
    for p in &probes {
        if let Some(Ok(ts)) = p.result.borrow().as_ref() {
            let slot = &mut expect[p.key];
            if slot.as_ref().is_none_or(|(best, _)| ts > best) {
                *slot = Some((*ts, p.value.clone()));
            }
        }
    }
    for (i, key) in DATA_KEYS.iter().enumerate() {
        let got = read_value(&mut c, gw, key);
        let want = expect[i].as_ref().map(|(_, v)| Value::from(v.as_str()));
        assert_eq!(got, want, "key {key} diverged after the interleaving");
    }
    for k in [STRADDLE_LO, STRADDLE_HI] {
        assert_eq!(
            read_value(&mut c, gw, k),
            Some(Value::from("straddle")),
            "straddling intent {k} lost"
        );
    }

    // Merge-after-split idempotence: fold everything back left-to-right;
    // one range spanning the whole keyspace must remain, data intact. A
    // single attempt may be refused — settling waits on client ops, not
    // raft traffic, so the lifecycle controller's own proposal can still
    // be in flight — so attempt, let the network drain, and re-check.
    let mut guard = 0;
    while c.registry().len() > 1 {
        let _ = c.admin_merge_at(Key::from(STRADDLE_LO));
        advance(&mut c, 2_000);
        guard += 1;
        assert!(
            guard <= 64,
            "merge fold did not converge: {:?}",
            c.registry().iter().collect::<Vec<_>>()
        );
    }
    let only = c.registry().iter().next().unwrap().clone();
    assert_eq!(only.span, Span::all());
    assert_tiling(&c);
    for (i, key) in DATA_KEYS.iter().enumerate() {
        let got = read_value(&mut c, gw, key);
        let want = expect[i].as_ref().map(|(_, v)| Value::from(v.as_str()));
        assert_eq!(got, want, "key {key} diverged after the merge fold");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn split_merge_interleavings_preserve_tiling_and_data(
        ops in vec(op_strategy(), 1..16),
    ) {
        run_case(&ops);
    }
}

//! Drive real workloads through the full stack: schema DDL, bulk load,
//! closed-loop clients, latency collection.

use mr_kv::cluster::ClusterConfig;
use mr_sim::{RttMatrix, SimDuration, SimRng, SimTime, Topology};
use mr_sql::exec::SqlDb;
use mr_workload::driver::ClosedLoop;
use mr_workload::tpcc::{TpccConfig, TpccTerminal};
use mr_workload::ycsb::{self, KeyChooser, ReadMode, YcsbGen, YcsbTable};
use mr_workload::{bulk, Zipf};

fn regions3() -> Vec<String> {
    vec![
        "us-east1".to_string(),
        "europe-west2".to_string(),
        "asia-northeast1".to_string(),
    ]
}

fn db3() -> SqlDb {
    // Three-region topology (the §7.2 deployment).
    let names = ["us-east1", "europe-west2", "asia-northeast1"];
    let rtt = RttMatrix::from_upper_millis(3, &[&[87, 155], &[222]]);
    let topo = Topology::build(&names, 3, rtt);
    let cfg = ClusterConfig {
        seed: 42,
        ..ClusterConfig::default()
    };
    SqlDb::new(topo, cfg)
}

#[test]
fn ycsb_b_closed_loop_on_rbr() {
    let mut d = db3();
    let sess = d.session(mr_sim::NodeId(0), None);
    let regions = regions3();
    d.exec_sync(
        &sess,
        r#"CREATE DATABASE ycsb PRIMARY REGION "us-east1" REGIONS "europe-west2", "asia-northeast1""#,
    )
    .unwrap();
    let variant = YcsbTable::RegionalByRow { rehoming: false };
    d.exec_sync(&sess, &ycsb::schema("usertable", variant, &regions))
        .unwrap();
    let n_keys = 3_000u64;
    let rows = ycsb::dataset(variant, n_keys, |k| regions[(k % 3) as usize].clone());
    bulk::load_rows(&mut d, "ycsb", "usertable", &rows);
    d.cluster
        .run_until(SimTime(SimDuration::from_secs(5).nanos()));

    // 2 clients per region, 95% locality, 40 ops each.
    let mut driver = ClosedLoop::new();
    let mut seed = SimRng::seed_from_u64(7);
    let nclients = 6u64;
    for (r_idx, region) in regions.iter().enumerate() {
        for c in 0..2u64 {
            let client_idx = r_idx as u64 * 2 + c;
            let sess = d.session_in_region(region, Some("ycsb"));
            let gen = YcsbGen {
                table: "usertable".into(),
                variant,
                read_fraction: 0.95,
                insert_workload: false,
                keys: KeyChooser::Locality {
                    n: n_keys,
                    nregions: 3,
                    region_idx: r_idx as u64,
                    locality: 0.95,
                    client_idx,
                    nclients,
                    shared_remote: None,
                    remote_set: None,
                },
                read_mode: ReadMode::Fresh,
                regions: regions.clone(),
                region_idx: r_idx,
                remaining: Some(40),
                next_insert: 0,
                insert_stride: 1,
                nregions: 3,
                label_prefix: String::new(),
            };
            driver.add_client(sess, seed.fork(), Box::new(gen));
        }
    }
    driver.run(&mut d, SimTime(SimDuration::from_secs(300).nanos()));
    let stats = &driver.stats;
    assert_eq!(stats.completed + stats.failed, 240);
    assert_eq!(stats.failed, 0, "errors: {:?}", stats.errors);
    // Local reads are fast; remote reads pay WAN latency.
    let mut local = stats.merged(|l| l == "read-local");
    let mut remote = stats.merged(|l| l == "read-remote");
    assert!(local.len() > 100);
    assert!(!remote.is_empty());
    let p50_local = local.quantile(0.5);
    let p50_remote = remote.quantile(0.5);
    assert!(
        p50_local < SimDuration::from_millis(10),
        "local read p50 {p50_local}"
    );
    assert!(
        p50_remote > SimDuration::from_millis(80),
        "remote read p50 {p50_remote}"
    );
}

#[test]
fn ycsb_a_on_global_table_with_zipf() {
    let mut d = db3();
    let sess = d.session(mr_sim::NodeId(0), None);
    let regions = regions3();
    d.exec_sync(
        &sess,
        r#"CREATE DATABASE ycsb PRIMARY REGION "us-east1" REGIONS "europe-west2", "asia-northeast1""#,
    )
    .unwrap();
    d.exec_sync(&sess, &ycsb::schema("gtable", YcsbTable::Global, &regions))
        .unwrap();
    let n_keys = 1_000u64;
    let rows = ycsb::dataset(YcsbTable::Global, n_keys, |_| unreachable!());
    bulk::load_rows(&mut d, "ycsb", "gtable", &rows);
    d.cluster
        .run_until(SimTime(SimDuration::from_secs(5).nanos()));

    let mut driver = ClosedLoop::new();
    let mut seed = SimRng::seed_from_u64(8);
    for region in &regions {
        let sess = d.session_in_region(region, Some("ycsb"));
        let gen = YcsbGen {
            table: "gtable".into(),
            variant: YcsbTable::Global,
            read_fraction: 0.5,
            insert_workload: false,
            keys: KeyChooser::Zipf(Zipf::ycsb(n_keys)),
            read_mode: ReadMode::Fresh,
            regions: regions.clone(),
            region_idx: 0,
            remaining: Some(30),
            next_insert: 0,
            insert_stride: 1,
            nregions: 3,
            label_prefix: String::new(),
        };
        driver.add_client(sess, seed.fork(), Box::new(gen));
    }
    driver.run(&mut d, SimTime(SimDuration::from_secs(600).nanos()));
    let stats = &driver.stats;
    assert_eq!(stats.failed, 0, "errors: {:?}", stats.errors);
    let mut writes = stats.merged(|l| l.starts_with("write"));
    assert!(writes.len() > 10);
    // Global writes commit-wait: several hundred ms.
    assert!(
        writes.quantile(0.5) > SimDuration::from_millis(300),
        "global write p50 {}",
        writes.quantile(0.5)
    );
    // Most reads stay local (in the absence of very recent conflicting
    // writes); check the lower quartile rather than the median since Zipf
    // contention legitimately pushes part of the distribution up.
    let mut reads = stats.merged(|l| l.starts_with("read"));
    assert!(
        reads.quantile(0.25) < SimDuration::from_millis(10),
        "global read p25 {}",
        reads.quantile(0.25)
    );
}

#[test]
fn tpcc_terminals_drive_transactions() {
    let mut d = db3();
    let sess = d.session(mr_sim::NodeId(0), None);
    let mut cfg = TpccConfig::new(regions3());
    cfg.warehouses_per_region = 2;
    cfg.items = 10;
    cfg.think_time = SimDuration::from_millis(400);
    d.exec_sync(
        &sess,
        r#"CREATE DATABASE tpcc PRIMARY REGION "us-east1" REGIONS "europe-west2", "asia-northeast1""#,
    )
    .unwrap();
    for ddl in cfg.schema() {
        d.exec_sync(&sess, &ddl).unwrap();
    }
    for (table, rows) in cfg.datasets() {
        bulk::load_rows(&mut d, "tpcc", table, &rows);
    }
    d.cluster
        .run_until(SimTime(SimDuration::from_secs(5).nanos()));

    let mut driver = ClosedLoop::new();
    let mut seed = SimRng::seed_from_u64(9);
    for w in 0..cfg.total_warehouses() {
        let region = &cfg.regions[cfg.region_of_warehouse(w)];
        let sess = d.session_in_region(region, Some("tpcc"));
        let mut term = TpccTerminal::new(cfg.clone(), w);
        term.remaining = Some(12);
        driver.add_client(sess, seed.fork(), Box::new(term));
    }
    driver.run(&mut d, SimTime(SimDuration::from_secs(600).nanos()));
    let stats = &driver.stats;
    assert_eq!(stats.failed, 0, "errors: {:?}", stats.errors);
    assert_eq!(stats.completed, 6 * 12);
    // Local new-orders are region-local: p50 well under a WAN RTT.
    let mut no_local = stats.merged(|l| l == "new-order");
    if no_local.len() > 3 {
        assert!(
            no_local.quantile(0.5) < SimDuration::from_millis(60),
            "local new-order p50 {}",
            no_local.quantile(0.5)
        );
    }
    // The database really recorded the orders.
    let s = d.session_in_region("us-east1", Some("tpcc"));
    let res = d
        .exec_sync(
            &s,
            "SELECT * FROM orders WHERE o_w_id = 0 AND o_d_id = 0 AND o_id = 1",
        )
        .unwrap();
    // Some terminal in warehouse 0 placed order 1 in district 0 (or not —
    // district choice is random — so accept either, just require the query
    // to execute).
    let _ = res;
}

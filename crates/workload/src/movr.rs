//! The movr ride-sharing schema (§1.1, §7.5.1) and a small operation mix.
//!
//! movr is the paper's running example: six tables, of which `promo_codes`
//! is GLOBAL (read-mostly reference data with no locality) and the rest are
//! REGIONAL BY ROW. The multi-region conversion of this schema is what
//! Table 2 counts DDL statements for.

use mr_sim::SimRng;

use crate::driver::{Op, OpSource};

/// The six movr tables with the paper's multi-region localities. `city_case`
/// maps a city column to a region (computed partitioning for tables keyed by
/// city; the paper counts 5 such computed-column statements).
pub fn schema_multiregion(regions: &[String]) -> Vec<String> {
    let case = city_case(regions);
    vec![
        format!(
            "CREATE TABLE users (id UUID PRIMARY KEY DEFAULT gen_random_uuid(), \
             city STRING NOT NULL, name STRING, email STRING UNIQUE, \
             crdb_region crdb_internal_region NOT VISIBLE NOT NULL AS ({case}) STORED) \
             LOCALITY REGIONAL BY ROW"
        ),
        format!(
            "CREATE TABLE vehicles (id UUID PRIMARY KEY DEFAULT gen_random_uuid(), \
             city STRING NOT NULL, type STRING, status STRING, \
             crdb_region crdb_internal_region NOT VISIBLE NOT NULL AS ({case}) STORED) \
             LOCALITY REGIONAL BY ROW"
        ),
        format!(
            "CREATE TABLE rides (id UUID PRIMARY KEY DEFAULT gen_random_uuid(), \
             city STRING NOT NULL, rider_id UUID, vehicle_id UUID, revenue FLOAT, \
             crdb_region crdb_internal_region NOT VISIBLE NOT NULL AS ({case}) STORED) \
             LOCALITY REGIONAL BY ROW"
        ),
        format!(
            "CREATE TABLE vehicle_location_histories (ride_id UUID, seq INT, \
             city STRING NOT NULL, lat FLOAT, long FLOAT, \
             crdb_region crdb_internal_region NOT VISIBLE NOT NULL AS ({case}) STORED, \
             PRIMARY KEY (ride_id, seq)) LOCALITY REGIONAL BY ROW"
        ),
        "CREATE TABLE promo_codes (code STRING PRIMARY KEY, description STRING, \
         rules STRING) LOCALITY GLOBAL"
            .to_string(),
        format!(
            "CREATE TABLE user_promo_codes (user_id UUID, code STRING, usage_count INT, \
             city STRING NOT NULL, \
             crdb_region crdb_internal_region NOT VISIBLE NOT NULL AS ({case}) STORED, \
             PRIMARY KEY (user_id, code)) LOCALITY REGIONAL BY ROW"
        ),
    ]
}

/// City → region CASE expression. Cities are named `city-<n>` and map to
/// regions round-robin.
pub fn city_case(regions: &[String]) -> String {
    let mut case = String::from("CASE ");
    for (i, r) in regions.iter().enumerate() {
        if i + 1 < regions.len() {
            case.push_str(&format!("WHEN city = 'city-{i}' THEN '{r}' "));
        } else {
            case.push_str(&format!("ELSE '{r}' "));
        }
    }
    case.push_str("END");
    case
}

/// A simple movr op mix: read a promo code (GLOBAL, local everywhere),
/// look up a user by email (LOS over RBR), start a ride (insert).
pub struct MovrGen {
    pub regions: Vec<String>,
    pub region_idx: usize,
    pub next_ride: u64,
    pub user_emails: Vec<String>,
    pub promo_codes: Vec<String>,
    pub remaining: Option<u64>,
}

impl OpSource for MovrGen {
    fn next_op(&mut self, rng: &mut SimRng) -> Option<Op> {
        if let Some(r) = self.remaining.as_mut() {
            if *r == 0 {
                return None;
            }
            *r -= 1;
        }
        let roll = rng.unit_f64();
        Some(if roll < 0.4 {
            let code = &self.promo_codes[rng.index(self.promo_codes.len())];
            Op::new(
                format!("SELECT description FROM promo_codes WHERE code = '{code}'"),
                "promo-read",
            )
        } else if roll < 0.8 {
            let email = &self.user_emails[rng.index(self.user_emails.len())];
            Op::new(
                format!("SELECT name FROM users WHERE email = '{email}'"),
                "user-lookup",
            )
        } else {
            let city = format!("city-{}", self.region_idx);
            let n = self.next_ride;
            self.next_ride += 1;
            Op::new(
                format!(
                    "INSERT INTO rides (city, revenue) VALUES ('{city}', {}.5)",
                    n % 90
                ),
                "ride-insert",
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_tables_one_global() {
        let regions: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let ddl = schema_multiregion(&regions);
        assert_eq!(ddl.len(), 6);
        assert_eq!(
            ddl.iter().filter(|s| s.contains("LOCALITY GLOBAL")).count(),
            1
        );
        assert_eq!(
            ddl.iter().filter(|s| s.contains("REGIONAL BY ROW")).count(),
            5
        );
        // Five of the six tables carry the computed city→region column.
        assert_eq!(ddl.iter().filter(|s| s.contains("AS (CASE")).count(), 5);
    }

    #[test]
    fn op_mix_produces_all_kinds() {
        let mut g = MovrGen {
            regions: vec!["a".into()],
            region_idx: 0,
            next_ride: 0,
            user_emails: vec!["u@x.com".into()],
            promo_codes: vec!["SAVE".into()],
            remaining: Some(200),
        };
        let mut rng = SimRng::seed_from_u64(4);
        let mut labels = std::collections::HashSet::new();
        while let Some(op) = g.next_op(&mut rng) {
            labels.insert(op.label.clone());
        }
        assert!(labels.contains("promo-read"));
        assert!(labels.contains("user-lookup"));
        assert!(labels.contains("ride-insert"));
    }
}

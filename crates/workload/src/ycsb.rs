//! YCSB workloads A, B, and D, modified for multi-region evaluation as in
//! the paper (§7.1, §7.2).
//!
//! * **A**: 50% reads / 50% updates, Zipf keys — the Fig. 3 / Fig. 5
//!   workload on REGIONAL BY TABLE and GLOBAL tables.
//! * **B**: 95% reads / 5% updates, uniform keys with a *locality of
//!   access* knob — the Fig. 4a / Fig. 4c workload on REGIONAL BY ROW.
//! * **D**: 95% reads / 5% inserts — the Fig. 4b uniqueness-check workload.
//!
//! Keys are 64-bit integers; rows are `(k INT PRIMARY KEY, v STRING)` plus
//! whatever partitioning column the variant needs.

use mr_sim::{SimDuration, SimRng};
use mr_sql::types::Datum;

use crate::driver::{Op, OpSource};
use crate::zipf::Zipf;

/// Table schema variants for the §7.2 experiments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum YcsbTable {
    /// `LOCALITY REGIONAL BY TABLE IN PRIMARY REGION` (Fig. 3 "Regional").
    RegionalByTable,
    /// `LOCALITY GLOBAL` (Fig. 3 "Global").
    Global,
    /// RBR with the automatic `crdb_region` column (Default / Rehoming).
    RegionalByRow { rehoming: bool },
    /// RBR with `crdb_region` computed from the key (Fig. 4b "Computed").
    ComputedRegion,
    /// Legacy manually partitioned baseline: `(part, k)` primary key.
    ManualPartition,
}

/// DDL for a YCSB table under the given variant. `regions` are the
/// database regions in order (region of key `k` = `k % regions.len()` for
/// the computed variant).
pub fn schema(table: &str, variant: YcsbTable, regions: &[String]) -> String {
    match variant {
        YcsbTable::RegionalByTable => format!(
            "CREATE TABLE {table} (k INT PRIMARY KEY, v STRING) \
             LOCALITY REGIONAL BY TABLE IN PRIMARY REGION"
        ),
        YcsbTable::Global => {
            format!("CREATE TABLE {table} (k INT PRIMARY KEY, v STRING) LOCALITY GLOBAL")
        }
        YcsbTable::RegionalByRow { rehoming } => {
            let on_update = if rehoming {
                " ON UPDATE rehome_row()"
            } else {
                ""
            };
            format!(
                "CREATE TABLE {table} (k INT PRIMARY KEY, v STRING, \
                 crdb_region crdb_internal_region NOT VISIBLE NOT NULL \
                 DEFAULT gateway_region(){on_update}) LOCALITY REGIONAL BY ROW"
            )
        }
        YcsbTable::ComputedRegion => {
            let mut case = String::from("CASE ");
            let n = regions.len() as i64;
            for (i, r) in regions.iter().enumerate() {
                if i + 1 < regions.len() {
                    case.push_str(&format!("WHEN k % {n} = {i} THEN '{r}' "));
                } else {
                    case.push_str(&format!("ELSE '{r}' "));
                }
            }
            case.push_str("END");
            format!(
                "CREATE TABLE {table} (k INT PRIMARY KEY, v STRING, \
                 crdb_region crdb_internal_region NOT VISIBLE NOT NULL AS ({case}) STORED) \
                 LOCALITY REGIONAL BY ROW"
            )
        }
        YcsbTable::ManualPartition => {
            format!("CREATE TABLE {table} (part STRING, k INT, v STRING, PRIMARY KEY (part, k))")
        }
    }
}

/// The legacy partitioning DDL for the `ManualPartition` baseline: one
/// partition per region, pinned there.
pub fn manual_partition_ddl(table: &str, regions: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut parts = String::new();
    for (i, r) in regions.iter().enumerate() {
        if i > 0 {
            parts.push_str(", ");
        }
        parts.push_str(&format!("PARTITION p{i} VALUES IN ('{r}')"));
    }
    out.push(format!(
        "ALTER TABLE {table} PARTITION BY LIST (part) ({parts})"
    ));
    for (i, r) in regions.iter().enumerate() {
        out.push(format!(
            "ALTER PARTITION p{i} OF TABLE {table} CONFIGURE ZONE USING \
             num_replicas = 3, constraints = '{{+region={r}: 3}}', \
             lease_preferences = '[[+region={r}]]'"
        ));
    }
    out
}

/// Pre-built rows for bulk loading `n` keys. `home(k)` gives the region of
/// key `k` (ignored for unpartitioned variants).
pub fn dataset(variant: YcsbTable, n: u64, home: impl Fn(u64) -> String) -> Vec<Vec<Datum>> {
    (0..n)
        .map(|k| {
            let v = Datum::String(format!("value-{k}"));
            match variant {
                YcsbTable::RegionalByTable | YcsbTable::Global => {
                    vec![Datum::Int(k as i64), v]
                }
                YcsbTable::RegionalByRow { .. } | YcsbTable::ComputedRegion => {
                    vec![Datum::Int(k as i64), v, Datum::Region(home(k))]
                }
                YcsbTable::ManualPartition => {
                    vec![Datum::String(home(k)), Datum::Int(k as i64), v]
                }
            }
        })
        .collect()
}

/// How reads are issued (Fig. 3 / Fig. 5 configurations).
#[derive(Clone, Copy, Debug)]
pub enum ReadMode {
    Fresh,
    /// `AS OF SYSTEM TIME with_max_staleness(bound)`.
    BoundedStaleness(SimDuration),
}

/// How keys are chosen.
#[derive(Clone, Debug)]
pub enum KeyChooser {
    /// Zipf over the whole keyspace (workload A).
    Zipf(Zipf),
    /// Uniform over the whole keyspace.
    Uniform { n: u64 },
    /// Locality-of-access (§7.2): with probability `locality` pick a key
    /// homed in the client's region, else a remote-homed key. Keys are
    /// striped across regions (`home(k) = k % nregions`); each client draws
    /// from its own disjoint stride to avoid contention (Fig. 4a), unless
    /// `shared_remote` confines remote picks to a small contended block
    /// (Fig. 4c).
    Locality {
        n: u64,
        nregions: u64,
        region_idx: u64,
        locality: f64,
        client_idx: u64,
        nclients: u64,
        /// Remote accesses target keys `< shared_remote` (contended block).
        shared_remote: Option<u64>,
        /// Bound the per-client remote working set to this many slots
        /// (models an app with a stable remote working set; lets the
        /// rehoming experiment reach its converged state quickly).
        remote_set: Option<u64>,
    },
}

impl KeyChooser {
    fn pick(&self, rng: &mut SimRng) -> (u64, bool) {
        match self {
            KeyChooser::Zipf(z) => (z.sample(rng), true),
            KeyChooser::Uniform { n } => (rng.next_below(*n), true),
            KeyChooser::Locality {
                n,
                nregions,
                region_idx,
                locality,
                client_idx,
                nclients,
                shared_remote,
                remote_set,
            } => {
                let local = rng.chance(*locality);
                if local {
                    // A key in our stripe AND our client slice.
                    let slots = n / (nregions * nclients);
                    let slot = rng.next_below(slots.max(1));
                    let k = (slot * nclients + client_idx) * nregions + region_idx;
                    (k.min(n - 1), true)
                } else if let Some(block) = shared_remote {
                    // Contended shared block: any remote-homed key below
                    // `block` (shared among all contending clients).
                    loop {
                        let k = rng.next_below(*block);
                        if k % nregions != *region_idx {
                            break (k, false);
                        }
                    }
                } else {
                    // A remote-homed key in our own client slice (disjoint).
                    let other = (region_idx + 1 + rng.next_below(nregions - 1)) % nregions;
                    let mut slots = n / (nregions * nclients);
                    if let Some(m) = remote_set {
                        slots = slots.min(*m);
                    }
                    let slot = rng.next_below(slots.max(1));
                    let k = (slot * nclients + client_idx) * nregions + other;
                    (k.min(n - 1), false)
                }
            }
        }
    }
}

/// YCSB operation generator.
pub struct YcsbGen {
    pub table: String,
    pub variant: YcsbTable,
    /// Fraction of reads (A: 0.5, B/D: 0.95).
    pub read_fraction: f64,
    /// Writes are inserts instead of updates (workload D).
    pub insert_workload: bool,
    pub keys: KeyChooser,
    pub read_mode: ReadMode,
    /// Region names (for the manual-partition baseline's `part` column and
    /// D's insert homing).
    pub regions: Vec<String>,
    pub region_idx: usize,
    /// Ops left (None = unbounded, driver deadline decides).
    pub remaining: Option<u64>,
    /// Next insert key for workload D (pre-partitioned per client).
    pub next_insert: u64,
    pub insert_stride: u64,
    /// Home-region function for keys (labels local/remote).
    pub nregions: u64,
    /// Prefix for op labels (e.g. "primary/" to split stats by origin).
    pub label_prefix: String,
}

impl YcsbGen {
    fn key_home(&self, k: u64) -> usize {
        (k % self.nregions) as usize
    }

    fn sql_read(&self, k: u64) -> String {
        let aost = match self.read_mode {
            ReadMode::Fresh => String::new(),
            ReadMode::BoundedStaleness(d) => format!(
                " AS OF SYSTEM TIME with_max_staleness('{}ms')",
                d.nanos() / 1_000_000
            ),
        };
        match self.variant {
            YcsbTable::ManualPartition => {
                let part = &self.regions[self.key_home(k)];
                format!(
                    "SELECT v FROM {}{aost} WHERE part = '{part}' AND k = {k}",
                    self.table
                )
            }
            _ => format!("SELECT v FROM {}{aost} WHERE k = {k}", self.table),
        }
    }

    fn sql_update(&self, k: u64, tag: u64) -> String {
        match self.variant {
            YcsbTable::ManualPartition => {
                let part = &self.regions[self.key_home(k)];
                format!(
                    "UPDATE {} SET v = 'w{tag}' WHERE part = '{part}' AND k = {k}",
                    self.table
                )
            }
            // Unpartitioned tables: blind one-round UPSERT, matching the
            // CRDB YCSB driver the paper used (§7.1).
            YcsbTable::RegionalByTable | YcsbTable::Global => {
                format!("UPSERT INTO {} (k, v) VALUES ({k}, 'w{tag}')", self.table)
            }
            _ => format!("UPDATE {} SET v = 'w{tag}' WHERE k = {k}", self.table),
        }
    }

    fn sql_insert(&mut self) -> String {
        let k = self.next_insert;
        self.next_insert += self.insert_stride;
        match self.variant {
            YcsbTable::ManualPartition => {
                let part = &self.regions[self.region_idx];
                format!(
                    "INSERT INTO {} (part, k, v) VALUES ('{part}', {k}, 'new')",
                    self.table
                )
            }
            _ => format!("INSERT INTO {} (k, v) VALUES ({k}, 'new')", self.table),
        }
    }
}

impl OpSource for YcsbGen {
    fn next_op(&mut self, rng: &mut SimRng) -> Option<Op> {
        if let Some(r) = self.remaining.as_mut() {
            if *r == 0 {
                return None;
            }
            *r -= 1;
        }
        let p = self.label_prefix.clone();
        let is_read = rng.chance(self.read_fraction);
        if is_read {
            let (k, local) = self.keys.pick(rng);
            let locality = if local { "local" } else { "remote" };
            Some(Op::new(self.sql_read(k), format!("{p}read-{locality}")))
        } else if self.insert_workload {
            Some(Op::new(self.sql_insert(), format!("{p}insert-local")))
        } else {
            let (k, local) = self.keys.pick(rng);
            let locality = if local { "local" } else { "remote" };
            let tag = rng.next_u64() % 1_000_000;
            Some(Op::new(
                self.sql_update(k, tag),
                format!("{p}write-{locality}"),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_variants_render() {
        let regions: Vec<String> = vec!["r0".into(), "r1".into(), "r2".into()];
        assert!(schema("t", YcsbTable::Global, &regions).contains("LOCALITY GLOBAL"));
        assert!(schema("t", YcsbTable::RegionalByTable, &regions)
            .contains("REGIONAL BY TABLE IN PRIMARY REGION"));
        let rbr = schema("t", YcsbTable::RegionalByRow { rehoming: true }, &regions);
        assert!(rbr.contains("ON UPDATE rehome_row()"));
        let comp = schema("t", YcsbTable::ComputedRegion, &regions);
        assert!(comp.contains("CASE WHEN k % 3 = 0 THEN 'r0'"));
        assert!(comp.contains("ELSE 'r2'"));
        let manual = manual_partition_ddl("t", &regions);
        assert_eq!(manual.len(), 4);
        assert!(manual[0].contains("PARTITION BY LIST"));
        assert!(manual[1].contains("+region=r0: 3"));
    }

    #[test]
    fn dataset_shapes() {
        let rows = dataset(YcsbTable::Global, 10, |_| unreachable!());
        assert_eq!(
            rows[3],
            vec![Datum::Int(3), Datum::String("value-3".into())]
        );
        let rows = dataset(YcsbTable::RegionalByRow { rehoming: false }, 4, |k| {
            format!("r{}", k % 2)
        });
        assert_eq!(rows[3][2], Datum::Region("r1".into()));
        let rows = dataset(YcsbTable::ManualPartition, 4, |k| format!("r{}", k % 2));
        assert_eq!(rows[2][0], Datum::String("r0".into()));
    }

    #[test]
    fn locality_chooser_respects_probability() {
        let ch = KeyChooser::Locality {
            n: 30_000,
            nregions: 3,
            region_idx: 1,
            locality: 0.95,
            client_idx: 0,
            nclients: 10,
            shared_remote: None,
            remote_set: None,
        };
        let mut rng = SimRng::seed_from_u64(5);
        let mut local = 0;
        for _ in 0..10_000 {
            let (k, is_local) = ch.pick(&mut rng);
            assert!(k < 30_000);
            if is_local {
                assert_eq!(k % 3, 1, "local keys live in our stripe");
                local += 1;
            } else {
                assert_ne!(k % 3, 1, "remote keys live elsewhere");
            }
        }
        let frac = local as f64 / 10_000.0;
        assert!((frac - 0.95).abs() < 0.02, "locality fraction {frac}");
    }

    #[test]
    fn disjoint_slices_between_clients() {
        let mk = |client_idx| KeyChooser::Locality {
            n: 30_000,
            nregions: 3,
            region_idx: 0,
            locality: 1.0,
            client_idx,
            nclients: 10,
            shared_remote: None,
            remote_set: None,
        };
        let mut rng = SimRng::seed_from_u64(6);
        let mut seen0 = std::collections::HashSet::new();
        let c0 = mk(0);
        for _ in 0..1000 {
            seen0.insert(c0.pick(&mut rng).0);
        }
        let c1 = mk(1);
        for _ in 0..1000 {
            let (k, _) = c1.pick(&mut rng);
            assert!(!seen0.contains(&k), "clients must not share keys");
        }
    }

    #[test]
    fn shared_remote_block_is_contended() {
        let ch = KeyChooser::Locality {
            n: 30_000,
            nregions: 3,
            region_idx: 0,
            locality: 0.0,
            client_idx: 0,
            nclients: 10,
            shared_remote: Some(100),
            remote_set: None,
        };
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            let (k, local) = ch.pick(&mut rng);
            assert!(!local);
            assert!(k < 100);
            assert_ne!(k % 3, 0, "remote keys avoid our own stripe");
        }
    }

    #[test]
    fn generator_emits_reads_and_writes() {
        let mut g = YcsbGen {
            table: "t".into(),
            variant: YcsbTable::RegionalByRow { rehoming: false },
            read_fraction: 0.5,
            insert_workload: false,
            keys: KeyChooser::Uniform { n: 100 },
            read_mode: ReadMode::Fresh,
            regions: vec!["r0".into()],
            region_idx: 0,
            remaining: Some(100),
            next_insert: 0,
            insert_stride: 1,
            nregions: 1,
            label_prefix: String::new(),
        };
        let mut rng = SimRng::seed_from_u64(8);
        let mut reads = 0;
        let mut writes = 0;
        while let Some(op) = g.next_op(&mut rng) {
            if op.label.starts_with("read") {
                assert!(op.stmts[0].starts_with("SELECT"));
                reads += 1;
            } else {
                assert!(op.stmts[0].starts_with("UPDATE"));
                writes += 1;
            }
        }
        assert_eq!(reads + writes, 100);
        assert!(reads > 30 && writes > 30);
    }

    #[test]
    fn workload_d_inserts_unique_keys() {
        let mut g = YcsbGen {
            table: "t".into(),
            variant: YcsbTable::ComputedRegion,
            read_fraction: 0.0,
            insert_workload: true,
            keys: KeyChooser::Uniform { n: 100 },
            read_mode: ReadMode::Fresh,
            regions: vec!["r0".into()],
            region_idx: 0,
            remaining: Some(10),
            next_insert: 7,
            insert_stride: 50,
            nregions: 1,
            label_prefix: String::new(),
        };
        let mut rng = SimRng::seed_from_u64(9);
        let first = g.next_op(&mut rng).unwrap();
        let second = g.next_op(&mut rng).unwrap();
        assert!(first.stmts[0].contains("VALUES (7,"));
        assert!(second.stmts[0].contains("VALUES (57,"));
    }

    #[test]
    fn bounded_staleness_read_sql() {
        let g = YcsbGen {
            table: "t".into(),
            variant: YcsbTable::RegionalByTable,
            read_fraction: 1.0,
            insert_workload: false,
            keys: KeyChooser::Uniform { n: 100 },
            read_mode: ReadMode::BoundedStaleness(SimDuration::from_secs(10)),
            regions: vec![],
            region_idx: 0,
            remaining: None,
            next_insert: 0,
            insert_stride: 1,
            nregions: 1,
            label_prefix: String::new(),
        };
        let sql = g.sql_read(5);
        assert!(sql.contains("with_max_staleness('10000ms')"), "{sql}");
    }
}

//! Zipf-distributed key sampling (the YCSB "zipfian" generator).
//!
//! Implements the Gray et al. / Jain quick method used by the reference
//! YCSB implementation, with exponent θ = 0.99 by default.

use mr_sim::SimRng;

/// A Zipf(θ) sampler over `{0, .., n-1}` (rank 0 is the hottest key).
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    pub const YCSB_THETA: f64 = 0.99;

    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n >= 1);
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        Zipf {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            zeta2,
        }
    }

    pub fn ycsb(n: u64) -> Zipf {
        Zipf::new(n, Self::YCSB_THETA)
    }

    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draw a rank in `[0, n)`; rank 0 is most popular.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        if self.n == 1 {
            return 0;
        }
        let u = rng.unit_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Probability mass of rank `k` (for tests).
    pub fn pmf(&self, k: u64) -> f64 {
        1.0 / ((k + 1) as f64).powf(self.theta) / self.zetan
    }

    #[allow(dead_code)]
    fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_in_bounds() {
        let z = Zipf::ycsb(1000);
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn hottest_key_dominates() {
        let z = Zipf::ycsb(10_000);
        let mut rng = SimRng::seed_from_u64(2);
        let mut counts = [0u64; 4];
        let trials = 200_000;
        for _ in 0..trials {
            let r = z.sample(&mut rng);
            if r < 4 {
                counts[r as usize] += 1;
            }
        }
        // Empirical frequencies roughly match the pmf (within 20%).
        for k in 0..4 {
            let expected = z.pmf(k) * trials as f64;
            let got = counts[k as usize] as f64;
            assert!(
                (got - expected).abs() / expected < 0.2,
                "rank {k}: got {got}, expected {expected}"
            );
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
    }

    #[test]
    fn uniform_theta_zero() {
        let z = Zipf::new(100, 0.0);
        let mut rng = SimRng::seed_from_u64(3);
        let mut hits = vec![0u64; 100];
        for _ in 0..100_000 {
            hits[z.sample(&mut rng) as usize] += 1;
        }
        let min = *hits.iter().min().unwrap() as f64;
        let max = *hits.iter().max().unwrap() as f64;
        assert!(max / min < 1.5, "min={min} max={max}");
    }

    #[test]
    fn single_key() {
        let z = Zipf::ycsb(1);
        let mut rng = SimRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
    }
}

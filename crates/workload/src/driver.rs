//! The closed-loop client driver.
//!
//! Mirrors the paper's methodology (§7.1.1): each client is pinned to a
//! gateway in its region and sends operations in a closed loop — one
//! operation in flight, the next issued when the previous completes
//! (optionally after a think delay, used by TPC-C terminals).
//!
//! An operation is one SQL statement or a *script* (a `BEGIN ... COMMIT`
//! transaction executed statement by statement); the recorded latency spans
//! the whole script. Latencies are recorded per operation label so
//! harnesses can split local/remote and read/write distributions exactly
//! like the paper's figures.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use mr_sim::{SimDuration, SimRng, SimTime};
use mr_sql::exec::{Session, SqlDb};

/// One operation to issue: a single statement or a transaction script.
#[derive(Clone, Debug)]
pub struct Op {
    pub stmts: Vec<String>,
    /// Series label for latency recording (e.g. `"read-local"`).
    pub label: String,
    /// Think delay before issuing this op (TPC-C keying+think time).
    pub think: SimDuration,
}

impl Op {
    pub fn new(sql: impl Into<String>, label: impl Into<String>) -> Op {
        Op {
            stmts: vec![sql.into()],
            label: label.into(),
            think: SimDuration::ZERO,
        }
    }

    pub fn script(stmts: Vec<String>, label: impl Into<String>) -> Op {
        assert!(!stmts.is_empty());
        Op {
            stmts,
            label: label.into(),
            think: SimDuration::ZERO,
        }
    }

    pub fn with_think(mut self, d: SimDuration) -> Op {
        self.think = d;
        self
    }
}

/// A per-client operation source. Returning `None` retires the client.
pub trait OpSource {
    fn next_op(&mut self, rng: &mut SimRng) -> Option<Op>;
    /// Observe the result of the op just completed.
    fn on_result(&mut self, _label: &str, _failed: bool) {}
}

impl<F> OpSource for F
where
    F: FnMut(&mut SimRng) -> Option<Op>,
{
    fn next_op(&mut self, rng: &mut SimRng) -> Option<Op> {
        self(rng)
    }
}

/// Aggregated driver statistics.
#[derive(Default)]
pub struct DriverStats {
    /// Latencies per op label.
    pub latency: HashMap<String, mr_sim::LatencyRecorder>,
    /// Errors per op label (retries exhausted, unique violations, ...).
    pub errors: HashMap<String, u64>,
    pub completed: u64,
    pub failed: u64,
    /// Simulated time consumed by the run.
    pub elapsed: SimDuration,
}

impl DriverStats {
    pub fn recorder(&mut self, label: &str) -> &mut mr_sim::LatencyRecorder {
        self.latency.entry(label.to_string()).or_default()
    }

    /// Merge all labels matching `pred` into one recorder.
    pub fn merged(&self, pred: impl Fn(&str) -> bool) -> mr_sim::LatencyRecorder {
        let mut out = mr_sim::LatencyRecorder::new();
        for (label, rec) in &self.latency {
            if pred(label) {
                out.merge(rec);
            }
        }
        out
    }

    /// Committed operations per simulated second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.nanos() == 0 {
            return 0.0;
        }
        self.completed as f64 * 1e9 / self.elapsed.nanos() as f64
    }

    /// Committed ops matching `pred` per simulated minute.
    pub fn per_minute(&self, pred: impl Fn(&str) -> bool) -> f64 {
        if self.elapsed.nanos() == 0 {
            return 0.0;
        }
        let n: usize = self
            .latency
            .iter()
            .filter(|(l, _)| pred(l))
            .map(|(_, r)| r.len())
            .sum();
        n as f64 * 60e9 / self.elapsed.nanos() as f64
    }

    pub fn total_errors(&self) -> u64 {
        self.failed
    }
}

struct ClientState {
    sess: Session,
    source: Box<dyn OpSource>,
    rng: SimRng,
    retired: bool,
    /// Remaining statements of the current script.
    script: VecDeque<String>,
    script_label: String,
    script_start: SimTime,
    /// Op stashed while its think delay elapses.
    pending_after_think: Option<Op>,
}

#[allow(clippy::enum_variant_names)]
enum Signal {
    StmtDone { client: usize, failed: bool },
    ThinkDone { client: usize },
    RollbackDone { client: usize },
}

/// The closed-loop driver.
pub struct ClosedLoop {
    clients: Vec<ClientState>,
    signals: Rc<RefCell<Vec<Signal>>>,
    pub stats: DriverStats,
    in_flight: usize,
}

impl ClosedLoop {
    pub fn new() -> ClosedLoop {
        ClosedLoop {
            clients: Vec::new(),
            signals: Rc::new(RefCell::new(Vec::new())),
            stats: DriverStats::default(),
            in_flight: 0,
        }
    }

    /// Register a client with its own session, RNG stream, and op source.
    pub fn add_client(&mut self, sess: Session, rng: SimRng, source: Box<dyn OpSource>) {
        self.clients.push(ClientState {
            sess,
            source,
            rng,
            retired: false,
            script: VecDeque::new(),
            script_label: String::new(),
            script_start: SimTime::ZERO,
            pending_after_think: None,
        });
    }

    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Pull the next op from the client's source and start it.
    fn next_op(&mut self, db: &mut SqlDb, client: usize) {
        let c = &mut self.clients[client];
        if c.retired {
            return;
        }
        let Some(op) = c.source.next_op(&mut c.rng) else {
            c.retired = true;
            return;
        };
        if op.think == SimDuration::ZERO {
            self.begin_op(db, client, op);
        } else {
            self.in_flight += 1;
            let signals = Rc::clone(&self.signals);
            db.cluster.schedule(
                op.think,
                Box::new(move |_c| {
                    signals.borrow_mut().push(Signal::ThinkDone { client });
                }),
            );
            self.clients[client].pending_after_think = Some(Op {
                think: SimDuration::ZERO,
                ..op
            });
        }
    }

    fn begin_op(&mut self, db: &mut SqlDb, client: usize, op: Op) {
        let c = &mut self.clients[client];
        c.script = op.stmts.into();
        c.script_label = op.label;
        c.script_start = db.cluster.now();
        self.advance_script(db, client);
    }

    /// Issue the next statement of the current script.
    fn advance_script(&mut self, db: &mut SqlDb, client: usize) {
        let c = &mut self.clients[client];
        let Some(sql) = c.script.pop_front() else {
            return;
        };
        let sess = c.sess.clone();
        let signals = Rc::clone(&self.signals);
        self.in_flight += 1;
        db.exec(
            &sess,
            &sql,
            Box::new(move |_cl, res| {
                signals.borrow_mut().push(Signal::StmtDone {
                    client,
                    failed: res.is_err(),
                });
            }),
        );
    }

    fn finish_op(&mut self, db: &mut SqlDb, client: usize, failed: bool, deadline: SimTime) {
        let label = std::mem::take(&mut self.clients[client].script_label);
        let latency = db.cluster.now() - self.clients[client].script_start;
        if failed {
            self.stats.failed += 1;
            *self.stats.errors.entry(label.clone()).or_default() += 1;
        } else {
            self.stats.completed += 1;
            self.stats.recorder(&label).record(latency);
        }
        self.clients[client].source.on_result(&label, failed);
        self.clients[client].script.clear();
        if db.cluster.now() < deadline {
            self.next_op(db, client);
        }
    }

    /// Run until `deadline` or until every client retires.
    pub fn run(&mut self, db: &mut SqlDb, deadline: SimTime) {
        let started = db.cluster.now();
        for i in 0..self.clients.len() {
            self.next_op(db, i);
        }
        loop {
            let batch: Vec<Signal> = self.signals.borrow_mut().drain(..).collect();
            for sig in batch {
                match sig {
                    Signal::ThinkDone { client } => {
                        self.in_flight -= 1;
                        if let Some(op) = self.clients[client].pending_after_think.take() {
                            if db.cluster.now() < deadline {
                                self.begin_op(db, client, op);
                            }
                        }
                    }
                    Signal::StmtDone { client, failed } => {
                        self.in_flight -= 1;
                        if failed {
                            // Abort the rest of the script; roll back any
                            // open transaction before recording the failure.
                            if self.clients[client].sess.in_txn() {
                                let sess = self.clients[client].sess.clone();
                                let signals = Rc::clone(&self.signals);
                                self.in_flight += 1;
                                db.exec(
                                    &sess,
                                    "ROLLBACK",
                                    Box::new(move |_c, _res| {
                                        signals.borrow_mut().push(Signal::RollbackDone { client });
                                    }),
                                );
                            } else {
                                self.finish_op(db, client, true, deadline);
                            }
                        } else if self.clients[client].script.is_empty() {
                            self.finish_op(db, client, false, deadline);
                        } else {
                            self.advance_script(db, client);
                        }
                    }
                    Signal::RollbackDone { client } => {
                        self.in_flight -= 1;
                        self.finish_op(db, client, true, deadline);
                    }
                }
            }
            if db.cluster.now() >= deadline || self.in_flight == 0 {
                break;
            }
            if !db.cluster.step() {
                break;
            }
        }
        self.stats.elapsed = db.cluster.now() - started;
    }
}

impl Default for ClosedLoop {
    fn default() -> Self {
        ClosedLoop::new()
    }
}

//! Dataset preloading.
//!
//! The paper populates tables before each experiment ("each table is
//! populated with 100k keys", §7.1.1). Loading through transactions would
//! dominate simulation time, so this module materializes rows directly in
//! every replica's store — the moral equivalent of the paper's bulk IMPORT.

use mr_sql::catalog::Table;
use mr_sql::ddl::entry_key;
use mr_sql::encoding::encode_row;
use mr_sql::exec::SqlDb;
use mr_sql::types::Datum;

/// Preload fully-formed rows into `table` (all of its indexes). Each row
/// must contain every column in catalog order, including hidden ones
/// (`crdb_region` for RBR tables decides the partition).
pub fn load_rows(db: &mut SqlDb, db_name: &str, table: &str, rows: &[Vec<Datum>]) {
    let table: Table = {
        let cat = db.catalog.borrow();
        cat.table(db_name, table)
            .unwrap_or_else(|| panic!("unknown table {table:?}"))
            .clone()
    };
    for row in rows {
        assert_eq!(
            row.len(),
            table.columns.len(),
            "row arity mismatch for {}",
            table.name
        );
        let region = if table.primary_index().region_partitioned {
            table
                .region_column()
                .and_then(|o| row.get(o))
                .and_then(|d| d.as_str())
                .map(|s| s.to_string())
        } else {
            None
        };
        let value = encode_row(row);
        for index in &table.indexes {
            let key = entry_key(&table, index, region.as_deref(), row);
            db.cluster.preload(key, value.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_kv::cluster::ClusterConfig;
    use mr_sim::{NodeId, RttMatrix, Topology};

    #[test]
    fn preloaded_rows_are_readable() {
        let topo = Topology::build(
            &RttMatrix::paper_table1_regions(),
            3,
            RttMatrix::paper_table1(),
        );
        let mut d = SqlDb::new(topo, ClusterConfig::default());
        let sess = d.session(NodeId(0), None);
        d.exec_script(
            &sess,
            r#"
            CREATE DATABASE test PRIMARY REGION "us-east1" REGIONS "europe-west2";
            CREATE TABLE kv (k INT PRIMARY KEY, v STRING) LOCALITY REGIONAL BY ROW;
            "#,
        )
        .unwrap();
        let rows: Vec<Vec<Datum>> = (0..100)
            .map(|i| {
                vec![
                    Datum::Int(i),
                    Datum::String(format!("v{i}")),
                    Datum::Region(if i % 2 == 0 {
                        "us-east1".into()
                    } else {
                        "europe-west2".into()
                    }),
                ]
            })
            .collect();
        load_rows(&mut d, "test", "kv", &rows);
        let res = d.exec_sync(&sess, "SELECT v FROM kv WHERE k = 42").unwrap();
        assert_eq!(res.rows()[0][0], Datum::String("v42".into()));
        let res = d
            .exec_sync(&sess, "SELECT crdb_region FROM kv WHERE k = 43")
            .unwrap();
        assert_eq!(res.rows()[0][0].to_string(), "'europe-west2'");
        // Rows are updatable through the normal path afterwards.
        d.exec_sync(&sess, "UPDATE kv SET v = 'new' WHERE k = 42")
            .unwrap();
        let res = d.exec_sync(&sess, "SELECT v FROM kv WHERE k = 42").unwrap();
        assert_eq!(res.rows()[0][0], Datum::String("new".into()));
    }
}

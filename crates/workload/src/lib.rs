//! Workload generators and the closed-loop client driver.
//!
//! The paper evaluates with industry-standard benchmarks modified for
//! multi-region deployment (§7): YCSB A/B/D with a *locality of access*
//! knob, TPC-C with a GLOBAL `item` table and warehouse-partitioned
//! REGIONAL BY ROW tables, and the movr example application. All three are
//! implemented here from scratch against the SQL layer, plus:
//!
//! * [`zipf`] — the standard YCSB Zipf(0.99) key sampler;
//! * [`driver`] — a closed-loop driver: each simulated client keeps one
//!   operation in flight (optionally with think time) and latencies are
//!   recorded per operation label;
//! * [`bulk`] — dataset preloading that bypasses the transaction protocol
//!   (the paper's "initial import").

pub mod bulk;
pub mod driver;
pub mod movr;
pub mod tpcc;
pub mod ycsb;
pub mod zipf;

pub use driver::{ClosedLoop, DriverStats, Op};
pub use zipf::Zipf;

//! TPC-C, adapted for multi-region evaluation as in §7.4.
//!
//! The full nine-table TPC-C schema is used: `item` is GLOBAL ("its data is
//! never updated after the initial import") and the remaining eight tables
//! are REGIONAL BY ROW with `crdb_region` **computed from the warehouse
//! id** — warehouses are assigned to regions in contiguous blocks, so the
//! computed CASE keys every row to its warehouse's region and the planner
//! routes every warehouse-local statement to a single partition.
//!
//! The transaction mix is simplified to the three most frequent profiles
//! (New-Order 45%, Payment 43%, Order-Status 12%) with TPC-C-style remote
//! probabilities: ~10% of New-Orders touch a remote warehouse's stock (1%
//! per item line), 15% of Payments pay through a remote warehouse. Delivery
//! and Stock-Level are omitted; DESIGN.md records the substitution.
//! Terminals use think times so throughput is workload-limited, as in the
//! spec; the harness computes efficiency against the think-time-implied
//! ceiling.

use mr_sim::{SimDuration, SimRng};
use mr_sql::types::Datum;

use crate::driver::{Op, OpSource};

/// Scale / shape parameters.
#[derive(Clone, Debug)]
pub struct TpccConfig {
    pub regions: Vec<String>,
    pub warehouses_per_region: u32,
    /// Items in the catalog (TPC-C: 100k; scaled down for simulation
    /// memory — stock is `warehouses × items` rows).
    pub items: u32,
    pub districts_per_warehouse: u32,
    pub customers_per_district: u32,
    /// Terminals per warehouse (each a closed-loop client with think time).
    pub terminals_per_warehouse: u32,
    /// Mean think+keying delay between transactions.
    pub think_time: SimDuration,
    /// Per-order-line probability of drawing stock from a remote warehouse
    /// (TPC-C: 1%, yielding ~10% of New-Orders with a remote touch).
    pub remote_item_prob: f64,
    /// Probability a Payment goes through a remote warehouse (TPC-C: 15%).
    pub remote_payment_prob: f64,
}

impl TpccConfig {
    pub fn new(regions: Vec<String>) -> TpccConfig {
        TpccConfig {
            regions,
            warehouses_per_region: 100,
            items: 20,
            districts_per_warehouse: 2,
            customers_per_district: 10,
            terminals_per_warehouse: 1,
            think_time: SimDuration::from_millis(2_100),
            remote_item_prob: 0.01,
            remote_payment_prob: 0.15,
        }
    }

    pub fn total_warehouses(&self) -> u32 {
        self.warehouses_per_region * self.regions.len() as u32
    }

    pub fn region_of_warehouse(&self, w: u32) -> usize {
        (w / self.warehouses_per_region) as usize
    }

    /// The CASE expression computing `crdb_region` from a warehouse column.
    fn region_case(&self, col: &str) -> String {
        let mut case = String::from("CASE ");
        for (i, r) in self.regions.iter().enumerate() {
            let hi = (i as u32 + 1) * self.warehouses_per_region;
            if i + 1 < self.regions.len() {
                case.push_str(&format!("WHEN {col} < {hi} THEN '{r}' "));
            } else {
                case.push_str(&format!("ELSE '{r}' "));
            }
        }
        case.push_str("END");
        case
    }

    /// The nine-table DDL (issued after CREATE DATABASE).
    pub fn schema(&self) -> Vec<String> {
        let rbr = |cols: &str, pk: &str, wcol: &str| {
            format!(
                "CREATE TABLE {cols}, crdb_region crdb_internal_region NOT VISIBLE NOT NULL \
                 AS ({}) STORED, PRIMARY KEY ({pk})) LOCALITY REGIONAL BY ROW",
                self.region_case(wcol)
            )
        };
        vec![
            "CREATE TABLE item (i_id INT PRIMARY KEY, i_name STRING, i_price FLOAT) \
             LOCALITY GLOBAL"
                .to_string(),
            rbr(
                "warehouse (w_id INT, w_name STRING, w_ytd FLOAT",
                "w_id",
                "w_id",
            ),
            rbr(
                "district (d_w_id INT, d_id INT, d_next_o_id INT, d_ytd FLOAT",
                "d_w_id, d_id",
                "d_w_id",
            ),
            rbr(
                "customer (c_w_id INT, c_d_id INT, c_id INT, c_name STRING, c_balance FLOAT",
                "c_w_id, c_d_id, c_id",
                "c_w_id",
            ),
            rbr(
                "history (h_id UUID DEFAULT gen_random_uuid(), h_w_id INT, h_amount FLOAT",
                "h_id",
                "h_w_id",
            ),
            rbr(
                "orders (o_w_id INT, o_d_id INT, o_id INT, o_c_id INT, o_ol_cnt INT",
                "o_w_id, o_d_id, o_id",
                "o_w_id",
            ),
            rbr(
                "new_order (no_w_id INT, no_d_id INT, no_o_id INT",
                "no_w_id, no_d_id, no_o_id",
                "no_w_id",
            ),
            rbr(
                "order_line (ol_w_id INT, ol_d_id INT, ol_o_id INT, ol_number INT, \
                 ol_i_id INT, ol_quantity INT",
                "ol_w_id, ol_d_id, ol_o_id, ol_number",
                "ol_w_id",
            ),
            rbr(
                "stock (s_w_id INT, s_i_id INT, s_quantity INT",
                "s_w_id, s_i_id",
                "s_w_id",
            ),
        ]
    }

    fn region_datum(&self, w: u32) -> Datum {
        Datum::Region(self.regions[self.region_of_warehouse(w)].clone())
    }

    /// Initial datasets, per table, for bulk loading.
    pub fn datasets(&self) -> Vec<(&'static str, Vec<Vec<Datum>>)> {
        let mut out = Vec::new();
        let items: Vec<Vec<Datum>> = (0..self.items)
            .map(|i| {
                vec![
                    Datum::Int(i as i64),
                    Datum::String(format!("item-{i}")),
                    Datum::Float(1.0 + (i % 100) as f64),
                ]
            })
            .collect();
        out.push(("item", items));
        let mut warehouse = Vec::new();
        let mut district = Vec::new();
        let mut customer = Vec::new();
        let mut stock = Vec::new();
        for w in 0..self.total_warehouses() {
            let region = self.region_datum(w);
            warehouse.push(vec![
                Datum::Int(w as i64),
                Datum::String(format!("wh-{w}")),
                Datum::Float(0.0),
                region.clone(),
            ]);
            for d in 0..self.districts_per_warehouse {
                district.push(vec![
                    Datum::Int(w as i64),
                    Datum::Int(d as i64),
                    Datum::Int(1),
                    Datum::Float(0.0),
                    region.clone(),
                ]);
                for c in 0..self.customers_per_district {
                    customer.push(vec![
                        Datum::Int(w as i64),
                        Datum::Int(d as i64),
                        Datum::Int(c as i64),
                        Datum::String(format!("cust-{w}-{d}-{c}")),
                        Datum::Float(0.0),
                        region.clone(),
                    ]);
                }
            }
            for i in 0..self.items {
                stock.push(vec![
                    Datum::Int(w as i64),
                    Datum::Int(i as i64),
                    Datum::Int(100),
                    region.clone(),
                ]);
            }
        }
        out.push(("warehouse", warehouse));
        out.push(("district", district));
        out.push(("customer", customer));
        out.push(("stock", stock));
        out
    }

    /// Theoretical max New-Orders per minute per warehouse given the think
    /// time and mix (transactions are workload-limited; execution latency
    /// reduces the achieved rate — that gap is the inefficiency).
    pub fn max_tpmc_per_warehouse(&self) -> f64 {
        let per_terminal_per_min = 60e9 / self.think_time.nanos() as f64;
        per_terminal_per_min * self.terminals_per_warehouse as f64 * NEW_ORDER_WEIGHT
    }
}

pub const NEW_ORDER_WEIGHT: f64 = 0.45;
pub const PAYMENT_WEIGHT: f64 = 0.43;
// Order-Status takes the remainder (0.12).

/// Per-terminal transaction generator.
pub struct TpccTerminal {
    pub cfg: TpccConfig,
    /// This terminal's home warehouse.
    pub warehouse: u32,
    /// Order-id sequences per district (kept terminal-locally; terminals
    /// own their home warehouse's districts under 1 terminal/warehouse).
    pub next_o_id: Vec<i64>,
    pub remaining: Option<u64>,
    /// Prefix for op labels (e.g. "r3/" to split stats by region).
    pub label_prefix: String,
    /// First op issued yet? Terminals arrive "ready": the first
    /// transaction skips the think delay so short measurement windows
    /// aren't biased by a startup transient.
    started: bool,
}

impl TpccTerminal {
    pub fn new(cfg: TpccConfig, warehouse: u32) -> TpccTerminal {
        let districts = cfg.districts_per_warehouse as usize;
        TpccTerminal {
            cfg,
            warehouse,
            next_o_id: vec![1; districts],
            remaining: None,
            label_prefix: String::new(),
            started: false,
        }
    }

    fn pick_remote_warehouse(&self, rng: &mut SimRng) -> u32 {
        let total = self.cfg.total_warehouses();
        if total <= 1 {
            return self.warehouse;
        }
        let mut w = rng.next_below(total as u64 - 1) as u32;
        if w >= self.warehouse {
            w += 1;
        }
        w
    }

    fn new_order(&mut self, rng: &mut SimRng) -> Op {
        let w = self.warehouse;
        let d = rng.next_below(self.cfg.districts_per_warehouse as u64) as u32;
        let c = rng.next_below(self.cfg.customers_per_district as u64) as u32;
        let o_id = self.next_o_id[d as usize];
        self.next_o_id[d as usize] += 1;
        let n_lines = 5 + rng.next_below(11); // 5..15
        let mut stmts = vec![
            "BEGIN".to_string(),
            format!("SELECT w_name FROM warehouse WHERE w_id = {w}"),
            format!("SELECT d_next_o_id FROM district WHERE d_w_id = {w} AND d_id = {d}"),
            format!(
                "UPDATE district SET d_next_o_id = {} WHERE d_w_id = {w} AND d_id = {d}",
                o_id + 1
            ),
            format!(
                "SELECT c_name FROM customer WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
            ),
            format!(
                "INSERT INTO orders (o_w_id, o_d_id, o_id, o_c_id, o_ol_cnt) \
                 VALUES ({w}, {d}, {o_id}, {c}, {n_lines})"
            ),
            format!("INSERT INTO new_order (no_w_id, no_d_id, no_o_id) VALUES ({w}, {d}, {o_id})"),
        ];
        let mut remote = false;
        for line in 0..n_lines {
            let i = rng.next_below(self.cfg.items as u64);
            let supply_w = if rng.chance(self.cfg.remote_item_prob) {
                remote = true;
                self.pick_remote_warehouse(rng)
            } else {
                w
            };
            let qty = 1 + rng.next_below(10);
            stmts.push(format!("SELECT i_price FROM item WHERE i_id = {i}"));
            stmts.push(format!(
                "SELECT s_quantity FROM stock WHERE s_w_id = {supply_w} AND s_i_id = {i}"
            ));
            stmts.push(format!(
                "UPDATE stock SET s_quantity = s_quantity - {qty} \
                 WHERE s_w_id = {supply_w} AND s_i_id = {i}"
            ));
            stmts.push(format!(
                "INSERT INTO order_line (ol_w_id, ol_d_id, ol_o_id, ol_number, ol_i_id, \
                 ol_quantity) VALUES ({w}, {d}, {o_id}, {line}, {i}, {qty})"
            ));
        }
        stmts.push("COMMIT".to_string());
        let label = if remote {
            "new-order-remote"
        } else {
            "new-order"
        };
        Op::script(stmts, format!("{}{label}", self.label_prefix)).with_think(self.think(rng))
    }

    fn payment(&mut self, rng: &mut SimRng) -> Op {
        let home_w = self.warehouse;
        let (c_w, remote) = if rng.chance(self.cfg.remote_payment_prob) {
            (self.pick_remote_warehouse(rng), true)
        } else {
            (home_w, false)
        };
        let d = rng.next_below(self.cfg.districts_per_warehouse as u64) as u32;
        let c = rng.next_below(self.cfg.customers_per_district as u64) as u32;
        let amount = 1 + rng.next_below(5000);
        let stmts = vec![
            "BEGIN".to_string(),
            format!("UPDATE warehouse SET w_ytd = w_ytd + {amount} WHERE w_id = {home_w}"),
            format!(
                "UPDATE district SET d_ytd = d_ytd + {amount} \
                 WHERE d_w_id = {home_w} AND d_id = {d}"
            ),
            format!(
                "UPDATE customer SET c_balance = c_balance - {amount} \
                 WHERE c_w_id = {c_w} AND c_d_id = {d} AND c_id = {c}"
            ),
            format!("INSERT INTO history (h_w_id, h_amount) VALUES ({home_w}, {amount})"),
            "COMMIT".to_string(),
        ];
        let label = if remote { "payment-remote" } else { "payment" };
        Op::script(stmts, format!("{}{label}", self.label_prefix)).with_think(self.think(rng))
    }

    fn order_status(&mut self, rng: &mut SimRng) -> Op {
        let w = self.warehouse;
        let d = rng.next_below(self.cfg.districts_per_warehouse as u64) as u32;
        let c = rng.next_below(self.cfg.customers_per_district as u64) as u32;
        let stmts = vec![format!(
            "SELECT c_name, c_balance FROM customer \
             WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
        )];
        Op::script(stmts, format!("{}order-status", self.label_prefix)).with_think(self.think(rng))
    }

    fn think(&self, rng: &mut SimRng) -> SimDuration {
        // Uniform in [0.75, 1.25] × mean, deterministic per stream.
        let base = self.cfg.think_time.nanos() as f64;
        SimDuration((base * (0.75 + rng.unit_f64() * 0.5)) as u64)
    }
}

impl OpSource for TpccTerminal {
    fn next_op(&mut self, rng: &mut SimRng) -> Option<Op> {
        if let Some(r) = self.remaining.as_mut() {
            if *r == 0 {
                return None;
            }
            *r -= 1;
        }
        let roll = rng.unit_f64();
        let mut op = if roll < NEW_ORDER_WEIGHT {
            self.new_order(rng)
        } else if roll < NEW_ORDER_WEIGHT + PAYMENT_WEIGHT {
            self.payment(rng)
        } else {
            self.order_status(rng)
        };
        if !self.started {
            self.started = true;
            op.think = SimDuration::ZERO;
        }
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TpccConfig {
        let mut c = TpccConfig::new(vec!["r0".into(), "r1".into(), "r2".into()]);
        c.warehouses_per_region = 10;
        c
    }

    #[test]
    fn schema_has_nine_tables() {
        let ddl = cfg().schema();
        assert_eq!(ddl.len(), 9);
        assert!(ddl[0].contains("LOCALITY GLOBAL"));
        for stmt in &ddl[1..] {
            assert!(stmt.contains("REGIONAL BY ROW"), "{stmt}");
            assert!(stmt.contains("AS (CASE WHEN"), "{stmt}");
        }
    }

    #[test]
    fn warehouses_map_to_contiguous_region_blocks() {
        let c = cfg();
        assert_eq!(c.region_of_warehouse(0), 0);
        assert_eq!(c.region_of_warehouse(9), 0);
        assert_eq!(c.region_of_warehouse(10), 1);
        assert_eq!(c.region_of_warehouse(29), 2);
        let case = c.region_case("w_id");
        assert!(case.contains("WHEN w_id < 10 THEN 'r0'"));
        assert!(case.contains("WHEN w_id < 20 THEN 'r1'"));
        assert!(case.contains("ELSE 'r2'"));
    }

    #[test]
    fn datasets_cover_all_warehouses() {
        let c = cfg();
        let ds = c.datasets();
        let stock = &ds.iter().find(|(n, _)| *n == "stock").unwrap().1;
        assert_eq!(stock.len(), (c.total_warehouses() * c.items) as usize);
        let wh = &ds.iter().find(|(n, _)| *n == "warehouse").unwrap().1;
        assert_eq!(wh.len(), 30);
        // Region column matches the warehouse block.
        assert_eq!(wh[15][3], Datum::Region("r1".into()));
    }

    #[test]
    fn new_order_script_shape() {
        let c = cfg();
        let mut t = TpccTerminal::new(c, 5);
        let mut rng = SimRng::seed_from_u64(1);
        let op = t.new_order(&mut rng);
        assert_eq!(op.stmts.first().unwrap(), "BEGIN");
        assert_eq!(op.stmts.last().unwrap(), "COMMIT");
        assert!(op.stmts.iter().any(|s| s.contains("INSERT INTO orders")));
        assert!(op.stmts.iter().any(|s| s.contains("FROM item")));
        assert!(op.think > SimDuration::ZERO);
        // o_id advances per district.
        let before: i64 = t.next_o_id.iter().sum();
        let _ = t.new_order(&mut rng);
        assert_eq!(t.next_o_id.iter().sum::<i64>(), before + 1);
    }

    #[test]
    fn remote_fraction_of_new_orders_is_about_ten_percent() {
        let c = cfg();
        let mut t = TpccTerminal::new(c, 0);
        let mut rng = SimRng::seed_from_u64(2);
        let mut remote = 0;
        let trials = 5000;
        for _ in 0..trials {
            let op = t.new_order(&mut rng);
            if op.label == "new-order-remote" {
                remote += 1;
            }
        }
        let frac = remote as f64 / trials as f64;
        // ~1 - (1-0.01)^E[lines]; E[lines]=10 → ~9.6%.
        assert!((0.05..0.15).contains(&frac), "remote fraction {frac}");
    }

    #[test]
    fn mix_weights() {
        let c = cfg();
        let mut t = TpccTerminal::new(c, 0);
        let mut rng = SimRng::seed_from_u64(3);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..5000 {
            let op = t.next_op(&mut rng).unwrap();
            let base = op.label.trim_end_matches("-remote").to_string();
            *counts.entry(base).or_insert(0usize) += 1;
        }
        let no = counts["new-order"] as f64 / 5000.0;
        let pay = counts["payment"] as f64 / 5000.0;
        assert!((no - 0.45).abs() < 0.03, "new-order {no}");
        assert!((pay - 0.43).abs() < 0.03, "payment {pay}");
    }

    #[test]
    fn max_tpmc_formula() {
        let c = cfg();
        // 1 terminal/wh, think 2.1s → 28.57 txns/min → ×0.45 ≈ 12.86 tpmC.
        let max = c.max_tpmc_per_warehouse();
        assert!((max - 12.857).abs() < 0.01, "{max}");
    }
}

//! Virtual time.
//!
//! All simulated time is measured in integer nanoseconds since the start of
//! the simulation. Using integers keeps event ordering exact and the
//! simulation deterministic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn nanos(self) -> u64 {
        self.0
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference between two instants.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_nanos(n: u64) -> SimDuration {
        SimDuration(n)
    }

    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    pub fn nanos(self) -> u64 {
        self.0
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale the duration by a float factor (used for jitter).
    pub fn mul_f64(self, f: f64) -> SimDuration {
        SimDuration((self.0 as f64 * f).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.nanos(), 5_000_000);
        assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(5));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(
            SimDuration::from_micros(1500),
            SimDuration::from_nanos(1_500_000)
        );
    }

    #[test]
    fn since_saturates() {
        let a = SimTime(10);
        let b = SimTime(20);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration(10));
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimDuration(100).mul_f64(1.5), SimDuration(150));
        assert_eq!(SimDuration(3).mul_f64(0.5), SimDuration(2)); // rounds 1.5 -> 2
    }

    #[test]
    fn display_in_millis() {
        assert_eq!(SimDuration::from_millis(63).to_string(), "63.000ms");
        assert_eq!(SimTime(1_500_000).to_string(), "1.500ms");
    }
}

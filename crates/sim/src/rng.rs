//! Simulation randomness.
//!
//! All random choices in a simulation (network jitter, workload keys, clock
//! skews, Zipf draws) flow from a single seeded generator, making every
//! experiment reproducible from its seed.

use std::convert::Infallible;

use rand::rand_core::TryRng;
use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};

/// The simulation RNG. A thin newtype over a seeded [`SmallRng`] so other
/// crates depend on this type rather than a specific generator.
pub struct SimRng(SmallRng);

impl SimRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng(SmallRng::seed_from_u64(seed))
    }

    /// Derive an independent child generator (e.g. per-client streams).
    pub fn fork(&mut self) -> SimRng {
        SimRng(SmallRng::seed_from_u64(self.0.next_u64()))
    }

    /// Uniform `u64` in `[0, n)`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        self.0.random_range(0..n)
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.0.random_range(0..n)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.random::<f64>()
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.0.random::<f64>() < p
    }

    pub fn next_u64(&mut self) -> u64 {
        Rng::next_u64(&mut self.0)
    }
}

impl TryRng for SimRng {
    type Error = Infallible;

    fn try_next_u32(&mut self) -> Result<u32, Infallible> {
        Ok(self.0.next_u32())
    }
    fn try_next_u64(&mut self) -> Result<u64, Infallible> {
        Ok(self.0.next_u64())
    }
    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Infallible> {
        self.0.fill_bytes(dst);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_are_independent_but_deterministic() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
        // Parent streams stay aligned after forking.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounds_respected() {
        let mut r = SimRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
            assert!(r.index(3) < 3);
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn usable_as_generic_rng() {
        fn takes_rng<R: rand::Rng>(r: &mut R) -> u64 {
            r.next_u64()
        }
        let mut r = SimRng::seed_from_u64(5);
        let _ = takes_rng(&mut r);
    }
}

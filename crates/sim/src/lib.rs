//! Deterministic discrete-event simulation substrate.
//!
//! The paper evaluates CockroachDB on GCP clusters spanning up to 26 real
//! regions. This crate is the substitute substrate: a single-threaded,
//! seeded, discrete-event simulator in which every node, link, and clock is
//! virtual. Protocol code built on top (raft, leases, closed timestamps,
//! transactions) runs unmodified logic; only transport and time are
//! simulated.
//!
//! Components:
//!
//! * [`time`] — virtual time ([`time::SimTime`], [`time::SimDuration`]).
//! * [`event`] — the event calendar ([`event::EventQueue`]): a priority
//!   queue over `(time, sequence)` delivering opaque payloads in
//!   deterministic order.
//! * [`topology`] — regions, zones, nodes and the inter-region RTT matrix
//!   (seeded with the paper's Table 1), link jitter, and failure injection
//!   (node, zone, region, and pairwise partitions).
//! * [`rng`] — the simulation RNG (a thin wrapper over a seeded
//!   `SmallRng`) so all randomness flows from one seed.
//! * [`stats`] — latency recording: percentile summaries, CDFs, and
//!   throughput counters used by the experiment harnesses.

pub mod event;
pub mod rng;
pub mod stats;
pub mod time;
pub mod topology;

pub use event::EventQueue;
pub use rng::SimRng;
pub use stats::{Cdf, LatencyRecorder, Summary};
pub use time::{SimDuration, SimTime};
pub use topology::{Link, NetworkParams, NodeId, RegionId, RttMatrix, Topology, ZoneId};

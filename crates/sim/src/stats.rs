//! Latency statistics used by the experiment harnesses.
//!
//! The paper reports interquartile boxes (Fig. 3), violin plots (Fig. 4),
//! CDFs with tail zoom (Fig. 5), and throughput/efficiency (Fig. 6). This
//! module provides the corresponding reductions: percentile summaries,
//! cumulative distributions, and simple counters.

use crate::time::SimDuration;

/// Records individual latency samples and produces summaries.
#[derive(Clone, Default)]
pub struct LatencyRecorder {
    samples: Vec<SimDuration>,
    sorted: bool,
}

impl LatencyRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d);
        self.sorted = false;
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// Latency at quantile `q` in `[0, 1]` (nearest-rank).
    pub fn quantile(&mut self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q));
        self.ensure_sorted();
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).max(1) - 1;
        self.samples[rank.min(self.samples.len() - 1)]
    }

    pub fn max(&mut self) -> SimDuration {
        self.ensure_sorted();
        self.samples.last().copied().unwrap_or(SimDuration::ZERO)
    }

    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u128 = self.samples.iter().map(|d| d.nanos() as u128).sum();
        SimDuration((total / self.samples.len() as u128) as u64)
    }

    /// Five-number-ish summary matching the paper's box plots.
    pub fn summary(&mut self) -> Summary {
        Summary {
            count: self.samples.len(),
            mean: self.mean(),
            p25: self.quantile(0.25),
            p50: self.quantile(0.50),
            p75: self.quantile(0.75),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            max: self.max(),
        }
    }

    /// Cumulative distribution evaluated at each recorded point.
    pub fn cdf(&mut self) -> Cdf {
        self.ensure_sorted();
        Cdf {
            sorted: self.samples.clone(),
        }
    }

    /// Merge another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

/// A percentile summary of a latency distribution.
#[derive(Clone, Copy, Debug)]
pub struct Summary {
    pub count: usize,
    pub mean: SimDuration,
    pub p25: SimDuration,
    pub p50: SimDuration,
    pub p75: SimDuration,
    pub p90: SimDuration,
    pub p99: SimDuration,
    pub p999: SimDuration,
    pub max: SimDuration,
}

impl Summary {
    /// One-line rendering used by the bench harnesses.
    pub fn row(&self) -> String {
        format!(
            "n={:<7} mean={:>9.2}ms p25={:>9.2}ms p50={:>9.2}ms p75={:>9.2}ms p90={:>9.2}ms p99={:>9.2}ms p99.9={:>9.2}ms max={:>9.2}ms",
            self.count,
            self.mean.as_millis_f64(),
            self.p25.as_millis_f64(),
            self.p50.as_millis_f64(),
            self.p75.as_millis_f64(),
            self.p90.as_millis_f64(),
            self.p99.as_millis_f64(),
            self.p999.as_millis_f64(),
            self.max.as_millis_f64(),
        )
    }
}

/// An empirical CDF over latency samples.
pub struct Cdf {
    sorted: Vec<SimDuration>,
}

impl Cdf {
    /// Fraction of samples `<= x`.
    pub fn fraction_at(&self, x: SimDuration) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&d| d <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: latency at cumulative fraction `q`.
    pub fn value_at(&self, q: f64) -> SimDuration {
        if self.sorted.is_empty() {
            return SimDuration::ZERO;
        }
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).max(1) - 1;
        self.sorted[rank.min(self.sorted.len() - 1)]
    }

    /// Sample the CDF at the given quantiles, returning `(quantile, ms)`
    /// series rows suitable for printing or plotting.
    pub fn series(&self, quantiles: &[f64]) -> Vec<(f64, f64)> {
        quantiles
            .iter()
            .map(|&q| (q, self.value_at(q).as_millis_f64()))
            .collect()
    }

    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

/// Counter set for throughput-style experiments (Fig. 6).
#[derive(Clone, Copy, Debug, Default)]
pub struct Throughput {
    pub committed: u64,
    pub aborted: u64,
    pub retried: u64,
}

impl Throughput {
    /// Transactions per simulated minute.
    pub fn per_minute(&self, elapsed: SimDuration) -> f64 {
        if elapsed.nanos() == 0 {
            return 0.0;
        }
        self.committed as f64 * 60e9 / elapsed.nanos() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(vals_ms: &[u64]) -> LatencyRecorder {
        let mut r = LatencyRecorder::new();
        for &v in vals_ms {
            r.record(SimDuration::from_millis(v));
        }
        r
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut r = rec(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(r.quantile(0.5), SimDuration::from_millis(50));
        assert_eq!(r.quantile(0.9), SimDuration::from_millis(90));
        assert_eq!(r.quantile(1.0), SimDuration::from_millis(100));
        assert_eq!(r.quantile(0.0), SimDuration::from_millis(10));
        assert_eq!(r.max(), SimDuration::from_millis(100));
    }

    #[test]
    fn empty_recorder_is_zero() {
        let mut r = LatencyRecorder::new();
        assert_eq!(r.quantile(0.5), SimDuration::ZERO);
        assert_eq!(r.mean(), SimDuration::ZERO);
        assert!(r.is_empty());
    }

    #[test]
    fn mean_is_exact() {
        let r = rec(&[10, 20, 30]);
        assert_eq!(r.mean(), SimDuration::from_millis(20));
    }

    #[test]
    fn cdf_fraction_and_inverse_agree() {
        let mut r = rec(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let cdf = r.cdf();
        assert!((cdf.fraction_at(SimDuration::from_millis(5)) - 0.5).abs() < 1e-9);
        assert_eq!(cdf.value_at(0.5), SimDuration::from_millis(5));
        assert!((cdf.fraction_at(SimDuration::from_millis(100)) - 1.0).abs() < 1e-9);
        assert_eq!(cdf.fraction_at(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = rec(&[1, 2]);
        let b = rec(&[3, 4]);
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.max(), SimDuration::from_millis(4));
    }

    #[test]
    fn throughput_per_minute() {
        let t = Throughput {
            committed: 600,
            ..Default::default()
        };
        assert!((t.per_minute(SimDuration::from_secs(60)) - 600.0).abs() < 1e-9);
        assert!((t.per_minute(SimDuration::from_secs(30)) - 1200.0).abs() < 1e-9);
        assert_eq!(t.per_minute(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn summary_row_renders() {
        let mut r = rec(&[10, 20, 30]);
        let s = r.summary();
        assert_eq!(s.count, 3);
        assert!(s.row().contains("p50="));
    }
}

//! The event calendar.
//!
//! A min-heap over `(fire_time, sequence)` pairs. The sequence number breaks
//! ties so that events scheduled earlier fire earlier, which keeps the whole
//! simulation deterministic for a fixed seed and schedule order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    payload: M,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic event calendar over payloads of type `M`.
///
/// `pop` advances virtual time to the fire time of the earliest event and
/// returns it. Time never moves backwards; scheduling an event in the past
/// clamps it to fire "now".
pub struct EventQueue<M> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Scheduled<M>>,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        EventQueue {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimDuration, payload: M) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Schedule `payload` at an absolute instant (clamped to `now`).
    pub fn schedule_at(&mut self, at: SimTime, payload: M) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Pop the earliest event, advancing virtual time to its fire time.
    pub fn pop(&mut self) -> Option<(SimTime, M)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.at >= self.now, "event calendar went backwards");
        self.now = ev.at;
        Some((ev.at, ev.payload))
    }

    /// Fire time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimDuration::from_millis(30), "c");
        q.schedule(SimDuration::from_millis(10), "a");
        q.schedule(SimDuration::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, m)| m).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime(30_000_000));
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimDuration::from_millis(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, m)| m).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimDuration::from_millis(10), "later");
        q.pop();
        q.schedule_at(SimTime::ZERO, "past");
        let (at, m) = q.pop().unwrap();
        assert_eq!(m, "past");
        assert_eq!(at, SimTime(10_000_000));
    }

    #[test]
    fn time_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimDuration::from_millis(1), 1u8);
        q.schedule(SimDuration::from_millis(2), 2u8);
        let mut last = SimTime::ZERO;
        while let Some((at, _)) = q.pop() {
            assert!(at >= last);
            last = at;
            assert_eq!(q.now(), at);
        }
    }
}

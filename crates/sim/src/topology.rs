//! Cluster topology: regions, zones, nodes, and the network between them.
//!
//! Regions and zones mirror the paper's deployment model (§2.1): a region
//! contains one or more availability zones, each zone contains nodes. The
//! network model charges one-way delays of `RTT/2` between regions (from a
//! configurable matrix seeded with the paper's Table 1), a small intra-region
//! inter-zone delay, and a near-zero intra-zone delay, each with
//! multiplicative jitter. Failure injection marks nodes dead and links
//! partitioned; the message layer consults [`Topology::link`] before
//! delivering.

use std::collections::HashSet;
use std::fmt;

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Index of a region within the topology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u32);

/// Index of a zone within the topology (global, not per-region).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ZoneId(pub u32);

/// Index of a node within the topology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Debug for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}
impl fmt::Debug for ZoneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "z{}", self.0)
    }
}
impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}
impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}
impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}
impl fmt::Display for ZoneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A symmetric inter-region round-trip-time matrix.
#[derive(Clone)]
pub struct RttMatrix {
    n: usize,
    /// Flattened `n x n` RTTs; diagonal is zero.
    rtt: Vec<SimDuration>,
}

impl RttMatrix {
    /// Build from an upper-triangular list of millisecond RTTs, row-major:
    /// `pairs[i][j]` is the RTT between region `i` and region `i + 1 + j`.
    pub fn from_upper_millis(n: usize, pairs: &[&[u64]]) -> RttMatrix {
        assert_eq!(pairs.len(), n.saturating_sub(1), "need n-1 rows");
        let mut m = RttMatrix {
            n,
            rtt: vec![SimDuration::ZERO; n * n],
        };
        for (i, row) in pairs.iter().enumerate() {
            assert_eq!(row.len(), n - 1 - i, "row {i} length");
            for (k, &ms) in row.iter().enumerate() {
                let j = i + 1 + k;
                let d = SimDuration::from_millis(ms);
                m.rtt[i * n + j] = d;
                m.rtt[j * n + i] = d;
            }
        }
        m
    }

    /// Uniform RTT between all distinct region pairs.
    pub fn uniform(n: usize, rtt: SimDuration) -> RttMatrix {
        let mut m = RttMatrix {
            n,
            rtt: vec![rtt; n * n],
        };
        for i in 0..n {
            m.rtt[i * n + i] = SimDuration::ZERO;
        }
        m
    }

    /// The paper's Table 1: measured GCP inter-region RTTs in milliseconds.
    ///
    /// Order: us-east1, us-west1, europe-west2, asia-northeast1,
    /// australia-southeast1.
    pub fn paper_table1() -> RttMatrix {
        RttMatrix::from_upper_millis(
            5,
            &[
                &[63, 87, 155, 198], // us-east1 -> UW, EW, AN, AS
                &[132, 90, 156],     // us-west1 -> EW, AN, AS
                &[222, 274],         // europe-west2 -> AN, AS
                &[113],              // asia-northeast1 -> AS
            ],
        )
    }

    /// Region names matching [`RttMatrix::paper_table1`].
    pub fn paper_table1_regions() -> [&'static str; 5] {
        [
            "us-east1",
            "us-west1",
            "europe-west2",
            "asia-northeast1",
            "australia-southeast1",
        ]
    }

    /// A synthetic matrix for `n` regions: ring-of-continents style distances
    /// in `[60ms, 280ms]`, used by the 10- and 26-region scalability runs.
    pub fn synthetic(n: usize) -> RttMatrix {
        let mut m = RttMatrix {
            n,
            rtt: vec![SimDuration::ZERO; n * n],
        };
        for i in 0..n {
            for j in (i + 1)..n {
                // Deterministic pseudo-geographic distance: distance on a
                // ring plus a per-pair offset, mapped into [60, 280] ms.
                let ring = (j - i).min(n - (j - i)) as u64;
                let max_ring = (n / 2).max(1) as u64;
                let ms = 60 + ring * 220 / max_ring;
                let d = SimDuration::from_millis(ms);
                m.rtt[i * n + j] = d;
                m.rtt[j * n + i] = d;
            }
        }
        m
    }

    pub fn regions(&self) -> usize {
        self.n
    }

    pub fn rtt(&self, a: RegionId, b: RegionId) -> SimDuration {
        self.rtt[a.0 as usize * self.n + b.0 as usize]
    }
}

/// A node's physical placement.
#[derive(Clone, Debug)]
pub struct NodeLocality {
    pub region: RegionId,
    pub zone: ZoneId,
}

/// Parameters of the network model.
#[derive(Clone, Debug)]
pub struct NetworkParams {
    /// RTT between two nodes in the same zone.
    pub intra_zone_rtt: SimDuration,
    /// RTT between two nodes in different zones of the same region
    /// (the paper cites 2-5ms quorum RTTs for ZONE survivability).
    pub inter_zone_rtt: SimDuration,
    /// Multiplicative jitter amplitude: a one-way delay `d` becomes
    /// `d * (1 + U(0, jitter))`.
    pub jitter: f64,
    /// Fixed per-message processing overhead added to every delivery.
    pub processing: SimDuration,
}

impl Default for NetworkParams {
    fn default() -> Self {
        NetworkParams {
            intra_zone_rtt: SimDuration::from_micros(500),
            inter_zone_rtt: SimDuration::from_millis(2),
            jitter: 0.10,
            processing: SimDuration::from_micros(50),
        }
    }
}

/// The outcome of asking the network for a link delay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Link {
    /// Deliver after this one-way delay.
    Deliver(SimDuration),
    /// The destination is unreachable (dead node or partition); the message
    /// is dropped.
    Unreachable,
}

/// The cluster topology and network state.
pub struct Topology {
    region_names: Vec<String>,
    zone_names: Vec<String>,
    nodes: Vec<NodeLocality>,
    rtt: RttMatrix,
    params: NetworkParams,
    dead_nodes: HashSet<NodeId>,
    /// Unordered pairs of partitioned regions.
    partitions: HashSet<(RegionId, RegionId)>,
    /// Regions cut off from every other region (intra-region links stay up).
    isolated_regions: HashSet<RegionId>,
}

impl Topology {
    /// Build a topology with `nodes_per_region` nodes in each region, one
    /// zone per node (mirroring the paper's 3-node-3-zone regions).
    pub fn build(region_names: &[&str], nodes_per_region: usize, rtt: RttMatrix) -> Topology {
        assert_eq!(region_names.len(), rtt.regions());
        let mut t = Topology {
            region_names: region_names.iter().map(|s| s.to_string()).collect(),
            zone_names: Vec::new(),
            nodes: Vec::new(),
            rtt,
            params: NetworkParams::default(),
            dead_nodes: HashSet::new(),
            partitions: HashSet::new(),
            isolated_regions: HashSet::new(),
        };
        for (ri, rname) in region_names.iter().enumerate() {
            for zi in 0..nodes_per_region {
                let zone = ZoneId(t.zone_names.len() as u32);
                t.zone_names
                    .push(format!("{rname}-{}", (b'a' + zi as u8) as char));
                t.nodes.push(NodeLocality {
                    region: RegionId(ri as u32),
                    zone,
                });
            }
        }
        t
    }

    pub fn set_params(&mut self, params: NetworkParams) {
        self.params = params;
    }

    pub fn params(&self) -> &NetworkParams {
        &self.params
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn num_regions(&self) -> usize {
        self.region_names.len()
    }

    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    pub fn locality(&self, n: NodeId) -> &NodeLocality {
        &self.nodes[n.0 as usize]
    }

    pub fn region_of(&self, n: NodeId) -> RegionId {
        self.nodes[n.0 as usize].region
    }

    pub fn zone_of(&self, n: NodeId) -> ZoneId {
        self.nodes[n.0 as usize].zone
    }

    pub fn region_name(&self, r: RegionId) -> &str {
        &self.region_names[r.0 as usize]
    }

    pub fn zone_name(&self, z: ZoneId) -> &str {
        &self.zone_names[z.0 as usize]
    }

    pub fn region_by_name(&self, name: &str) -> Option<RegionId> {
        self.region_names
            .iter()
            .position(|r| r == name)
            .map(|i| RegionId(i as u32))
    }

    pub fn nodes_in_region(&self, r: RegionId) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.region_of(n) == r && !self.dead_nodes.contains(&n))
            .collect()
    }

    /// All nodes in `r`, including dead ones.
    pub fn all_nodes_in_region(&self, r: RegionId) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.region_of(n) == r)
            .collect()
    }

    pub fn rtt_matrix(&self) -> &RttMatrix {
        &self.rtt
    }

    /// The nominal (jitter-free) RTT between two nodes.
    pub fn nominal_rtt(&self, a: NodeId, b: NodeId) -> SimDuration {
        if a == b {
            return SimDuration::ZERO;
        }
        let (la, lb) = (self.locality(a), self.locality(b));
        if la.region != lb.region {
            self.rtt.rtt(la.region, lb.region)
        } else if la.zone != lb.zone {
            self.params.inter_zone_rtt
        } else {
            self.params.intra_zone_rtt
        }
    }

    /// Whether a message from `a` can reach `b` at all: both endpoints
    /// alive, and no region partition or isolation severs the path. This is
    /// the jitter-free reachability predicate underlying [`Topology::link`];
    /// failover logic consults it to avoid handing leases to nodes it
    /// cannot talk to.
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        if self.dead_nodes.contains(&a) || self.dead_nodes.contains(&b) {
            return false;
        }
        let (ra, rb) = (self.region_of(a), self.region_of(b));
        if ra == rb {
            return true;
        }
        if self.isolated_regions.contains(&ra) || self.isolated_regions.contains(&rb) {
            return false;
        }
        let pair = if ra <= rb { (ra, rb) } else { (rb, ra) };
        !self.partitions.contains(&pair)
    }

    /// One-way delivery decision for a message from `a` to `b`.
    pub fn link(&self, a: NodeId, b: NodeId, rng: &mut SimRng) -> Link {
        if !self.reachable(a, b) {
            return Link::Unreachable;
        }
        let one_way = SimDuration(self.nominal_rtt(a, b).nanos() / 2);
        let jittered = one_way.mul_f64(1.0 + rng.unit_f64() * self.params.jitter);
        Link::Deliver(jittered + self.params.processing)
    }

    // ---- Failure injection ----

    pub fn fail_node(&mut self, n: NodeId) {
        self.dead_nodes.insert(n);
    }

    pub fn revive_node(&mut self, n: NodeId) {
        self.dead_nodes.remove(&n);
    }

    pub fn fail_region(&mut self, r: RegionId) {
        for n in self.all_nodes_in_region(r) {
            self.dead_nodes.insert(n);
        }
    }

    pub fn revive_region(&mut self, r: RegionId) {
        for n in self.all_nodes_in_region(r) {
            self.dead_nodes.remove(&n);
        }
    }

    /// Fail every node in one zone of a region.
    pub fn fail_zone(&mut self, z: ZoneId) {
        let dead: Vec<NodeId> = self.node_ids().filter(|&n| self.zone_of(n) == z).collect();
        for n in dead {
            self.dead_nodes.insert(n);
        }
    }

    /// Revive every node in one zone.
    pub fn revive_zone(&mut self, z: ZoneId) {
        let alive: Vec<NodeId> = self.node_ids().filter(|&n| self.zone_of(n) == z).collect();
        for n in alive {
            self.dead_nodes.remove(&n);
        }
    }

    pub fn is_node_alive(&self, n: NodeId) -> bool {
        !self.dead_nodes.contains(&n)
    }

    pub fn partition_regions(&mut self, a: RegionId, b: RegionId) {
        let pair = if a <= b { (a, b) } else { (b, a) };
        self.partitions.insert(pair);
    }

    pub fn heal_partition(&mut self, a: RegionId, b: RegionId) {
        let pair = if a <= b { (a, b) } else { (b, a) };
        self.partitions.remove(&pair);
    }

    /// Cut `r` off from every other region in one step (a full-region
    /// network partition). Nodes inside `r` keep talking to each other.
    pub fn isolate_region(&mut self, r: RegionId) {
        self.isolated_regions.insert(r);
    }

    /// Undo [`Topology::isolate_region`].
    pub fn rejoin_region(&mut self, r: RegionId) {
        self.isolated_regions.remove(&r);
    }

    pub fn is_region_isolated(&self, r: RegionId) -> bool {
        self.isolated_regions.contains(&r)
    }

    /// Heal every pairwise partition and region isolation. Dead nodes stay
    /// dead (healing the network does not restart crashed machines).
    pub fn heal_all_partitions(&mut self) {
        self.partitions.clear();
        self.isolated_regions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::build(
            &RttMatrix::paper_table1_regions(),
            3,
            RttMatrix::paper_table1(),
        )
    }

    #[test]
    fn paper_table1_is_symmetric_and_matches() {
        let m = RttMatrix::paper_table1();
        let (ue, uw, ew, an, as_) = (
            RegionId(0),
            RegionId(1),
            RegionId(2),
            RegionId(3),
            RegionId(4),
        );
        assert_eq!(m.rtt(ue, uw), SimDuration::from_millis(63));
        assert_eq!(m.rtt(uw, ue), SimDuration::from_millis(63));
        assert_eq!(m.rtt(ue, ew), SimDuration::from_millis(87));
        assert_eq!(m.rtt(ew, an), SimDuration::from_millis(222));
        assert_eq!(m.rtt(an, as_), SimDuration::from_millis(113));
        assert_eq!(m.rtt(ue, ue), SimDuration::ZERO);
    }

    #[test]
    fn node_layout_three_per_region() {
        let t = topo();
        assert_eq!(t.num_nodes(), 15);
        assert_eq!(t.num_regions(), 5);
        assert_eq!(t.nodes_in_region(RegionId(0)).len(), 3);
        // Each node in its own zone.
        let zones: HashSet<_> = t.node_ids().map(|n| t.zone_of(n)).collect();
        assert_eq!(zones.len(), 15);
    }

    #[test]
    fn nominal_rtt_tiers() {
        let mut t = topo();
        t.set_params(NetworkParams {
            jitter: 0.0,
            processing: SimDuration::ZERO,
            ..NetworkParams::default()
        });
        let n0 = NodeId(0); // us-east1 zone a
        let n1 = NodeId(1); // us-east1 zone b
        let n3 = NodeId(3); // us-west1
        assert_eq!(t.nominal_rtt(n0, n0), SimDuration::ZERO);
        assert_eq!(t.nominal_rtt(n0, n1), SimDuration::from_millis(2));
        assert_eq!(t.nominal_rtt(n0, n3), SimDuration::from_millis(63));
        let mut rng = SimRng::seed_from_u64(0);
        match t.link(n0, n3, &mut rng) {
            Link::Deliver(d) => assert_eq!(d, SimDuration::from_millis(63).mul_f64(0.5)),
            _ => panic!("expected delivery"),
        }
    }

    #[test]
    fn jitter_bounds() {
        let t = topo();
        let mut rng = SimRng::seed_from_u64(3);
        let base = t.nominal_rtt(NodeId(0), NodeId(3)).nanos() / 2;
        for _ in 0..200 {
            match t.link(NodeId(0), NodeId(3), &mut rng) {
                Link::Deliver(d) => {
                    let d = d.nanos() - t.params().processing.nanos();
                    assert!(d >= base);
                    assert!(d <= (base as f64 * 1.101) as u64);
                }
                _ => panic!(),
            }
        }
    }

    #[test]
    fn failures_make_links_unreachable() {
        let mut t = topo();
        let mut rng = SimRng::seed_from_u64(0);
        t.fail_node(NodeId(3));
        assert!(matches!(
            t.link(NodeId(0), NodeId(3), &mut rng),
            Link::Unreachable
        ));
        assert!(matches!(
            t.link(NodeId(3), NodeId(0), &mut rng),
            Link::Unreachable
        ));
        t.revive_node(NodeId(3));
        assert!(matches!(
            t.link(NodeId(0), NodeId(3), &mut rng),
            Link::Deliver(_)
        ));

        t.fail_region(RegionId(1));
        assert_eq!(t.nodes_in_region(RegionId(1)).len(), 0);
        assert!(matches!(
            t.link(NodeId(0), NodeId(4), &mut rng),
            Link::Unreachable
        ));
        t.revive_region(RegionId(1));
        assert_eq!(t.nodes_in_region(RegionId(1)).len(), 3);
    }

    #[test]
    fn partitions_are_symmetric_and_healable() {
        let mut t = topo();
        let mut rng = SimRng::seed_from_u64(0);
        t.partition_regions(RegionId(1), RegionId(0));
        assert!(matches!(
            t.link(NodeId(0), NodeId(3), &mut rng),
            Link::Unreachable
        ));
        assert!(matches!(
            t.link(NodeId(3), NodeId(0), &mut rng),
            Link::Unreachable
        ));
        // Other links unaffected.
        assert!(matches!(
            t.link(NodeId(0), NodeId(6), &mut rng),
            Link::Deliver(_)
        ));
        t.heal_partition(RegionId(0), RegionId(1));
        assert!(matches!(
            t.link(NodeId(0), NodeId(3), &mut rng),
            Link::Deliver(_)
        ));
    }

    #[test]
    fn synthetic_matrix_in_band() {
        for n in [4, 10, 26] {
            let m = RttMatrix::synthetic(n);
            for i in 0..n {
                for j in 0..n {
                    let d = m.rtt(RegionId(i as u32), RegionId(j as u32));
                    if i == j {
                        assert_eq!(d, SimDuration::ZERO);
                    } else {
                        assert!(d >= SimDuration::from_millis(60), "{d}");
                        assert!(d <= SimDuration::from_millis(280), "{d}");
                        assert_eq!(d, m.rtt(RegionId(j as u32), RegionId(i as u32)));
                    }
                }
            }
        }
    }

    #[test]
    fn zone_failure_kills_only_that_zone() {
        let mut t = topo();
        let z = t.zone_of(NodeId(1));
        t.fail_zone(z);
        assert!(!t.is_node_alive(NodeId(1)));
        assert!(t.is_node_alive(NodeId(0)));
        assert_eq!(t.nodes_in_region(RegionId(0)).len(), 2);
        t.revive_zone(z);
        assert!(t.is_node_alive(NodeId(1)));
        assert_eq!(t.nodes_in_region(RegionId(0)).len(), 3);
    }

    #[test]
    fn region_isolation_cuts_all_external_links_only() {
        let mut t = topo();
        let mut rng = SimRng::seed_from_u64(0);
        t.isolate_region(RegionId(0));
        assert!(t.is_region_isolated(RegionId(0)));
        // External links dropped in both directions.
        assert!(!t.reachable(NodeId(0), NodeId(3)));
        assert!(!t.reachable(NodeId(3), NodeId(0)));
        assert!(matches!(
            t.link(NodeId(0), NodeId(3), &mut rng),
            Link::Unreachable
        ));
        // Intra-region links stay up.
        assert!(t.reachable(NodeId(0), NodeId(1)));
        assert!(matches!(
            t.link(NodeId(0), NodeId(1), &mut rng),
            Link::Deliver(_)
        ));
        // Links not involving the isolated region are untouched.
        assert!(t.reachable(NodeId(3), NodeId(6)));
        t.rejoin_region(RegionId(0));
        assert!(t.reachable(NodeId(0), NodeId(3)));
    }

    #[test]
    fn heal_all_partitions_clears_isolation_but_not_deaths() {
        let mut t = topo();
        t.partition_regions(RegionId(0), RegionId(1));
        t.isolate_region(RegionId(2));
        t.fail_node(NodeId(4));
        t.heal_all_partitions();
        assert!(t.reachable(NodeId(0), NodeId(3)));
        assert!(t.reachable(NodeId(6), NodeId(0)));
        assert!(!t.is_node_alive(NodeId(4)));
        assert!(!t.reachable(NodeId(0), NodeId(4)));
    }

    #[test]
    fn reachable_matches_link() {
        let mut t = topo();
        let mut rng = SimRng::seed_from_u64(7);
        t.partition_regions(RegionId(1), RegionId(3));
        t.fail_node(NodeId(0));
        for a in t.node_ids().collect::<Vec<_>>() {
            for b in t.node_ids().collect::<Vec<_>>() {
                let deliver = matches!(t.link(a, b, &mut rng), Link::Deliver(_));
                assert_eq!(deliver, t.reachable(a, b), "{a} -> {b}");
            }
        }
    }
}

//! # multiregion
//!
//! A from-scratch Rust reproduction of *"Enabling the Next Generation of
//! Multi-Region Applications with CockroachDB"* (SIGMOD 2022): a
//! multi-region SQL database with declarative regions, survivability
//! goals, and table localities, running on a deterministic discrete-event
//! simulation of a geo-distributed cluster.
//!
//! The paper's abstractions are all here:
//!
//! * `CREATE DATABASE movr PRIMARY REGION "us-east1" REGIONS ...`
//! * `ALTER DATABASE movr SURVIVE {ZONE|REGION} FAILURE`
//! * `CREATE TABLE ... LOCALITY {GLOBAL | REGIONAL BY TABLE | REGIONAL BY ROW}`
//! * computed and automatic `crdb_region` partitioning, automatic
//!   rehoming, global uniqueness checks over partitioned indexes,
//!   locality-optimized search;
//! * follower reads, non-voting replicas, exact- and bounded-staleness
//!   `AS OF SYSTEM TIME` reads;
//! * the global-transaction protocol: future-time writes, closed
//!   timestamps that lead present time, and commit wait.
//!
//! # Quickstart
//!
//! ```
//! use multiregion::ClusterBuilder;
//!
//! let mut db = ClusterBuilder::new()
//!     .region("us-east1", 3)
//!     .region("europe-west2", 3)
//!     .region("asia-northeast1", 3)
//!     .build();
//! let sess = db.session_in_region("us-east1", None);
//! db.exec_script(&sess, r#"
//!     CREATE DATABASE movr PRIMARY REGION "us-east1"
//!         REGIONS "europe-west2", "asia-northeast1";
//!     CREATE TABLE users (
//!         id INT PRIMARY KEY,
//!         email STRING UNIQUE NOT NULL
//!     ) LOCALITY REGIONAL BY ROW;
//!     CREATE TABLE promo_codes (
//!         code STRING PRIMARY KEY,
//!         description STRING
//!     ) LOCALITY GLOBAL;
//! "#).unwrap();
//! db.exec_sync(&sess, "INSERT INTO users (id, email) VALUES (1, 'a@b.c')").unwrap();
//! let rows = db.exec_sync(&sess, "SELECT * FROM users WHERE email = 'a@b.c'").unwrap();
//! assert_eq!(rows.rows().len(), 1);
//! ```
//!
//! The crates underneath (`mr_sim`, `mr_clock`, `mr_proto`, `mr_storage`,
//! `mr_raft`, `mr_kv`, `mr_sql`, `mr_workload`) are re-exported for
//! direct access to the substrates.

pub use mr_clock as clock;
pub use mr_kv as kv;
pub use mr_obs as obs;
pub use mr_proto as proto;
pub use mr_raft as raft;
pub use mr_sim as sim;
pub use mr_sql as sql;
pub use mr_storage as storage;
pub use mr_workload as workload;

pub use mr_kv::cluster::{ClusterConfig, ReadOptions, Staleness};
pub use mr_sim::{NodeId, RttMatrix, SimDuration, SimTime, Topology};
pub use mr_sql::exec::{Session, SqlDb, SqlError, SqlResult};
pub use mr_sql::types::Datum;

/// Builds a simulated multi-region cluster and the SQL database on it.
///
/// Regions default to the paper's Table 1 RTTs when their names match the
/// five GCP regions measured there; otherwise provide a matrix with
/// [`ClusterBuilder::rtt_matrix`] or accept the synthetic default.
pub struct ClusterBuilder {
    regions: Vec<(String, usize)>,
    rtt: Option<RttMatrix>,
    cfg: ClusterConfig,
}

impl ClusterBuilder {
    #[allow(clippy::new_without_default)]
    pub fn new() -> ClusterBuilder {
        ClusterBuilder {
            regions: Vec::new(),
            rtt: None,
            cfg: ClusterConfig::default(),
        }
    }

    /// Add a region with `nodes` nodes (each in its own availability zone).
    pub fn region(mut self, name: &str, nodes: usize) -> Self {
        self.regions.push((name.to_string(), nodes));
        self
    }

    /// The five-region topology of the paper's Table 1.
    pub fn paper_regions(mut self) -> Self {
        self.regions = RttMatrix::paper_table1_regions()
            .iter()
            .map(|r| (r.to_string(), 3))
            .collect();
        self.rtt = Some(RttMatrix::paper_table1());
        self
    }

    /// Explicit inter-region RTT matrix (must match the region count).
    pub fn rtt_matrix(mut self, rtt: RttMatrix) -> Self {
        self.rtt = Some(rtt);
        self
    }

    /// Maximum tolerated clock skew (`max_clock_offset`, §6.1). The paper's
    /// default is 250ms.
    pub fn max_clock_offset(mut self, offset: SimDuration) -> Self {
        self.cfg = self.cfg.with_max_offset(offset);
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Enable RPC timeouts (needed when injecting failures).
    pub fn rpc_timeout(mut self, t: SimDuration) -> Self {
        self.cfg.rpc_timeout = Some(t);
        self
    }

    /// Access the full low-level configuration.
    pub fn config(mut self, f: impl FnOnce(&mut ClusterConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    pub fn build(self) -> SqlDb {
        assert!(!self.regions.is_empty(), "add at least one region");
        let names: Vec<&str> = self.regions.iter().map(|(n, _)| n.as_str()).collect();
        let nodes_per_region = self.regions[0].1;
        assert!(
            self.regions.iter().all(|(_, n)| *n == nodes_per_region),
            "per-region node counts must match (current limitation)"
        );
        let rtt = self.rtt.unwrap_or_else(|| {
            if names == RttMatrix::paper_table1_regions() {
                RttMatrix::paper_table1()
            } else {
                RttMatrix::synthetic(names.len())
            }
        });
        let topo = Topology::build(&names, nodes_per_region, rtt);
        SqlDb::new(topo, self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_topology() {
        let db = ClusterBuilder::new()
            .region("a", 3)
            .region("b", 3)
            .seed(1)
            .build();
        assert_eq!(db.cluster.topology().num_nodes(), 6);
        assert_eq!(db.cluster.topology().num_regions(), 2);
    }

    #[test]
    fn paper_regions_shortcut() {
        let db = ClusterBuilder::new().paper_regions().build();
        assert_eq!(db.cluster.topology().num_regions(), 5);
        assert_eq!(db.cluster.topology().num_nodes(), 15);
        assert_eq!(
            db.cluster.topology().region_name(mr_sim::RegionId(0)),
            "us-east1"
        );
    }

    #[test]
    fn max_offset_propagates() {
        let db = ClusterBuilder::new()
            .region("a", 3)
            .max_clock_offset(SimDuration::from_millis(50))
            .build();
        assert_eq!(
            db.cluster.cfg.clock.max_offset,
            SimDuration::from_millis(50)
        );
        assert_eq!(
            db.cluster.cfg.closed_ts.max_clock_offset,
            SimDuration::from_millis(50)
        );
    }
}

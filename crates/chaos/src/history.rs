//! The append-only operation history.
//!
//! Every client operation is recorded Jepsen-style as an *invoke* event
//! followed by at most one completion event: *ok* (it definitely happened),
//! *fail* (it definitely did not happen), or *info* (outcome unknown — e.g.
//! a commit RPC that timed out may or may not have applied). Events carry
//! the client id, the key, the value written or observed, HLC timestamps
//! (commit timestamps for writes and fresh reads, the requested timestamp
//! for stale reads), and the simulation time of the event.
//!
//! The JSON export is deterministic: for a fixed seed the whole run —
//! network jitter, fault timing, client interleaving — replays identically,
//! so two runs of the same seed produce byte-identical exports. The offline
//! checker consumes assembled [`OpRecord`]s rather than raw events.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use mr_clock::Timestamp;
use mr_sim::SimTime;

/// Identifier of one client operation (1-based, unique per history).
pub type OpId = u64;

/// What kind of operation a history entry describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// A single-key write (its value is the writing op's id).
    Write,
    /// A linearizable read (implicit read-only transaction).
    FreshRead,
    /// An exact-staleness read at a recorded timestamp.
    StaleRead,
    /// A bounded-staleness read (timestamp negotiated server-side).
    BoundedRead,
}

impl OpKind {
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::Write => "write",
            OpKind::FreshRead => "read",
            OpKind::StaleRead => "stale-read",
            OpKind::BoundedRead => "bounded-read",
        }
    }

    pub fn is_read(&self) -> bool {
        !matches!(self, OpKind::Write)
    }
}

/// Event phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    Invoke,
    Ok,
    Fail,
    /// Outcome unknown (ambiguous commit, or still in flight at run end).
    Info,
}

impl Phase {
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Invoke => "invoke",
            Phase::Ok => "ok",
            Phase::Fail => "fail",
            Phase::Info => "info",
        }
    }
}

/// One history event.
#[derive(Clone, Debug)]
pub struct HistoryEvent {
    /// Global append order (1-based).
    pub seq: u64,
    pub op: OpId,
    pub client: u32,
    pub phase: Phase,
    pub kind: OpKind,
    pub key: String,
    /// Write: the value written (== op id). Read ok: the value observed
    /// (`None` = key absent).
    pub value: Option<u64>,
    /// Write/fresh-read ok: the commit timestamp. Stale-read invoke: the
    /// requested read timestamp.
    pub ts: Option<Timestamp>,
    pub at: SimTime,
    /// Fail/info: the error.
    pub error: Option<String>,
}

/// One operation assembled from its invoke + completion events.
#[derive(Clone, Debug)]
pub struct OpRecord {
    pub id: OpId,
    pub client: u32,
    pub kind: OpKind,
    pub key: String,
    pub invoke_at: SimTime,
    /// Stale reads: the requested read timestamp.
    pub read_ts: Option<Timestamp>,
    pub complete_at: Option<SimTime>,
    /// `Phase::Ok`, `Phase::Fail`, or `Phase::Info`; `Phase::Invoke` means
    /// the op never completed (counted as info by the checker).
    pub outcome: Phase,
    /// Ok writes: the value written. Ok reads: the value observed.
    pub value: Option<u64>,
    /// Ok writes and fresh reads: the commit timestamp.
    pub ts: Option<Timestamp>,
    pub error: Option<String>,
}

impl OpRecord {
    pub fn ok(&self) -> bool {
        self.outcome == Phase::Ok
    }

    /// The op's latency, when it completed.
    pub fn latency(&self) -> Option<mr_sim::SimDuration> {
        self.complete_at.map(|c| c - self.invoke_at)
    }
}

impl fmt::Display for OpRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "op {} (client {}, {} {}",
            self.id,
            self.client,
            self.kind.label(),
            self.key
        )?;
        if let Some(v) = self.value {
            write!(f, " = {v}")?;
        }
        if let Some(ts) = self.ts {
            write!(f, " @ {ts}")?;
        }
        write!(f, ", {})", self.outcome.label())
    }
}

struct Inner {
    events: Vec<HistoryEvent>,
    next_op: OpId,
}

/// The shared append-only history. Cloning shares the underlying store, so
/// the driver's continuations and the harness hold the same log.
#[derive(Clone)]
pub struct History {
    inner: Rc<RefCell<Inner>>,
}

impl Default for History {
    fn default() -> Self {
        Self::new()
    }
}

impl History {
    pub fn new() -> History {
        History {
            inner: Rc::new(RefCell::new(Inner {
                events: Vec::new(),
                next_op: 1,
            })),
        }
    }

    /// Record a write invocation. The value written IS the new op id (the
    /// register workload's unique-value convention), so it is filled in
    /// here rather than passed by the caller.
    pub fn invoke_write(&self, at: SimTime, client: u32, key: &str) -> OpId {
        let next = self.inner.borrow().next_op;
        self.invoke(at, client, OpKind::Write, key, Some(next), None)
    }

    /// Record an invocation; returns the new op id.
    pub fn invoke(
        &self,
        at: SimTime,
        client: u32,
        kind: OpKind,
        key: &str,
        value: Option<u64>,
        ts: Option<Timestamp>,
    ) -> OpId {
        let mut h = self.inner.borrow_mut();
        let op = h.next_op;
        h.next_op += 1;
        let seq = h.events.len() as u64 + 1;
        h.events.push(HistoryEvent {
            seq,
            op,
            client,
            phase: Phase::Invoke,
            kind,
            key: key.to_string(),
            value,
            ts,
            at,
            error: None,
        });
        op
    }

    fn complete(
        &self,
        at: SimTime,
        op: OpId,
        phase: Phase,
        value: Option<u64>,
        ts: Option<Timestamp>,
        error: Option<String>,
    ) {
        let mut h = self.inner.borrow_mut();
        let inv = h
            .events
            .iter()
            .find(|e| e.op == op && e.phase == Phase::Invoke)
            .unwrap_or_else(|| panic!("completion for unknown op {op}"));
        let (client, kind, key) = (inv.client, inv.kind, inv.key.clone());
        debug_assert!(
            !h.events
                .iter()
                .any(|e| e.op == op && e.phase != Phase::Invoke),
            "op {op} completed twice"
        );
        let seq = h.events.len() as u64 + 1;
        h.events.push(HistoryEvent {
            seq,
            op,
            client,
            phase,
            kind,
            key,
            value,
            ts,
            at,
            error,
        });
    }

    /// The op definitely happened.
    pub fn ok(&self, at: SimTime, op: OpId, value: Option<u64>, ts: Option<Timestamp>) {
        self.complete(at, op, Phase::Ok, value, ts, None);
    }

    /// The op definitely did not happen.
    pub fn fail(&self, at: SimTime, op: OpId, error: &str) {
        self.complete(at, op, Phase::Fail, None, None, Some(error.to_string()));
    }

    /// The op's outcome is unknown (it may have happened).
    pub fn info(&self, at: SimTime, op: OpId, error: &str) {
        self.complete(at, op, Phase::Info, None, None, Some(error.to_string()));
    }

    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of the raw events in append order.
    pub fn events(&self) -> Vec<HistoryEvent> {
        self.inner.borrow().events.clone()
    }

    /// Assemble per-op records (ordered by op id). Ops with no completion
    /// event get `outcome: Phase::Invoke` (treated as info by the checker).
    pub fn ops(&self) -> Vec<OpRecord> {
        let h = self.inner.borrow();
        let mut ops: Vec<OpRecord> = Vec::new();
        for e in &h.events {
            match e.phase {
                Phase::Invoke => {
                    debug_assert_eq!(ops.len() as u64 + 1, e.op, "invokes arrive in op order");
                    ops.push(OpRecord {
                        id: e.op,
                        client: e.client,
                        kind: e.kind,
                        key: e.key.clone(),
                        invoke_at: e.at,
                        read_ts: if e.kind == OpKind::StaleRead {
                            e.ts
                        } else {
                            None
                        },
                        complete_at: None,
                        outcome: Phase::Invoke,
                        value: if e.kind == OpKind::Write {
                            e.value
                        } else {
                            None
                        },
                        ts: None,
                        error: None,
                    });
                }
                _ => {
                    let rec = &mut ops[e.op as usize - 1];
                    rec.complete_at = Some(e.at);
                    rec.outcome = e.phase;
                    rec.error = e.error.clone();
                    if e.phase == Phase::Ok {
                        rec.ts = e.ts;
                        if e.kind == OpKind::Write {
                            debug_assert_eq!(rec.value, e.value);
                        } else {
                            rec.value = e.value;
                        }
                    }
                }
            }
        }
        ops
    }

    /// Deterministic JSON export: one object per event, append order. For a
    /// fixed seed two runs produce byte-identical output.
    pub fn export_json(&self) -> String {
        let h = self.inner.borrow();
        let mut out = String::from("[\n");
        for (i, e) in h.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let value = e
                .value
                .map(|v| v.to_string())
                .unwrap_or_else(|| "null".into());
            let (ts_wall, ts_logical) = match e.ts {
                Some(t) => (t.wall.to_string(), t.logical.to_string()),
                None => ("null".into(), "null".into()),
            };
            let error = match &e.error {
                Some(err) => format!("\"{}\"", mr_obs::export::json_escape(err)),
                None => "null".into(),
            };
            out.push_str(&format!(
                "  {{\"seq\": {}, \"op\": {}, \"client\": {}, \"phase\": \"{}\", \"kind\": \"{}\", \
                 \"key\": \"{}\", \"value\": {}, \"ts_wall\": {}, \"ts_logical\": {}, \
                 \"at_ns\": {}, \"error\": {}}}",
                e.seq,
                e.op,
                e.client,
                e.phase.label(),
                e.kind.label(),
                mr_obs::export::json_escape(&e.key),
                value,
                ts_wall,
                ts_logical,
                e.at.0,
                error,
            ));
        }
        out.push_str("\n]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invoke_complete_assembles_records() {
        let h = History::new();
        let w = h.invoke(SimTime(10), 0, OpKind::Write, "rs/k1", Some(1), None);
        let r = h.invoke(SimTime(15), 1, OpKind::FreshRead, "rs/k1", None, None);
        h.ok(SimTime(40), w, Some(1), Some(Timestamp::new(30, 0)));
        h.ok(SimTime(60), r, Some(1), Some(Timestamp::new(50, 0)));
        let lost = h.invoke(SimTime(70), 0, OpKind::Write, "rs/k2", Some(3), None);
        let ops = h.ops();
        assert_eq!(ops.len(), 3);
        assert!(ops[0].ok());
        assert_eq!(ops[0].ts, Some(Timestamp::new(30, 0)));
        assert_eq!(ops[1].value, Some(1));
        assert_eq!(ops[lost as usize - 1].outcome, Phase::Invoke);
        assert_eq!(ops[0].latency(), Some(mr_sim::SimDuration(30)));
    }

    #[test]
    fn export_is_deterministic() {
        let mk = || {
            let h = History::new();
            let w = h.invoke(SimTime(1), 0, OpKind::Write, "k", Some(1), None);
            h.fail(SimTime(2), w, "boom \"quoted\"");
            let s = h.invoke(
                SimTime(3),
                1,
                OpKind::StaleRead,
                "k",
                None,
                Some(Timestamp::new(9, 2)),
            );
            h.ok(SimTime(4), s, None, None);
            h.export_json()
        };
        let a = mk();
        assert_eq!(a, mk());
        assert!(a.contains("\"phase\": \"fail\""));
        assert!(a.contains("\"ts_wall\": 9"));
        // Valid JSON-ish shape: balanced brackets, one line per event.
        assert_eq!(a.matches("\"op\":").count(), 4);
    }
}

//! The nemesis runner: seeded fault schedule + register workload + checker.
//!
//! [`run_chaos`] builds a 3-region × 3-node cluster (the first three
//! regions of the paper's Table 1) with two ranges — `rs/*` under REGION
//! survivability (5 voters, ≤2 per region) and `zs/*` under ZONE
//! survivability (3 voters, all in the home region) — then drives
//! closed-loop register clients from every region while the schedule
//! injects faults on the simulation calendar. Every client operation is
//! recorded in the append-only [`History`]; after a final heal and drain,
//! the offline [`checker`](crate::checker) validates the history.
//!
//! Everything derives from `ChaosConfig::seed` + the schedule: the same
//! seed replays the identical run, byte for byte, including the history
//! export.

use mr_clock::Timestamp;
use mr_kv::cluster::{Cluster, ClusterConfig, LifecycleConfig, ReadOptions, Staleness};
use mr_kv::zone::{derive_zone_config, ClosedTsPolicy, PlacementPolicy, SurvivalGoal};
use mr_proto::{Key, KvError, Span, Value};
use mr_sim::{
    LatencyRecorder, NodeId, RegionId, RttMatrix, SimDuration, SimRng, SimTime, Topology,
};

use crate::bundle::IncidentBundle;
use crate::checker::{check, CheckReport, CheckerConfig};
use crate::history::{History, OpKind, Phase};
use crate::schedule::FaultSchedule;

/// Key prefix of the REGION-survivable range.
pub const REGION_SURVIVABLE_PREFIX: &str = "rs/";
/// Key prefix of the ZONE-survivable range.
pub const ZONE_SURVIVABLE_PREFIX: &str = "zs/";

/// Nemesis run parameters. Everything is derived from `seed`.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    pub seed: u64,
    pub clients_per_region: u32,
    /// Distinct keys per survivability class.
    pub keys_per_class: u64,
    /// Closed-loop think time between a completion and the next invoke.
    pub think: SimDuration,
    /// How long clients keep issuing operations (from workload start).
    pub run_for: SimDuration,
    /// RPC timeout — must be set for chaos runs, or operations against
    /// dead/partitioned nodes would hang forever.
    pub rpc_timeout: SimDuration,
    /// Escalate online invariant-monitor violations to panics. Turn off
    /// for runs that deliberately break an invariant (the injected-bug
    /// test), where the offline checker is the detector under test.
    pub strict_monitors: bool,
    /// Arm the intentionally injected follower-read bug (requires the
    /// `injected-bug` feature; panics otherwise). Used to prove the
    /// checker catches a real stale read.
    pub arm_injected_bug: bool,
    /// Arm the intentionally injected parallel-commit bug (client acked
    /// before in-flight writes replicate; requires the `injected-bug`
    /// feature; panics otherwise).
    pub arm_premature_ack_bug: bool,
    /// Issue transactional writes as pipelined intents (async consensus).
    pub pipelined_writes: bool,
    /// Commit with a STAGING record in parallel with in-flight writes.
    pub parallel_commits: bool,
    /// Extra `cold<i>/` ranges homed in region 0 that the workload never
    /// touches. Their leaders quiesce shortly after startup, giving the
    /// quiesced-leader-crash schedule block something to kill.
    pub cold_ranges: u32,
    /// Record trace spans for the whole run, so a failing run's incident
    /// bundle includes the span subtrees of implicated transactions. Off
    /// by default (spans cost memory on long runs; the retention ring
    /// bounds it, but an evicted span is gone from the bundle too).
    pub tracing: bool,
    /// Enable the range-lifecycle controller (automatic splits, merges,
    /// and load-based rebalancing) on the chaos cluster. Pair with
    /// `ScheduleBounds::lifecycle_storm`, which additionally forces
    /// splits and merges mid-disruption via admin faults.
    pub range_lifecycle: bool,
    /// Make half the stale reads *recent* (50–250ms into the past, inside
    /// the closed-ts lag) so they fall back to the leaseholder and leave
    /// fresh timestamp-cache entries — the state a split must carry to
    /// both halves, and the detection channel for the split-tscache bug.
    pub recent_stale_reads: bool,
    /// Arm the intentionally injected split bug (the RHS of a split gets a
    /// zero timestamp-cache bound; requires the `injected-bug` feature;
    /// panics otherwise). Used to prove the checker catches a split that
    /// forgets the reads the parent range already served.
    pub arm_split_tscache_bug: bool,
    /// Arm the intentionally injected durability bug (writes acknowledged
    /// before the WAL/Raft-log fsync point; requires the `injected-bug`
    /// feature; panics otherwise). Used to prove the checker catches a
    /// volatile crash that loses acked writes.
    pub arm_wal_skip_fsync_bug: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 1,
            clients_per_region: 2,
            keys_per_class: 4,
            think: SimDuration::from_millis(40),
            run_for: SimDuration::from_secs(60),
            rpc_timeout: SimDuration::from_secs(1),
            strict_monitors: true,
            arm_injected_bug: false,
            arm_premature_ack_bug: false,
            pipelined_writes: true,
            parallel_commits: true,
            cold_ranges: 0,
            tracing: false,
            range_lifecycle: false,
            recent_stale_reads: false,
            arm_split_tscache_bug: false,
            arm_wal_skip_fsync_bug: false,
        }
    }
}

/// Everything a chaos run produces.
pub struct ChaosOutcome {
    pub schedule: FaultSchedule,
    pub history: History,
    pub report: CheckReport,
    pub ops_ok: usize,
    pub ops_failed: usize,
    pub ops_info: usize,
    /// Committed client operations per simulated second.
    pub ops_per_sec: f64,
    /// p99 latency of operations invoked while a disruption was active —
    /// the paper-style recovery-time proxy.
    pub recovery_p99: SimDuration,
    /// p99 latency of operations invoked outside disruption windows.
    pub steady_p99: SimDuration,
    /// Forensics captured from the live cluster when the checker or an
    /// online monitor flagged a violation; `None` on clean runs.
    pub bundle: Option<IncidentBundle>,
    /// Range splits applied during the run (admin faults + automatic).
    pub splits: usize,
    /// Range merges applied during the run.
    pub merges: usize,
    /// Replica WAL recoveries performed during the run (volatile crashes).
    pub wal_recoveries: usize,
}

impl ChaosOutcome {
    pub fn passed(&self) -> bool {
        self.report.passed()
    }

    pub fn render(&self) -> String {
        format!(
            "{}ops/sec {:.1}, recovery p99 {}, steady p99 {}\n",
            self.report.render(&self.schedule),
            self.ops_per_sec,
            self.recovery_p99,
            self.steady_p99
        )
    }
}

/// Build the standard chaos cluster: the first three Table-1 regions,
/// three nodes each, `rs/*` REGION-survivable and `zs/*` ZONE-survivable
/// ranges homed in region 0.
pub fn build_chaos_cluster(cfg: &ChaosConfig) -> Cluster {
    let regions = RttMatrix::paper_table1_regions();
    let topo = Topology::build(
        &regions[..3],
        3,
        // 3x3 corner of Table 1: us-east1, us-west1, europe-west2.
        RttMatrix::from_upper_millis(3, &[&[63, 87], &[132]]),
    );
    let mut cluster = Cluster::new(
        topo,
        ClusterConfig {
            seed: cfg.seed,
            rpc_timeout: Some(cfg.rpc_timeout),
            strict_monitors: cfg.strict_monitors,
            pipelined_writes: cfg.pipelined_writes,
            parallel_commits: cfg.parallel_commits,
            tracing: cfg.tracing,
            lifecycle: LifecycleConfig {
                enabled: cfg.range_lifecycle,
                // The workload only has 8 distinct keys, so splits and
                // merges are forced by schedule faults rather than the
                // size trigger; a short cooldown lets a forced split be
                // merged back within the same run.
                cooldown: SimDuration::from_secs(5),
                ..LifecycleConfig::default()
            },
            ..ClusterConfig::default()
        },
    );
    if cfg.arm_injected_bug {
        arm_bug(&mut cluster);
    }
    if cfg.arm_premature_ack_bug {
        arm_ack_bug(&mut cluster);
    }
    if cfg.arm_split_tscache_bug {
        arm_split_bug(&mut cluster);
    }
    if cfg.arm_wal_skip_fsync_bug {
        arm_fsync_bug(&mut cluster);
    }
    let db_regions: Vec<RegionId> = (0..3).map(RegionId).collect();
    let home = RegionId(0);
    let rs = derive_zone_config(
        home,
        &db_regions,
        SurvivalGoal::Region,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    );
    cluster
        .create_range(Span::new(Key::from("rs/"), Key::from("rs0")), rs)
        .expect("allocate rs range");
    let zs = derive_zone_config(
        home,
        &db_regions,
        SurvivalGoal::Zone,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    );
    cluster
        .create_range(Span::new(Key::from("zs/"), Key::from("zs0")), zs)
        .expect("allocate zs range");
    // Cold ranges: ZONE-survivable (all three voters on region 0's nodes)
    // and never addressed by the workload, so after the initial lease
    // settles their leaders go quiet and quiesce. Crashing a region-0
    // node then tests failover on a range whose leader hasn't heartbeat
    // in a long time: followers must notice through the liveness check,
    // not a missed heartbeat.
    for i in 0..cfg.cold_ranges {
        let cold = derive_zone_config(
            home,
            &db_regions,
            SurvivalGoal::Zone,
            PlacementPolicy::Default,
            ClosedTsPolicy::Lag,
        );
        let start = format!("cold{i}/");
        let end = format!("cold{i}0");
        cluster
            .create_range(
                Span::new(Key::from(start.as_str()), Key::from(end.as_str())),
                cold,
            )
            .expect("allocate cold range");
    }
    cluster
}

#[cfg(feature = "injected-bug")]
fn arm_bug(cluster: &mut Cluster) {
    cluster.arm_stale_read_bug();
}

#[cfg(not(feature = "injected-bug"))]
fn arm_bug(_cluster: &mut Cluster) {
    panic!("arm_injected_bug requires building mr-chaos with --features injected-bug");
}

#[cfg(feature = "injected-bug")]
fn arm_ack_bug(cluster: &mut Cluster) {
    cluster.arm_premature_ack_bug();
}

#[cfg(not(feature = "injected-bug"))]
fn arm_ack_bug(_cluster: &mut Cluster) {
    panic!("arm_premature_ack_bug requires building mr-chaos with --features injected-bug");
}

#[cfg(feature = "injected-bug")]
fn arm_split_bug(cluster: &mut Cluster) {
    cluster.arm_split_tscache_bug();
}

#[cfg(not(feature = "injected-bug"))]
fn arm_split_bug(_cluster: &mut Cluster) {
    panic!("arm_split_tscache_bug requires building mr-chaos with --features injected-bug");
}

#[cfg(feature = "injected-bug")]
fn arm_fsync_bug(cluster: &mut Cluster) {
    cluster.arm_wal_skip_fsync_bug();
}

#[cfg(not(feature = "injected-bug"))]
fn arm_fsync_bug(_cluster: &mut Cluster) {
    panic!("arm_wal_skip_fsync_bug requires building mr-chaos with --features injected-bug");
}

/// One closed-loop register client, moved through its continuation chain.
struct Client {
    id: u32,
    gateway: NodeId,
    rng: SimRng,
    until: SimTime,
    think: SimDuration,
    keys_per_class: u64,
    recent_stale: bool,
    hist: History,
}

fn fmt_err(e: &KvError) -> String {
    format!("{e:?}")
}

fn parse_value(v: &Option<Value>) -> Option<u64> {
    v.as_ref()
        .and_then(|v| std::str::from_utf8(&v.0).ok())
        .and_then(|s| s.parse().ok())
}

/// Park the client until its next invocation.
fn schedule_next(c: &mut Cluster, mut cl: Client) {
    let jitter = SimDuration::from_millis(cl.rng.next_below(10));
    c.schedule(cl.think + jitter, Box::new(move |c| step(c, cl)));
}

/// Issue the client's next operation (or retire it past `until`).
fn step(c: &mut Cluster, mut cl: Client) {
    if c.now() >= cl.until {
        return;
    }
    if !c.topology().is_node_alive(cl.gateway) {
        // The gateway is crashed: a real client would fail to connect.
        // Idle until it comes back rather than spamming the history.
        let retry = SimDuration::from_millis(400 + cl.rng.next_below(200));
        c.schedule(retry, Box::new(move |c| step(c, cl)));
        return;
    }
    let class = if cl.rng.chance(0.5) {
        REGION_SURVIVABLE_PREFIX
    } else {
        ZONE_SURVIVABLE_PREFIX
    };
    let key = format!("{class}k{}", cl.rng.next_below(cl.keys_per_class));
    // Stale reads need history to read (closed-ts lag is 3s) — before the
    // 12s mark fall back to fresh reads.
    let warmed_up = c.now() >= SimTime(SimDuration::from_secs(12).nanos());
    match cl.rng.next_below(100) {
        0..=29 => write(c, cl, key),
        // Multi-range transactions are the only ones whose parallel
        // commit genuinely races the STAGING record against in-flight
        // writes (a single-range put precedes the record in the same
        // raft log, so the stage ack implies the put committed).
        30..=39 => multi_write(c, cl),
        40..=64 => fresh_read(c, cl, key),
        65..=84 if warmed_up => stale_read(c, cl, key),
        // Bounded reads only touch the REGION-survivable range, which has
        // a replica in every region (local negotiation everywhere).
        85..=99 if warmed_up => {
            let key = format!(
                "{REGION_SURVIVABLE_PREFIX}k{}",
                cl.rng.next_below(cl.keys_per_class)
            );
            bounded_read(c, cl, key)
        }
        _ => fresh_read(c, cl, key),
    }
}

fn write(c: &mut Cluster, cl: Client, key: String) {
    let hist = cl.hist.clone();
    let op = hist.invoke_write(c.now(), cl.id, &key);
    let h = c.txn_begin(cl.gateway);
    let value = Value::from(op.to_string().as_str());
    c.txn_put(
        h,
        Key::from(key.as_str()),
        Some(value),
        Box::new(move |c, res| match res {
            Ok(()) => c.txn_commit(
                h,
                Box::new(move |c, res| {
                    let now = c.now();
                    match res {
                        Ok(ts) => hist.ok(now, op, Some(op), Some(ts)),
                        // The commit RPC may have applied before the
                        // response was lost — outcome unknown.
                        Err(e) => hist.info(now, op, &fmt_err(&e)),
                    }
                    schedule_next(c, cl);
                }),
            ),
            Err(e) => c.txn_rollback(
                h,
                Box::new(move |c, _| {
                    let now = c.now();
                    hist.fail(now, op, &fmt_err(&e));
                    schedule_next(c, cl);
                }),
            ),
        }),
    );
}

/// A two-key transaction spanning both key classes — and therefore two
/// ranges, so the transaction record and the second write live in
/// different raft logs. The ZONE-survivable key comes first: the record
/// anchors on the fast intra-region-quorum range while the
/// REGION-survivable put crosses the WAN, which is the widest window
/// between a STAGING ack and the last in-flight write landing.
fn multi_write(c: &mut Cluster, mut cl: Client) {
    let k1 = format!(
        "{ZONE_SURVIVABLE_PREFIX}k{}",
        cl.rng.next_below(cl.keys_per_class)
    );
    let k2 = format!(
        "{REGION_SURVIVABLE_PREFIX}k{}",
        cl.rng.next_below(cl.keys_per_class)
    );
    let hist = cl.hist.clone();
    let now = c.now();
    let op1 = hist.invoke_write(now, cl.id, &k1);
    let op2 = hist.invoke_write(now, cl.id, &k2);
    let h = c.txn_begin(cl.gateway);
    let v1 = Value::from(op1.to_string().as_str());
    let v2 = Value::from(op2.to_string().as_str());
    c.txn_put(
        h,
        Key::from(k1.as_str()),
        Some(v1),
        Box::new(move |c, res| match res {
            Ok(()) => c.txn_put(
                h,
                Key::from(k2.as_str()),
                Some(v2),
                Box::new(move |c, res| match res {
                    Ok(()) => c.txn_commit(
                        h,
                        Box::new(move |c, res| {
                            let now = c.now();
                            match res {
                                Ok(ts) => {
                                    // Atomicity: both writes share the
                                    // commit verdict and timestamp.
                                    hist.ok(now, op1, Some(op1), Some(ts));
                                    hist.ok(now, op2, Some(op2), Some(ts));
                                }
                                Err(e) => {
                                    let msg = fmt_err(&e);
                                    hist.info(now, op1, &msg);
                                    hist.info(now, op2, &msg);
                                }
                            }
                            schedule_next(c, cl);
                        }),
                    ),
                    Err(e) => c.txn_rollback(
                        h,
                        Box::new(move |c, _| {
                            let now = c.now();
                            let msg = fmt_err(&e);
                            hist.fail(now, op1, &msg);
                            hist.fail(now, op2, &msg);
                            schedule_next(c, cl);
                        }),
                    ),
                }),
            ),
            Err(e) => c.txn_rollback(
                h,
                Box::new(move |c, _| {
                    let now = c.now();
                    let msg = fmt_err(&e);
                    hist.fail(now, op1, &msg);
                    hist.fail(now, op2, &msg);
                    schedule_next(c, cl);
                }),
            ),
        }),
    );
}

fn fresh_read(c: &mut Cluster, cl: Client, key: String) {
    let hist = cl.hist.clone();
    let op = hist.invoke(c.now(), cl.id, OpKind::FreshRead, &key, None, None);
    let h = c.txn_begin(cl.gateway);
    c.txn_get(
        h,
        Key::from(key.as_str()),
        Box::new(move |c, res| match res {
            Ok(v) => {
                let value = parse_value(&v);
                c.txn_commit(
                    h,
                    Box::new(move |c, res| {
                        let now = c.now();
                        match res {
                            Ok(ts) => hist.ok(now, op, value, Some(ts)),
                            // Read-only: nothing can have been written.
                            Err(e) => hist.fail(now, op, &fmt_err(&e)),
                        }
                        schedule_next(c, cl);
                    }),
                );
            }
            Err(e) => c.txn_rollback(
                h,
                Box::new(move |c, _| {
                    let now = c.now();
                    hist.fail(now, op, &fmt_err(&e));
                    schedule_next(c, cl);
                }),
            ),
        }),
    );
}

fn stale_read(c: &mut Cluster, mut cl: Client, key: String) {
    // Read 4–8s into the past: past the 3s closed-ts lag when healthy, and
    // ahead of a frontier frozen by a partition — exactly what the
    // follower-read gate must refuse to serve. With `recent_stale_reads`,
    // half the stale reads instead target 50–250ms ago — inside the
    // closed-ts lag, so the follower refuses and the read falls back to
    // the leaseholder, recording a near-now timestamp-cache entry that a
    // subsequent split is obliged to honor on both halves.
    let ago = if cl.recent_stale && cl.rng.chance(0.5) {
        SimDuration::from_millis(50 + cl.rng.next_below(200))
    } else {
        SimDuration::from_millis(4_000 + cl.rng.next_below(4_000))
    };
    let now_ts = c.hlc_now(cl.gateway);
    let read_ts = Timestamp::new(now_ts.wall.saturating_sub(ago.nanos()), 0);
    let hist = cl.hist.clone();
    let op = hist.invoke(c.now(), cl.id, OpKind::StaleRead, &key, None, Some(read_ts));
    c.read(
        cl.gateway,
        Key::from(key.as_str()),
        ReadOptions {
            staleness: Staleness::ExactAt(read_ts),
            fallback_to_leaseholder: true,
        },
        Box::new(move |c, res| {
            let now = c.now();
            match res {
                Ok(v) => hist.ok(now, op, parse_value(&v), None),
                Err(e) => hist.fail(now, op, &fmt_err(&e)),
            }
            schedule_next(c, cl);
        }),
    );
}

fn bounded_read(c: &mut Cluster, mut cl: Client, key: String) {
    let bound = SimDuration::from_secs(5 + cl.rng.next_below(5));
    let hist = cl.hist.clone();
    let op = hist.invoke(c.now(), cl.id, OpKind::BoundedRead, &key, None, None);
    c.read(
        cl.gateway,
        Key::from(key.as_str()),
        ReadOptions {
            staleness: Staleness::BoundedMaxStaleness(bound),
            // Never fall back: the point of bounded staleness is serving
            // locally even when the leaseholder is partitioned away.
            fallback_to_leaseholder: false,
        },
        Box::new(move |c, res| {
            let now = c.now();
            match res {
                Ok(v) => hist.ok(now, op, parse_value(&v), None),
                Err(e) => hist.fail(now, op, &fmt_err(&e)),
            }
            schedule_next(c, cl);
        }),
    );
}

/// Run one full nemesis experiment: cluster, schedule, workload, drain,
/// offline check.
pub fn run_chaos(
    cfg: &ChaosConfig,
    schedule: &FaultSchedule,
    checker_cfg: &CheckerConfig,
) -> ChaosOutcome {
    let mut c = build_chaos_cluster(cfg);
    // Let replication, leases, and closed timestamps stabilize.
    let start = SimTime(SimDuration::from_secs(3).nanos());
    c.run_until(start);

    // Fault steps and client ops both measure offsets from `start`.
    schedule.install(&mut c);
    let hist = History::new();
    let until = start + cfg.run_for;
    let mut rng = SimRng::seed_from_u64(cfg.seed ^ 0x636c69_656e7473); // "clients"
    let mut id = 0u32;
    for region in 0..3u32 {
        for i in 0..cfg.clients_per_region {
            let cl = Client {
                id,
                gateway: NodeId(region * 3 + (i % 3)),
                rng: rng.fork(),
                until,
                think: cfg.think,
                keys_per_class: cfg.keys_per_class,
                recent_stale: cfg.recent_stale_reads,
                hist: hist.clone(),
            };
            id += 1;
            // Stagger starts so clients don't phase-lock.
            let offset = SimDuration::from_millis(20 + 7 * id as u64);
            c.schedule(offset, Box::new(move |c| step(c, cl)));
        }
    }

    // Run the workload window, then drain every in-flight operation. The
    // schedule ends with a heal, so the drain converges quickly; the
    // generous deadline only bounds a genuine hang.
    let tail = until + (schedule.span().saturating_sub(cfg.run_for)) + SimDuration::from_secs(5);
    c.run_until(tail);
    c.run_until_quiescent(tail + SimDuration::from_secs(120));

    let ops = hist.ops();
    debug_assert!(
        ops.iter().all(|o| o.outcome != Phase::Invoke),
        "drained run must complete every op"
    );
    let mut report = check(&ops, schedule, checker_cfg);
    // Scripted schedules carry seed 0; the run seed is what reproduces.
    report.seed = cfg.seed;

    // Latency split: ops invoked during a disruption window vs outside.
    let windows: Vec<(SimTime, SimTime)> = schedule
        .disruption_windows()
        .into_iter()
        .map(|(a, b)| (start + a, start + b))
        .collect();
    let mut recovery = LatencyRecorder::new();
    let mut steady = LatencyRecorder::new();
    for op in ops.iter().filter(|o| o.ok()) {
        let lat = op.latency().unwrap();
        if windows
            .iter()
            .any(|(a, b)| op.invoke_at >= *a && op.invoke_at < *b)
        {
            recovery.record(lat);
        } else {
            steady.record(lat);
        }
    }

    // Forensics must be captured while the cluster is still alive: the
    // tracer, event log, tsdb, and range registry all die with it.
    let bundle = IncidentBundle::collect(&c, schedule, &hist, &report);
    let splits = c.events.count_kind("range_split");
    let merges = c.events.count_kind("range_merge");
    let wal_recoveries = c.events.count_kind("wal_recovered");

    let ops_ok = ops.iter().filter(|o| o.ok()).count();
    ChaosOutcome {
        schedule: schedule.clone(),
        history: hist,
        report,
        ops_ok,
        ops_failed: ops.iter().filter(|o| o.outcome == Phase::Fail).count(),
        ops_info: ops
            .iter()
            .filter(|o| matches!(o.outcome, Phase::Info | Phase::Invoke))
            .count(),
        ops_per_sec: ops_ok as f64 * 1e9 / cfg.run_for.nanos() as f64,
        recovery_p99: recovery.quantile(0.99),
        steady_p99: steady.quantile(0.99),
        bundle,
        splits,
        merges,
        wal_recoveries,
    }
}

//! Incident bundles: deterministic forensics captured at the moment a
//! chaos run fails its checker or an online invariant monitor.
//!
//! When [`run_chaos`](crate::nemesis::run_chaos) detects a violation it
//! assembles an [`IncidentBundle`] from the still-live cluster — the
//! offending operations plus the surrounding history window, the fault-
//! schedule step in effect, trace-span subtrees of transactions active
//! around the violation, the admin event log and metrics history around
//! the violation timestamp, and a per-range placement snapshot. The bundle
//! is a flat list of `(filename, JSON contents)` pairs built exclusively
//! from simulation state, so two same-seed runs produce byte-identical
//! bundles — golden-testable, and `write_to` materializes them as a
//! directory for a human (or CI log) to pick through.

use std::io;
use std::path::{Path, PathBuf};

use mr_kv::cluster::Cluster;
use mr_obs::export::json_escape;
use mr_obs::Resolution;
use mr_sim::{SimDuration, SimTime};

use crate::checker::CheckReport;
use crate::history::History;
use crate::schedule::FaultSchedule;

/// How much history/telemetry to keep on each side of the violation
/// timestamps.
const WINDOW_MARGIN: SimDuration = SimDuration::from_secs(5);

/// One assembled incident bundle: ordered `(filename, contents)` pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IncidentBundle {
    files: Vec<(String, String)>,
}

impl IncidentBundle {
    /// Capture forensics from a failed run. `None` when there is nothing
    /// to report (checker passed and no monitor violations).
    pub fn collect(
        cluster: &Cluster,
        schedule: &FaultSchedule,
        history: &History,
        report: &CheckReport,
    ) -> Option<IncidentBundle> {
        let monitor_violations = cluster.obs.monitors.violations();
        if report.passed() && monitor_violations.is_empty() {
            return None;
        }

        // The window spans every violation timestamp plus a margin.
        let stamps: Vec<SimTime> = report
            .violations
            .iter()
            .map(|v| v.at)
            .chain(monitor_violations.iter().map(|v| v.at))
            .collect();
        let lo = stamps.iter().min().copied().unwrap_or(SimTime::ZERO);
        let hi = stamps.iter().max().copied().unwrap_or(SimTime::ZERO);
        let from = SimTime(lo.0.saturating_sub(WINDOW_MARGIN.nanos()));
        let to = hi + WINDOW_MARGIN;

        let mut files = vec![
            (
                "violations.json".into(),
                violations_json(report, schedule, cluster),
            ),
            ("schedule.json".into(), schedule_json(schedule)),
            (
                "history_window.json".into(),
                history_json(history, report, from, to),
            ),
            ("spans.json".into(), spans_json(cluster, from, to)),
            ("events_window.json".into(), events_json(cluster, from, to)),
            (
                "metrics_window.json".into(),
                metrics_json(cluster, from, to),
            ),
            ("ranges.json".into(), ranges_json(cluster)),
        ];
        // The manifest goes first but is built last: it indexes the rest.
        let manifest = manifest_json(report, &monitor_violations, from, to, &files);
        files.insert(0, ("manifest.json".into(), manifest));
        Some(IncidentBundle { files })
    }

    /// The bundle's files in order, `manifest.json` first.
    pub fn files(&self) -> &[(String, String)] {
        &self.files
    }

    /// Contents of one file by name.
    pub fn file(&self, name: &str) -> Option<&str> {
        self.files
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.as_str())
    }

    /// Materialize the bundle as a directory (created if missing); returns
    /// the directory path.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        for (name, contents) in &self.files {
            std::fs::write(dir.join(name), contents)?;
        }
        Ok(dir.to_path_buf())
    }
}

fn manifest_json(
    report: &CheckReport,
    monitor_violations: &[mr_obs::monitor::Violation],
    from: SimTime,
    to: SimTime,
    files: &[(String, String)],
) -> String {
    let first = report
        .violations
        .first()
        .map(|v| format!("\"{}\"", json_escape(v.kind)))
        .or_else(|| {
            monitor_violations
                .first()
                .map(|v| format!("\"{}\"", json_escape(v.invariant)))
        })
        .unwrap_or_else(|| "null".into());
    let list = files
        .iter()
        .map(|(n, _)| format!("\"{n}\""))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\n  \"seed\": {},\n  \"schedule\": \"{}\",\n  \"checker_violations\": {},\n  \
         \"monitor_violations\": {},\n  \"first_violation\": {},\n  \"window_from_ns\": {},\n  \
         \"window_to_ns\": {},\n  \"files\": [{}]\n}}\n",
        report.seed,
        json_escape(&report.schedule_name),
        report.violations.len(),
        monitor_violations.len(),
        first,
        from.0,
        to.0,
        list,
    )
}

/// Checker violations (with the schedule step in effect) followed by
/// online monitor violations.
fn violations_json(report: &CheckReport, schedule: &FaultSchedule, cluster: &Cluster) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for v in &report.violations {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let (step_index, step_fault) = match schedule.step_before(v.at) {
            Some((i, s)) => (
                i.to_string(),
                format!("\"{}\"", json_escape(&s.fault.to_string())),
            ),
            None => ("null".into(), "null".into()),
        };
        let ops = v
            .ops
            .iter()
            .map(|o| o.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "  {{\"source\": \"checker\", \"kind\": \"{}\", \"at_ns\": {}, \"ops\": [{}], \
             \"step\": {}, \"fault\": {}, \"detail\": \"{}\"}}",
            json_escape(v.kind),
            v.at.0,
            ops,
            step_index,
            step_fault,
            json_escape(&v.detail),
        ));
    }
    for v in cluster.obs.monitors.violations() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "  {{\"source\": \"monitor\", \"kind\": \"{}\", \"at_ns\": {}, \"detail\": \"{}\"}}",
            json_escape(v.invariant),
            v.at.0,
            json_escape(&v.detail),
        ));
    }
    out.push_str("\n]\n");
    out
}

fn schedule_json(schedule: &FaultSchedule) -> String {
    let mut out = format!(
        "{{\n  \"name\": \"{}\",\n  \"steps\": [\n",
        json_escape(&schedule.name)
    );
    for (i, s) in schedule.steps.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{\"step\": {}, \"at_offset_ns\": {}, \"fault\": \"{}\"}}",
            i,
            s.at.nanos(),
            json_escape(&s.fault.to_string()),
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Ops implicated by a violation (always included, in full) plus every op
/// invoked inside the window.
fn history_json(history: &History, report: &CheckReport, from: SimTime, to: SimTime) -> String {
    let implicated: std::collections::BTreeSet<u64> = report
        .violations
        .iter()
        .flat_map(|v| v.ops.iter().copied())
        .collect();
    let mut out = String::from("[\n");
    let mut first = true;
    for op in history.ops() {
        let in_window = op.invoke_at >= from && op.invoke_at <= to;
        let flagged = implicated.contains(&op.id);
        if !in_window && !flagged {
            continue;
        }
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let complete = op
            .complete_at
            .map(|t| t.0.to_string())
            .unwrap_or_else(|| "null".into());
        let value = op
            .value
            .map(|v| v.to_string())
            .unwrap_or_else(|| "null".into());
        let ts = op
            .ts
            .map(|t| format!("[{}, {}]", t.wall, t.logical))
            .unwrap_or_else(|| "null".into());
        let error = op
            .error
            .as_ref()
            .map(|e| format!("\"{}\"", json_escape(e)))
            .unwrap_or_else(|| "null".into());
        out.push_str(&format!(
            "  {{\"op\": {}, \"implicated\": {}, \"client\": {}, \"kind\": \"{}\", \
             \"key\": \"{}\", \"outcome\": \"{}\", \"invoke_ns\": {}, \"complete_ns\": {}, \
             \"value\": {}, \"ts\": {}, \"error\": {}}}",
            op.id,
            flagged,
            op.client,
            op.kind.label(),
            json_escape(&op.key),
            op.outcome.label(),
            op.invoke_at.0,
            complete,
            value,
            ts,
            error,
        ));
    }
    out.push_str("\n]\n");
    out
}

/// Span subtrees of transactions alive inside the window: every retained
/// root span whose lifetime overlaps `[from, to]`, flattened with its
/// descendants in creation order.
fn spans_json(cluster: &Cluster, from: SimTime, to: SimTime) -> String {
    let tr = &cluster.obs.tracer;
    let mut out = String::from("[\n");
    let mut first = true;
    for root in tr.roots() {
        let Some(r) = tr.try_get(root) else { continue };
        // An unfinished span is still alive: it overlaps any window that
        // starts before `to`.
        let end = r.end.unwrap_or(to);
        if end < from || r.start > to {
            continue;
        }
        let mut ids = vec![root];
        ids.extend(tr.descendants(root));
        for id in ids {
            let Some(s) = tr.try_get(id) else { continue };
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let parent = s
                .parent
                .map(|p| p.raw().to_string())
                .unwrap_or_else(|| "null".into());
            let end = s
                .end
                .map(|t| t.0.to_string())
                .unwrap_or_else(|| "null".into());
            let attrs = s
                .attrs
                .iter()
                .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
                .collect::<Vec<_>>()
                .join(", ");
            let events = s
                .events
                .iter()
                .map(|(at, m)| format!("[{}, \"{}\"]", at.0, json_escape(m)))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "  {{\"id\": {}, \"root\": {}, \"parent\": {}, \"name\": \"{}\", \
                 \"start_ns\": {}, \"end_ns\": {}, \"attrs\": {{{}}}, \"events\": [{}]}}",
                s.id.raw(),
                root.raw(),
                parent,
                json_escape(&s.name),
                s.start.0,
                end,
                attrs,
                events,
            ));
        }
    }
    out.push_str("\n]\n");
    out
}

fn events_json(cluster: &Cluster, from: SimTime, to: SimTime) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for e in cluster.events.events() {
        if e.at < from || e.at > to {
            continue;
        }
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let range = e
            .kind
            .range()
            .map(|r| r.0.to_string())
            .unwrap_or_else(|| "null".into());
        out.push_str(&format!(
            "  {{\"seq\": {}, \"at_ns\": {}, \"kind\": \"{}\", \"range\": {}, \"detail\": \"{}\"}}",
            e.seq,
            e.at.0,
            e.kind.label(),
            range,
            json_escape(&e.kind.detail()),
        ));
    }
    out.push_str("\n]\n");
    out
}

/// Every fine-resolution sample inside the window, per metric in store
/// order.
fn metrics_json(cluster: &Cluster, from: SimTime, to: SimTime) -> String {
    let tsdb = &cluster.obs.tsdb;
    let mut out = String::from("{\n");
    let mut first = true;
    for metric in tsdb.metrics() {
        let samples = tsdb.window(&metric, Resolution::Fine, from, to);
        if samples.is_empty() {
            continue;
        }
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let list = samples
            .iter()
            .map(|(at, v)| format!("[{}, {}]", at.0, v))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("  \"{}\": [{}]", json_escape(&metric), list));
    }
    out.push_str("\n}\n");
    out
}

/// Placement snapshot of every range at capture time.
fn ranges_json(cluster: &Cluster) -> String {
    let topo = cluster.topology();
    let mut out = String::from("[\n");
    let mut first = true;
    for desc in cluster.registry().iter() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let mut voters: Vec<u32> = desc.voters().map(|n| n.0).collect();
        voters.sort_unstable();
        let mut non_voters: Vec<u32> = desc.non_voters().map(|n| n.0).collect();
        non_voters.sort_unstable();
        let fmt = |ns: &[u32]| {
            ns.iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        out.push_str(&format!(
            "  {{\"range\": {}, \"span\": \"{}\", \"leaseholder\": {}, \
             \"leaseholder_region\": \"{}\", \"voters\": [{}], \"non_voters\": [{}]}}",
            desc.id.0,
            json_escape(&format!("{:?}", desc.span)),
            desc.leaseholder.0,
            json_escape(topo.region_name(topo.region_of(desc.leaseholder))),
            fmt(&voters),
            fmt(&non_voters),
        ));
    }
    out.push_str("\n]\n");
    out
}

//! Offline transactional history checker.
//!
//! Validates a register history (unique write values == writer op ids) for
//! serializability with per-key real-time order, plus the paper's staleness
//! invariants. The checks, in order:
//!
//! * **version order** — committed writes to a key must carry distinct
//!   commit timestamps (MVCC forbids two versions of a key at one ts);
//! * **read observation** — every observed value must have been written to
//!   that key by a committed or ambiguous write (no garbage reads);
//! * **fresh-read recency** — a linearizable read must observe a version at
//!   least as new as every same-key write that *completed before the read
//!   was invoked* (per-key real time; same-key ops serialize through one
//!   leaseholder, so commit-ts order must respect it);
//! * **per-key real-time sweep** — commit timestamps of same-key committed
//!   writes must be monotone w.r.t. completion→invocation order;
//! * **stale-read consistency** — an exact-staleness read at ts `t` must
//!   observe the latest committed write with commit ts `<= t` (the
//!   follower-read gate guarantees the closed frontier covers `t`); the
//!   intentionally injected follower-read bug violates exactly this;
//! * **serialization graph** — cycle detection over ww (per-key version
//!   order), wr (writer → observer), rw (observer → next version), and rts
//!   (latest version at read ts → stale reader) edges;
//! * **bounded-read locality** — bounded-staleness reads are served by the
//!   nearest replica without blocking on a (possibly partitioned)
//!   leaseholder, so any that complete must do so within a local-latency
//!   budget;
//! * **availability expectations** — scripted scenarios assert that a key
//!   class stayed writable (REGION survival goal under a region failure) or
//!   correctly lost availability (ZONE survival goal) during a window.
//!
//! Ambiguous writes (`info`) may or may not have committed; reads observing
//! their values are excluded from version-order judgements rather than
//! flagged, so the checker never reports a false positive. Every violation
//! names the schedule seed, the schedule step active when the offending op
//! ran, and the op ids involved.

use std::collections::{BTreeMap, HashMap};

use mr_clock::Timestamp;
use mr_sim::{SimDuration, SimTime};

use crate::history::{OpId, OpKind, OpRecord, Phase};
use crate::schedule::FaultSchedule;

/// What a scripted scenario expects of a key class during a window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expect {
    /// At least one write invoked in the window must succeed.
    Available,
    /// No write invoked in the window may complete successfully before the
    /// window closes (retries that straddle a heal are allowed to succeed
    /// afterwards).
    Unavailable,
}

/// An availability expectation over `[from, until)` for keys with `prefix`.
#[derive(Clone, Debug)]
pub struct AvailabilityExpectation {
    pub prefix: String,
    pub from: SimTime,
    pub until: SimTime,
    pub expect: Expect,
}

/// Checker tuning.
#[derive(Clone, Debug)]
pub struct CheckerConfig {
    /// Budget for a completed bounded-staleness read. Serving from the
    /// nearest replica is usually an intra-region hop, but when that
    /// replica's node is down the nearest *surviving* replica can be an
    /// inter-region round trip away (~2 × 132ms worst case in the paper's
    /// topology). Anything near the leaseholder-retry timescale (the 1s rpc
    /// timeout) means the read blocked on a leaseholder.
    pub bounded_read_max: Option<SimDuration>,
    pub expectations: Vec<AvailabilityExpectation>,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig {
            bounded_read_max: Some(SimDuration::from_millis(400)),
            expectations: Vec::new(),
        }
    }
}

/// One invariant violation, naming everything needed to replay it.
#[derive(Clone, Debug)]
pub struct Violation {
    pub kind: &'static str,
    /// Ids of the offending ops.
    pub ops: Vec<OpId>,
    /// When the anomaly happened (the offending op's invocation).
    pub at: SimTime,
    pub detail: String,
}

/// The checker's verdict over one run.
#[derive(Clone, Debug)]
pub struct CheckReport {
    pub seed: u64,
    pub schedule_name: String,
    pub ops_total: usize,
    pub ops_ok: usize,
    pub violations: Vec<Violation>,
}

impl CheckReport {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable summary; violations name seed, schedule step, and ops.
    pub fn render(&self, schedule: &FaultSchedule) -> String {
        let mut out = format!(
            "history check: schedule {} seed {} ({} ops, {} ok): {}\n",
            self.schedule_name,
            self.seed,
            self.ops_total,
            self.ops_ok,
            if self.passed() { "PASS" } else { "FAIL" }
        );
        for v in &self.violations {
            let step = match schedule.step_before(v.at) {
                Some((i, s)) => format!("step {i} ({})", s.fault),
                None => "no fault yet".to_string(),
            };
            out.push_str(&format!(
                "  violation [{}] seed {} {} at {}: {} (ops {:?})\n",
                v.kind, self.seed, step, v.at, v.detail, v.ops
            ));
        }
        out
    }
}

/// A committed version of a key.
#[derive(Clone, Copy, Debug)]
struct Version {
    writer: OpId,
    ts: Timestamp,
}

/// Check `ops` against the serializability + staleness invariants.
pub fn check(ops: &[OpRecord], schedule: &FaultSchedule, config: &CheckerConfig) -> CheckReport {
    let mut violations = Vec::new();

    // Index writes by the (unique) value they wrote.
    let mut writer_of: HashMap<u64, &OpRecord> = HashMap::new();
    for op in ops.iter().filter(|o| o.kind == OpKind::Write) {
        if let Some(v) = op.value {
            writer_of.insert(v, op);
        }
    }

    // Committed versions per key, sorted by commit ts.
    let mut versions: BTreeMap<&str, Vec<Version>> = BTreeMap::new();
    for op in ops {
        if op.kind == OpKind::Write && op.ok() {
            if let (Some(v), Some(ts)) = (op.value, op.ts) {
                versions
                    .entry(&op.key)
                    .or_default()
                    .push(Version { writer: v, ts });
            }
        }
    }
    for vs in versions.values_mut() {
        vs.sort_by_key(|v| (v.ts, v.writer));
    }

    // Version order: distinct commit timestamps per key.
    for (key, vs) in &versions {
        for w in vs.windows(2) {
            if w[0].ts == w[1].ts {
                violations.push(Violation {
                    kind: "duplicate-version-ts",
                    ops: vec![w[0].writer, w[1].writer],
                    at: SimTime::ZERO,
                    detail: format!(
                        "writes {} and {} to {key} both committed at {}",
                        w[0].writer, w[1].writer, w[0].ts
                    ),
                });
            }
        }
    }

    // Read observations.
    for op in ops.iter().filter(|o| o.kind.is_read() && o.ok()) {
        let observed = match op.value {
            Some(v) => match writer_of.get(&v) {
                Some(w) if w.key == op.key => Some(*w),
                Some(w) => {
                    violations.push(Violation {
                        kind: "wrong-key-read",
                        ops: vec![op.id, w.id],
                        at: op.invoke_at,
                        detail: format!(
                            "{} {} observed value {v}, which write {} put at key {}",
                            op.kind.label(),
                            op.key,
                            w.id,
                            w.key
                        ),
                    });
                    continue;
                }
                None => {
                    violations.push(Violation {
                        kind: "garbage-read",
                        ops: vec![op.id],
                        at: op.invoke_at,
                        detail: format!(
                            "{} {} observed value {v}, which no write produced",
                            op.kind.label(),
                            op.key
                        ),
                    });
                    continue;
                }
            },
            None => None,
        };
        // Reads of ambiguous writes can't be placed in the version order.
        let observed_ambiguous =
            observed.is_some_and(|w| w.outcome == Phase::Info || w.outcome == Phase::Invoke);
        if observed_ambiguous {
            continue;
        }
        let observed_ts = observed.and_then(|w| w.ts);
        let empty = Vec::new();
        let vs = versions.get(op.key.as_str()).unwrap_or(&empty);

        match op.kind {
            OpKind::FreshRead => {
                // Must observe a version >= every same-key write that
                // completed before this read was invoked.
                for w in ops.iter().filter(|w| {
                    w.kind == OpKind::Write
                        && w.ok()
                        && w.key == op.key
                        && w.complete_at.is_some_and(|c| c < op.invoke_at)
                }) {
                    let wts = w.ts.expect("ok write has a commit ts");
                    if observed_ts.is_none() || observed_ts.unwrap() < wts {
                        violations.push(Violation {
                            kind: "stale-fresh-read",
                            ops: vec![op.id, w.id],
                            at: op.invoke_at,
                            detail: format!(
                                "fresh read of {} observed {} but write {} (value {}, ts {}) \
                                 completed at {} before the read was invoked at {}",
                                op.key,
                                match observed {
                                    Some(o) => format!("value {} (ts {})", o.id, o.ts.unwrap()),
                                    None => "nothing".to_string(),
                                },
                                w.id,
                                w.value.unwrap_or(0),
                                wts,
                                w.complete_at.unwrap(),
                                op.invoke_at
                            ),
                        });
                        break;
                    }
                }
            }
            OpKind::StaleRead => {
                // Must observe the latest committed version at the read ts.
                if let Some(read_ts) = op.read_ts {
                    let latest = vs.iter().rev().find(|v| v.ts <= read_ts);
                    let expected = latest.map(|v| v.writer);
                    let got = observed.map(|w| w.id);
                    if expected != got {
                        violations.push(Violation {
                            kind: "stale-read-skew",
                            ops: got.into_iter().chain(expected).chain(Some(op.id)).collect(),
                            at: op.invoke_at,
                            detail: format!(
                                "stale read of {} at ts {} observed {} but the latest committed \
                                 version at that ts is {}",
                                op.key,
                                read_ts,
                                match observed {
                                    Some(o) => format!("write {} (ts {})", o.id, o.ts.unwrap()),
                                    None => "nothing".to_string(),
                                },
                                match latest {
                                    Some(v) => format!("write {} (ts {})", v.writer, v.ts),
                                    None => "nothing".to_string(),
                                }
                            ),
                        });
                    }
                }
            }
            OpKind::BoundedRead | OpKind::Write => {}
        }
    }

    // Per-key real-time sweep: same-key committed *writes* serialize through
    // one leaseholder and each new MVCC version lands above the existing
    // ones, so write commit-ts order must respect completion -> invocation.
    // Fresh reads are excluded: a read-only commit ts comes from the (skewed)
    // gateway clock and is only guaranteed >= the observed version's ts.
    for key in versions.keys().copied().collect::<Vec<_>>() {
        let mut timed: Vec<&OpRecord> = ops
            .iter()
            .filter(|o| o.key == key && o.ok() && o.ts.is_some() && o.kind == OpKind::Write)
            .collect();
        timed.sort_by_key(|o| (o.invoke_at, o.id));
        // max commit ts among ops completed before each invocation.
        let mut done: Vec<(SimTime, Timestamp, OpId)> = timed
            .iter()
            .map(|o| (o.complete_at.unwrap(), o.ts.unwrap(), o.id))
            .collect();
        done.sort();
        let mut hi: Option<(Timestamp, OpId)> = None;
        let mut di = 0;
        for op in &timed {
            while di < done.len() && done[di].0 < op.invoke_at {
                if hi.is_none_or(|(t, _)| done[di].1 > t) {
                    hi = Some((done[di].1, done[di].2));
                }
                di += 1;
            }
            if let Some((hts, hop)) = hi {
                if op.ts.unwrap() < hts && op.id != hop {
                    violations.push(Violation {
                        kind: "real-time-order",
                        ops: vec![hop, op.id],
                        at: op.invoke_at,
                        detail: format!(
                            "op {} on {key} committed at ts {} although op {} had already \
                             completed with the later ts {}",
                            op.id,
                            op.ts.unwrap(),
                            hop,
                            hts
                        ),
                    });
                }
            }
        }
    }

    // Serialization graph: ww + wr + rw + rts edges, then cycle detection.
    let mut edges: Vec<(OpId, OpId, &'static str)> = Vec::new();
    for vs in versions.values() {
        for w in vs.windows(2) {
            edges.push((w[0].writer, w[1].writer, "ww"));
        }
    }
    for op in ops.iter().filter(|o| o.kind.is_read() && o.ok()) {
        let Some(vs) = versions.get(op.key.as_str()) else {
            continue;
        };
        let observed = op
            .value
            .and_then(|v| vs.iter().position(|ver| ver.writer == v));
        if let Some(i) = observed {
            edges.push((vs[i].writer, op.id, "wr"));
            if let Some(next) = vs.get(i + 1) {
                edges.push((op.id, next.writer, "rw"));
            }
        }
        if op.kind == OpKind::StaleRead {
            if let Some(read_ts) = op.read_ts {
                if let Some(latest) = vs.iter().rev().find(|v| v.ts <= read_ts) {
                    edges.push((latest.writer, op.id, "rts"));
                }
            }
        }
    }
    if let Some(cycle) = find_cycle(&edges) {
        let at = cycle
            .iter()
            .filter_map(|id| ops.get(*id as usize - 1))
            .map(|o| o.invoke_at)
            .max()
            .unwrap_or(SimTime::ZERO);
        violations.push(Violation {
            kind: "serialization-cycle",
            ops: cycle.clone(),
            at,
            detail: format!("dependency cycle through ops {cycle:?}"),
        });
    }

    // Bounded-read locality.
    if let Some(budget) = config.bounded_read_max {
        for op in ops
            .iter()
            .filter(|o| o.kind == OpKind::BoundedRead && o.ok())
        {
            let lat = op.latency().unwrap();
            if lat > budget {
                violations.push(Violation {
                    kind: "bounded-read-blocked",
                    ops: vec![op.id],
                    at: op.invoke_at,
                    detail: format!(
                        "bounded-staleness read of {} took {lat} (budget {budget}); it must be \
                         served by the nearest replica, never block on a leaseholder",
                        op.key
                    ),
                });
            }
        }
    }

    // Availability expectations.
    for exp in &config.expectations {
        let in_window: Vec<&OpRecord> = ops
            .iter()
            .filter(|o| {
                o.kind == OpKind::Write
                    && o.key.starts_with(&exp.prefix)
                    && o.invoke_at >= exp.from
                    && o.invoke_at < exp.until
            })
            .collect();
        let ok_write = in_window.iter().find(|o| o.ok());
        match exp.expect {
            Expect::Available => {
                if ok_write.is_none() {
                    violations.push(Violation {
                        kind: "availability-lost",
                        ops: in_window.iter().map(|o| o.id).collect(),
                        at: exp.from,
                        detail: format!(
                            "expected writes to {}* to stay available in [{}, {}) but none of \
                             the {} attempts succeeded",
                            exp.prefix,
                            exp.from,
                            exp.until,
                            in_window.len()
                        ),
                    });
                }
            }
            Expect::Unavailable => {
                // Only a success *completing inside the window* proves the
                // class was served during it: an attempt invoked mid-outage
                // keeps retrying across the heal and may legitimately
                // succeed once the fault is gone.
                let served = in_window
                    .iter()
                    .find(|o| o.ok() && o.complete_at.is_some_and(|t| t < exp.until));
                if let Some(w) = served {
                    violations.push(Violation {
                        kind: "unexpected-availability",
                        ops: vec![w.id],
                        at: w.invoke_at,
                        detail: format!(
                            "expected writes to {}* to be unavailable in [{}, {}) but op {} \
                             succeeded",
                            exp.prefix, exp.from, exp.until, w.id
                        ),
                    });
                }
            }
        }
    }

    violations.sort_by_key(|v| (v.at, v.ops.first().copied().unwrap_or(0)));
    CheckReport {
        seed: schedule.seed,
        schedule_name: schedule.name.clone(),
        ops_total: ops.len(),
        ops_ok: ops.iter().filter(|o| o.ok()).count(),
        violations,
    }
}

/// Iterative DFS cycle detection; returns one cycle's op ids if any.
fn find_cycle(edges: &[(OpId, OpId, &'static str)]) -> Option<Vec<OpId>> {
    let mut adj: BTreeMap<OpId, Vec<OpId>> = BTreeMap::new();
    for (a, b, _) in edges {
        adj.entry(*a).or_default().push(*b);
        adj.entry(*b).or_default();
    }
    // 0 = white, 1 = on stack, 2 = done.
    let mut color: HashMap<OpId, u8> = HashMap::new();
    let nodes: Vec<OpId> = adj.keys().copied().collect();
    for &start in &nodes {
        if color.get(&start).copied().unwrap_or(0) != 0 {
            continue;
        }
        // Stack of (node, next child index); `path` mirrors the grey chain.
        let mut stack: Vec<(OpId, usize)> = vec![(start, 0)];
        let mut path: Vec<OpId> = vec![start];
        color.insert(start, 1);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let children = &adj[&node];
            if *next < children.len() {
                let child = children[*next];
                *next += 1;
                match color.get(&child).copied().unwrap_or(0) {
                    0 => {
                        color.insert(child, 1);
                        stack.push((child, 0));
                        path.push(child);
                    }
                    1 => {
                        let pos = path.iter().position(|&n| n == child).unwrap();
                        return Some(path[pos..].to_vec());
                    }
                    _ => {}
                }
            } else {
                color.insert(node, 2);
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;

    fn sched() -> FaultSchedule {
        FaultSchedule::scripted("unit", Vec::new())
    }

    fn ts(wall: u64) -> Timestamp {
        Timestamp::new(wall, 0)
    }

    #[test]
    fn clean_history_passes() {
        let h = History::new();
        let w1 = h.invoke(SimTime(10), 0, OpKind::Write, "k", Some(1), None);
        h.ok(SimTime(20), w1, Some(1), Some(ts(15)));
        let w2 = h.invoke(SimTime(30), 0, OpKind::Write, "k", Some(2), None);
        h.ok(SimTime(40), w2, Some(2), Some(ts(35)));
        let r = h.invoke(SimTime(50), 1, OpKind::FreshRead, "k", None, None);
        h.ok(SimTime(60), r, Some(2), Some(ts(55)));
        let s = h.invoke(SimTime(70), 1, OpKind::StaleRead, "k", None, Some(ts(20)));
        h.ok(SimTime(75), s, Some(1), None);
        let report = check(&h.ops(), &sched(), &CheckerConfig::default());
        assert!(report.passed(), "{}", report.render(&sched()));
        assert_eq!(report.ops_ok, 4);
    }

    #[test]
    fn fresh_read_missing_completed_write_is_flagged() {
        let h = History::new();
        let w1 = h.invoke(SimTime(10), 0, OpKind::Write, "k", Some(1), None);
        h.ok(SimTime(20), w1, Some(1), Some(ts(15)));
        let w2 = h.invoke(SimTime(30), 0, OpKind::Write, "k", Some(2), None);
        h.ok(SimTime(40), w2, Some(2), Some(ts(35)));
        // Invoked after w2 completed, but observes w1.
        let r = h.invoke(SimTime(50), 1, OpKind::FreshRead, "k", None, None);
        h.ok(SimTime(60), r, Some(1), Some(ts(55)));
        let report = check(&h.ops(), &sched(), &CheckerConfig::default());
        assert!(!report.passed());
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == "stale-fresh-read" && v.ops.contains(&r)));
    }

    #[test]
    fn stale_read_skew_is_flagged_with_cycle() {
        let h = History::new();
        let w1 = h.invoke(SimTime(10), 0, OpKind::Write, "k", Some(1), None);
        h.ok(SimTime(20), w1, Some(1), Some(ts(15)));
        let w2 = h.invoke(SimTime(30), 0, OpKind::Write, "k", Some(2), None);
        h.ok(SimTime(40), w2, Some(2), Some(ts(35)));
        // Stale read at ts 50 must see w2 (ts 35); seeing w1 is the
        // injected follower-read bug's signature.
        let s = h.invoke(SimTime(60), 1, OpKind::StaleRead, "k", None, Some(ts(50)));
        h.ok(SimTime(65), s, Some(1), None);
        let report = check(&h.ops(), &sched(), &CheckerConfig::default());
        assert!(!report.passed());
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == "stale-read-skew"));
        // rw (s -> w2) + rts (w2 -> s) closes a cycle.
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == "serialization-cycle"));
    }

    #[test]
    fn ambiguous_writes_do_not_false_positive() {
        let h = History::new();
        let w1 = h.invoke(SimTime(10), 0, OpKind::Write, "k", Some(1), None);
        h.info(SimTime(20), w1, "commit rpc timed out");
        // Read observes the ambiguous write's value: legal (it may have
        // committed), and must not be judged against the version order.
        let r = h.invoke(SimTime(30), 1, OpKind::FreshRead, "k", None, None);
        h.ok(SimTime(40), r, Some(1), Some(ts(35)));
        let report = check(&h.ops(), &sched(), &CheckerConfig::default());
        assert!(report.passed(), "{}", report.render(&sched()));
    }

    #[test]
    fn garbage_and_wrong_key_reads_are_flagged() {
        let h = History::new();
        let w = h.invoke(SimTime(10), 0, OpKind::Write, "a", Some(1), None);
        h.ok(SimTime(20), w, Some(1), Some(ts(15)));
        let r1 = h.invoke(SimTime(30), 1, OpKind::FreshRead, "b", None, None);
        h.ok(SimTime(40), r1, Some(1), Some(ts(35)));
        let r2 = h.invoke(SimTime(50), 1, OpKind::FreshRead, "a", None, None);
        h.ok(SimTime(60), r2, Some(99), Some(ts(55)));
        let report = check(&h.ops(), &sched(), &CheckerConfig::default());
        let kinds: Vec<&str> = report.violations.iter().map(|v| v.kind).collect();
        assert!(kinds.contains(&"wrong-key-read"));
        assert!(kinds.contains(&"garbage-read"));
    }

    #[test]
    fn real_time_order_violation_is_flagged() {
        let h = History::new();
        let w1 = h.invoke(SimTime(10), 0, OpKind::Write, "k", Some(1), None);
        h.ok(SimTime(20), w1, Some(1), Some(ts(100)));
        // Invoked after w1 completed yet committed at an earlier ts.
        let w2 = h.invoke(SimTime(30), 0, OpKind::Write, "k", Some(2), None);
        h.ok(SimTime(40), w2, Some(2), Some(ts(90)));
        let report = check(&h.ops(), &sched(), &CheckerConfig::default());
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == "real-time-order" && v.ops == vec![w1, w2]));
    }

    #[test]
    fn bounded_read_budget_is_enforced() {
        let h = History::new();
        let b = h.invoke(SimTime(0), 0, OpKind::BoundedRead, "k", None, None);
        h.ok(
            SimTime(SimDuration::from_millis(900).nanos()),
            b,
            None,
            None,
        );
        let report = check(&h.ops(), &sched(), &CheckerConfig::default());
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == "bounded-read-blocked"));
    }

    #[test]
    fn availability_expectations() {
        let h = History::new();
        let w = h.invoke(SimTime(100), 0, OpKind::Write, "zs/k", Some(1), None);
        h.ok(SimTime(120), w, Some(1), Some(ts(110)));
        let cfg = CheckerConfig {
            expectations: vec![
                AvailabilityExpectation {
                    prefix: "rs/".into(),
                    from: SimTime(0),
                    until: SimTime(1000),
                    expect: Expect::Available,
                },
                AvailabilityExpectation {
                    prefix: "zs/".into(),
                    from: SimTime(0),
                    until: SimTime(1000),
                    expect: Expect::Unavailable,
                },
            ],
            ..CheckerConfig::default()
        };
        let report = check(&h.ops(), &sched(), &cfg);
        let kinds: Vec<&str> = report.violations.iter().map(|v| v.kind).collect();
        assert!(kinds.contains(&"availability-lost"));
        assert!(kinds.contains(&"unexpected-availability"));
    }

    #[test]
    fn find_cycle_detects_and_clears() {
        assert!(find_cycle(&[(1, 2, "ww"), (2, 3, "ww")]).is_none());
        let cycle = find_cycle(&[(1, 2, "ww"), (2, 3, "wr"), (3, 1, "rw")]).unwrap();
        assert_eq!(cycle.len(), 3);
    }
}

//! Seeded fault schedules.
//!
//! A [`FaultSchedule`] is a deterministic sequence of timed
//! [`FaultKind`] injections — either scripted by hand or derived entirely
//! from a seed via [`FaultSchedule::random`]. Random schedules are built as
//! *disrupt → hold → heal* blocks with at most one major disruption active
//! at a time, and always end with a `HealAll`, so a quorum-respecting
//! schedule never takes down a majority of any range's voters. Installing a
//! schedule turns each step into a first-class timed event on the
//! simulation calendar; the step index travels with the injection so
//! checker violations can name the exact fault that preceded them.

use std::fmt;

use mr_kv::cluster::Cluster;
use mr_kv::FaultKind;
use mr_proto::Key;
use mr_sim::{NodeId, RegionId, SimDuration, SimRng, SimTime, ZoneId};

/// One timed step of a schedule.
#[derive(Clone, Debug)]
pub struct FaultStep {
    /// Offset from schedule installation.
    pub at: SimDuration,
    pub fault: FaultKind,
}

/// A named, seeded sequence of timed fault injections.
#[derive(Clone, Debug)]
pub struct FaultSchedule {
    pub name: String,
    /// The seed the schedule was derived from (0 for scripted schedules).
    pub seed: u64,
    pub steps: Vec<FaultStep>,
}

/// Bounds for random schedule generation.
#[derive(Clone, Debug)]
pub struct ScheduleBounds {
    /// Regions in the target cluster.
    pub regions: u32,
    /// Nodes (== zones) per region.
    pub nodes_per_region: u32,
    /// Number of disrupt→heal blocks.
    pub blocks: u32,
    /// Offset of the first disruption.
    pub first_at: SimDuration,
    /// How long each disruption is held before its heal.
    pub hold: SimDuration,
    /// Quiet gap between a heal and the next disruption.
    pub gap: SimDuration,
    /// Maximum clock skew injected (absolute value, nanoseconds). Keep this
    /// at or below half the configured `max_clock_offset` for schedules
    /// that must pass the strict invariant monitors.
    pub max_skew_nanos: i64,
    /// Allow whole-region crashes (kills ZONE-survivable ranges homed
    /// there; REGION-survivable ranges must ride through).
    pub allow_region_crash: bool,
    /// Append a dedicated coordinator-crash block: crash one random
    /// gateway node (killing every transaction it coordinates — including
    /// parallel commits caught between STAGING and the explicit commit,
    /// whose intents only a contender-driven status recovery can release)
    /// and restart it one hold later.
    pub coordinator_crash: bool,
    /// Append a dedicated quiesced-leader-crash block: crash one random
    /// region-0 node — where the cold ranges' quiesced leaders live — and
    /// restart it one hold later. Pair with `ChaosConfig::cold_ranges` so
    /// there are quiesced leaders to kill; their followers must detect the
    /// dead leader via the liveness check, since a quiesced range sends no
    /// heartbeats to miss.
    pub quiesced_leader_crash: bool,
    /// Append three range-lifecycle blocks racing splits and merges against
    /// the workload *while* a disruption is active: a split mid-partition, a
    /// merge mid-leaseholder-crash, and a split mid-clock-skew. The
    /// lifecycle faults target the workload keyspace (`rs/`, `zs/`) and are
    /// no-ops when the tiling doesn't allow them (e.g. the merge before any
    /// split applied), so every seed stays valid.
    pub lifecycle_storm: bool,
    /// Append three durability blocks built on *volatile* crashes (the
    /// node's memtable and unsynced WAL tail are dropped; recovery is
    /// solely WAL + SST replay): one random node, then all of region 0 at
    /// once — taking the ZONE-survivable range's whole Raft group through
    /// crash-restart — then a split racing a node mid-recovery.
    pub durability_storm: bool,
}

impl Default for ScheduleBounds {
    fn default() -> Self {
        ScheduleBounds {
            regions: 3,
            nodes_per_region: 3,
            blocks: 3,
            first_at: SimDuration::from_secs(5),
            hold: SimDuration::from_secs(8),
            gap: SimDuration::from_secs(6),
            max_skew_nanos: 100_000_000, // 100ms, within the 250ms offset spec
            allow_region_crash: false,
            coordinator_crash: false,
            quiesced_leader_crash: false,
            lifecycle_storm: false,
            durability_storm: false,
        }
    }
}

impl ScheduleBounds {
    /// Total simulated time the schedule spans, including the final heal.
    pub fn span(&self) -> SimDuration {
        let blocks = self.blocks
            + u32::from(self.coordinator_crash)
            + u32::from(self.quiesced_leader_crash)
            + 3 * u32::from(self.lifecycle_storm)
            + 3 * u32::from(self.durability_storm);
        self.first_at + SimDuration((self.hold + self.gap).nanos() * blocks as u64)
    }
}

impl FaultSchedule {
    /// A hand-written schedule (seed recorded as 0).
    pub fn scripted(name: &str, steps: Vec<FaultStep>) -> FaultSchedule {
        FaultSchedule {
            name: name.to_string(),
            seed: 0,
            steps,
        }
    }

    /// Derive a schedule entirely from `seed`: `bounds.blocks` disrupt→heal
    /// blocks, one major disruption at a time, ending with a `HealAll`.
    /// The same seed and bounds always produce the identical schedule.
    pub fn random(seed: u64, bounds: &ScheduleBounds) -> FaultSchedule {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x6e656d65_73697321); // "nemesis!"
        let nodes = bounds.regions * bounds.nodes_per_region;
        let mut steps = Vec::new();
        let mut t = bounds.first_at;
        let variants = if bounds.allow_region_crash { 6 } else { 5 };
        for _ in 0..bounds.blocks {
            let (disrupt, heal) = match rng.next_below(variants) {
                0 => {
                    let n = NodeId(rng.next_below(nodes as u64) as u32);
                    (FaultKind::CrashNode(n), FaultKind::RestartNode(n))
                }
                1 => {
                    // One zone per node, so this crashes a single node too,
                    // but exercises the zone-scoped plumbing.
                    let z = ZoneId(rng.next_below(nodes as u64) as u32);
                    (FaultKind::CrashZone(z), FaultKind::RestartZone(z))
                }
                2 => {
                    let a = rng.next_below(bounds.regions as u64) as u32;
                    let b =
                        (a + 1 + rng.next_below(bounds.regions as u64 - 1) as u32) % bounds.regions;
                    (
                        FaultKind::PartitionRegions(RegionId(a), RegionId(b)),
                        FaultKind::HealPartition(RegionId(a), RegionId(b)),
                    )
                }
                3 => {
                    let r = RegionId(rng.next_below(bounds.regions as u64) as u32);
                    (FaultKind::IsolateRegion(r), FaultKind::RejoinRegion(r))
                }
                4 => {
                    let node = NodeId(rng.next_below(nodes as u64) as u32);
                    let mag = rng.next_below(bounds.max_skew_nanos.unsigned_abs() + 1) as i64;
                    let skew_nanos = if rng.chance(0.5) { mag } else { -mag };
                    (
                        FaultKind::SkewClock { node, skew_nanos },
                        FaultKind::SkewClock {
                            node,
                            skew_nanos: 0,
                        },
                    )
                }
                _ => {
                    let r = RegionId(rng.next_below(bounds.regions as u64) as u32);
                    (FaultKind::CrashRegion(r), FaultKind::RestartRegion(r))
                }
            };
            steps.push(FaultStep {
                at: t,
                fault: disrupt,
            });
            t = t + bounds.hold;
            steps.push(FaultStep { at: t, fault: heal });
            t = t + bounds.gap;
        }
        if bounds.coordinator_crash {
            // A gateway crash is a coordinator crash: every transaction it
            // was driving dies mid-flight, at whatever commit stage the
            // timing lands on — including between the STAGING record and
            // the explicit commit.
            let n = NodeId(rng.next_below(nodes as u64) as u32);
            steps.push(FaultStep {
                at: t,
                fault: FaultKind::CrashNode(n),
            });
            t = t + bounds.hold;
            steps.push(FaultStep {
                at: t,
                fault: FaultKind::RestartNode(n),
            });
            t = t + bounds.gap;
        }
        if bounds.quiesced_leader_crash {
            // The cold ranges are homed in region 0, so one of its nodes
            // hosts their leaders — leaders that have long stopped
            // heartbeating. Crashing that node proves failover does not
            // depend on the heartbeats quiescence suppressed.
            let n = NodeId(rng.next_below(bounds.nodes_per_region as u64) as u32);
            steps.push(FaultStep {
                at: t,
                fault: FaultKind::CrashNode(n),
            });
            t = t + bounds.hold;
            steps.push(FaultStep {
                at: t,
                fault: FaultKind::RestartNode(n),
            });
            t = t + bounds.gap;
        }
        if bounds.lifecycle_storm {
            // Three blocks racing range-descriptor surgery against live
            // disruptions. The lifecycle fault fires mid-hold, so the split
            // or merge commits while the disruption is still active. Keys
            // sit inside the workload keyspace ("{class}k0".."k3"), so
            // racing transactions straddle the new boundary.
            let half = SimDuration(bounds.hold.nanos() / 2);
            // Split the region-survivable range while two regions are
            // partitioned from each other.
            let a = rng.next_below(bounds.regions as u64) as u32;
            let b = (a + 1 + rng.next_below(bounds.regions as u64 - 1) as u32) % bounds.regions;
            steps.push(FaultStep {
                at: t,
                fault: FaultKind::PartitionRegions(RegionId(a), RegionId(b)),
            });
            steps.push(FaultStep {
                at: t + half,
                fault: FaultKind::SplitAt(Key::from("rs/k2")),
            });
            t = t + bounds.hold;
            steps.push(FaultStep {
                at: t,
                fault: FaultKind::HealPartition(RegionId(a), RegionId(b)),
            });
            t = t + bounds.gap;
            // Merge the halves back while a region-0 node — the leaseholder
            // region for both workload ranges — is down. (A no-op if the
            // earlier split never applied; the schedule stays valid.)
            let n = NodeId(rng.next_below(bounds.nodes_per_region as u64) as u32);
            steps.push(FaultStep {
                at: t,
                fault: FaultKind::CrashNode(n),
            });
            steps.push(FaultStep {
                at: t + half,
                fault: FaultKind::MergeAt(Key::from("rs/k0")),
            });
            t = t + bounds.hold;
            steps.push(FaultStep {
                at: t,
                fault: FaultKind::RestartNode(n),
            });
            t = t + bounds.gap;
            // Split the zone-survivable range under clock skew: the split
            // must seed both halves' timestamp-cache bounds above every
            // read any skewed gateway could have been served.
            let node = NodeId(rng.next_below(nodes as u64) as u32);
            // At least 1ns of skew, so the disrupt step never reads as a heal.
            let mag = 1 + rng.next_below(bounds.max_skew_nanos.unsigned_abs()) as i64;
            let skew_nanos = if rng.chance(0.5) { mag } else { -mag };
            steps.push(FaultStep {
                at: t,
                fault: FaultKind::SkewClock { node, skew_nanos },
            });
            steps.push(FaultStep {
                at: t + half,
                fault: FaultKind::SplitAt(Key::from("zs/k2")),
            });
            t = t + bounds.hold;
            steps.push(FaultStep {
                at: t,
                fault: FaultKind::SkewClock {
                    node,
                    skew_nanos: 0,
                },
            });
            t = t + bounds.gap;
        }
        if bounds.durability_storm {
            // Three durability blocks: volatile crashes force recovery from
            // the write-ahead log while transactions race.
            // Crash one random node, dropping its volatile state.
            let n = NodeId(rng.next_below(nodes as u64) as u32);
            steps.push(FaultStep {
                at: t,
                fault: FaultKind::CrashNodeVolatile(n),
            });
            t = t + bounds.hold;
            steps.push(FaultStep {
                at: t,
                fault: FaultKind::RestartNode(n),
            });
            t = t + bounds.gap;
            // Crash all of region 0 — home of the ZONE-survivable range —
            // so its entire Raft group loses volatile state simultaneously
            // and the range comes back solely from WAL + SST replay.
            steps.push(FaultStep {
                at: t,
                fault: FaultKind::CrashRegionVolatile(RegionId(0)),
            });
            t = t + bounds.hold;
            steps.push(FaultStep {
                at: t,
                fault: FaultKind::RestartRegion(RegionId(0)),
            });
            t = t + bounds.gap;
            // Split the zone-survivable range while one of its replicas is
            // down mid volatile recovery: the surviving quorum splits, and
            // the recovered node must reconcile its replayed state with the
            // new tiling. (A no-op if the tiling disallows the split.)
            let half = SimDuration(bounds.hold.nanos() / 2);
            let n = NodeId(rng.next_below(bounds.nodes_per_region as u64) as u32);
            steps.push(FaultStep {
                at: t,
                fault: FaultKind::CrashNodeVolatile(n),
            });
            steps.push(FaultStep {
                at: t + half,
                fault: FaultKind::SplitAt(Key::from("zs/k2")),
            });
            t = t + bounds.hold;
            steps.push(FaultStep {
                at: t,
                fault: FaultKind::RestartNode(n),
            });
            t = t + bounds.gap;
        }
        steps.push(FaultStep {
            at: t,
            fault: FaultKind::HealAll,
        });
        FaultSchedule {
            name: format!("random-{seed}"),
            seed,
            steps,
        }
    }

    /// Install every step on the cluster's calendar, tagged with its index.
    pub fn install(&self, cluster: &mut Cluster) {
        for (i, step) in self.steps.iter().enumerate() {
            cluster.schedule_fault(step.at, step.fault.clone(), Some(i as u32));
        }
    }

    /// Offset of the last step (the final heal, by construction).
    pub fn span(&self) -> SimDuration {
        self.steps.last().map(|s| s.at).unwrap_or(SimDuration::ZERO)
    }

    /// The last step at or before `at` (offsets are relative to an install
    /// at time zero), for naming the fault active when an anomaly happened.
    pub fn step_before(&self, at: SimTime) -> Option<(usize, &FaultStep)> {
        self.steps
            .iter()
            .enumerate()
            .rfind(|(_, s)| s.at.nanos() <= at.nanos())
    }

    /// Windows `[disrupt, heal)` during which a disruptive fault was active,
    /// as offsets. Used for recovery-latency stats.
    pub fn disruption_windows(&self) -> Vec<(SimDuration, SimDuration)> {
        let mut windows = Vec::new();
        let mut open: Option<SimDuration> = None;
        for step in &self.steps {
            if step.fault.is_heal() {
                if let Some(start) = open.take() {
                    windows.push((start, step.at));
                }
            } else if open.is_none() {
                open = Some(step.at);
            }
        }
        if let Some(start) = open {
            windows.push((start, self.span()));
        }
        windows
    }
}

impl fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schedule {} (seed {}):", self.name, self.seed)?;
        for (i, s) in self.steps.iter().enumerate() {
            writeln!(f, "  step {i} @ {}: {}", s.at, s.fault)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic_per_seed() {
        let b = ScheduleBounds::default();
        let a1 = FaultSchedule::random(42, &b);
        let a2 = FaultSchedule::random(42, &b);
        assert_eq!(format!("{a1}"), format!("{a2}"));
        let other = FaultSchedule::random(43, &b);
        assert_ne!(format!("{a1}"), format!("{other}"));
    }

    #[test]
    fn random_alternates_disrupt_and_heal_and_ends_healed() {
        for seed in 0..50 {
            let s = FaultSchedule::random(seed, &ScheduleBounds::default());
            assert_eq!(s.steps.len(), 7); // 3 blocks x 2 + final HealAll
            for pair in s.steps.chunks(2) {
                if pair.len() == 2 {
                    assert!(!pair[0].fault.is_heal(), "{}", s);
                    assert!(pair[1].fault.is_heal(), "{}", s);
                }
            }
            assert_eq!(s.steps.last().unwrap().fault, FaultKind::HealAll);
            let windows = s.disruption_windows();
            assert_eq!(windows.len(), 3);
            assert!(windows.iter().all(|(a, b)| a < b));
        }
    }

    #[test]
    fn coordinator_crash_appends_a_crash_restart_block() {
        let b = ScheduleBounds {
            coordinator_crash: true,
            ..ScheduleBounds::default()
        };
        for seed in 0..50 {
            let s = FaultSchedule::random(seed, &b);
            // 3 blocks x 2 + crash/restart pair + final HealAll.
            assert_eq!(s.steps.len(), 9, "{s}");
            let crash = &s.steps[6].fault;
            let restart = &s.steps[7].fault;
            assert!(matches!(crash, FaultKind::CrashNode(_)), "{s}");
            match (crash, restart) {
                (FaultKind::CrashNode(a), FaultKind::RestartNode(b)) => {
                    assert_eq!(a, b, "{s}");
                }
                other => panic!("unexpected pair {other:?} in {s}"),
            }
            assert_eq!(s.steps.last().unwrap().fault, FaultKind::HealAll);
            // The extra block extends the declared span.
            assert_eq!(s.span(), b.span());
        }
    }

    #[test]
    fn quiesced_leader_crash_appends_a_region0_crash_block() {
        let b = ScheduleBounds {
            quiesced_leader_crash: true,
            ..ScheduleBounds::default()
        };
        for seed in 0..50 {
            let s = FaultSchedule::random(seed, &b);
            // 3 blocks x 2 + crash/restart pair + final HealAll.
            assert_eq!(s.steps.len(), 9, "{s}");
            match (&s.steps[6].fault, &s.steps[7].fault) {
                (FaultKind::CrashNode(crash), FaultKind::RestartNode(restart)) => {
                    assert_eq!(crash, restart, "{s}");
                    // Region 0 owns the first `nodes_per_region` node ids;
                    // the quiesced cold-range leaders live there.
                    assert!(crash.0 < b.nodes_per_region, "crash outside region 0: {s}");
                }
                other => panic!("unexpected pair {other:?} in {s}"),
            }
            assert_eq!(s.steps.last().unwrap().fault, FaultKind::HealAll);
            assert_eq!(s.span(), b.span());
        }
    }

    #[test]
    fn lifecycle_storm_appends_split_merge_blocks_mid_disruption() {
        let b = ScheduleBounds {
            lifecycle_storm: true,
            ..ScheduleBounds::default()
        };
        for seed in 0..50 {
            let s = FaultSchedule::random(seed, &b);
            // 3 blocks x 2 + 3 lifecycle blocks x 3 + final HealAll.
            assert_eq!(s.steps.len(), 16, "{s}");
            // Each lifecycle block is disrupt → lifecycle fault → heal, with
            // the lifecycle fault strictly inside the disruption window.
            let splits = s
                .steps
                .iter()
                .filter(|st| matches!(st.fault, FaultKind::SplitAt(_)))
                .count();
            let merges = s
                .steps
                .iter()
                .filter(|st| matches!(st.fault, FaultKind::MergeAt(_)))
                .count();
            assert_eq!((splits, merges), (2, 1), "{s}");
            for block in s.steps[6..15].chunks(3) {
                assert!(!block[0].fault.is_heal(), "{s}");
                assert!(
                    matches!(
                        block[1].fault,
                        FaultKind::SplitAt(_) | FaultKind::MergeAt(_)
                    ),
                    "{s}"
                );
                assert!(block[1].at > block[0].at, "{s}");
                assert!(block[1].at < block[2].at, "{s}");
                assert!(block[2].fault.is_heal(), "{s}");
            }
            assert_eq!(s.steps.last().unwrap().fault, FaultKind::HealAll);
            assert_eq!(s.span(), b.span());
        }
    }

    #[test]
    fn durability_storm_appends_volatile_crash_blocks() {
        let b = ScheduleBounds {
            durability_storm: true,
            ..ScheduleBounds::default()
        };
        for seed in 0..50 {
            let s = FaultSchedule::random(seed, &b);
            // 3 base blocks x 2 + node block (2) + region block (2) +
            // split-race block (3) + final HealAll.
            assert_eq!(s.steps.len(), 14, "{s}");
            match (&s.steps[6].fault, &s.steps[7].fault) {
                (FaultKind::CrashNodeVolatile(a), FaultKind::RestartNode(b)) => {
                    assert_eq!(a, b, "{s}");
                }
                other => panic!("unexpected node block {other:?} in {s}"),
            }
            assert_eq!(
                s.steps[8].fault,
                FaultKind::CrashRegionVolatile(RegionId(0)),
                "{s}"
            );
            assert_eq!(
                s.steps[9].fault,
                FaultKind::RestartRegion(RegionId(0)),
                "{s}"
            );
            match (&s.steps[10].fault, &s.steps[11].fault, &s.steps[12].fault) {
                (
                    FaultKind::CrashNodeVolatile(crash),
                    FaultKind::SplitAt(_),
                    FaultKind::RestartNode(restart),
                ) => {
                    assert_eq!(crash, restart, "{s}");
                    // The crashed node hosts a zs/ replica (region 0).
                    assert!(crash.0 < b.nodes_per_region, "crash outside region 0: {s}");
                    assert!(s.steps[11].at > s.steps[10].at, "{s}");
                    assert!(s.steps[11].at < s.steps[12].at, "{s}");
                }
                other => panic!("unexpected split-race block {other:?} in {s}"),
            }
            assert_eq!(s.steps.last().unwrap().fault, FaultKind::HealAll);
            assert_eq!(s.span(), b.span());
        }
    }

    #[test]
    fn step_before_names_the_active_fault() {
        let s = FaultSchedule::scripted(
            "demo",
            vec![
                FaultStep {
                    at: SimDuration::from_secs(5),
                    fault: FaultKind::CrashNode(NodeId(0)),
                },
                FaultStep {
                    at: SimDuration::from_secs(10),
                    fault: FaultKind::HealAll,
                },
            ],
        );
        assert!(s
            .step_before(SimTime(SimDuration::from_secs(1).nanos()))
            .is_none());
        let (i, step) = s
            .step_before(SimTime(SimDuration::from_secs(7).nanos()))
            .unwrap();
        assert_eq!(i, 0);
        assert_eq!(step.fault, FaultKind::CrashNode(NodeId(0)));
        let (i, _) = s
            .step_before(SimTime(SimDuration::from_secs(30).nanos()))
            .unwrap();
        assert_eq!(i, 1);
        assert_eq!(s.span(), SimDuration::from_secs(10));
    }
}

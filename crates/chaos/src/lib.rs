//! Deterministic nemesis harness (Jepsen-style, but fully simulated).
//!
//! The pieces, each its own module:
//!
//! * [`schedule`] — seeded [`FaultSchedule`]s: scripted or derived entirely
//!   from a seed, installed as first-class timed events on the simulation
//!   calendar via the `mr-kv` fault-injection API.
//! * [`history`] — the append-only invoke/ok/fail/info operation
//!   [`History`] recorded by the register workload, with a deterministic
//!   JSON export (same seed ⇒ byte-identical bytes).
//! * [`checker`] — the offline checker: serializability with per-key
//!   real-time order (ww/wr/rw/rts cycle detection) plus the paper's
//!   follower-read, bounded-staleness, and survivability invariants. Every
//!   violation names the seed, the active schedule step, and the offending
//!   operations.
//! * [`nemesis`] — [`run_chaos`]: cluster + schedule + closed-loop clients
//!   + drain + check, in one call.
//! * [`bundle`] — [`IncidentBundle`]: when a run fails, the forensics
//!   captured before the cluster is torn down — violations with their
//!   schedule step, the history window, implicated span subtrees, event
//!   log, metrics history, and range placement — as a deterministic
//!   (byte-identical per seed) JSON directory.
//!
//! Because the whole stack is a single-threaded discrete-event simulation
//! seeded from one integer, any violation the checker reports is exactly
//! reproducible: rerun the same seed and the same history falls out.

pub mod bundle;
pub mod checker;
pub mod history;
pub mod nemesis;
pub mod schedule;

pub use bundle::IncidentBundle;
pub use checker::{check, AvailabilityExpectation, CheckReport, CheckerConfig, Expect, Violation};
pub use history::{History, HistoryEvent, OpId, OpKind, OpRecord, Phase};
pub use nemesis::{
    build_chaos_cluster, run_chaos, ChaosConfig, ChaosOutcome, REGION_SURVIVABLE_PREFIX,
    ZONE_SURVIVABLE_PREFIX,
};
pub use schedule::{FaultSchedule, FaultStep, ScheduleBounds};

//! The durability test tier: chaos runs whose crashes *drop volatile
//! state*, so every recovery is a real WAL + SST replay rather than a
//! process pause.
//!
//! The headline sweep runs 20 seed-derived `durability_storm` schedules —
//! volatile node crashes, a full region-0 volatile crash taking the
//! ZONE-survivable range's whole Raft group through crash-restart, and a
//! split racing a node mid-recovery — with the strict online monitors on,
//! and requires a clean checker verdict on every seed. A scripted scenario
//! pins the full-group recovery down, and the armed `wal_skip_fsync_bug`
//! canary proves the checker catches a node that acknowledges writes
//! before its WAL fsync point.

use mr_chaos::{run_chaos, ChaosConfig, CheckerConfig, FaultSchedule, FaultStep, ScheduleBounds};
use mr_kv::FaultKind;
use mr_sim::RegionId;
use mr_testutil::secs;

#[test]
fn durability_storm_schedules_produce_clean_histories() {
    let bounds = ScheduleBounds {
        durability_storm: true,
        ..ScheduleBounds::default()
    };
    let mut total_recoveries = 0usize;
    for seed in 1..=20u64 {
        let schedule = FaultSchedule::random(seed, &bounds);
        let cfg = ChaosConfig {
            seed,
            run_for: schedule.span() + secs(10),
            ..ChaosConfig::default()
        };
        let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
        assert!(
            outcome.passed(),
            "seed {seed} failed:\n{}\n{schedule}",
            outcome.render()
        );
        assert!(
            outcome.ops_ok > 100,
            "seed {seed}: workload barely ran ({} ok ops)",
            outcome.ops_ok
        );
        assert!(
            outcome.wal_recoveries >= 3,
            "seed {seed}: expected WAL recoveries from the volatile crashes, got {}",
            outcome.wal_recoveries
        );
        total_recoveries += outcome.wal_recoveries;
    }
    assert!(
        total_recoveries >= 100,
        "suspiciously few WAL recoveries across the sweep: {total_recoveries}"
    );
}

/// The strongest durability probe, pinned down as a scripted scenario: all
/// of region 0 — every voter of the ZONE-survivable range — crashes
/// volatile at once. The range has *no* surviving replica; when the region
/// restarts, its entire state is whatever WAL + SST replay reconstructs.
/// With fsync at every apply (the correct configuration), no acknowledged
/// write may be missing, and the strict monitors plus the offline checker
/// verify exactly that.
#[test]
fn full_region_volatile_crash_recovers_cleanly() {
    let schedule = FaultSchedule::scripted(
        "region0-volatile",
        vec![
            FaultStep {
                at: secs(8),
                fault: FaultKind::CrashRegionVolatile(RegionId(0)),
            },
            FaultStep {
                at: secs(16),
                fault: FaultKind::RestartRegion(RegionId(0)),
            },
            FaultStep {
                at: secs(30),
                fault: FaultKind::HealAll,
            },
        ],
    );
    let cfg = ChaosConfig {
        seed: 7,
        run_for: secs(40),
        ..ChaosConfig::default()
    };
    let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
    assert!(outcome.passed(), "{}\n{schedule}", outcome.render());
    // Region 0 hosts 2 rs/ voters and all 3 zs/ voters: at least 5
    // replicas replayed their WALs.
    assert!(
        outcome.wal_recoveries >= 5,
        "expected every region-0 replica to replay its WAL, got {}",
        outcome.wal_recoveries
    );
    assert!(outcome.ops_ok > 100, "workload barely ran");
}

/// The armed canary: with the `wal_skip_fsync_bug` armed, per-apply fsyncs
/// are deferred to a periodic sync tick, so a volatile crash between ticks
/// loses writes the cluster already acknowledged. The identical scenario
/// that is clean above must now fail the offline checker — proving the
/// durability tier actually detects a node that acks before its WAL fsync
/// point (and isn't just vacuously green).
#[cfg(feature = "injected-bug")]
#[test]
fn injected_wal_skip_fsync_bug_is_caught() {
    // Crash timing chosen off the 3s sync-tick grid so the unsynced
    // window is wide (~1.5s of acked writes on the zs/ range).
    let schedule = FaultSchedule::scripted(
        "region0-volatile-fsync-bug",
        vec![
            FaultStep {
                at: secs(8),
                fault: FaultKind::CrashRegionVolatile(RegionId(0)),
            },
            FaultStep {
                at: secs(16),
                fault: FaultKind::RestartRegion(RegionId(0)),
            },
            FaultStep {
                at: secs(30),
                fault: FaultKind::HealAll,
            },
        ],
    );
    let cfg = ChaosConfig {
        seed: 7,
        run_for: secs(40),
        arm_wal_skip_fsync_bug: true,
        // The online monitors may trip on the lost writes; this test is
        // about the *offline checker* catching them.
        strict_monitors: false,
        ..ChaosConfig::default()
    };
    let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
    assert!(
        !outcome.passed(),
        "the armed fsync-skip bug must be detected:\n{}",
        outcome.render()
    );
    assert!(outcome.render().contains("seed 7"), "{}", outcome.render());
}

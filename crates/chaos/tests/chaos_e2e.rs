//! End-to-end nemesis runs: seeded fault schedules driven through the full
//! cluster, histories validated by the offline checker.
//!
//! The headline test runs 20 seed-derived schedules — crashes, partitions,
//! region isolation, clock skew, zone failures — and requires a clean
//! checker verdict on every one. Scripted scenarios then pin down the
//! paper's survivability matrix: REGION-survivable ranges stay available
//! through a full region failure while ZONE-survivable ranges correctly do
//! not, and bounded-staleness reads keep serving locally while the primary
//! region is partitioned away.

use mr_chaos::{
    build_chaos_cluster, run_chaos, AvailabilityExpectation, ChaosConfig, CheckerConfig, Expect,
    FaultSchedule, FaultStep, OpKind, Phase, ScheduleBounds,
};
use mr_kv::FaultKind;
use mr_proto::Key;
use mr_sim::{NodeId, RegionId, SimDuration, SimTime};
use mr_testutil::{at, secs};

#[test]
fn twenty_seeded_schedules_produce_clean_histories() {
    let bounds = ScheduleBounds::default();
    let mut total_ops = 0usize;
    for seed in 1..=20u64 {
        let schedule = FaultSchedule::random(seed, &bounds);
        let cfg = ChaosConfig {
            seed,
            run_for: schedule.span() + secs(10),
            ..ChaosConfig::default()
        };
        let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
        assert!(
            outcome.passed(),
            "seed {seed} failed:\n{}\n{schedule}",
            outcome.render()
        );
        assert!(
            outcome.ops_ok > 100,
            "seed {seed}: workload barely ran ({} ok ops)",
            outcome.ops_ok
        );
        total_ops += outcome.ops_ok;
    }
    assert!(
        total_ops > 5_000,
        "suspiciously little traffic: {total_ops}"
    );
}

/// Range quiescence under crash faults: every schedule ends with a
/// dedicated region-0 node crash — the node hosting the cold ranges'
/// quiesced leaders. A quiesced range sends no heartbeats, so its
/// followers must discover the dead leader through the node-liveness
/// check and elect a replacement; histories must stay serializable with
/// the online invariant monitors strict (the default).
#[test]
fn quiesced_leader_crash_schedules_produce_clean_histories() {
    let bounds = ScheduleBounds {
        quiesced_leader_crash: true,
        ..ScheduleBounds::default()
    };
    for seed in 1..=20u64 {
        let schedule = FaultSchedule::random(seed, &bounds);
        let cfg = ChaosConfig {
            seed,
            cold_ranges: 2,
            run_for: schedule.span() + secs(10),
            ..ChaosConfig::default()
        };
        let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
        assert!(
            outcome.passed(),
            "seed {seed} failed:\n{}\n{schedule}",
            outcome.render()
        );
        assert!(
            outcome.ops_ok > 100,
            "seed {seed}: workload barely ran ({} ok ops)",
            outcome.ops_ok
        );
    }
}

/// With no workload at all, every range goes cold and every leader
/// quiesces — the `raft.quiesced_ranges` gauge counts them after a forced
/// scrape.
#[test]
fn idle_cluster_quiesces_every_range() {
    let cfg = ChaosConfig {
        cold_ranges: 2,
        ..ChaosConfig::default()
    };
    let mut c = build_chaos_cluster(&cfg);
    c.run_until(SimTime(secs(15).nanos()));
    c.scrape_now();
    let quiesced = c.obs.registry.gauge("raft.quiesced_ranges", &[]).get();
    // rs/ + zs/ + 2 cold ranges, all idle.
    assert_eq!(quiesced, 4, "all idle leaders should quiesce");
}

#[test]
fn same_seed_replays_byte_identical_history() {
    let schedule = FaultSchedule::random(7, &ScheduleBounds::default());
    let cfg = ChaosConfig {
        seed: 7,
        run_for: secs(30),
        ..ChaosConfig::default()
    };
    let a = run_chaos(&cfg, &schedule, &CheckerConfig::default());
    let b = run_chaos(&cfg, &schedule, &CheckerConfig::default());
    let ja = a.history.export_json();
    assert!(!ja.is_empty() && ja.len() > 1_000);
    assert_eq!(ja, b.history.export_json(), "same seed must replay exactly");

    // A different seed diverges (different faults, clients, jitter).
    let schedule2 = FaultSchedule::random(8, &ScheduleBounds::default());
    let cfg2 = ChaosConfig { seed: 8, ..cfg };
    let c = run_chaos(&cfg2, &schedule2, &CheckerConfig::default());
    assert_ne!(ja, c.history.export_json());
}

#[test]
fn region_crash_respects_the_survivability_matrix() {
    // Crash the home region outright: the REGION-survivable range must
    // keep serving writes from the surviving majority, the ZONE-survivable
    // range (all 3 voters in the home region) must not.
    let schedule = FaultSchedule::scripted(
        "home-region-crash",
        vec![
            FaultStep {
                at: secs(10),
                fault: FaultKind::CrashRegion(RegionId(0)),
            },
            FaultStep {
                at: secs(40),
                fault: FaultKind::HealAll,
            },
        ],
    );
    let checker_cfg = CheckerConfig {
        expectations: vec![
            // Grace for lease failover (election timeout 2s + retries).
            AvailabilityExpectation {
                prefix: "rs/".into(),
                from: at(secs(18)),
                until: at(secs(40)),
                expect: Expect::Available,
            },
            AvailabilityExpectation {
                prefix: "zs/".into(),
                from: at(secs(12)),
                until: at(secs(40)),
                expect: Expect::Unavailable,
            },
            // After the heal (plus recovery grace) both classes serve again.
            AvailabilityExpectation {
                prefix: "zs/".into(),
                from: at(secs(50)),
                until: at(secs(70)),
                expect: Expect::Available,
            },
        ],
        ..CheckerConfig::default()
    };
    let cfg = ChaosConfig {
        seed: 100,
        run_for: secs(70),
        ..ChaosConfig::default()
    };
    let outcome = run_chaos(&cfg, &schedule, &checker_cfg);
    assert!(outcome.passed(), "{}", outcome.render());
    // The run must actually have exercised both classes during the outage.
    assert!(outcome.ops_failed + outcome.ops_info > 0, "no faults felt");
}

#[test]
fn bounded_staleness_reads_stay_local_through_primary_partition() {
    // Cut the home region off. Bounded-staleness reads from the other
    // regions negotiate against local replicas and must never block on the
    // unreachable leaseholder — enforced by the checker's latency budget
    // on every completed bounded read.
    let schedule = FaultSchedule::scripted(
        "primary-isolated",
        vec![
            FaultStep {
                at: secs(15),
                fault: FaultKind::IsolateRegion(RegionId(0)),
            },
            FaultStep {
                at: secs(45),
                fault: FaultKind::HealAll,
            },
        ],
    );
    let cfg = ChaosConfig {
        seed: 200,
        run_for: secs(60),
        ..ChaosConfig::default()
    };
    let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
    assert!(outcome.passed(), "{}", outcome.render());
    let ops = outcome.history.ops();
    let in_window = |t: SimTime| t >= at(secs(16)) && t < at(secs(45));
    let bounded_ok = ops
        .iter()
        .filter(|o| o.kind == OpKind::BoundedRead && o.ok() && in_window(o.invoke_at))
        .count();
    assert!(
        bounded_ok > 0,
        "expected bounded reads to keep succeeding during the partition"
    );
}

#[test]
fn recovery_latency_is_measured_per_window() {
    let schedule = FaultSchedule::scripted(
        "one-node-crash",
        vec![
            FaultStep {
                at: secs(10),
                fault: FaultKind::CrashNode(mr_sim::NodeId(1)),
            },
            FaultStep {
                at: secs(25),
                fault: FaultKind::RestartNode(mr_sim::NodeId(1)),
            },
        ],
    );
    let cfg = ChaosConfig {
        seed: 300,
        run_for: secs(40),
        ..ChaosConfig::default()
    };
    let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
    assert!(outcome.passed(), "{}", outcome.render());
    assert!(outcome.ops_per_sec > 10.0);
    assert!(outcome.steady_p99 > SimDuration::ZERO);
    assert!(outcome.recovery_p99 > SimDuration::ZERO);
}

#[test]
fn ambiguous_commits_are_recorded_as_info_not_ok() {
    // A region crash mid-run interrupts in-flight commits: their outcomes
    // must be recorded as info (unknown), never silently dropped.
    let schedule = FaultSchedule::scripted(
        "crash-for-ambiguity",
        vec![
            FaultStep {
                at: secs(10),
                fault: FaultKind::CrashRegion(RegionId(0)),
            },
            FaultStep {
                at: secs(30),
                fault: FaultKind::HealAll,
            },
        ],
    );
    let cfg = ChaosConfig {
        seed: 400,
        run_for: secs(45),
        ..ChaosConfig::default()
    };
    let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
    assert!(outcome.passed(), "{}", outcome.render());
    let ops = outcome.history.ops();
    // Every op completed (invoke-only records would mean a lost client).
    assert!(ops.iter().all(|o| o.outcome != Phase::Invoke));
}

/// The acceptance gate for the checker itself: with the intentionally
/// injected follower-read bug armed, stale reads from a partitioned region
/// are served above the replica's closed frontier and miss committed
/// writes. The checker must catch it and name the seed and schedule step.
#[cfg(feature = "injected-bug")]
#[test]
fn injected_stale_read_bug_is_caught_with_seed_and_step() {
    let schedule = FaultSchedule::scripted(
        "bug-hunt",
        vec![
            FaultStep {
                at: secs(10),
                fault: FaultKind::IsolateRegion(RegionId(1)),
            },
            FaultStep {
                at: secs(40),
                fault: FaultKind::HealAll,
            },
        ],
    );
    let cfg = ChaosConfig {
        seed: 666,
        run_for: secs(50),
        arm_injected_bug: true,
        // The online follower-read monitor would panic on the bug; this
        // test is about the *offline checker* catching it.
        strict_monitors: false,
        ..ChaosConfig::default()
    };
    let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
    assert!(!outcome.passed(), "the armed bug must be detected");
    let report = &outcome.report;
    assert!(report
        .violations
        .iter()
        .any(|v| v.kind == "stale-read-skew" || v.kind == "serialization-cycle"));
    let rendered = outcome.render();
    // The rendering names the seed and the offending schedule step.
    assert!(rendered.contains("seed 666"), "{rendered}");
    assert!(
        rendered.contains("step 0 (isolate region r1)"),
        "{rendered}"
    );
}

/// Control for the bug test: the identical scenario without the bug armed
/// yields a clean history (partitioned stale reads fail over or error out
/// instead of returning stale data).
#[test]
fn partitioned_stale_reads_without_bug_are_clean() {
    let schedule = FaultSchedule::scripted(
        "bug-hunt-control",
        vec![
            FaultStep {
                at: secs(10),
                fault: FaultKind::IsolateRegion(RegionId(1)),
            },
            FaultStep {
                at: secs(40),
                fault: FaultKind::HealAll,
            },
        ],
    );
    let cfg = ChaosConfig {
        seed: 666,
        run_for: secs(50),
        ..ChaosConfig::default()
    };
    let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
    assert!(outcome.passed(), "{}", outcome.render());
}

/// The acceptance gate for the parallel-commit checker coverage: with the
/// intentionally injected premature-ack bug armed, the coordinator acks a
/// parallel commit as soon as the STAGING record commits, without waiting
/// for the in-flight pipelined writes. A multi-range transaction whose
/// second write is delayed (or bumped to a later timestamp) past the ack
/// then violates atomicity: fresh reads miss an acknowledged write, and
/// commit timestamps are reported below already-completed operations. The
/// offline checker must catch it and name the seed.
#[cfg(feature = "injected-bug")]
#[test]
fn injected_premature_ack_bug_is_caught() {
    let bounds = ScheduleBounds::default();
    let schedule = FaultSchedule::random(1, &bounds);
    let cfg = ChaosConfig {
        seed: 1,
        run_for: schedule.span() + secs(10),
        arm_premature_ack_bug: true,
        // The online monitors would panic on the bug; this test is about
        // the *offline checker* catching it.
        strict_monitors: false,
        ..ChaosConfig::default()
    };
    let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
    assert!(
        !outcome.passed(),
        "the armed premature-ack bug must be detected"
    );
    let report = &outcome.report;
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.kind == "stale-fresh-read" || v.kind == "real-time-order"),
        "{}",
        outcome.render()
    );
    assert!(outcome.render().contains("seed 1"), "{}", outcome.render());
}

/// Control for the premature-ack test: the identical run without the bug
/// armed (same seed, same schedule, same relaxed monitors) is clean — the
/// bug is the only difference.
#[test]
fn premature_ack_scenario_without_bug_is_clean() {
    let bounds = ScheduleBounds::default();
    let schedule = FaultSchedule::random(1, &bounds);
    let cfg = ChaosConfig {
        seed: 1,
        run_for: schedule.span() + secs(10),
        strict_monitors: false,
        ..ChaosConfig::default()
    };
    let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
    assert!(outcome.passed(), "{}", outcome.render());
}

/// Range lifecycle under chaos: every schedule appends three blocks that
/// force a split mid-partition, a merge mid-leaseholder-crash, and a
/// split mid-clock-skew — all while the register workload keeps racing
/// transactions across the moving range boundaries, half the stale reads
/// land inside the closed-ts lag (leaseholder fallback, fresh tscache
/// entries a split must honor), and the lifecycle controller runs its
/// periodic tick. Histories must stay serializable with the online
/// invariant monitors strict (the default).
#[test]
fn lifecycle_storm_schedules_produce_clean_histories() {
    let bounds = ScheduleBounds {
        lifecycle_storm: true,
        ..ScheduleBounds::default()
    };
    let (mut total_splits, mut total_merges) = (0usize, 0usize);
    for seed in 1..=20u64 {
        let schedule = FaultSchedule::random(seed, &bounds);
        let cfg = ChaosConfig {
            seed,
            run_for: schedule.span() + secs(10),
            range_lifecycle: true,
            recent_stale_reads: true,
            ..ChaosConfig::default()
        };
        let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
        assert!(
            outcome.passed(),
            "seed {seed} failed:\n{}\n{schedule}",
            outcome.render()
        );
        assert!(
            outcome.ops_ok > 100,
            "seed {seed}: workload barely ran ({} ok ops)",
            outcome.ops_ok
        );
        total_splits += outcome.splits;
        total_merges += outcome.merges;
    }
    // The storm must actually have exercised descriptor surgery: a split
    // or merge step can individually no-op (its leaseholder may be down
    // mid-disruption), but across 20 seeds both must land many times.
    assert!(total_splits >= 20, "only {total_splits} splits applied");
    assert!(total_merges >= 5, "only {total_merges} merges applied");
}

/// A scripted schedule for the split-tscache canary: the remote gateways
/// run 200ms ahead (within the 250ms offset spec), while the workload
/// ranges are repeatedly split and merged back. An ahead-clock gateway's
/// reads are served — and timestamp-cached — up to 200ms in the future;
/// the split is obliged to carry that high-water to BOTH halves (its new
/// bound is `hlc + max_offset`, which covers any in-spec clock). The
/// armed bug zeroes the RHS bound, so an honest-clock write invoked
/// *after* such a read completes can commit below the read's timestamp —
/// a real-time-order inversion the offline checker must flag.
fn split_storm_schedule() -> FaultSchedule {
    let mut steps = Vec::new();
    // Skew the non-home-region gateways ahead; region 0 keeps honest
    // clocks, so its writes are the ones that can slip under a dropped
    // future read timestamp.
    for n in [3u32, 4, 5, 6, 7, 8] {
        steps.push(FaultStep {
            at: secs(4),
            fault: FaultKind::SkewClock {
                node: NodeId(n),
                skew_nanos: 200_000_000,
            },
        });
    }
    let mut t = 15u64;
    while t + 6 <= 54 {
        steps.push(FaultStep {
            at: secs(t),
            fault: FaultKind::SplitAt(Key::from("rs/k1")),
        });
        steps.push(FaultStep {
            at: secs(t + 3),
            fault: FaultKind::MergeAt(Key::from("rs/k0")),
        });
        steps.push(FaultStep {
            at: secs(t + 3),
            fault: FaultKind::SplitAt(Key::from("zs/k1")),
        });
        steps.push(FaultStep {
            at: secs(t + 6),
            fault: FaultKind::MergeAt(Key::from("zs/k0")),
        });
        t += 6;
    }
    steps.push(FaultStep {
        at: secs(58),
        fault: FaultKind::HealAll,
    });
    FaultSchedule::scripted("split-storm", steps)
}

fn split_storm_config(seed: u64, armed: bool) -> ChaosConfig {
    ChaosConfig {
        seed,
        run_for: secs(60),
        // Two keys per class concentrate traffic on the split boundary
        // (the RHS of the rs/zs splits is exactly {rs/k1} / {zs/k1}).
        keys_per_class: 2,
        clients_per_region: 3,
        think: SimDuration::from_millis(20),
        recent_stale_reads: true,
        arm_split_tscache_bug: armed,
        // The offline checker is the detector under test; relaxed
        // monitors in BOTH runs so the armed/control diff is the bug.
        strict_monitors: false,
        ..ChaosConfig::default()
    }
}

/// The acceptance gate for split correctness coverage: with the injected
/// split-tscache bug armed (the RHS of every split forgets the reads the
/// parent served), a behind-clock gateway can commit a write below an
/// already-served read's timestamp, and the offline checker must flag the
/// history. Any single seed's race window is probabilistic, so the gate
/// is: at least one of the seeds is caught.
#[cfg(feature = "injected-bug")]
#[test]
fn injected_split_tscache_bug_is_caught() {
    let schedule = split_storm_schedule();
    let mut caught = 0usize;
    for seed in 1..=8u64 {
        let outcome = run_chaos(
            &split_storm_config(seed, true),
            &schedule,
            &CheckerConfig::default(),
        );
        assert!(outcome.splits >= 5, "seed {seed}: storm barely split");
        if !outcome.passed() {
            assert!(
                outcome
                    .report
                    .violations
                    .iter()
                    .any(|v| v.kind == "stale-read-skew"
                        || v.kind == "stale-fresh-read"
                        || v.kind == "real-time-order"
                        || v.kind == "serialization-cycle"),
                "seed {seed}: unexpected violation kinds:\n{}",
                outcome.render()
            );
            caught += 1;
        }
    }
    assert!(
        caught >= 1,
        "the armed split-tscache bug was never detected across 8 seeds"
    );
}

/// Control for the split-tscache canary: the identical storm (same seeds,
/// same skew, same relaxed monitors) without the bug armed must be clean
/// on EVERY seed — the zeroed RHS bound is the only difference.
#[test]
fn split_storm_without_bug_is_clean() {
    let schedule = split_storm_schedule();
    for seed in 1..=8u64 {
        let outcome = run_chaos(
            &split_storm_config(seed, false),
            &schedule,
            &CheckerConfig::default(),
        );
        assert!(outcome.passed(), "seed {seed}:\n{}", outcome.render());
        assert!(outcome.splits >= 5, "seed {seed}: storm barely split");
        assert!(outcome.merges >= 1, "seed {seed}: storm never merged");
    }
}

/// Parallel commits under coordinator failure: every schedule ends with a
/// dedicated gateway-crash block, killing whatever transactions that node
/// was coordinating — including ones caught between the STAGING record and
/// the explicit commit, whose intents only contender-driven status
/// recovery can release. Histories must stay serializable and the online
/// invariant monitors stay strict.
#[test]
fn coordinator_crash_schedules_produce_clean_histories() {
    let bounds = ScheduleBounds {
        coordinator_crash: true,
        ..ScheduleBounds::default()
    };
    for seed in 1..=20u64 {
        let schedule = FaultSchedule::random(seed, &bounds);
        let cfg = ChaosConfig {
            seed,
            run_for: schedule.span() + secs(10),
            ..ChaosConfig::default()
        };
        let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
        assert!(
            outcome.passed(),
            "seed {seed} failed:\n{}\n{schedule}",
            outcome.render()
        );
        assert!(
            outcome.ops_ok > 100,
            "seed {seed}: workload barely ran ({} ok ops)",
            outcome.ops_ok
        );
    }
}

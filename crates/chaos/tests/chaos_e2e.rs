//! End-to-end nemesis runs: seeded fault schedules driven through the full
//! cluster, histories validated by the offline checker.
//!
//! The headline test runs 20 seed-derived schedules — crashes, partitions,
//! region isolation, clock skew, zone failures — and requires a clean
//! checker verdict on every one. Scripted scenarios then pin down the
//! paper's survivability matrix: REGION-survivable ranges stay available
//! through a full region failure while ZONE-survivable ranges correctly do
//! not, and bounded-staleness reads keep serving locally while the primary
//! region is partitioned away.

use mr_chaos::{
    build_chaos_cluster, run_chaos, AvailabilityExpectation, ChaosConfig, CheckerConfig, Expect,
    FaultSchedule, FaultStep, OpKind, Phase, ScheduleBounds,
};
use mr_kv::FaultKind;
use mr_sim::{RegionId, SimDuration, SimTime};
use mr_testutil::{at, secs};

#[test]
fn twenty_seeded_schedules_produce_clean_histories() {
    let bounds = ScheduleBounds::default();
    let mut total_ops = 0usize;
    for seed in 1..=20u64 {
        let schedule = FaultSchedule::random(seed, &bounds);
        let cfg = ChaosConfig {
            seed,
            run_for: schedule.span() + secs(10),
            ..ChaosConfig::default()
        };
        let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
        assert!(
            outcome.passed(),
            "seed {seed} failed:\n{}\n{schedule}",
            outcome.render()
        );
        assert!(
            outcome.ops_ok > 100,
            "seed {seed}: workload barely ran ({} ok ops)",
            outcome.ops_ok
        );
        total_ops += outcome.ops_ok;
    }
    assert!(
        total_ops > 5_000,
        "suspiciously little traffic: {total_ops}"
    );
}

/// Range quiescence under crash faults: every schedule ends with a
/// dedicated region-0 node crash — the node hosting the cold ranges'
/// quiesced leaders. A quiesced range sends no heartbeats, so its
/// followers must discover the dead leader through the node-liveness
/// check and elect a replacement; histories must stay serializable with
/// the online invariant monitors strict (the default).
#[test]
fn quiesced_leader_crash_schedules_produce_clean_histories() {
    let bounds = ScheduleBounds {
        quiesced_leader_crash: true,
        ..ScheduleBounds::default()
    };
    for seed in 1..=20u64 {
        let schedule = FaultSchedule::random(seed, &bounds);
        let cfg = ChaosConfig {
            seed,
            cold_ranges: 2,
            run_for: schedule.span() + secs(10),
            ..ChaosConfig::default()
        };
        let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
        assert!(
            outcome.passed(),
            "seed {seed} failed:\n{}\n{schedule}",
            outcome.render()
        );
        assert!(
            outcome.ops_ok > 100,
            "seed {seed}: workload barely ran ({} ok ops)",
            outcome.ops_ok
        );
    }
}

/// With no workload at all, every range goes cold and every leader
/// quiesces — the `raft.quiesced_ranges` gauge counts them after a forced
/// scrape.
#[test]
fn idle_cluster_quiesces_every_range() {
    let cfg = ChaosConfig {
        cold_ranges: 2,
        ..ChaosConfig::default()
    };
    let mut c = build_chaos_cluster(&cfg);
    c.run_until(SimTime(secs(15).nanos()));
    c.scrape_now();
    let quiesced = c.obs.registry.gauge("raft.quiesced_ranges", &[]).get();
    // rs/ + zs/ + 2 cold ranges, all idle.
    assert_eq!(quiesced, 4, "all idle leaders should quiesce");
}

#[test]
fn same_seed_replays_byte_identical_history() {
    let schedule = FaultSchedule::random(7, &ScheduleBounds::default());
    let cfg = ChaosConfig {
        seed: 7,
        run_for: secs(30),
        ..ChaosConfig::default()
    };
    let a = run_chaos(&cfg, &schedule, &CheckerConfig::default());
    let b = run_chaos(&cfg, &schedule, &CheckerConfig::default());
    let ja = a.history.export_json();
    assert!(!ja.is_empty() && ja.len() > 1_000);
    assert_eq!(ja, b.history.export_json(), "same seed must replay exactly");

    // A different seed diverges (different faults, clients, jitter).
    let schedule2 = FaultSchedule::random(8, &ScheduleBounds::default());
    let cfg2 = ChaosConfig { seed: 8, ..cfg };
    let c = run_chaos(&cfg2, &schedule2, &CheckerConfig::default());
    assert_ne!(ja, c.history.export_json());
}

#[test]
fn region_crash_respects_the_survivability_matrix() {
    // Crash the home region outright: the REGION-survivable range must
    // keep serving writes from the surviving majority, the ZONE-survivable
    // range (all 3 voters in the home region) must not.
    let schedule = FaultSchedule::scripted(
        "home-region-crash",
        vec![
            FaultStep {
                at: secs(10),
                fault: FaultKind::CrashRegion(RegionId(0)),
            },
            FaultStep {
                at: secs(40),
                fault: FaultKind::HealAll,
            },
        ],
    );
    let checker_cfg = CheckerConfig {
        expectations: vec![
            // Grace for lease failover (election timeout 2s + retries).
            AvailabilityExpectation {
                prefix: "rs/".into(),
                from: at(secs(18)),
                until: at(secs(40)),
                expect: Expect::Available,
            },
            AvailabilityExpectation {
                prefix: "zs/".into(),
                from: at(secs(12)),
                until: at(secs(40)),
                expect: Expect::Unavailable,
            },
            // After the heal (plus recovery grace) both classes serve again.
            AvailabilityExpectation {
                prefix: "zs/".into(),
                from: at(secs(50)),
                until: at(secs(70)),
                expect: Expect::Available,
            },
        ],
        ..CheckerConfig::default()
    };
    let cfg = ChaosConfig {
        seed: 100,
        run_for: secs(70),
        ..ChaosConfig::default()
    };
    let outcome = run_chaos(&cfg, &schedule, &checker_cfg);
    assert!(outcome.passed(), "{}", outcome.render());
    // The run must actually have exercised both classes during the outage.
    assert!(outcome.ops_failed + outcome.ops_info > 0, "no faults felt");
}

#[test]
fn bounded_staleness_reads_stay_local_through_primary_partition() {
    // Cut the home region off. Bounded-staleness reads from the other
    // regions negotiate against local replicas and must never block on the
    // unreachable leaseholder — enforced by the checker's latency budget
    // on every completed bounded read.
    let schedule = FaultSchedule::scripted(
        "primary-isolated",
        vec![
            FaultStep {
                at: secs(15),
                fault: FaultKind::IsolateRegion(RegionId(0)),
            },
            FaultStep {
                at: secs(45),
                fault: FaultKind::HealAll,
            },
        ],
    );
    let cfg = ChaosConfig {
        seed: 200,
        run_for: secs(60),
        ..ChaosConfig::default()
    };
    let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
    assert!(outcome.passed(), "{}", outcome.render());
    let ops = outcome.history.ops();
    let in_window = |t: SimTime| t >= at(secs(16)) && t < at(secs(45));
    let bounded_ok = ops
        .iter()
        .filter(|o| o.kind == OpKind::BoundedRead && o.ok() && in_window(o.invoke_at))
        .count();
    assert!(
        bounded_ok > 0,
        "expected bounded reads to keep succeeding during the partition"
    );
}

#[test]
fn recovery_latency_is_measured_per_window() {
    let schedule = FaultSchedule::scripted(
        "one-node-crash",
        vec![
            FaultStep {
                at: secs(10),
                fault: FaultKind::CrashNode(mr_sim::NodeId(1)),
            },
            FaultStep {
                at: secs(25),
                fault: FaultKind::RestartNode(mr_sim::NodeId(1)),
            },
        ],
    );
    let cfg = ChaosConfig {
        seed: 300,
        run_for: secs(40),
        ..ChaosConfig::default()
    };
    let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
    assert!(outcome.passed(), "{}", outcome.render());
    assert!(outcome.ops_per_sec > 10.0);
    assert!(outcome.steady_p99 > SimDuration::ZERO);
    assert!(outcome.recovery_p99 > SimDuration::ZERO);
}

#[test]
fn ambiguous_commits_are_recorded_as_info_not_ok() {
    // A region crash mid-run interrupts in-flight commits: their outcomes
    // must be recorded as info (unknown), never silently dropped.
    let schedule = FaultSchedule::scripted(
        "crash-for-ambiguity",
        vec![
            FaultStep {
                at: secs(10),
                fault: FaultKind::CrashRegion(RegionId(0)),
            },
            FaultStep {
                at: secs(30),
                fault: FaultKind::HealAll,
            },
        ],
    );
    let cfg = ChaosConfig {
        seed: 400,
        run_for: secs(45),
        ..ChaosConfig::default()
    };
    let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
    assert!(outcome.passed(), "{}", outcome.render());
    let ops = outcome.history.ops();
    // Every op completed (invoke-only records would mean a lost client).
    assert!(ops.iter().all(|o| o.outcome != Phase::Invoke));
}

/// The acceptance gate for the checker itself: with the intentionally
/// injected follower-read bug armed, stale reads from a partitioned region
/// are served above the replica's closed frontier and miss committed
/// writes. The checker must catch it and name the seed and schedule step.
#[cfg(feature = "injected-bug")]
#[test]
fn injected_stale_read_bug_is_caught_with_seed_and_step() {
    let schedule = FaultSchedule::scripted(
        "bug-hunt",
        vec![
            FaultStep {
                at: secs(10),
                fault: FaultKind::IsolateRegion(RegionId(1)),
            },
            FaultStep {
                at: secs(40),
                fault: FaultKind::HealAll,
            },
        ],
    );
    let cfg = ChaosConfig {
        seed: 666,
        run_for: secs(50),
        arm_injected_bug: true,
        // The online follower-read monitor would panic on the bug; this
        // test is about the *offline checker* catching it.
        strict_monitors: false,
        ..ChaosConfig::default()
    };
    let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
    assert!(!outcome.passed(), "the armed bug must be detected");
    let report = &outcome.report;
    assert!(report
        .violations
        .iter()
        .any(|v| v.kind == "stale-read-skew" || v.kind == "serialization-cycle"));
    let rendered = outcome.render();
    // The rendering names the seed and the offending schedule step.
    assert!(rendered.contains("seed 666"), "{rendered}");
    assert!(
        rendered.contains("step 0 (isolate region r1)"),
        "{rendered}"
    );
}

/// Control for the bug test: the identical scenario without the bug armed
/// yields a clean history (partitioned stale reads fail over or error out
/// instead of returning stale data).
#[test]
fn partitioned_stale_reads_without_bug_are_clean() {
    let schedule = FaultSchedule::scripted(
        "bug-hunt-control",
        vec![
            FaultStep {
                at: secs(10),
                fault: FaultKind::IsolateRegion(RegionId(1)),
            },
            FaultStep {
                at: secs(40),
                fault: FaultKind::HealAll,
            },
        ],
    );
    let cfg = ChaosConfig {
        seed: 666,
        run_for: secs(50),
        ..ChaosConfig::default()
    };
    let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
    assert!(outcome.passed(), "{}", outcome.render());
}

/// The acceptance gate for the parallel-commit checker coverage: with the
/// intentionally injected premature-ack bug armed, the coordinator acks a
/// parallel commit as soon as the STAGING record commits, without waiting
/// for the in-flight pipelined writes. A multi-range transaction whose
/// second write is delayed (or bumped to a later timestamp) past the ack
/// then violates atomicity: fresh reads miss an acknowledged write, and
/// commit timestamps are reported below already-completed operations. The
/// offline checker must catch it and name the seed.
#[cfg(feature = "injected-bug")]
#[test]
fn injected_premature_ack_bug_is_caught() {
    let bounds = ScheduleBounds::default();
    let schedule = FaultSchedule::random(1, &bounds);
    let cfg = ChaosConfig {
        seed: 1,
        run_for: schedule.span() + secs(10),
        arm_premature_ack_bug: true,
        // The online monitors would panic on the bug; this test is about
        // the *offline checker* catching it.
        strict_monitors: false,
        ..ChaosConfig::default()
    };
    let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
    assert!(
        !outcome.passed(),
        "the armed premature-ack bug must be detected"
    );
    let report = &outcome.report;
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.kind == "stale-fresh-read" || v.kind == "real-time-order"),
        "{}",
        outcome.render()
    );
    assert!(outcome.render().contains("seed 1"), "{}", outcome.render());
}

/// Control for the premature-ack test: the identical run without the bug
/// armed (same seed, same schedule, same relaxed monitors) is clean — the
/// bug is the only difference.
#[test]
fn premature_ack_scenario_without_bug_is_clean() {
    let bounds = ScheduleBounds::default();
    let schedule = FaultSchedule::random(1, &bounds);
    let cfg = ChaosConfig {
        seed: 1,
        run_for: schedule.span() + secs(10),
        strict_monitors: false,
        ..ChaosConfig::default()
    };
    let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
    assert!(outcome.passed(), "{}", outcome.render());
}

/// Parallel commits under coordinator failure: every schedule ends with a
/// dedicated gateway-crash block, killing whatever transactions that node
/// was coordinating — including ones caught between the STAGING record and
/// the explicit commit, whose intents only contender-driven status
/// recovery can release. Histories must stay serializable and the online
/// invariant monitors stay strict.
#[test]
fn coordinator_crash_schedules_produce_clean_histories() {
    let bounds = ScheduleBounds {
        coordinator_crash: true,
        ..ScheduleBounds::default()
    };
    for seed in 1..=20u64 {
        let schedule = FaultSchedule::random(seed, &bounds);
        let cfg = ChaosConfig {
            seed,
            run_for: schedule.span() + secs(10),
            ..ChaosConfig::default()
        };
        let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
        assert!(
            outcome.passed(),
            "seed {seed} failed:\n{}\n{schedule}",
            outcome.render()
        );
        assert!(
            outcome.ops_ok > 100,
            "seed {seed}: workload barely ran ({} ok ops)",
            outcome.ops_ok
        );
    }
}

//! Property tests for parallel-commit status recovery.
//!
//! Each case drives one multi-range "victim" transaction through a
//! parallel commit while a randomized crash — of the coordinator's
//! gateway, the anchor (transaction-record) leaseholder, or the other
//! write's leaseholder — lands at a randomized point spanning every
//! STAGING stage: before the intents arrive, during stage evaluation,
//! between the STAGING ack and the explicit commit, and after. Reader
//! transactions contend on the victim's keys so any abandoned STAGING
//! record is found and driven through status recovery.
//!
//! Invariants checked at quiescence, whatever the crash point:
//!
//! * **Exactly one resolution** — every replica of the anchor range that
//!   holds the victim's record agrees on a single *finalized* status
//!   (never still Pending/Staging, never Committed on one replica and
//!   Aborted on another).
//! * **Atomicity** — both keys carry the victim's value or neither does,
//!   and the visible state matches the record's verdict.
//! * **Ack coherence** — a client-visible commit implies the record
//!   finalized as committed; a definitive `TxnAborted` implies it did
//!   not. Once any reader observes the victim's value, no later reader
//!   regresses to the pre-victim value.

use std::cell::RefCell;
use std::rc::Rc;

use mr_chaos::{build_chaos_cluster, ChaosConfig};
use mr_kv::cluster::Cluster;
use mr_kv::FaultKind;
use mr_proto::{Key, KvError, TxnId, TxnStatus, Value};
use mr_sim::{NodeId, SimDuration, SimTime};
use proptest::prelude::*;

const ZS_KEY: &str = "zs/recovery";
const RS_KEY: &str = "rs/recovery";
const INIT: &str = "init";
const VICTIM: &str = "victim";

fn secs(s: u64) -> SimTime {
    SimTime(SimDuration::from_secs(s).nanos())
}

#[derive(Clone, Copy, Debug)]
enum CrashTarget {
    /// The victim's gateway: the coordinator dies mid-commit.
    Gateway,
    /// The leaseholder of the anchor range holding the STAGING record.
    AnchorLeaseholder,
    /// The leaseholder of the other (non-anchor) written range.
    OtherLeaseholder,
}

#[derive(Clone, Debug, Default)]
struct Observed {
    /// Client-visible victim outcome: Some(Ok(ts)) committed,
    /// Some(Err(_)) failed/ambiguous, None = no reply (coordinator died
    /// with the continuation chain severed by timeouts).
    victim: Option<Result<(), String>>,
    victim_definitely_aborted: bool,
    /// (key, value) pairs seen by reader transactions, in real-time order.
    reads: Vec<(String, Option<String>)>,
}

fn parse(v: &Option<Value>) -> Option<String> {
    v.as_ref()
        .map(|v| String::from_utf8_lossy(&v.0).into_owned())
}

/// One contending read of `key` from `gateway`; retries are left to the
/// routing layer, failures are ignored (the read exists to trigger
/// pushes, its observation is best-effort).
fn contend_read(c: &mut Cluster, gateway: NodeId, key: &'static str, obs: Rc<RefCell<Observed>>) {
    let h = c.txn_begin(gateway);
    c.txn_get(
        h,
        Key::from(key),
        Box::new(move |c, res| match res {
            Ok(v) => {
                obs.borrow_mut().reads.push((key.to_string(), parse(&v)));
                c.txn_commit(h, Box::new(|_, _| {}));
            }
            Err(_) => c.txn_rollback(h, Box::new(|_, _| {})),
        }),
    );
}

/// Run one crash-point scenario to quiescence and return the observations
/// plus the victim's finalized record statuses across the anchor replicas.
fn run_case(
    seed: u64,
    target: CrashTarget,
    crash_delay: SimDuration,
) -> (Observed, Vec<Option<TxnStatus>>, TxnId, bool) {
    let cfg = ChaosConfig {
        seed,
        ..ChaosConfig::default()
    };
    let mut c = build_chaos_cluster(&cfg);
    c.preload(Key::from(ZS_KEY), Value::from(INIT));
    c.preload(Key::from(RS_KEY), Value::from(INIT));
    c.run_until(secs(3));

    let anchor_desc = c.registry().lookup(&Key::from(ZS_KEY)).expect("zs range");
    let (anchor_range, anchor_lh) = (anchor_desc.id, anchor_desc.leaseholder);
    let other_lh = c
        .registry()
        .lookup(&Key::from(RS_KEY))
        .expect("rs range")
        .leaseholder;
    // Coordinate from a remote region so commit RPCs cross the WAN and
    // the crash window spans distinct STAGING stages.
    let victim_gateway = NodeId(3);
    let crash_node = match target {
        CrashTarget::Gateway => victim_gateway,
        CrashTarget::AnchorLeaseholder => anchor_lh,
        CrashTarget::OtherLeaseholder => other_lh,
    };

    let obs = Rc::new(RefCell::new(Observed::default()));
    let victim_id = Rc::new(RefCell::new(None::<TxnId>));

    // The victim: a multi-range write issued at t=5s.
    let vobs = obs.clone();
    let vid = victim_id.clone();
    c.schedule(
        SimDuration::from_secs(2),
        Box::new(move |c| {
            let h = c.txn_begin(victim_gateway);
            *vid.borrow_mut() = Some(h.id);
            c.txn_put(
                h,
                Key::from(ZS_KEY),
                Some(Value::from(VICTIM)),
                Box::new(move |c, res| match res {
                    Ok(()) => c.txn_put(
                        h,
                        Key::from(RS_KEY),
                        Some(Value::from(VICTIM)),
                        Box::new(move |c, res| match res {
                            Ok(()) => c.txn_commit(
                                h,
                                Box::new(move |_, res| {
                                    let mut o = vobs.borrow_mut();
                                    o.victim = Some(match &res {
                                        Ok(_) => Ok(()),
                                        Err(e) => Err(format!("{e:?}")),
                                    });
                                    if let Err(KvError::TxnAborted { .. }) = &res {
                                        o.victim_definitely_aborted = true;
                                    }
                                }),
                            ),
                            Err(e) => {
                                vobs.borrow_mut().victim = Some(Err(format!("{e:?}")));
                                c.txn_rollback(h, Box::new(|_, _| {}));
                            }
                        }),
                    ),
                    Err(e) => {
                        vobs.borrow_mut().victim = Some(Err(format!("{e:?}")));
                        c.txn_rollback(h, Box::new(|_, _| {}));
                    }
                }),
            );
        }),
    );

    // The crash lands at a randomized offset from the victim's start,
    // spanning every STAGING stage; the node restarts 4s later.
    c.schedule_fault(
        SimDuration::from_secs(2) + crash_delay,
        FaultKind::CrashNode(crash_node),
        None,
    );
    c.schedule_fault(
        SimDuration::from_secs(6) + crash_delay,
        FaultKind::RestartNode(crash_node),
        None,
    );

    // Contending readers from a third-region gateway: they push whatever
    // intent or STAGING record the crash abandoned, driving recovery.
    for i in 0..10u64 {
        let obs_a = obs.clone();
        let obs_b = obs.clone();
        c.schedule(
            SimDuration::from_secs(3 + 2 * i),
            Box::new(move |c| contend_read(c, NodeId(6), ZS_KEY, obs_a)),
        );
        c.schedule(
            SimDuration::from_secs(4 + 2 * i),
            Box::new(move |c| contend_read(c, NodeId(6), RS_KEY, obs_b)),
        );
    }

    c.run_until(secs(40));
    // Final settled reads of both keys, after every fault healed.
    for key in [ZS_KEY, RS_KEY] {
        let obs_f = obs.clone();
        c.schedule(
            SimDuration::from_millis(10),
            Box::new(move |c| contend_read(c, NodeId(0), key, obs_f)),
        );
    }
    c.run_until(secs(45));
    c.run_until_quiescent(secs(55));

    let victim = victim_id.borrow().expect("victim txn began");
    let statuses: Vec<Option<TxnStatus>> = c
        .registry()
        .get(anchor_range)
        .expect("anchor range")
        .replica_nodes()
        .collect::<Vec<_>>()
        .into_iter()
        .map(|n| {
            c.node(n)
                .replicas
                .get(&anchor_range)
                .and_then(|rep| rep.txn_records.get(&victim))
                .map(|rec| rec.status)
        })
        .collect();
    let obs = obs.borrow().clone();
    let any_record = statuses.iter().any(|s| s.is_some());
    (obs, statuses, victim, any_record)
}

fn check_case(seed: u64, target: CrashTarget, crash_delay_ms: u64) -> Result<(), TestCaseError> {
    let crash_delay = SimDuration::from_millis(crash_delay_ms);
    let (obs, statuses, victim, any_record) = run_case(seed, target, crash_delay);
    let ctx = format!(
        "seed {seed} target {target:?} delay {crash_delay_ms}ms txn {victim}: \
         victim={:?} statuses={statuses:?} reads={:?}",
        obs.victim, obs.reads
    );

    // Exactly one resolution: any replica holding the record agrees on a
    // single finalized verdict.
    let verdicts: Vec<TxnStatus> = statuses.iter().flatten().copied().collect();
    prop_assert!(
        verdicts.windows(2).all(|w| w[0] == w[1]),
        "split verdict: {ctx}"
    );
    for s in &verdicts {
        prop_assert!(
            s.is_finalized(),
            "record left unfinalized at quiescence: {ctx}"
        );
    }
    let committed = verdicts.first() == Some(&TxnStatus::Committed);

    // Atomicity: the final settled reads (the last observation of each
    // key) both carry the victim's value or both carry the initial one.
    let last = |key: &str| {
        obs.reads
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.clone())
    };
    let (zs_final, rs_final) = (last(ZS_KEY), last(RS_KEY));
    prop_assert!(
        zs_final.is_some() && rs_final.is_some(),
        "no final reads: {ctx}"
    );
    if committed {
        prop_assert_eq!(
            zs_final.as_deref(),
            Some(VICTIM),
            "committed but invisible: {}",
            ctx
        );
        prop_assert_eq!(
            rs_final.as_deref(),
            Some(VICTIM),
            "committed but invisible: {}",
            ctx
        );
    } else {
        prop_assert_eq!(
            zs_final.as_deref(),
            Some(INIT),
            "aborted but visible: {}",
            ctx
        );
        prop_assert_eq!(
            rs_final.as_deref(),
            Some(INIT),
            "aborted but visible: {}",
            ctx
        );
    }

    // Ack coherence.
    if let Some(Ok(())) = &obs.victim {
        prop_assert!(any_record, "acked with no record: {ctx}");
        prop_assert!(committed, "acked but not committed: {ctx}");
    }
    if obs.victim_definitely_aborted {
        prop_assert!(!committed, "TxnAborted surfaced but committed: {ctx}");
    }

    // No reader regresses: once the victim's value is observed on a key,
    // every later read of that key observes it too (single writer).
    for key in [ZS_KEY, RS_KEY] {
        let mut seen_victim = false;
        for (k, v) in &obs.reads {
            if k != key {
                continue;
            }
            if seen_victim {
                prop_assert_eq!(
                    v.as_deref(),
                    Some(VICTIM),
                    "value regressed on {}: {}",
                    key,
                    ctx
                );
            }
            if v.as_deref() == Some(VICTIM) {
                seen_victim = true;
            }
        }
        if seen_victim {
            prop_assert!(committed, "readers saw an aborted write on {key}: {ctx}");
        }
    }
    Ok(())
}

fn arb_target() -> impl Strategy<Value = CrashTarget> {
    prop_oneof![
        Just(CrashTarget::Gateway),
        Just(CrashTarget::AnchorLeaseholder),
        Just(CrashTarget::OtherLeaseholder),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Whatever the crash point, the victim transaction resolves exactly
    /// once, atomically, and consistently with what the client was told.
    #[test]
    fn every_staging_crash_point_resolves_exactly_once(
        seed in 1u64..=20_000,
        target in arb_target(),
        // 0..300ms after the victim starts: covers the intent RPCs in
        // flight (~31ms one way), stage evaluation, the window between
        // STAGING ack (~64ms) and the explicit commit (~190ms), and after.
        crash_delay_ms in 0u64..=300,
    ) {
        check_case(seed, target, crash_delay_ms)?;
    }
}

/// Deterministic corner pins on top of the random sweep: the classic
/// coordinator-death windows at each boundary of the commit protocol.
#[test]
fn pinned_coordinator_crash_windows() {
    for (seed, delay_ms) in [(11u64, 0u64), (12, 35), (13, 70), (14, 130), (15, 250)] {
        check_case(seed, CrashTarget::Gateway, delay_ms)
            .unwrap_or_else(|e| panic!("seed {seed} delay {delay_ms}: {e:?}"));
    }
}

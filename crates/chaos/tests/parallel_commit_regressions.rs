//! Pinned regression seeds for the parallel-commit path.
//!
//! Each seed here once produced a checker violation during development and
//! is pinned against the exact commit-mode matrix that exposed it:
//!
//! * **Seed 5** (crash-heavy schedule): the recovery probe (`QueryIntent`)
//!   must not trust a deposed leaseholder's lock table — an eval-time lock
//!   entry can describe a doomed proposal whose retry re-evaluated
//!   elsewhere at a higher timestamp. Trusting it let a contender recover
//!   the record as committed at the stale timestamp while the coordinator
//!   restaged: two verdicts for one transaction.
//! * **Seed 30029** (clock-skew-only schedule, found by the schedule
//!   proptest): deciding the probe via a raft proposal is also unsound —
//!   a pipelined write can evaluate after the probe proposes but before
//!   it applies, slotting the write after the probe in the log. Recovery
//!   aborted while the write applied below the staged timestamp and the
//!   coordinator acked.
//!
//! The fix for both is the three-way eval-time probe: applied intent →
//! found; lock held by the probed txn → in-flight (retry); neither →
//! a miss made stable by bumping the timestamp cache at evaluation.

use mr_chaos::{run_chaos, ChaosConfig, CheckerConfig, FaultSchedule, ScheduleBounds};
use mr_sim::SimDuration;

fn run(seed: u64, pipelined: bool, parallel: bool) -> bool {
    let bounds = ScheduleBounds::default();
    let schedule = FaultSchedule::random(seed, &bounds);
    let cfg = ChaosConfig {
        seed,
        run_for: schedule.span() + SimDuration::from_secs(10),
        pipelined_writes: pipelined,
        parallel_commits: parallel,
        ..ChaosConfig::default()
    };
    let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
    if !outcome.passed() {
        eprintln!(
            "seed {seed} pipelined={pipelined} parallel={parallel}:\n{}",
            outcome.render()
        );
    }
    outcome.passed()
}

#[test]
fn seed5_legacy() {
    assert!(run(5, false, false));
}

#[test]
fn seed5_pipeline_only() {
    assert!(run(5, true, false));
}

#[test]
fn seed5_parallel() {
    assert!(run(5, true, true));
}

#[test]
fn seed30029_parallel() {
    assert!(run(30029, true, true));
}

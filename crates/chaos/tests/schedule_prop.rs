//! Property tests over seeded fault schedules: generation is deterministic
//! and well-formed under arbitrary bounds, the same seed replays a
//! byte-identical history through the full cluster, and quorum-respecting
//! random schedules always produce checker-clean histories.

use mr_chaos::{run_chaos, ChaosConfig, CheckerConfig, FaultSchedule, ScheduleBounds};
use mr_kv::FaultKind;
use mr_sim::SimDuration;
use proptest::prelude::*;

fn arb_bounds() -> impl Strategy<Value = ScheduleBounds> {
    (1u32..=4, any::<bool>(), 0i64..=125_000_000, 2u64..=12).prop_map(
        |(blocks, allow_region_crash, max_skew_nanos, hold_secs)| ScheduleBounds {
            blocks,
            allow_region_crash,
            max_skew_nanos,
            hold: SimDuration::from_secs(hold_secs),
            ..ScheduleBounds::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Schedule derivation is a pure function of (seed, bounds), and every
    /// derived schedule is well-formed: alternating disrupt/heal blocks,
    /// non-decreasing offsets, skews within bounds, region crashes only
    /// when allowed, and a terminal `HealAll`.
    #[test]
    fn derived_schedules_are_deterministic_and_well_formed(
        seed in 0u64..=100_000,
        bounds in arb_bounds(),
    ) {
        let a = FaultSchedule::random(seed, &bounds);
        let b = FaultSchedule::random(seed, &bounds);
        prop_assert_eq!(format!("{a}"), format!("{b}"));

        prop_assert_eq!(a.steps.len() as u32, bounds.blocks * 2 + 1);
        let mut prev = SimDuration::ZERO;
        for step in &a.steps {
            prop_assert!(step.at >= prev, "offsets must be non-decreasing");
            prev = step.at;
            match step.fault {
                FaultKind::SkewClock { skew_nanos, .. } => {
                    prop_assert!(skew_nanos.abs() <= bounds.max_skew_nanos);
                }
                FaultKind::CrashRegion(_) => prop_assert!(bounds.allow_region_crash),
                _ => {}
            }
        }
        for pair in a.steps.chunks(2) {
            if pair.len() == 2 {
                prop_assert!(!pair[0].fault.is_heal());
                prop_assert!(pair[1].fault.is_heal());
            }
        }
        prop_assert_eq!(&a.steps.last().unwrap().fault, &FaultKind::HealAll);
        // Disruption windows cover exactly the blocks.
        let windows = a.disruption_windows();
        prop_assert_eq!(windows.len() as u32, bounds.blocks);
        prop_assert!(windows.iter().all(|(from, until)| from < until));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, .. ProptestConfig::default() })]

    /// One seed, one history: two full cluster runs under the same seeded
    /// schedule export byte-identical histories (the replay guarantee every
    /// violation report relies on), and any other seed diverges.
    #[test]
    fn same_seed_exports_byte_identical_history(seed in 1u64..=50_000) {
        let bounds = ScheduleBounds { blocks: 1, ..ScheduleBounds::default() };
        let schedule = FaultSchedule::random(seed, &bounds);
        let cfg = ChaosConfig {
            seed,
            run_for: schedule.span() + SimDuration::from_secs(5),
            ..ChaosConfig::default()
        };
        let a = run_chaos(&cfg, &schedule, &CheckerConfig::default());
        let b = run_chaos(&cfg, &schedule, &CheckerConfig::default());
        let ja = a.history.export_json();
        prop_assert!(ja.len() > 1_000, "history suspiciously small");
        prop_assert_eq!(&ja, &b.history.export_json());

        let schedule2 = FaultSchedule::random(seed + 1, &bounds);
        let cfg2 = ChaosConfig { seed: seed + 1, ..cfg };
        let c = run_chaos(&cfg2, &schedule2, &CheckerConfig::default());
        prop_assert_ne!(&ja, &c.history.export_json());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// Quorum-respecting schedules (one disruption at a time, default
    /// bounds) must always yield a history the checker passes: every
    /// committed read observes the latest committed write at its
    /// timestamp, commit order respects real time, and no serialization
    /// cycle exists — whatever the seed.
    #[test]
    fn quorum_respecting_schedules_pass_the_checker(seed in 1u64..=50_000) {
        let bounds = ScheduleBounds { blocks: 2, ..ScheduleBounds::default() };
        let schedule = FaultSchedule::random(seed, &bounds);
        let cfg = ChaosConfig {
            seed,
            run_for: schedule.span() + SimDuration::from_secs(8),
            ..ChaosConfig::default()
        };
        let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
        prop_assert!(outcome.passed(), "seed {seed}:\n{}\n{schedule}", outcome.render());
        prop_assert!(outcome.ops_ok > 50, "workload barely ran: {}", outcome.ops_ok);
    }
}

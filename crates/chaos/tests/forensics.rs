//! Incident-bundle forensics, driven by the intentionally injected
//! follower-read bug (`--features injected-bug`): a violating run must
//! capture a bundle naming the violation, carrying implicated span
//! subtrees, and reproducing byte-identically under the same seed.
#![cfg(feature = "injected-bug")]

use mr_chaos::{run_chaos, ChaosConfig, ChaosOutcome, CheckerConfig, FaultSchedule, FaultStep};
use mr_kv::FaultKind;
use mr_sim::RegionId;
use mr_testutil::secs;

/// The canary scenario: isolate region 1 with the stale-read bug armed, so
/// partitioned follower reads return values above the closed frontier.
fn canary_run(seed: u64) -> ChaosOutcome {
    let schedule = FaultSchedule::scripted(
        "bug-hunt",
        vec![
            FaultStep {
                at: secs(10),
                fault: FaultKind::IsolateRegion(RegionId(1)),
            },
            FaultStep {
                at: secs(40),
                fault: FaultKind::HealAll,
            },
        ],
    );
    let cfg = ChaosConfig {
        seed,
        run_for: secs(50),
        arm_injected_bug: true,
        strict_monitors: false,
        tracing: true,
        ..ChaosConfig::default()
    };
    run_chaos(&cfg, &schedule, &CheckerConfig::default())
}

/// A clean run yields no bundle; the canary yields one with the expected
/// violation kind, the fault step in effect, and non-empty span forensics.
#[test]
fn canary_violation_produces_bundle_with_spans() {
    let outcome = canary_run(666);
    assert!(!outcome.passed(), "the armed bug must be detected");
    let bundle = outcome.bundle.as_ref().expect("violating run has a bundle");

    let manifest = bundle.file("manifest.json").expect("manifest");
    assert!(manifest.contains("\"seed\": 666"), "{manifest}");
    assert!(
        manifest.contains("\"first_violation\": \"stale-read-skew\"")
            || manifest.contains("\"first_violation\": \"serialization-cycle\""),
        "{manifest}"
    );

    let violations = bundle.file("violations.json").expect("violations");
    assert!(
        violations.contains("\"kind\": \"stale-read-skew\"")
            || violations.contains("\"kind\": \"serialization-cycle\""),
        "{violations}"
    );
    assert!(
        violations.contains("\"fault\": \"isolate region r1\""),
        "bundle must pin the schedule step in effect: {violations}"
    );

    // Implicated ops are carried in full, flagged against the window ops.
    let history = bundle.file("history_window.json").expect("history");
    assert!(history.contains("\"implicated\": true"), "{history}");

    // The traced run captured span subtrees around the violation.
    let spans = bundle.file("spans.json").expect("spans");
    assert!(
        spans.contains("\"name\": \"txn\""),
        "span section is empty or missing txn subtrees: {spans:.200}"
    );
    assert!(spans.contains("\"name\": \"rpc."), "{spans:.200}");

    // Supporting telemetry sections are present and non-trivial.
    for f in [
        "schedule.json",
        "events_window.json",
        "metrics_window.json",
        "ranges.json",
    ] {
        let body = bundle.file(f).unwrap_or_else(|| panic!("missing {f}"));
        assert!(body.len() > 10, "{f} is empty");
    }

    // Same scenario, bug disarmed: clean run, no bundle.
    let schedule = FaultSchedule::scripted(
        "bug-hunt-control",
        vec![
            FaultStep {
                at: secs(10),
                fault: FaultKind::IsolateRegion(RegionId(1)),
            },
            FaultStep {
                at: secs(40),
                fault: FaultKind::HealAll,
            },
        ],
    );
    let cfg = ChaosConfig {
        seed: 666,
        run_for: secs(50),
        tracing: true,
        ..ChaosConfig::default()
    };
    let clean = run_chaos(&cfg, &schedule, &CheckerConfig::default());
    assert!(clean.passed(), "control run must be clean");
    assert!(
        clean.bundle.is_none(),
        "clean run must not capture a bundle"
    );
}

/// The golden acceptance criterion: two same-seed canary runs produce
/// byte-identical bundles, and the bundle round-trips through a directory.
#[test]
fn bundle_is_byte_identical_across_same_seed_runs() {
    let b1 = canary_run(666).bundle.expect("bundle");
    let b2 = canary_run(666).bundle.expect("bundle");
    assert_eq!(
        b1.files().len(),
        b2.files().len(),
        "bundles differ in shape"
    );
    for ((n1, c1), (n2, c2)) in b1.files().iter().zip(b2.files().iter()) {
        assert_eq!(n1, n2, "file order diverged");
        assert_eq!(c1, c2, "{n1} diverged between same-seed runs");
    }
    assert_eq!(b1, b2);

    // A different seed still fails, but produces different forensics.
    let b3 = canary_run(667).bundle.expect("bundle");
    assert_ne!(
        b1.file("history_window.json"),
        b3.file("history_window.json"),
        "different seeds cannot share a history"
    );

    // write_to materializes every file.
    let dir = std::env::temp_dir().join(format!("mr-bundle-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = b1.write_to(&dir).expect("write bundle");
    for (name, contents) in b1.files() {
        let on_disk = std::fs::read_to_string(out.join(name)).expect(name);
        assert_eq!(&on_disk, contents);
    }
    std::fs::remove_dir_all(&dir).ok();
}

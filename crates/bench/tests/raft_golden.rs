//! Golden tests for the raft-probe export: the JSON document must carry
//! the expected schema, show the batching and quiescence structure the
//! probe exists to guard, and be byte-identical across same-seed runs
//! (the determinism contract every BENCH_*.json export obeys).

use mr_bench::{raft_probe, raft_probe_json};

#[test]
fn raft_probe_export_has_expected_schema_and_structure() {
    let r = raft_probe(7, 6, 20);
    let json = raft_probe_json(&r);
    for key in [
        "\"batched\"",
        "\"unbatched\"",
        "\"commands\"",
        "\"entries\"",
        "\"mean_occupancy\"",
        "\"proposals_per_sec\"",
        "\"txns\"",
        "\"read_fast_path\"",
        "\"quiescence\"",
        "\"cold_ranges\"",
        "\"hb_per_sec_off\"",
        "\"hb_per_sec_on\"",
        "\"suppression\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    // Both phases committed every transaction and served every opening
    // read off the leaseholder fast path.
    assert_eq!(r.batched.txns, r.unbatched.txns);
    assert_eq!(r.batched.read_fast_path, r.batched.txns);
    assert_eq!(r.unbatched.read_fast_path, r.unbatched.txns);
    // Same command stream, fewer consensus rounds: the flush window must
    // lift occupancy above both the floor and the zero-window baseline.
    assert_eq!(r.batched.commands, r.unbatched.commands);
    assert!(r.batched.entries < r.unbatched.entries, "{json}");
    assert!(r.batched.mean_occupancy > 1.5, "{json}");
    assert!(
        r.batched.mean_occupancy > r.unbatched.mean_occupancy,
        "{json}"
    );
    // Quiescence collapses the idle heartbeat rate by ≥10x.
    assert!(r.hb_per_sec_off > 0.0, "{json}");
    assert!(r.heartbeat_suppression >= 10.0, "{json}");
}

#[test]
fn raft_probe_export_is_deterministic_across_same_seed_runs() {
    let a = raft_probe_json(&raft_probe(3, 4, 10));
    let b = raft_probe_json(&raft_probe(3, 4, 10));
    assert_eq!(a, b, "same-seed exports diverged");
}

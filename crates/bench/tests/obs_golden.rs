//! Golden tests for the observability-probe export: the JSON document
//! must carry the expected schema, show the heat-ranking and attribution
//! structure the probe exists to guard, and be byte-identical across
//! same-seed runs (the determinism contract every BENCH_*.json export
//! obeys — here it also pins the new `hot_ranges` / `metrics_history` /
//! `slow_txns` exports).

use mr_bench::{obs_probe, obs_probe_json, OBS_READ_HZ, OBS_WRITE_HZ};

#[test]
fn obs_probe_export_has_expected_schema_and_structure() {
    // 40 sim-seconds = four EWMA half-lives: the decayed rate converges to
    // within ~6% of the driven rate, inside the 10% gate.
    let r = obs_probe(7, 40, 8);
    let json = obs_probe_json(&r);
    for key in [
        "\"skew\"",
        "\"hot_range\"",
        "\"driven_qps_milli\"",
        "\"hot_ranges\"",
        "\"rates\"",
        "\"expected_milli\"",
        "\"fine_milli\"",
        "\"coarse_milli\"",
        "\"attribution\"",
        "\"named_fraction\"",
        "\"instrument_count\"",
        "\"slow_txns\"",
        "\"hot_ranges_export\"",
        "\"metrics_history\"",
        "\"fine_dropped\"",
        "\"coarse\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    // The skewed range ranks first with a decayed QPS within 10% of the
    // open-loop rate the probe actually drove.
    let top = r.hot.first().expect("heat ranking is empty");
    assert_eq!(top.range, r.hot_range, "{json}");
    let driven = (OBS_READ_HZ * 1000) as f64;
    assert!(
        (top.qps_milli as f64 - driven).abs() <= 0.10 * driven,
        "decayed QPS {} vs driven {driven}: {json}",
        top.qps_milli
    );
    // The warm range is tracked too, well below the hot one.
    assert!(r.hot.iter().any(|s| s.range == r.warm_range), "{json}");
    assert!(top.qps_milli > 2 * (OBS_WRITE_HZ * 1000), "{json}");
    // Windowed rates agree with the driven commit rate at both
    // resolutions.
    let expected = r.expected_commit_rate_milli as f64;
    for rate in [r.commit_rate_fine_milli, r.commit_rate_coarse_milli] {
        assert!(
            (rate as f64 - expected).abs() <= 0.10 * expected,
            "rate {rate} vs {expected}: {json}"
        );
    }
    assert!(r.fine_samples > r.coarse_samples, "{json}");
    assert!(r.coarse_samples >= 2, "{json}");
    // Named components explain essentially all transaction latency.
    assert!(r.attr_txns > 0, "{json}");
    assert!(r.named_fraction() >= 0.95, "{json}");
    assert_eq!(
        r.attr_named_nanos + r.attr_other_nanos,
        r.attr_total_nanos,
        "breakdown must sum exactly: {json}"
    );
}

#[test]
fn obs_probe_export_is_deterministic_across_same_seed_runs() {
    let a = obs_probe_json(&obs_probe(3, 15, 5));
    let b = obs_probe_json(&obs_probe(3, 15, 5));
    assert_eq!(a, b, "same-seed exports diverged");
}

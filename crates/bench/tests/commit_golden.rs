//! Golden tests for the commit-latency probe export: the JSON document
//! must carry the expected schema and be byte-identical across same-seed
//! runs (the determinism contract every BENCH_*.json export obeys).

use mr_bench::{commit_probe, commit_probe_json};

#[test]
fn commit_probe_export_has_expected_schema() {
    let rows = commit_probe(7, 4);
    // 3 scenarios × 3 gateway regions.
    assert_eq!(rows.len(), 9);
    let json = commit_probe_json(&rows);
    for key in [
        "\"rows\"",
        "\"gateway_region\"",
        "\"scenario\"",
        "\"rtt_ms\"",
        "\"legacy\"",
        "\"pipelined\"",
        "\"p50_ms\"",
        "\"p99_ms\"",
        "\"n\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    for scenario in ["\"single\"", "\"multi\"", "\"cross\""] {
        assert_eq!(
            json.matches(scenario).count(),
            3,
            "expected one {scenario} row per region"
        );
    }
    for region in ["us-east1", "us-west1", "europe-west2"] {
        assert_eq!(json.matches(region).count(), 3, "regions in {json}");
    }
    // Sanity on the measured structure: every cell recorded all txns, and
    // the pipelined multi-range commit beat the legacy one from every
    // remote gateway.
    for r in &rows {
        assert_eq!(r.legacy.n, 4);
        assert_eq!(r.pipelined.n, 4);
        if r.scenario == "multi" && r.rtt_ms > 1.0 {
            assert!(
                r.pipelined.p50_ms < r.legacy.p50_ms,
                "{}/{}: {} !< {}",
                r.gateway_region,
                r.scenario,
                r.pipelined.p50_ms,
                r.legacy.p50_ms
            );
        }
    }
}

#[test]
fn commit_probe_export_is_deterministic_across_same_seed_runs() {
    let a = commit_probe_json(&commit_probe(3, 3));
    let b = commit_probe_json(&commit_probe(3, 3));
    assert_eq!(a, b, "same-seed exports diverged");
}

//! Shared utilities for the experiment harnesses.
//!
//! Each bench target (`cargo bench --bench fig3_regional_vs_global`, …)
//! regenerates one table or figure of the paper's evaluation section,
//! printing the same rows/series the paper reports. Simulated experiments
//! are deterministic: same seed, same numbers.
//!
//! Scale: the paper runs 2.5M requests per experiment on real clusters;
//! the default here is a few hundred ops per client scaled for
//! single-digit-minute wall time. Set `MR_OPS_PER_CLIENT` (and
//! `MR_TPCC_SECS`) to raise the sample counts toward paper scale.

use mr_sim::SimRng;
use mr_workload::bulk;
use mr_workload::driver::{ClosedLoop, DriverStats, OpSource};
use mr_workload::ycsb::{self, YcsbTable};
use multiregion::{ClusterBuilder, RttMatrix, SimDuration, SimTime, SqlDb};

/// Ops each closed-loop client issues (paper: 50k).
pub fn ops_per_client() -> u64 {
    std::env::var("MR_OPS_PER_CLIENT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(600)
}

/// Simulated seconds of TPC-C load (paper: 10-minute runs).
pub fn tpcc_secs() -> u64 {
    std::env::var("MR_TPCC_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60)
}

/// The five paper regions (Table 1).
pub fn paper_regions() -> Vec<String> {
    RttMatrix::paper_table1_regions()
        .iter()
        .map(|s| s.to_string())
        .collect()
}

/// Three-region deployment of §7.2 (us-east1, europe-west2,
/// asia-northeast1) with the corresponding Table 1 RTTs.
pub fn three_regions() -> (Vec<String>, RttMatrix) {
    let names = vec![
        "us-east1".to_string(),
        "europe-west2".to_string(),
        "asia-northeast1".to_string(),
    ];
    // Table 1: UE-EW 87, UE-AN 155, EW-AN 222.
    let rtt = RttMatrix::from_upper_millis(3, &[&[87, 155], &[222]]);
    (names, rtt)
}

/// Build the paper's five-region cluster with a given max clock offset.
pub fn five_region_db(max_offset_ms: u64, seed: u64) -> SqlDb {
    ClusterBuilder::new()
        .paper_regions()
        .max_clock_offset(SimDuration::from_millis(max_offset_ms))
        .seed(seed)
        .build()
}

/// Build the three-region cluster of §7.2.
pub fn three_region_db(seed: u64) -> SqlDb {
    let (names, rtt) = three_regions();
    let mut b = ClusterBuilder::new().rtt_matrix(rtt).seed(seed);
    for n in &names {
        b = b.region(n, 3);
    }
    b.build()
}

/// Create the YCSB database (if absent) + table and bulk-load `keys` rows.
pub fn setup_ycsb(
    db: &mut SqlDb,
    regions: &[String],
    table: &str,
    variant: YcsbTable,
    keys: u64,
    home: impl Fn(u64) -> String,
) {
    let sess = db.session_in_region(&regions[0], None);
    let mut create = format!("CREATE DATABASE ycsb PRIMARY REGION \"{}\"", regions[0]);
    if regions.len() > 1 {
        create.push_str(" REGIONS ");
        let rest: Vec<String> = regions[1..].iter().map(|r| format!("\"{r}\"")).collect();
        create.push_str(&rest.join(", "));
    }
    if db.catalog.borrow().db("ycsb").is_none() {
        db.exec_sync(&sess, &create).unwrap();
    }
    let sess = db.session_in_region(&regions[0], Some("ycsb"));
    db.exec_sync(&sess, &ycsb::schema(table, variant, regions))
        .unwrap();
    if variant == YcsbTable::ManualPartition {
        for stmt in ycsb::manual_partition_ddl(table, regions) {
            db.exec_sync(&sess, &stmt).unwrap();
        }
    }
    let rows = ycsb::dataset(variant, keys, home);
    bulk::load_rows(db, "ycsb", table, &rows);
    // Let replication and closed timestamps settle.
    let t = db.cluster.now();
    db.cluster
        .run_until(SimTime(t.nanos() + SimDuration::from_secs(5).nanos()));
}

/// Register `clients_per_region` clients in every region with generators
/// produced by `mk(region_idx, client_idx_within_region, global_idx)`.
pub fn add_clients(
    db: &SqlDb,
    driver: &mut ClosedLoop,
    regions: &[String],
    db_name: &str,
    clients_per_region: usize,
    seed: &mut SimRng,
    mut mk: impl FnMut(usize, usize, usize) -> Box<dyn OpSource>,
) {
    let mut global = 0;
    for (ri, region) in regions.iter().enumerate() {
        for ci in 0..clients_per_region {
            let sess = db.session_in_region(region, Some(db_name));
            driver.add_client(sess, seed.fork(), mk(ri, ci, global));
            global += 1;
        }
    }
}

/// Run the driver to completion (clients stop via their own op budgets).
pub fn run_to_completion(db: &mut SqlDb, driver: &mut ClosedLoop) {
    let deadline = SimTime(db.cluster.now().nanos() + SimDuration::from_secs(1_000_000).nanos());
    driver.run(db, deadline);
}

/// Print a paper-style latency row.
pub fn print_row(name: &str, rec: &mut mr_sim::LatencyRecorder) {
    if rec.is_empty() {
        println!("{name:<42} (no samples)");
        return;
    }
    let s = rec.summary();
    println!("{name:<42} {}", s.row());
}

/// Print a latency CDF as `(percentile, ms)` pairs (Fig. 5 style).
pub fn print_cdf(name: &str, rec: &mut mr_sim::LatencyRecorder) {
    if rec.is_empty() {
        println!("{name:<28} (no samples)");
        return;
    }
    let quantiles = [
        0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.99, 0.999, 1.0,
    ];
    let cdf = rec.cdf();
    print!("{name:<28}");
    for (q, ms) in cdf.series(&quantiles) {
        print!(" {:>5.1}%:{ms:>8.1}", q * 100.0);
    }
    println!();
}

/// JSON object for one merged latency histogram (nanosecond values).
pub fn obs_hist_json(h: &mr_obs::Histogram) -> String {
    format!(
        "{{\"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
        h.count(),
        h.quantile(0.5),
        h.quantile(0.99),
        h.max()
    )
}

/// Write a finished run's observability exports next to the bench output:
/// `<prefix>_metrics.json` / `.csv` (registry dump), `<prefix>_scrapes.csv`
/// (time series), `<prefix>_events.json` (cluster event log),
/// `<prefix>_replication_report.json` (conformance report), and
/// `<prefix>_trace.json` (Chrome trace, only when spans were recorded).
/// All are deterministic for a fixed seed.
pub fn write_obs_exports(db: &SqlDb, prefix: &str) {
    let obs = &db.cluster.obs;
    std::fs::write(format!("{prefix}_metrics.json"), obs.registry.dump_json()).unwrap();
    std::fs::write(format!("{prefix}_metrics.csv"), obs.registry.dump_csv()).unwrap();
    std::fs::write(format!("{prefix}_scrapes.csv"), obs.scraper.export_csv()).unwrap();
    std::fs::write(
        format!("{prefix}_events.json"),
        db.cluster.events.export_json(),
    )
    .unwrap();
    std::fs::write(
        format!("{prefix}_replication_report.json"),
        db.cluster.replication_report().export_json(),
    )
    .unwrap();
    if !obs.tracer.is_empty() {
        std::fs::write(
            format!("{prefix}_trace.json"),
            obs.tracer.export_chrome_json(),
        )
        .unwrap();
    }
}

/// Errors-to-stderr summary for a finished run.
pub fn report_errors(name: &str, stats: &DriverStats) {
    if stats.failed > 0 {
        eprintln!(
            "[{name}] {} / {} ops failed: {:?}",
            stats.failed,
            stats.failed + stats.completed,
            stats.errors
        );
    }
}

// ---------------------------------------------------------------------------
// Commit-latency probe (parallel commits ablation)
// ---------------------------------------------------------------------------

/// One measured latency cell: client-observed transaction latency from
/// `txn_begin` to the commit acknowledgement, in simulated milliseconds.
pub struct CommitCell {
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub n: usize,
}

/// One probe row: a (gateway region, write-shape) scenario measured under
/// both commit modes against the home region's RTT.
pub struct CommitRow {
    pub gateway_region: String,
    /// `"single"`: one write — the legacy 1PC fast path already commits
    /// this in one round trip, so pipelining must merely not regress it.
    /// `"multi"`: writes to two ZONE-survivable ranges homed in the same
    /// region — the paper's 2-RTT→1-RTT headline (legacy flushes intents,
    /// then writes the record; parallel commits overlap them). `"cross"`:
    /// a ZONE-survivable plus a REGION-survivable write, whose WAN quorum
    /// dominates but still hides the commit-record round trip.
    pub scenario: &'static str,
    /// Gateway-region ↔ home-region round trip.
    pub rtt_ms: f64,
    pub legacy: CommitCell,
    pub pipelined: CommitCell,
}

fn quantile_ms(sorted_nanos: &[u64], q: f64) -> f64 {
    assert!(!sorted_nanos.is_empty());
    let idx = ((sorted_nanos.len() - 1) as f64 * q).round() as usize;
    sorted_nanos[idx] as f64 / 1e6
}

/// Drive `shapes.len()` transactions sequentially from `gateway`, each
/// writing the keys of its shape in order, and return the per-transaction
/// begin→commit-ack latencies (nanoseconds of simulated time).
fn drive_commit_txns(
    c: &mut mr_kv::Cluster,
    gateway: mr_sim::NodeId,
    shapes: Vec<Vec<mr_proto::Key>>,
) -> Vec<u64> {
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Drive {
        gateway: mr_sim::NodeId,
        remaining: Vec<Vec<mr_proto::Key>>,
        samples: Vec<u64>,
    }

    fn put_chain(
        c: &mut mr_kv::Cluster,
        h: mr_kv::TxnHandle,
        mut keys: std::vec::IntoIter<mr_proto::Key>,
        started: mr_sim::SimTime,
        st: Rc<RefCell<Drive>>,
    ) {
        match keys.next() {
            Some(key) => {
                let val = mr_proto::Value::from("probe");
                c.txn_put(
                    h,
                    key,
                    Some(val),
                    Box::new(move |c, res| {
                        res.unwrap_or_else(|e| panic!("probe put failed: {e}"));
                        put_chain(c, h, keys, started, st);
                    }),
                );
            }
            None => c.txn_commit(
                h,
                Box::new(move |c, res| {
                    res.unwrap_or_else(|e| panic!("probe commit failed: {e}"));
                    let dt = c.now().nanos() - started.nanos();
                    st.borrow_mut().samples.push(dt);
                    next_txn(c, st);
                }),
            ),
        }
    }

    fn next_txn(c: &mut mr_kv::Cluster, st: Rc<RefCell<Drive>>) {
        let (gateway, shape) = {
            let mut s = st.borrow_mut();
            if s.remaining.is_empty() {
                return;
            }
            (s.gateway, s.remaining.remove(0))
        };
        let started = c.now();
        let h = c.txn_begin(gateway);
        put_chain(c, h, shape.into_iter(), started, st);
    }

    let st = Rc::new(RefCell::new(Drive {
        gateway,
        remaining: shapes,
        samples: Vec::new(),
    }));
    next_txn(c, st.clone());
    let deadline = SimTime(c.now().nanos() + SimDuration::from_secs(600).nanos());
    c.run_until_quiescent(deadline);
    // Drain any straggling async intent resolutions before the next cell.
    let settle = SimTime(c.now().nanos() + SimDuration::from_secs(2).nanos());
    c.run_until(settle);
    Rc::try_unwrap(st)
        .ok()
        .expect("probe continuations still pending")
        .into_inner()
        .samples
}

/// Measure client-observed transaction latency (begin → commit ack) for
/// single-range and multi-range write transactions from every gateway
/// region, once with legacy synchronous commits and once with pipelining +
/// parallel commits. Deterministic for a fixed seed.
pub fn commit_probe(seed: u64, txns_per_cell: usize) -> Vec<CommitRow> {
    use mr_chaos::{build_chaos_cluster, ChaosConfig};
    use mr_kv::zone::{derive_zone_config, ClosedTsPolicy, PlacementPolicy, SurvivalGoal};

    let scenarios: [(&'static str, fn(u32, usize) -> Vec<mr_proto::Key>); 3] = [
        ("single", |r, i| {
            vec![mr_proto::Key::from(format!("zs/p{r}_{i}").as_str())]
        }),
        ("multi", |r, i| {
            vec![
                mr_proto::Key::from(format!("zs/p{r}_{i}").as_str()),
                mr_proto::Key::from(format!("za/p{r}_{i}").as_str()),
            ]
        }),
        ("cross", |r, i| {
            vec![
                mr_proto::Key::from(format!("zs/p{r}_{i}").as_str()),
                mr_proto::Key::from(format!("rs/p{r}_{i}").as_str()),
            ]
        }),
    ];

    // cells[scenario][region] -> (legacy, pipelined) samples.
    let mut cells: Vec<Vec<(Vec<u64>, Vec<u64>)>> = scenarios
        .iter()
        .map(|_| (0..3).map(|_| (Vec::new(), Vec::new())).collect())
        .collect();
    let mut rtts = [0.0f64; 3];
    let mut region_names = vec![String::new(); 3];

    for pipelined in [false, true] {
        let cfg = ChaosConfig {
            seed,
            pipelined_writes: pipelined,
            parallel_commits: pipelined,
            ..ChaosConfig::default()
        };
        let mut c = build_chaos_cluster(&cfg);
        // A second ZONE-survivable range homed alongside `zs/*`: the
        // `multi` scenario spans the two so the transaction cannot take
        // the 1PC fast path yet both intent quorums stay in-region.
        let za = derive_zone_config(
            mr_sim::RegionId(0),
            &[
                mr_sim::RegionId(0),
                mr_sim::RegionId(1),
                mr_sim::RegionId(2),
            ],
            SurvivalGoal::Zone,
            PlacementPolicy::Default,
            ClosedTsPolicy::Lag,
        );
        c.create_range(
            mr_proto::Span::new(mr_proto::Key::from("za/"), mr_proto::Key::from("za0")),
            za,
        )
        .expect("allocate za range");
        c.run_until(SimTime(SimDuration::from_secs(3).nanos()));
        for (si, (_, mk)) in scenarios.iter().enumerate() {
            for region in 0..3u32 {
                let gateway = mr_sim::NodeId(region * 3);
                if !pipelined {
                    region_names[region as usize] = c
                        .topology()
                        .region_name(mr_sim::RegionId(region))
                        .to_string();
                    rtts[region as usize] =
                        c.topology().nominal_rtt(gateway, mr_sim::NodeId(0)).nanos() as f64 / 1e6;
                }
                let shapes: Vec<Vec<mr_proto::Key>> = (0..txns_per_cell)
                    .map(|i| mk(region, i + if pipelined { txns_per_cell } else { 0 }))
                    .collect();
                let samples = drive_commit_txns(&mut c, gateway, shapes);
                assert_eq!(samples.len(), txns_per_cell, "probe txns went missing");
                let slot = &mut cells[si][region as usize];
                if pipelined {
                    slot.1 = samples;
                } else {
                    slot.0 = samples;
                }
            }
        }
    }

    let mut rows = Vec::new();
    for (si, (name, _)) in scenarios.iter().enumerate() {
        for region in 0..3usize {
            let (mut legacy, mut piped) =
                (cells[si][region].0.clone(), cells[si][region].1.clone());
            legacy.sort_unstable();
            piped.sort_unstable();
            rows.push(CommitRow {
                gateway_region: region_names[region].clone(),
                scenario: name,
                rtt_ms: rtts[region],
                legacy: CommitCell {
                    p50_ms: quantile_ms(&legacy, 0.5),
                    p99_ms: quantile_ms(&legacy, 0.99),
                    n: legacy.len(),
                },
                pipelined: CommitCell {
                    p50_ms: quantile_ms(&piped, 0.5),
                    p99_ms: quantile_ms(&piped, 0.99),
                    n: piped.len(),
                },
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Raft machinery probe (group commit + quiescence)
// ---------------------------------------------------------------------------

/// One batching phase: concurrent multi-range writers driven closed-loop,
/// Raft entry and command counts read from the registry afterwards.
pub struct RaftPhase {
    /// Commands proposed through the batched path.
    pub commands: u64,
    /// Raft entries those commands were coalesced into.
    pub entries: u64,
    /// `commands / entries` — group commit works when this exceeds 1.
    pub mean_occupancy: f64,
    /// Commands per simulated second (client-observed throughput proxy).
    pub proposals_per_sec: f64,
    /// Transactions the phase committed.
    pub txns: u64,
    /// Leaseholder reads served without a Raft proposal (each txn opens
    /// with one read, so this should equal `txns`).
    pub read_fast_path: u64,
}

/// The full probe: group-commit occupancy with and without a flush window,
/// plus heartbeat rates over a cold cluster with and without quiescence.
pub struct RaftProbeReport {
    /// Flush window of [`RAFT_PROBE_FLUSH_MS`] ms: concurrent proposals
    /// coalesce into multi-command entries.
    pub batched: RaftPhase,
    /// Zero flush window: only same-instant arrivals share an entry — the
    /// baseline the batched phase must beat on occupancy.
    pub unbatched: RaftPhase,
    /// Leaseholder reads served without a Raft proposal (read fast path)
    /// across both phases.
    pub read_fast_path: u64,
    /// Idle ranges in the quiescence A/B cluster.
    pub cold_ranges: u32,
    /// Heartbeat (empty AppendEntries) messages per simulated second over
    /// the idle window with quiescence disabled / enabled.
    pub hb_per_sec_off: f64,
    pub hb_per_sec_on: f64,
    /// `hb_off / max(hb_on, 1)` as totals — the suppression factor.
    pub heartbeat_suppression: f64,
}

/// Flush window used by the batched phase, in milliseconds.
pub const RAFT_PROBE_FLUSH_MS: u64 = 2;

/// The 3-region chaos topology with `zs/` + `za/` ZONE-survivable and
/// `rs/` REGION-survivable ranges homed in region 0, plus `cold<i>/`
/// ranges no workload ever touches.
fn raft_probe_cluster(
    seed: u64,
    flush: SimDuration,
    quiesce: bool,
    cold_ranges: u32,
) -> mr_kv::Cluster {
    use mr_kv::cluster::{Cluster, ClusterConfig};
    use mr_kv::zone::{derive_zone_config, ClosedTsPolicy, PlacementPolicy, SurvivalGoal};

    let regions = mr_sim::RttMatrix::paper_table1_regions();
    let topo = mr_sim::Topology::build(
        &regions[..3],
        3,
        mr_sim::RttMatrix::from_upper_millis(3, &[&[63, 87], &[132]]),
    );
    let mut c = Cluster::new(
        topo,
        ClusterConfig {
            seed,
            raft_flush_interval: flush,
            raft_quiescence: quiesce,
            ..ClusterConfig::default()
        },
    );
    let db_regions: Vec<mr_sim::RegionId> = (0..3).map(mr_sim::RegionId).collect();
    let home = mr_sim::RegionId(0);
    let zone = |c: &mut Cluster, start: &str, end: &str| {
        let zc = derive_zone_config(
            home,
            &db_regions,
            SurvivalGoal::Zone,
            PlacementPolicy::Default,
            ClosedTsPolicy::Lag,
        );
        c.create_range(
            mr_proto::Span::new(mr_proto::Key::from(start), mr_proto::Key::from(end)),
            zc,
        )
        .expect("allocate range");
    };
    zone(&mut c, "zs/", "zs0");
    zone(&mut c, "za/", "za0");
    let rs = derive_zone_config(
        home,
        &db_regions,
        SurvivalGoal::Region,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    );
    c.create_range(
        mr_proto::Span::new(mr_proto::Key::from("rs/"), mr_proto::Key::from("rs0")),
        rs,
    )
    .expect("allocate rs range");
    for i in 0..cold_ranges {
        let start = format!("cold{i}/");
        let end = format!("cold{i}0");
        zone(&mut c, &start, &end);
    }
    c
}

/// Drive `clients` concurrent closed-loop writers, each running its txn
/// shapes sequentially: read the first key (leaseholder fast path), write
/// every key, commit. Returns the committed-transaction count.
fn drive_concurrent_txns(
    c: &mut mr_kv::Cluster,
    clients: Vec<(mr_sim::NodeId, Vec<Vec<mr_proto::Key>>)>,
) -> u64 {
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Probe {
        gateway: mr_sim::NodeId,
        remaining: Vec<Vec<mr_proto::Key>>,
        committed: Rc<RefCell<u64>>,
    }

    fn put_chain(
        c: &mut mr_kv::Cluster,
        h: mr_kv::TxnHandle,
        mut keys: std::vec::IntoIter<mr_proto::Key>,
        st: Rc<RefCell<Probe>>,
    ) {
        match keys.next() {
            Some(key) => {
                let val = mr_proto::Value::from("raft-probe");
                c.txn_put(
                    h,
                    key,
                    Some(val),
                    Box::new(move |c, res| {
                        res.unwrap_or_else(|e| panic!("probe put failed: {e}"));
                        put_chain(c, h, keys, st);
                    }),
                );
            }
            None => c.txn_commit(
                h,
                Box::new(move |c, res| {
                    res.unwrap_or_else(|e| panic!("probe commit failed: {e}"));
                    *st.borrow_mut().committed.borrow_mut() += 1;
                    next_txn(c, st);
                }),
            ),
        }
    }

    fn next_txn(c: &mut mr_kv::Cluster, st: Rc<RefCell<Probe>>) {
        let (gateway, shape) = {
            let mut s = st.borrow_mut();
            if s.remaining.is_empty() {
                return;
            }
            (s.gateway, s.remaining.remove(0))
        };
        let h = c.txn_begin(gateway);
        let first = shape[0].clone();
        c.txn_get(
            h,
            first,
            Box::new(move |c, res| {
                res.unwrap_or_else(|e| panic!("probe get failed: {e}"));
                put_chain(c, h, shape.into_iter(), st);
            }),
        );
    }

    let committed = Rc::new(RefCell::new(0u64));
    for (gateway, shapes) in clients {
        let st = Rc::new(RefCell::new(Probe {
            gateway,
            remaining: shapes,
            committed: committed.clone(),
        }));
        next_txn(c, st);
    }
    let deadline = SimTime(c.now().nanos() + SimDuration::from_secs(600).nanos());
    c.run_until_quiescent(deadline);
    let n = *committed.borrow();
    n
}

/// One batching phase: 4 clients on each region-0 gateway, every txn
/// reading then writing one `zs/` and one `za/` key (multi-range, so the
/// STAGING record and second intent live in different Raft logs).
fn raft_batching_phase(seed: u64, flush: SimDuration, txns_per_client: usize) -> RaftPhase {
    let mut c = raft_probe_cluster(seed, flush, true, 0);
    c.run_until(SimTime(SimDuration::from_secs(3).nanos()));
    c.scrape_now();
    let before = c.metrics();
    let t0 = c.now();
    let mut clients = Vec::new();
    for node in 0..3u32 {
        for ci in 0..4u32 {
            let shapes: Vec<Vec<mr_proto::Key>> = (0..txns_per_client)
                .map(|i| {
                    vec![
                        mr_proto::Key::from(format!("zs/n{node}c{ci}_{i}").as_str()),
                        mr_proto::Key::from(format!("za/n{node}c{ci}_{i}").as_str()),
                    ]
                })
                .collect();
            clients.push((mr_sim::NodeId(node), shapes));
        }
    }
    let expected = clients.len() * txns_per_client;
    let txns = drive_concurrent_txns(&mut c, clients);
    assert_eq!(txns as usize, expected, "probe txns went missing");
    let dt_secs = (c.now().nanos() - t0.nanos()) as f64 / 1e9;
    c.scrape_now();
    let after = c.metrics();
    let commands = after.proposals_batched - before.proposals_batched;
    let entries = after.entries_proposed - before.entries_proposed;
    RaftPhase {
        commands,
        entries,
        mean_occupancy: commands as f64 / entries.max(1) as f64,
        proposals_per_sec: commands as f64 / dt_secs,
        txns,
        read_fast_path: after.read_fast_path - before.read_fast_path,
    }
}

/// Heartbeat messages per simulated second over a 20s idle window on a
/// cluster with `cold` untouched ranges, measured after a 5s settle.
fn raft_heartbeat_phase(seed: u64, quiesce: bool, cold: u32) -> (f64, u64) {
    let mut c = raft_probe_cluster(seed, SimDuration::ZERO, quiesce, cold);
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));
    let before = c.metrics().heartbeats_sent;
    let window = SimDuration::from_secs(20);
    c.run_until(SimTime(c.now().nanos() + window.nanos()));
    let total = c.metrics().heartbeats_sent - before;
    (total as f64 / 20.0, total)
}

/// Run the full raft probe: batched vs unbatched occupancy under
/// concurrent multi-range writers, and the quiescence heartbeat A/B over
/// `cold_ranges` idle ranges. Deterministic for a fixed seed.
pub fn raft_probe(seed: u64, txns_per_client: usize, cold_ranges: u32) -> RaftProbeReport {
    let batched = raft_batching_phase(
        seed,
        SimDuration::from_millis(RAFT_PROBE_FLUSH_MS),
        txns_per_client,
    );
    let unbatched = raft_batching_phase(seed, SimDuration::ZERO, txns_per_client);
    let read_fast_path = batched.read_fast_path + unbatched.read_fast_path;
    let (hb_per_sec_off, hb_off) = raft_heartbeat_phase(seed, false, cold_ranges);
    let (hb_per_sec_on, hb_on) = raft_heartbeat_phase(seed, true, cold_ranges);
    RaftProbeReport {
        batched,
        unbatched,
        read_fast_path,
        cold_ranges,
        hb_per_sec_off,
        hb_per_sec_on,
        heartbeat_suppression: hb_off as f64 / hb_on.max(1) as f64,
    }
}

/// Render the probe as the deterministic `BENCH_raft.json` document.
pub fn raft_probe_json(r: &RaftProbeReport) -> String {
    let phase = |p: &RaftPhase| {
        format!(
            "{{\"commands\": {}, \"entries\": {}, \"mean_occupancy\": {:.3}, \"proposals_per_sec\": {:.1}, \"txns\": {}, \"read_fast_path\": {}}}",
            p.commands, p.entries, p.mean_occupancy, p.proposals_per_sec, p.txns, p.read_fast_path
        )
    };
    format!(
        "{{\n  \"batched\": {},\n  \"unbatched\": {},\n  \"read_fast_path\": {},\n  \"quiescence\": {{\"cold_ranges\": {}, \"hb_per_sec_off\": {:.1}, \"hb_per_sec_on\": {:.1}, \"suppression\": {:.1}}}\n}}\n",
        phase(&r.batched),
        phase(&r.unbatched),
        r.read_fast_path,
        r.cold_ranges,
        r.hb_per_sec_off,
        r.hb_per_sec_on,
        r.heartbeat_suppression
    )
}

// ---------------------------------------------------------------------------
// Range lifecycle probe (splits + load-based rebalancing)
// ---------------------------------------------------------------------------

/// One lifecycle phase: a skewed remote workload against a keyspace that
/// starts as a single range homed far from its traffic.
pub struct SplitPhase {
    /// Transactions committed (fixed per phase; elapsed time varies).
    pub txns: u64,
    /// Transactions retried after a surgery- or lease-move-induced abort.
    pub retries: u64,
    /// Committed transactions per simulated second — the closed-loop
    /// throughput the phase sustained.
    pub ops_per_sec: f64,
    /// Live ranges when the workload drained.
    pub ranges: usize,
    /// `range_split` / `range_merge` / `lease_rebalance` events during the
    /// workload.
    pub splits: usize,
    pub merges: usize,
    pub lease_rebalances: usize,
    /// p99 of descriptor-surgery latency (propose → apply) in ms; 0 when
    /// no split happened.
    pub split_p99_ms: f64,
    /// The hottest range's share of total QPS at drain time, in milli
    /// (1000 = all load on one range — the static baseline by definition).
    pub hottest_share_milli: u64,
    /// Lifecycle ticks from workload start until the controller's last
    /// action — how fast the topology converged.
    pub convergence_ticks: u64,
    /// Live ranges after a 90s idle tail: cold-range merges should fold
    /// the split topology back down.
    pub ranges_after_idle: usize,
}

/// The full probe: the same workload with the lifecycle controller off
/// (static single range) and on (splits + rebalancing).
pub struct SplitProbeReport {
    pub baseline: SplitPhase,
    pub lifecycle: SplitPhase,
}

/// The split-probe cluster: 3-region paper corner, one REGION-survivable
/// range over the whole keyspace homed in region 0 — every client is in
/// regions 1 and 2, so the static topology pays cross-region RTT on each
/// op until the controller splits at the load median and moves each
/// half's lease toward its demand.
fn split_probe_cluster(seed: u64, lifecycle_on: bool) -> mr_kv::Cluster {
    use mr_kv::cluster::{Cluster, ClusterConfig, LifecycleConfig};
    use mr_kv::zone::{derive_zone_config, ClosedTsPolicy, PlacementPolicy, SurvivalGoal};

    let regions = mr_sim::RttMatrix::paper_table1_regions();
    let topo = mr_sim::Topology::build(
        &regions[..3],
        3,
        mr_sim::RttMatrix::from_upper_millis(3, &[&[63, 87], &[132]]),
    );
    let mut c = Cluster::new(
        topo,
        ClusterConfig {
            seed,
            // Descriptor surgery drops in-flight requests to the old
            // incarnation; they must time out and retry, not hang — and the
            // stall is pure dead time, so keep it just above the worst RTT.
            rpc_timeout: Some(SimDuration::from_millis(400)),
            lifecycle: LifecycleConfig {
                enabled: lifecycle_on,
                // ~12 remote closed-loop clients sustain 50-100 qps on the
                // single range; split well below that, and keep the
                // rebalance floor low enough that each post-split half
                // (half the traffic) still clears it. Tick and cooldown are
                // tightened so convergence is a prefix of the run, not the
                // whole run.
                split_qps_milli: 40_000,
                rebalance_min_qps_milli: 500,
                interval: SimDuration::from_secs(1),
                cooldown: SimDuration::from_secs(3),
                ..LifecycleConfig::default()
            },
            ..ClusterConfig::default()
        },
    );
    let db_regions: Vec<mr_sim::RegionId> = (0..3).map(mr_sim::RegionId).collect();
    let zc = derive_zone_config(
        mr_sim::RegionId(0),
        &db_regions,
        SurvivalGoal::Region,
        PlacementPolicy::Default,
        ClosedTsPolicy::Lag,
    );
    c.create_range(mr_proto::Span::all(), zc)
        .expect("allocate range");
    c
}

/// Drive closed-loop single-key read-write transactions, one txn per key
/// in each client's list, retrying a txn from scratch when descriptor
/// surgery or a lease move aborts it mid-flight. Returns `(committed,
/// retries)`.
fn drive_retry_txns(
    c: &mut mr_kv::Cluster,
    clients: Vec<(mr_sim::NodeId, Vec<mr_proto::Key>)>,
) -> (u64, u64) {
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Probe {
        gateway: mr_sim::NodeId,
        remaining: Vec<mr_proto::Key>,
        attempts: u32,
        committed: Rc<RefCell<u64>>,
        retries: Rc<RefCell<u64>>,
    }

    fn next_txn(c: &mut mr_kv::Cluster, st: Rc<RefCell<Probe>>) {
        let (gateway, key) = {
            let s = st.borrow();
            match s.remaining.last() {
                Some(k) => (s.gateway, k.clone()),
                None => return,
            }
        };
        let h = c.txn_begin(gateway);
        let st2 = Rc::clone(&st);
        let key2 = key.clone();
        c.txn_get(
            h,
            key.clone(),
            Box::new(move |c, res| match res {
                Err(_) => retry(c, h, st2),
                Ok(_) => {
                    let st3 = Rc::clone(&st2);
                    c.txn_put(
                        h,
                        key2,
                        Some(mr_proto::Value::from("split-probe")),
                        Box::new(move |c, res| match res {
                            Err(_) => retry(c, h, st3),
                            Ok(()) => {
                                let st4 = Rc::clone(&st3);
                                c.txn_commit(
                                    h,
                                    Box::new(move |c, res| match res {
                                        Err(_) => retry(c, h, st4),
                                        Ok(_) => {
                                            {
                                                let mut s = st4.borrow_mut();
                                                s.remaining.pop();
                                                s.attempts = 0;
                                                *s.committed.borrow_mut() += 1;
                                            }
                                            next_txn(c, st4);
                                        }
                                    }),
                                );
                            }
                        }),
                    );
                }
            }),
        );
    }

    fn retry(c: &mut mr_kv::Cluster, h: mr_kv::TxnHandle, st: Rc<RefCell<Probe>>) {
        {
            let mut s = st.borrow_mut();
            s.attempts += 1;
            *s.retries.borrow_mut() += 1;
            assert!(
                s.attempts < 50,
                "split probe txn stuck: 50 aborts in a row at gateway {}",
                s.gateway
            );
        }
        c.txn_rollback(h, Box::new(move |c, _| next_txn(c, st)));
    }

    let committed = Rc::new(RefCell::new(0u64));
    let retries = Rc::new(RefCell::new(0u64));
    for (gateway, keys) in clients {
        let st = Rc::new(RefCell::new(Probe {
            gateway,
            remaining: keys,
            attempts: 0,
            committed: committed.clone(),
            retries: retries.clone(),
        }));
        next_txn(c, st);
    }
    let deadline = SimTime(c.now().nanos() + SimDuration::from_secs(1_200).nanos());
    c.run_until_quiescent(deadline);
    let n = *committed.borrow();
    let r = *retries.borrow();
    (n, r)
}

/// Run one phase: 2 clients on each node of regions 1 and 2, each
/// committing `txns_per_client` single-key read-write transactions on its
/// own small key set (`u1/...` sorts wholly before `u2/...`, so the load
/// median falls on the region boundary).
fn split_phase(seed: u64, lifecycle_on: bool, txns_per_client: usize) -> SplitPhase {
    let mut c = split_probe_cluster(seed, lifecycle_on);
    c.run_until(SimTime(SimDuration::from_secs(5).nanos()));
    let mut clients = Vec::new();
    for region in 1..3u32 {
        for node in (region * 3)..(region * 3 + 3) {
            for ci in 0..2u32 {
                let keys: Vec<mr_proto::Key> = (0..txns_per_client)
                    .map(|i| {
                        mr_proto::Key::from(format!("u{region}/n{node}c{ci}k{}", i % 4).as_str())
                    })
                    .collect();
                clients.push((mr_sim::NodeId(node), keys));
            }
        }
    }
    let expected = clients.len() * txns_per_client;
    let t0 = c.now();
    let (txns, retries) = drive_retry_txns(&mut c, clients);
    assert_eq!(txns as usize, expected, "split probe txns went missing");
    let drained = c.now();
    let dt_secs = (drained.nanos() - t0.nanos()) as f64 / 1e9;

    let hot = c.obs.load.hot_ranges(drained);
    let total_qps: u64 = hot.iter().map(|s| s.qps_milli).sum();
    let hottest_share_milli = hot
        .first()
        .map_or(1000, |s| s.qps_milli * 1000 / total_qps.max(1));
    let mut lat: Vec<u64> = c.split_latencies().to_vec();
    lat.sort_unstable();
    let split_p99_ms = if lat.is_empty() {
        0.0
    } else {
        lat[(lat.len() - 1).min(lat.len() * 99 / 100)] as f64 / 1e6
    };
    let convergence_ticks = c
        .last_lifecycle_action()
        .map_or(0, |t| t.0.saturating_sub(t0.0))
        .div_ceil(c.cfg.lifecycle.interval.nanos().max(1));
    let (splits, merges, lease_rebalances, ranges) = (
        c.events.count_kind("range_split"),
        c.events.count_kind("range_merge"),
        c.events.count_kind("lease_rebalance"),
        c.registry().len(),
    );

    // Idle tail: traffic is gone, so the halves go cold and the merge pass
    // should fold the keyspace back down (and leases re-home).
    c.run_until(SimTime(
        drained.nanos() + SimDuration::from_secs(90).nanos(),
    ));
    SplitPhase {
        txns,
        retries,
        ops_per_sec: txns as f64 / dt_secs,
        ranges,
        splits,
        merges,
        lease_rebalances,
        split_p99_ms,
        hottest_share_milli,
        convergence_ticks,
        ranges_after_idle: c.registry().len(),
    }
}

/// Run the full split probe: static baseline vs lifecycle-enabled run of
/// the same skewed remote workload. Deterministic for a fixed seed.
pub fn split_probe(seed: u64, txns_per_client: usize) -> SplitProbeReport {
    SplitProbeReport {
        baseline: split_phase(seed, false, txns_per_client),
        lifecycle: split_phase(seed, true, txns_per_client),
    }
}

/// Render the probe as the deterministic `BENCH_split.json` document.
pub fn split_probe_json(r: &SplitProbeReport) -> String {
    let phase = |p: &SplitPhase| {
        format!(
            "{{\"txns\": {}, \"retries\": {}, \"ops_per_sec\": {:.1}, \"ranges\": {}, \"splits\": {}, \
             \"merges\": {}, \"lease_rebalances\": {}, \"split_p99_ms\": {:.3}, \
             \"hottest_share_milli\": {}, \"convergence_ticks\": {}, \"ranges_after_idle\": {}}}",
            p.txns,
            p.retries,
            p.ops_per_sec,
            p.ranges,
            p.splits,
            p.merges,
            p.lease_rebalances,
            p.split_p99_ms,
            p.hottest_share_milli,
            p.convergence_ticks,
            p.ranges_after_idle
        )
    };
    format!(
        "{{\n  \"baseline\": {},\n  \"lifecycle\": {},\n  \"speedup\": {:.3}\n}}\n",
        phase(&r.baseline),
        phase(&r.lifecycle),
        r.lifecycle.ops_per_sec / r.baseline.ops_per_sec.max(1e-9)
    )
}

/// Render probe rows as the deterministic `BENCH_commit.json` document.
pub fn commit_probe_json(rows: &[CommitRow]) -> String {
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"gateway_region\": \"{}\",\n      \"scenario\": \"{}\",\n      \"rtt_ms\": {:.3},\n      \"legacy\": {{\"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"n\": {}}},\n      \"pipelined\": {{\"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"n\": {}}}\n    }}",
                r.gateway_region,
                r.scenario,
                r.rtt_ms,
                r.legacy.p50_ms,
                r.legacy.p99_ms,
                r.legacy.n,
                r.pipelined.p50_ms,
                r.pipelined.p99_ms,
                r.pipelined.n
            )
        })
        .collect();
    format!("{{\n  \"rows\": [\n{}\n  ]\n}}\n", body.join(",\n"))
}

// ---------------------------------------------------------------------------
// Observability probe (per-range load telemetry + latency attribution)
// ---------------------------------------------------------------------------

/// Open-loop read rate the skew phase drives at the hot range (ops/sec).
pub const OBS_READ_HZ: u64 = 50;
/// Open-loop write rate the skew phase drives at the warm range (ops/sec).
pub const OBS_WRITE_HZ: u64 = 5;

/// Everything the obs probe measures, plus the deterministic exports the
/// golden test pins byte-for-byte.
pub struct ObsProbeReport {
    /// Range id of the deliberately skewed (hot) range.
    pub hot_range: u64,
    /// Range id of the background (warm) write range.
    pub warm_range: u64,
    /// The rate the skew phase drove at the hot range, milli-qps.
    pub driven_qps_milli: u64,
    /// `LoadRecorder::hot_ranges` snapshot taken right as the skew ends.
    pub hot: Vec<mr_obs::RangeLoadSnapshot>,
    /// `kv.txn.commits` growth expected over the steady window, milli/sec.
    pub expected_commit_rate_milli: i64,
    /// The same rate as the tsdb reports it at each resolution.
    pub commit_rate_fine_milli: i64,
    pub commit_rate_coarse_milli: i64,
    /// Retained in-window samples at each resolution.
    pub fine_samples: usize,
    pub coarse_samples: usize,
    /// Latency-attribution sums over every retained transaction record.
    pub attr_txns: usize,
    pub attr_total_nanos: u64,
    /// Nanos charged to a named component (rpc, replication, lock-wait,
    /// commit-wait, retry) — the rest is `other`.
    pub attr_named_nanos: u64,
    pub attr_other_nanos: u64,
    /// Registry cardinality after the run (the CI budget gate input).
    pub instrument_count: usize,
    /// Deterministic exports embedded into `BENCH_obs.json`.
    pub hot_ranges_json: String,
    pub slow_txns_json: String,
    pub metrics_history_json: String,
}

impl ObsProbeReport {
    /// Share of end-to-end transaction latency the named attribution
    /// components explain (the acceptance gate wants ≥ 0.95).
    pub fn named_fraction(&self) -> f64 {
        if self.attr_total_nanos == 0 {
            return 0.0;
        }
        self.attr_named_nanos as f64 / self.attr_total_nanos as f64
    }
}

/// Drive the load-telemetry pipeline end to end: an open-loop read skew
/// at one range (plus a 10x-slower write trickle at a second), then a
/// closed-loop batch of multi-range write transactions for attribution.
/// Deterministic for a fixed seed.
pub fn obs_probe(seed: u64, skew_secs: u64, write_txns: usize) -> ObsProbeReport {
    use mr_kv::cluster::{Cluster, ClusterConfig};
    use mr_kv::zone::{derive_zone_config, ClosedTsPolicy, PlacementPolicy, SurvivalGoal};
    use mr_obs::Resolution;

    assert!(skew_secs >= 10, "skew phase too short to settle the EWMA");
    let regions = mr_sim::RttMatrix::paper_table1_regions();
    let topo = mr_sim::Topology::build(
        &regions[..3],
        3,
        mr_sim::RttMatrix::from_upper_millis(3, &[&[63, 87], &[132]]),
    );
    let mut c = Cluster::new(
        topo,
        ClusterConfig {
            seed,
            ..ClusterConfig::default()
        },
    );
    let db_regions: Vec<mr_sim::RegionId> = (0..3).map(mr_sim::RegionId).collect();
    let alloc = |c: &mut Cluster, start: &str, end: &str| {
        let zc = derive_zone_config(
            mr_sim::RegionId(0),
            &db_regions,
            SurvivalGoal::Zone,
            PlacementPolicy::Default,
            ClosedTsPolicy::Lag,
        );
        c.create_range(
            mr_proto::Span::new(mr_proto::Key::from(start), mr_proto::Key::from(end)),
            zc,
        )
        .expect("allocate range")
    };
    let hot_range = alloc(&mut c, "zs/", "zs0");
    let warm_range = alloc(&mut c, "za/", "za0");
    c.run_until(SimTime(SimDuration::from_secs(3).nanos()));

    // Skew phase: point reads at `zs/hot` every 1/OBS_READ_HZ seconds of
    // sim time, with a write to the warm range every OBS_WRITE_HZ-th tick.
    // Each op is its own (read-only or single-write) transaction so the
    // commit counter grows at exactly OBS_READ_HZ + OBS_WRITE_HZ per
    // second over the steady window.
    let gw = mr_sim::NodeId(0);
    let t0 = c.now();
    let ticks = skew_secs * OBS_READ_HZ;
    for i in 0..ticks {
        c.run_until(SimTime(t0.nanos() + i * 1_000_000_000 / OBS_READ_HZ));
        let h = c.txn_begin(gw);
        c.txn_get(
            h,
            mr_proto::Key::from("zs/hot"),
            Box::new(move |c, res| {
                res.unwrap_or_else(|e| panic!("probe read failed: {e}"));
                c.txn_commit(
                    h,
                    Box::new(|_, res| {
                        res.unwrap_or_else(|e| panic!("probe ro commit failed: {e}"));
                    }),
                );
            }),
        );
        if i % (OBS_READ_HZ / OBS_WRITE_HZ) == 0 {
            let h = c.txn_begin(gw);
            let key = mr_proto::Key::from(format!("za/w{i}").as_str());
            c.txn_put(
                h,
                key,
                Some(mr_proto::Value::from("obs-probe")),
                Box::new(move |c, res| {
                    res.unwrap_or_else(|e| panic!("probe write failed: {e}"));
                    c.txn_commit(
                        h,
                        Box::new(|_, res| {
                            res.unwrap_or_else(|e| panic!("probe rw commit failed: {e}"));
                        }),
                    );
                }),
            );
        }
    }
    let t_skew_end = SimTime(t0.nanos() + skew_secs * 1_000_000_000);
    c.run_until(t_skew_end);
    c.run_until_quiescent(SimTime(
        c.now().nanos() + SimDuration::from_secs(60).nanos(),
    ));

    // Snapshot the heat ranking right as the skew ends, before idling
    // decays it away.
    let hot = c.obs.load.hot_ranges(c.now());

    // Counter rates over the interior of the skew window (2s trimmed from
    // each edge so ramp-up scrapes don't bias the delta), at both
    // resolutions.
    let wfrom = SimTime(t0.nanos() + 2_000_000_000);
    let wto = SimTime(t_skew_end.nanos() - 2_000_000_000);
    let commit_rate_fine_milli = c
        .obs
        .tsdb
        .rate_milli("kv.txn.commits", Resolution::Fine, wfrom, wto)
        .unwrap_or(0);
    let commit_rate_coarse_milli = c
        .obs
        .tsdb
        .rate_milli("kv.txn.commits", Resolution::Coarse, wfrom, wto)
        .unwrap_or(0);
    let fine_samples = c
        .obs
        .tsdb
        .window("kv.txn.commits", Resolution::Fine, wfrom, wto)
        .len();
    let coarse_samples = c
        .obs
        .tsdb
        .window("kv.txn.commits", Resolution::Coarse, wfrom, wto)
        .len();

    // Attribution phase: closed-loop multi-range write transactions (the
    // kind whose latency the paper dissects — intent replication plus the
    // parallel-commit record).
    let shapes: Vec<Vec<mr_proto::Key>> = (0..write_txns)
        .map(|i| {
            vec![
                mr_proto::Key::from(format!("zs/b{i}").as_str()),
                mr_proto::Key::from(format!("za/b{i}").as_str()),
            ]
        })
        .collect();
    let samples = drive_commit_txns(&mut c, gw, shapes);
    assert_eq!(samples.len(), write_txns, "probe txns went missing");

    let (mut total, mut named) = (0u64, 0u64);
    let records = c.attr_log.records();
    for r in &records {
        total += r.breakdown.total_nanos;
        named += r.breakdown.comp_nanos.iter().sum::<u64>();
    }
    c.scrape_now();

    let now = c.now();
    ObsProbeReport {
        hot_range: hot_range.0,
        warm_range: warm_range.0,
        driven_qps_milli: OBS_READ_HZ * 1000,
        expected_commit_rate_milli: ((OBS_READ_HZ + OBS_WRITE_HZ) * 1000) as i64,
        commit_rate_fine_milli,
        commit_rate_coarse_milli,
        fine_samples,
        coarse_samples,
        attr_txns: records.len(),
        attr_total_nanos: total,
        attr_named_nanos: named,
        attr_other_nanos: total - named,
        instrument_count: c.obs.registry.instrument_count(),
        hot_ranges_json: c.obs.load.export_json(now, 10),
        slow_txns_json: c.attr_log.export_json(20),
        metrics_history_json: c.obs.tsdb.export_json(&[
            "kv.txn.commits",
            "kv.attr.slow_txn_records",
            "kv.load.tracked_ranges",
        ]),
        hot,
    }
}

/// Render the probe as the deterministic `BENCH_obs.json` document.
pub fn obs_probe_json(r: &ObsProbeReport) -> String {
    let hot_rows: Vec<String> = r
        .hot
        .iter()
        .take(5)
        .map(|s| {
            format!(
                "{{\"range\": {}, \"qps_milli\": {}, \"read_qps_milli\": {}, \"write_qps_milli\": {}, \"write_bytes_per_sec\": {}, \"mean_latency_nanos\": {}}}",
                s.range,
                s.qps_milli,
                s.read_qps_milli,
                s.write_qps_milli,
                s.write_bytes_per_sec,
                s.mean_latency_nanos
            )
        })
        .collect();
    format!(
        "{{\n  \"skew\": {{\"hot_range\": {}, \"warm_range\": {}, \"driven_qps_milli\": {}, \"hot_ranges\": [{}]}},\n  \"rates\": {{\"expected_milli\": {}, \"fine_milli\": {}, \"coarse_milli\": {}, \"fine_samples\": {}, \"coarse_samples\": {}}},\n  \"attribution\": {{\"txns\": {}, \"total_nanos\": {}, \"named_nanos\": {}, \"other_nanos\": {}, \"named_fraction\": {:.4}}},\n  \"instrument_count\": {},\n  \"slow_txns\": {},\n  \"hot_ranges_export\": {},\n  \"metrics_history\": {}}}\n",
        r.hot_range,
        r.warm_range,
        r.driven_qps_milli,
        hot_rows.join(", "),
        r.expected_commit_rate_milli,
        r.commit_rate_fine_milli,
        r.commit_rate_coarse_milli,
        r.fine_samples,
        r.coarse_samples,
        r.attr_txns,
        r.attr_total_nanos,
        r.attr_named_nanos,
        r.attr_other_nanos,
        r.named_fraction(),
        r.instrument_count,
        r.slow_txns_json.trim_end(),
        r.hot_ranges_json.trim_end(),
        r.metrics_history_json.trim_end()
    )
}

// ---------------------------------------------------------------------------
// Storage probe (WAL / LSM / GC durability engine)
// ---------------------------------------------------------------------------

/// Everything the storage probe measures against the durable engine: bloom
/// effectiveness on a cold-key read workload, GC reclamation on an
/// overwrite-heavy workload under an active protected timestamp, and a
/// crash-recovery smoke over the resulting state.
pub struct StorageProbeReport {
    /// Immutable sorted runs the cold-key phase built (one per flush).
    pub bloom_runs: usize,
    /// Point lookups issued in the measured read phase.
    pub bloom_lookups: u64,
    /// Per-run probes those lookups triggered.
    pub bloom_probes: u64,
    /// Probes answered by the bloom filter without touching run entries.
    pub bloom_skips: u64,
    /// `bloom_skips / bloom_probes` in milli (gate: >= 900).
    pub bloom_skip_milli: u64,
    /// Committed versions the overwrite phase wrote.
    pub gc_versions_written: usize,
    /// Versions resident before the first maintenance pass.
    pub gc_versions_before: usize,
    /// Versions resident after GC under the active protection.
    pub gc_versions_protected: usize,
    /// Versions resident after the protection is released and GC reruns.
    pub gc_versions_after: usize,
    /// Share of `gc_versions_before` reclaimed while the protection was
    /// still active, in milli (gate: >= 500).
    pub gc_reclaim_milli: u64,
    /// An AOST read at the protected timestamp returned the right value
    /// *after* GC ran up to it (gate: true).
    pub protected_read_ok: bool,
    /// A read below the ratcheted threshold failed with
    /// `BelowGcThreshold` rather than returning silently-incomplete data
    /// (gate: true).
    pub below_threshold_read_errors: bool,
    /// WAL records replayed by the closing crash-recovery smoke.
    pub wal_replayed: u64,
    /// Versions visible after recovery (must equal `gc_versions_after`).
    pub recovered_versions: usize,
}

/// Drive the storage engine the way a replica does — put intent, commit
/// it, seal the Raft entry into the WAL, fsync — one write per entry.
fn storage_commit(
    eng: &mut mr_storage::Engine,
    key: &mr_proto::Key,
    value: &str,
    ts: mr_clock::Timestamp,
    idx: &mut u64,
) {
    use mr_proto::{TxnId, TxnMeta};
    let txn = TxnMeta::new(TxnId(*idx), key.clone(), ts);
    eng.put(key, Some(mr_proto::Value::from(value)), &txn)
        .expect("probe writes never conflict");
    eng.commit_intent(key, txn.id, ts);
    eng.seal_entry(*idx, ts);
    eng.sync(ts.wall);
    *idx += 1;
}

/// Run the storage probe. Deterministic for a fixed seed: the seed only
/// shuffles the cold-key lookup order, never the data.
pub fn storage_probe(seed: u64) -> StorageProbeReport {
    use mr_clock::Timestamp;
    use mr_proto::{Key, ReadCtx};
    use mr_storage::{gc_threshold, Engine, MvccError, ProtectedTimestamps};

    let ns = 1_000_000_000u64;

    // ---- Workload A: cold keys spread over many sorted runs ----------
    //
    // 12 flushes of 64 disjoint keys each: every point lookup must
    // consult all 12 runs, and the bloom filters should answer all but
    // the (at most one) run actually holding the key.
    let mut eng = Engine::new();
    let mut idx = 1u64;
    let runs = 12usize;
    let per_run = 64usize;
    for r in 0..runs {
        for i in 0..per_run {
            let key = Key::from(format!("cold/{r:02}/{i:04}").as_str());
            let ts = Timestamp::new(idx * ns, 0);
            storage_commit(&mut eng, &key, "cold", ts, &mut idx);
        }
        eng.flush(idx * ns);
    }
    assert_eq!(eng.mem_version_count(), 0, "flushes drained the memtable");

    // Measured read phase: every present key once plus an equal volume
    // of absent keys, in seeded order.
    let mut lookups: Vec<Key> = Vec::new();
    for r in 0..runs {
        for i in 0..per_run {
            lookups.push(Key::from(format!("cold/{r:02}/{i:04}").as_str()));
            lookups.push(Key::from(format!("cold/{r:02}/absent-{i:04}").as_str()));
        }
    }
    let mut rng = SimRng::seed_from_u64(seed ^ 0x0570_4a6e);
    for i in (1..lookups.len()).rev() {
        let j = rng.index(i + 1);
        lookups.swap(i, j);
    }
    let probes0 = eng.stats().bloom_probes.get();
    let skips0 = eng.stats().bloom_skips.get();
    let read_ts = Timestamp::new(idx * ns, 0);
    let ctx = ReadCtx::fresh(read_ts, read_ts);
    let mut hits = 0u64;
    for key in &lookups {
        let out = eng
            .get(key, &ctx)
            .expect("cold reads are above the GC floor");
        hits += u64::from(out.value.is_some());
    }
    assert_eq!(hits as usize, runs * per_run, "every present key was found");
    let bloom_probes = eng.stats().bloom_probes.get() - probes0;
    let bloom_skips = eng.stats().bloom_skips.get() - skips0;
    let bloom_skip_milli = bloom_skips * 1000 / bloom_probes.max(1);

    // ---- Workload B: overwrite-heavy GC under a protection -----------
    //
    // 50 keys, 40 committed versions each. An AOST reader pins round 30;
    // GC driven by the closed-timestamp frontier reclaims everything the
    // protection does not need, the pinned read still succeeds, and a
    // read below the ratcheted threshold errors.
    let mut eng = Engine::new();
    let mut idx = 1u64;
    let keys = 50usize;
    let rounds = 40u64;
    let mut protected = ProtectedTimestamps::new();
    let mut pin = None;
    let mut pin_ts = Timestamp::ZERO;
    for round in 0..rounds {
        let ts = Timestamp::new((round + 1) * ns, 0);
        if round == 30 {
            pin = Some(protected.protect(ts));
            pin_ts = ts;
        }
        for k in 0..keys {
            let key = Key::from(format!("hot/{k:03}").as_str());
            storage_commit(&mut eng, &key, &format!("v{round}"), ts, &mut idx);
        }
    }
    let gc_versions_written = keys * rounds as usize;
    let gc_versions_before = eng.version_count();
    let now = (rounds + 2) * ns;
    let closed = eng.closed_ts();

    // GC with the protection active: a 1s TTL would allow the threshold
    // up to `now - 1s`, but the pin clamps it to round 30.
    let th = gc_threshold(now, ns, closed, protected.min());
    assert_eq!(th, pin_ts, "the protection clamps the threshold");
    eng.maintain(th, now);
    let gc_versions_protected = eng.version_count();
    let reclaimed = gc_versions_before - gc_versions_protected;
    let gc_reclaim_milli = reclaimed as u64 * 1000 / gc_versions_before.max(1) as u64;

    // The pinned AOST read still sees round 30's value on every key.
    let ctx = ReadCtx::fresh(pin_ts, pin_ts);
    let protected_read_ok = (0..keys).all(|k| {
        let key = Key::from(format!("hot/{k:03}").as_str());
        matches!(
            eng.get(&key, &ctx),
            Ok(out) if out.value == Some(mr_proto::Value::from("v30"))
        )
    });

    // A read below the threshold must fail loudly, never return a
    // silently-incomplete snapshot.
    let stale = Timestamp::new(10 * ns, 0);
    let below_threshold_read_errors = matches!(
        eng.get(&Key::from("hot/000"), &ReadCtx::fresh(stale, stale)),
        Err(MvccError::BelowGcThreshold { .. })
    );

    // Release the pin: the next pass may advance to the closed frontier
    // and fold history down to one live version per key.
    if let Some(id) = pin {
        protected.release(id);
    }
    let th2 = gc_threshold(now, ns, closed, protected.min());
    eng.maintain(th2, now);
    let gc_versions_after = eng.version_count();

    // ---- Crash-recovery smoke over the GC'd engine -------------------
    let info = eng.crash_and_recover();
    let recovered_versions = eng.version_count();

    StorageProbeReport {
        bloom_runs: runs,
        bloom_lookups: lookups.len() as u64,
        bloom_probes,
        bloom_skips,
        bloom_skip_milli,
        gc_versions_written,
        gc_versions_before,
        gc_versions_protected,
        gc_versions_after,
        gc_reclaim_milli,
        protected_read_ok,
        below_threshold_read_errors,
        wal_replayed: info.replayed_records,
        recovered_versions,
    }
}

/// Render the probe as the deterministic `BENCH_storage.json` document.
pub fn storage_probe_json(r: &StorageProbeReport) -> String {
    format!(
        "{{\n  \"bloom\": {{\"runs\": {}, \"lookups\": {}, \"probes\": {}, \"skips\": {}, \"skip_milli\": {}}},\n  \"gc\": {{\"versions_written\": {}, \"versions_before\": {}, \"versions_protected\": {}, \"versions_after\": {}, \"reclaim_milli\": {}, \"protected_read_ok\": {}, \"below_threshold_read_errors\": {}}},\n  \"recovery\": {{\"wal_replayed\": {}, \"recovered_versions\": {}}}\n}}\n",
        r.bloom_runs,
        r.bloom_lookups,
        r.bloom_probes,
        r.bloom_skips,
        r.bloom_skip_milli,
        r.gc_versions_written,
        r.gc_versions_before,
        r.gc_versions_protected,
        r.gc_versions_after,
        r.gc_reclaim_milli,
        r.protected_read_ok,
        r.below_threshold_read_errors,
        r.wal_replayed,
        r.recovered_versions
    )
}

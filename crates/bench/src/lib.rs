//! Shared utilities for the experiment harnesses.
//!
//! Each bench target (`cargo bench --bench fig3_regional_vs_global`, …)
//! regenerates one table or figure of the paper's evaluation section,
//! printing the same rows/series the paper reports. Simulated experiments
//! are deterministic: same seed, same numbers.
//!
//! Scale: the paper runs 2.5M requests per experiment on real clusters;
//! the default here is a few hundred ops per client scaled for
//! single-digit-minute wall time. Set `MR_OPS_PER_CLIENT` (and
//! `MR_TPCC_SECS`) to raise the sample counts toward paper scale.

use mr_sim::SimRng;
use mr_workload::bulk;
use mr_workload::driver::{ClosedLoop, DriverStats, OpSource};
use mr_workload::ycsb::{self, YcsbTable};
use multiregion::{ClusterBuilder, RttMatrix, SimDuration, SimTime, SqlDb};

/// Ops each closed-loop client issues (paper: 50k).
pub fn ops_per_client() -> u64 {
    std::env::var("MR_OPS_PER_CLIENT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(600)
}

/// Simulated seconds of TPC-C load (paper: 10-minute runs).
pub fn tpcc_secs() -> u64 {
    std::env::var("MR_TPCC_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60)
}

/// The five paper regions (Table 1).
pub fn paper_regions() -> Vec<String> {
    RttMatrix::paper_table1_regions()
        .iter()
        .map(|s| s.to_string())
        .collect()
}

/// Three-region deployment of §7.2 (us-east1, europe-west2,
/// asia-northeast1) with the corresponding Table 1 RTTs.
pub fn three_regions() -> (Vec<String>, RttMatrix) {
    let names = vec![
        "us-east1".to_string(),
        "europe-west2".to_string(),
        "asia-northeast1".to_string(),
    ];
    // Table 1: UE-EW 87, UE-AN 155, EW-AN 222.
    let rtt = RttMatrix::from_upper_millis(3, &[&[87, 155], &[222]]);
    (names, rtt)
}

/// Build the paper's five-region cluster with a given max clock offset.
pub fn five_region_db(max_offset_ms: u64, seed: u64) -> SqlDb {
    ClusterBuilder::new()
        .paper_regions()
        .max_clock_offset(SimDuration::from_millis(max_offset_ms))
        .seed(seed)
        .build()
}

/// Build the three-region cluster of §7.2.
pub fn three_region_db(seed: u64) -> SqlDb {
    let (names, rtt) = three_regions();
    let mut b = ClusterBuilder::new().rtt_matrix(rtt).seed(seed);
    for n in &names {
        b = b.region(n, 3);
    }
    b.build()
}

/// Create the YCSB database (if absent) + table and bulk-load `keys` rows.
pub fn setup_ycsb(
    db: &mut SqlDb,
    regions: &[String],
    table: &str,
    variant: YcsbTable,
    keys: u64,
    home: impl Fn(u64) -> String,
) {
    let sess = db.session_in_region(&regions[0], None);
    let mut create = format!("CREATE DATABASE ycsb PRIMARY REGION \"{}\"", regions[0]);
    if regions.len() > 1 {
        create.push_str(" REGIONS ");
        let rest: Vec<String> = regions[1..].iter().map(|r| format!("\"{r}\"")).collect();
        create.push_str(&rest.join(", "));
    }
    if db.catalog.borrow().db("ycsb").is_none() {
        db.exec_sync(&sess, &create).unwrap();
    }
    let sess = db.session_in_region(&regions[0], Some("ycsb"));
    db.exec_sync(&sess, &ycsb::schema(table, variant, regions))
        .unwrap();
    if variant == YcsbTable::ManualPartition {
        for stmt in ycsb::manual_partition_ddl(table, regions) {
            db.exec_sync(&sess, &stmt).unwrap();
        }
    }
    let rows = ycsb::dataset(variant, keys, home);
    bulk::load_rows(db, "ycsb", table, &rows);
    // Let replication and closed timestamps settle.
    let t = db.cluster.now();
    db.cluster
        .run_until(SimTime(t.nanos() + SimDuration::from_secs(5).nanos()));
}

/// Register `clients_per_region` clients in every region with generators
/// produced by `mk(region_idx, client_idx_within_region, global_idx)`.
pub fn add_clients(
    db: &SqlDb,
    driver: &mut ClosedLoop,
    regions: &[String],
    db_name: &str,
    clients_per_region: usize,
    seed: &mut SimRng,
    mut mk: impl FnMut(usize, usize, usize) -> Box<dyn OpSource>,
) {
    let mut global = 0;
    for (ri, region) in regions.iter().enumerate() {
        for ci in 0..clients_per_region {
            let sess = db.session_in_region(region, Some(db_name));
            driver.add_client(sess, seed.fork(), mk(ri, ci, global));
            global += 1;
        }
    }
}

/// Run the driver to completion (clients stop via their own op budgets).
pub fn run_to_completion(db: &mut SqlDb, driver: &mut ClosedLoop) {
    let deadline = SimTime(db.cluster.now().nanos() + SimDuration::from_secs(1_000_000).nanos());
    driver.run(db, deadline);
}

/// Print a paper-style latency row.
pub fn print_row(name: &str, rec: &mut mr_sim::LatencyRecorder) {
    if rec.is_empty() {
        println!("{name:<42} (no samples)");
        return;
    }
    let s = rec.summary();
    println!("{name:<42} {}", s.row());
}

/// Print a latency CDF as `(percentile, ms)` pairs (Fig. 5 style).
pub fn print_cdf(name: &str, rec: &mut mr_sim::LatencyRecorder) {
    if rec.is_empty() {
        println!("{name:<28} (no samples)");
        return;
    }
    let quantiles = [
        0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.99, 0.999, 1.0,
    ];
    let cdf = rec.cdf();
    print!("{name:<28}");
    for (q, ms) in cdf.series(&quantiles) {
        print!(" {:>5.1}%:{ms:>8.1}", q * 100.0);
    }
    println!();
}

/// JSON object for one merged latency histogram (nanosecond values).
pub fn obs_hist_json(h: &mr_obs::Histogram) -> String {
    format!(
        "{{\"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
        h.count(),
        h.quantile(0.5),
        h.quantile(0.99),
        h.max()
    )
}

/// Write a finished run's observability exports next to the bench output:
/// `<prefix>_metrics.json` / `.csv` (registry dump), `<prefix>_scrapes.csv`
/// (time series), `<prefix>_events.json` (cluster event log),
/// `<prefix>_replication_report.json` (conformance report), and
/// `<prefix>_trace.json` (Chrome trace, only when spans were recorded).
/// All are deterministic for a fixed seed.
pub fn write_obs_exports(db: &SqlDb, prefix: &str) {
    let obs = &db.cluster.obs;
    std::fs::write(format!("{prefix}_metrics.json"), obs.registry.dump_json()).unwrap();
    std::fs::write(format!("{prefix}_metrics.csv"), obs.registry.dump_csv()).unwrap();
    std::fs::write(format!("{prefix}_scrapes.csv"), obs.scraper.export_csv()).unwrap();
    std::fs::write(
        format!("{prefix}_events.json"),
        db.cluster.events.export_json(),
    )
    .unwrap();
    std::fs::write(
        format!("{prefix}_replication_report.json"),
        db.cluster.replication_report().export_json(),
    )
    .unwrap();
    if !obs.tracer.is_empty() {
        std::fs::write(
            format!("{prefix}_trace.json"),
            obs.tracer.export_chrome_json(),
        )
        .unwrap();
    }
}

/// Errors-to-stderr summary for a finished run.
pub fn report_errors(name: &str, stats: &DriverStats) {
    if stats.failed > 0 {
        eprintln!(
            "[{name}] {} / {} ops failed: {:?}",
            stats.failed,
            stats.failed + stats.completed,
            stats.errors
        );
    }
}

//! Raft machinery probe: group-commit batch occupancy under concurrent
//! multi-range writers, and the quiescence heartbeat A/B over a cluster
//! of cold ranges. Writes `BENCH_raft.json`.
//!
//! The batched phase opens a short flush window so concurrent proposals
//! to the same range coalesce into multi-command Raft entries; the
//! unbatched baseline keeps the window at zero, where only same-instant
//! arrivals share an entry. The quiescence phase measures leader
//! heartbeat messages per simulated second over an idle cluster with
//! `MR_RAFT_COLD_RANGES` untouched ranges, with quiescence off and on.
//!
//! Exits non-zero if group commit stops filling entries (occupancy near
//! 1), if the flush window costs real throughput, or if quiescence stops
//! suppressing idle heartbeats — so CI can use this binary as a
//! bench-regression guard.

use mr_bench::{raft_probe, raft_probe_json};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(1);
    let txns: usize = std::env::var("MR_RAFT_TXNS")
        .ok()
        .map(|s| s.parse().expect("MR_RAFT_TXNS must be a usize"))
        .unwrap_or(40);
    let cold: u32 = std::env::var("MR_RAFT_COLD_RANGES")
        .ok()
        .map(|s| s.parse().expect("MR_RAFT_COLD_RANGES must be a u32"))
        .unwrap_or(100);

    eprintln!("raft_probe: seed {seed}, {txns} txns per client, {cold} cold ranges");
    let r = raft_probe(seed, txns, cold);
    let json = raft_probe_json(&r);
    std::fs::write("BENCH_raft.json", &json).expect("write BENCH_raft.json");
    print!("{json}");

    let mut failures = Vec::new();
    // Group commit must actually fill entries: mean occupancy well above
    // one command per entry, and above the zero-window baseline.
    if r.batched.mean_occupancy <= 1.5 {
        failures.push(format!(
            "batched mean occupancy {:.2} <= 1.5 — group commit is not coalescing",
            r.batched.mean_occupancy
        ));
    }
    if r.batched.mean_occupancy <= r.unbatched.mean_occupancy {
        failures.push(format!(
            "batched occupancy {:.2} did not beat the zero-window baseline {:.2}",
            r.batched.mean_occupancy, r.unbatched.mean_occupancy
        ));
    }
    // The flush window trades a bounded latency bump for fewer consensus
    // rounds; it must not cost real throughput.
    if r.batched.proposals_per_sec < 0.5 * r.unbatched.proposals_per_sec {
        failures.push(format!(
            "batched throughput {:.1}/s fell below half the unbatched {:.1}/s",
            r.batched.proposals_per_sec, r.unbatched.proposals_per_sec
        ));
    }
    // Quiescence must collapse the idle heartbeat rate by an order of
    // magnitude (the cold ranges stop heartbeating entirely; the residual
    // rate comes from the settle tail before each leader quiesced).
    if r.heartbeat_suppression < 10.0 {
        failures.push(format!(
            "heartbeat suppression {:.1}x < 10x ({:.1}/s off vs {:.1}/s on)",
            r.heartbeat_suppression, r.hb_per_sec_off, r.hb_per_sec_on
        ));
    }
    // Every transaction's opening read must ride the leaseholder fast
    // path instead of proposing.
    if r.read_fast_path < r.batched.txns + r.unbatched.txns {
        failures.push(format!(
            "read fast path served {} of {} leaseholder reads",
            r.read_fast_path,
            r.batched.txns + r.unbatched.txns
        ));
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "raft_probe: occupancy {:.2} (baseline {:.2}), heartbeat suppression {:.1}x — all guards passed",
        r.batched.mean_occupancy, r.unbatched.mean_occupancy, r.heartbeat_suppression
    );
}

// chaos probe: five fixed-seed nemesis schedules through the full chaos
// harness (seeded faults + workload + offline history checker), summarized
// into BENCH_chaos.json: committed ops/sec, recovery-time p99 (latency of
// operations invoked while a disruption was active), and steady-state p99
// per scenario. Any checker violation fails the probe with the violating
// seed and schedule rendered — and its incident bundle written to
// `incident_seed<N>/` with the path printed — so CI catches consistency
// regressions that only appear under faults, with the forensics attached.
use mr_chaos::{run_chaos, ChaosConfig, CheckerConfig, FaultSchedule, ScheduleBounds};
use mr_sim::SimDuration;

/// Fixed scenario seeds: small primes spread across the schedule space.
/// Each derives a different disrupt/heal sequence (crashes, partitions,
/// isolations, clock skews) from `FaultSchedule::random`.
const SEEDS: [u64; 5] = [11, 23, 37, 41, 53];

fn ms(d: SimDuration) -> f64 {
    d.nanos() as f64 / 1e6
}

fn main() {
    let t0 = std::time::Instant::now();
    // MR_STRICT_MONITORS=0 downgrades online invariant violations from
    // panics to recorded violations; CI runs with MR_STRICT_MONITORS=1 so
    // both the online monitors and the offline checker gate the run.
    let strict = std::env::var("MR_STRICT_MONITORS").map_or(true, |v| v != "0");

    let bounds = ScheduleBounds::default();
    let mut rows = Vec::new();
    let mut failed = false;
    for seed in SEEDS {
        let schedule = FaultSchedule::random(seed, &bounds);
        let cfg = ChaosConfig {
            seed,
            run_for: schedule.span() + SimDuration::from_secs(8),
            strict_monitors: strict,
            ..ChaosConfig::default()
        };
        let t = std::time::Instant::now();
        let outcome = run_chaos(&cfg, &schedule, &CheckerConfig::default());
        eprintln!(
            "seed {seed}: {:?} ops_ok={} ops/sec={:.1} recovery_p99={} steady_p99={}",
            t.elapsed(),
            outcome.ops_ok,
            outcome.ops_per_sec,
            outcome.recovery_p99,
            outcome.steady_p99
        );
        if !outcome.passed() {
            eprintln!("CHECKER VIOLATIONS (seed {seed}):\n{}", outcome.render());
            if let Some(bundle) = &outcome.bundle {
                let dir = std::path::PathBuf::from(format!("incident_seed{seed}"));
                match bundle.write_to(&dir) {
                    Ok(path) => eprintln!("incident bundle: {}", path.display()),
                    Err(e) => eprintln!("failed to write incident bundle: {e}"),
                }
            }
            failed = true;
        }
        rows.push(format!(
            "    {{\n      \"seed\": {seed},\n      \"ops_ok\": {},\n      \"ops_failed\": {},\n      \"ops_per_sec\": {:.2},\n      \"recovery_p99_ms\": {:.3},\n      \"steady_p99_ms\": {:.3},\n      \"checker_violations\": {}\n    }}",
            outcome.ops_ok,
            outcome.ops_failed,
            outcome.ops_per_sec,
            ms(outcome.recovery_p99),
            ms(outcome.steady_p99),
            outcome.report.violations.len()
        ));
    }

    let json = format!("{{\n  \"scenarios\": [\n{}\n  ]\n}}\n", rows.join(",\n"));
    std::fs::write("BENCH_chaos.json", &json).unwrap();
    eprintln!("total: {:?}", t0.elapsed());
    print!("{json}");
    if failed {
        std::process::exit(1);
    }
}

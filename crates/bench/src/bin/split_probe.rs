//! Range-lifecycle probe: the same skewed remote workload against a
//! static single range and against the lifecycle controller (size/QPS
//! splits at the load median, cold merges, load-based lease rebalancing).
//! Writes `BENCH_split.json`.
//!
//! Every client lives in regions 1 and 2 while the only range is homed in
//! region 0, so the static baseline pays cross-region RTT on each op
//! forever. With the controller on, the range splits on the region
//! boundary of the sampled load median and each half's lease moves toward
//! its demand — closed-loop throughput must scale past the single-range
//! baseline. After the workload drains, the idle tail must fold the split
//! topology back down via cold-range merges.
//!
//! Exits non-zero if splits stop firing, throughput stops beating the
//! baseline, load stops dispersing across ranges, the rebalancer goes
//! idle, or cold merges stop folding the keyspace — CI uses this binary
//! as the lifecycle regression guard.

use mr_bench::{split_probe, split_probe_json};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(1);
    let txns: usize = std::env::var("MR_SPLIT_TXNS")
        .ok()
        .map(|s| s.parse().expect("MR_SPLIT_TXNS must be a usize"))
        .unwrap_or(240);

    eprintln!("split_probe: seed {seed}, {txns} txns per client");
    let r = split_probe(seed, txns);
    let json = split_probe_json(&r);
    std::fs::write("BENCH_split.json", &json).expect("write BENCH_split.json");
    print!("{json}");

    let mut failures = Vec::new();
    if r.baseline.splits != 0 || r.baseline.ranges != 1 {
        failures.push(format!(
            "static baseline split anyway ({} splits, {} ranges)",
            r.baseline.splits, r.baseline.ranges
        ));
    }
    if r.lifecycle.splits < 1 {
        failures.push("lifecycle run produced no splits under the skewed workload".into());
    }
    if r.lifecycle.lease_rebalances < 1 {
        failures.push("no lease moved toward demand after the splits".into());
    }
    // The acceptance bar: post-split throughput scales past the
    // single-range baseline.
    if r.lifecycle.ops_per_sec <= r.baseline.ops_per_sec {
        failures.push(format!(
            "lifecycle throughput {:.1}/s did not beat the static baseline {:.1}/s",
            r.lifecycle.ops_per_sec, r.baseline.ops_per_sec
        ));
    }
    // Post-split the hottest range must no longer carry all the load.
    if r.lifecycle.hottest_share_milli >= 1000 {
        failures.push(format!(
            "hottest range still carries {}/1000 of the load after splitting",
            r.lifecycle.hottest_share_milli
        ));
    }
    if r.lifecycle.splits >= 1 && r.lifecycle.split_p99_ms <= 0.0 {
        failures.push("splits happened but no surgery latency was recorded".into());
    }
    // Hysteresis must not leave the keyspace shattered once traffic stops.
    if r.lifecycle.ranges_after_idle >= r.lifecycle.ranges && r.lifecycle.ranges > 1 {
        failures.push(format!(
            "idle tail did not merge anything ({} ranges at drain, {} after idle)",
            r.lifecycle.ranges, r.lifecycle.ranges_after_idle
        ));
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "split_probe: {:.1}/s -> {:.1}/s ({:.2}x) across {} splits, {} lease moves, \
         {} ranges folding to {} when idle — all guards passed",
        r.baseline.ops_per_sec,
        r.lifecycle.ops_per_sec,
        r.lifecycle.ops_per_sec / r.baseline.ops_per_sec.max(1e-9),
        r.lifecycle.splits,
        r.lifecycle.lease_rebalances,
        r.lifecycle.ranges,
        r.lifecycle.ranges_after_idle
    );
}

//! Commit-latency probe: measures client-observed transaction latency
//! (begin → commit ack) under legacy synchronous commits vs write
//! pipelining + parallel commits, from every gateway region, and writes
//! `BENCH_commit.json`.
//!
//! The headline scenario is `multi`: writes to two ZONE-survivable ranges
//! homed in us-east1. From a remote gateway the legacy path costs two WAN
//! round trips (flush the intents, then write the commit record) while
//! parallel commits overlap them into one — the paper's §5.1 claim.
//! `single` is a parity guard (the legacy 1PC fast path is already one
//! round trip; pipelining must not regress it), and `cross` adds a
//! REGION-survivable write whose WAN quorum dominates but still hides the
//! commit-record round trip.
//!
//! Exits non-zero if the measured medians violate the expected round-trip
//! structure, so CI can use this binary as a bench-regression guard.

use mr_bench::{commit_probe, commit_probe_json, CommitRow};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(1);
    let txns: usize = std::env::var("MR_COMMIT_TXNS")
        .ok()
        .map(|s| s.parse().expect("MR_COMMIT_TXNS must be a usize"))
        .unwrap_or(30);

    eprintln!("commit_probe: seed {seed}, {txns} txns per cell");
    let rows = commit_probe(seed, txns);
    let json = commit_probe_json(&rows);
    std::fs::write("BENCH_commit.json", &json).expect("write BENCH_commit.json");
    print!("{json}");

    let mut failures = Vec::new();
    for r in &rows {
        eprintln!(
            "  {:>16} {:>6}  rtt {:>5.1}ms  legacy p50 {:>7.1}ms  pipelined p50 {:>7.1}ms",
            r.gateway_region, r.scenario, r.rtt_ms, r.legacy.p50_ms, r.pipelined.p50_ms
        );
        check(r, &mut failures);
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }
    eprintln!("commit_probe: all round-trip guards passed");
}

/// Guard the round-trip structure of each row. Thresholds carry generous
/// margins over the deterministic measurements so only a structural
/// regression (an extra WAN round trip reappearing on the commit path)
/// trips them, not jitter-level drift.
fn check(r: &CommitRow, failures: &mut Vec<String>) {
    let who = format!("{}/{}", r.gateway_region, r.scenario);
    // Pipelining must never be slower than the legacy path.
    if r.pipelined.p50_ms > r.legacy.p50_ms * 1.05 {
        failures.push(format!(
            "{who}: pipelined p50 {:.1}ms exceeds legacy p50 {:.1}ms",
            r.pipelined.p50_ms, r.legacy.p50_ms
        ));
    }
    // Remote gateways are where the WAN round trip is saved; the home
    // region's latencies are sub-RTT either way, so no structure to guard.
    if r.rtt_ms < 1.0 {
        return;
    }
    match r.scenario {
        // 1PC keeps single-range commits at one round trip in both modes.
        "single" => {
            if r.pipelined.p50_ms > 1.4 * r.rtt_ms {
                failures.push(format!(
                    "{who}: pipelined p50 {:.1}ms above 1.4×RTT ({:.1}ms) — single-range commit is not one round trip",
                    r.pipelined.p50_ms, r.rtt_ms
                ));
            }
        }
        // The headline: legacy = flush (1 RTT) + record (1 RTT) ≈ 2×RTT;
        // parallel commits overlap them ≈ 1×RTT.
        "multi" => {
            if r.legacy.p50_ms < 1.6 * r.rtt_ms {
                failures.push(format!(
                    "{who}: legacy p50 {:.1}ms below 1.6×RTT ({:.1}ms) — the baseline no longer pays the commit round trip?",
                    r.legacy.p50_ms, r.rtt_ms
                ));
            }
            if r.pipelined.p50_ms > 1.4 * r.rtt_ms {
                failures.push(format!(
                    "{who}: pipelined p50 {:.1}ms above 1.4×RTT ({:.1}ms) — commit is not one round trip",
                    r.pipelined.p50_ms, r.rtt_ms
                ));
            }
            if r.pipelined.p50_ms > 0.65 * r.legacy.p50_ms {
                failures.push(format!(
                    "{who}: pipelined p50 {:.1}ms not well below legacy p50 {:.1}ms",
                    r.pipelined.p50_ms, r.legacy.p50_ms
                ));
            }
        }
        // The REGION-survivable write costs ~2 WAN legs (routing + quorum)
        // in both modes; pipelining still hides the commit-record round
        // trip behind it.
        _ => {
            if r.pipelined.p50_ms > 0.8 * r.legacy.p50_ms {
                failures.push(format!(
                    "{who}: pipelined p50 {:.1}ms did not save a round trip over legacy {:.1}ms",
                    r.pipelined.p50_ms, r.legacy.p50_ms
                ));
            }
        }
    }
}

// perf probe: YCSB-A on REGIONAL table, 5 regions, 50 clients, 500 ops each
use multiregion::*;
use mr_workload::driver::ClosedLoop;
use mr_workload::ycsb::{self, KeyChooser, ReadMode, YcsbGen, YcsbTable};
use mr_workload::{bulk, Zipf};
use mr_sim::SimRng;

fn main() {
    let t0 = std::time::Instant::now();
    let mut db = ClusterBuilder::new().paper_regions().seed(1).build();
    let regions: Vec<String> = RttMatrix::paper_table1_regions().iter().map(|s| s.to_string()).collect();
    let sess = db.session_in_region("us-east1", None);
    db.exec_sync(&sess, r#"CREATE DATABASE ycsb PRIMARY REGION "us-east1" REGIONS "us-west1", "europe-west2", "asia-northeast1", "australia-southeast1""#).unwrap();
    db.exec_sync(&sess, &ycsb::schema("t", YcsbTable::RegionalByTable, &regions)).unwrap();
    let rows = ycsb::dataset(YcsbTable::RegionalByTable, 100_000, |_| unreachable!());
    bulk::load_rows(&mut db, "ycsb", "t", &rows);
    db.cluster.run_until(SimTime(SimDuration::from_secs(5).nanos()));
    eprintln!("setup: {:?}", t0.elapsed());

    let t1 = std::time::Instant::now();
    let mut driver = ClosedLoop::new();
    let mut seed = SimRng::seed_from_u64(2);
    for region in &regions {
        for _ in 0..10 {
            let s = db.session_in_region(region, Some("ycsb"));
            let gen = YcsbGen {
                table: "t".into(), variant: YcsbTable::RegionalByTable,
                read_fraction: 0.5, insert_workload: false,
                keys: KeyChooser::Zipf(Zipf::ycsb(100_000)),
                read_mode: ReadMode::Fresh,
                regions: regions.clone(), region_idx: 0,
                remaining: Some(std::env::var("OPS").map(|v| v.parse().unwrap()).unwrap_or(500)), next_insert: 0, insert_stride: 1, nregions: 5, label_prefix: String::new(),
            };
            driver.add_client(s, seed.fork(), Box::new(gen));
        }
    }
    let ops: u64 = std::env::var("OPS").map(|v| v.parse().unwrap()).unwrap_or(500);
    let _ = ops;
    driver.run(&mut db, SimTime(SimDuration::from_secs(100_000).nanos()));
    eprintln!("metrics: {:?}", db.cluster.metrics);
    eprintln!("run: {:?} ops={} failed={} simtime={}", t1.elapsed(), driver.stats.completed, driver.stats.failed, db.cluster.now());
    let mut all = driver.stats.merged(|_| true);
    eprintln!("p50={} p99={}", all.quantile(0.5), all.quantile(0.99));
}

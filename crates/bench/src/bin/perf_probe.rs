// perf probe: YCSB over a REGIONAL and a GLOBAL table on the paper's five
// regions. Latency classes are read from the cluster's own kv.op.latency
// histograms (not harness-side timers) and summarized into BENCH_perf.json:
// regional reads (lag policy), global reads (lead policy), and
// global-transaction commits (commit wait included), plus conformance
// counters (replication_violations, monitor_violations).
use mr_bench::{
    add_clients, five_region_db, obs_hist_json, paper_regions, run_to_completion, setup_ycsb,
    write_obs_exports,
};
use mr_sim::SimRng;
use mr_workload::driver::ClosedLoop;
use mr_workload::ycsb::{KeyChooser, ReadMode, YcsbGen, YcsbTable};
use mr_workload::Zipf;

const REGIONAL_KEYS: u64 = 100_000;
const GLOBAL_KEYS: u64 = 10_000;

fn ops() -> u64 {
    std::env::var("OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500)
}

#[allow(clippy::too_many_arguments)]
fn run_phase(
    db: &mut multiregion::SqlDb,
    regions: &[String],
    table: &str,
    variant: YcsbTable,
    keys: u64,
    clients_per_region: usize,
    ops_per_client: u64,
    seed: &mut SimRng,
) {
    let t = std::time::Instant::now();
    let mut driver = ClosedLoop::new();
    let nregions = regions.len() as u64;
    let regions_owned: Vec<String> = regions.to_vec();
    add_clients(
        db,
        &mut driver,
        regions,
        "ycsb",
        clients_per_region,
        seed,
        |ri, _, _| {
            Box::new(YcsbGen {
                table: table.into(),
                variant,
                read_fraction: 0.5,
                insert_workload: false,
                keys: KeyChooser::Zipf(Zipf::ycsb(keys)),
                read_mode: ReadMode::Fresh,
                regions: regions_owned.clone(),
                region_idx: ri,
                remaining: Some(ops_per_client),
                next_insert: 0,
                insert_stride: 1,
                nregions,
                label_prefix: String::new(),
            })
        },
    );
    run_to_completion(db, &mut driver);
    eprintln!(
        "{table} phase: {:?} ops={} failed={} simtime={}",
        t.elapsed(),
        driver.stats.completed,
        driver.stats.failed,
        db.cluster.now()
    );
}

fn main() {
    let t0 = std::time::Instant::now();
    let mut db = five_region_db(250, 1);
    // MR_STRICT_MONITORS=1 escalates any online-invariant violation
    // (closed-timestamp regression, bad follower read, short commit wait,
    // non-conforming placement) to a panic, turning the probe into an
    // invariant smoke test.
    if std::env::var("MR_STRICT_MONITORS").is_ok_and(|v| v == "1") {
        db.cluster.obs.monitors.set_strict(true);
    }
    let regions = paper_regions();
    setup_ycsb(
        &mut db,
        &regions,
        "t",
        YcsbTable::RegionalByTable,
        REGIONAL_KEYS,
        |_| unreachable!(),
    );
    setup_ycsb(
        &mut db,
        &regions,
        "g",
        YcsbTable::Global,
        GLOBAL_KEYS,
        |_| unreachable!(),
    );
    eprintln!("setup: {:?}", t0.elapsed());

    let mut seed = SimRng::seed_from_u64(2);
    // Phase 1: REGIONAL table, YCSB-A mix (lag-policy reads and commits).
    run_phase(
        &mut db,
        &regions,
        "t",
        YcsbTable::RegionalByTable,
        REGIONAL_KEYS,
        10,
        ops(),
        &mut seed,
    );
    // Phase 2: GLOBAL table (lead-policy reads; commits pay commit wait).
    run_phase(
        &mut db,
        &regions,
        "g",
        YcsbTable::Global,
        GLOBAL_KEYS,
        5,
        ops() / 5,
        &mut seed,
    );

    let reg = &db.cluster.obs.registry;
    let regional_reads =
        reg.histogram_merged_where("kv.op.latency", &[("op", "kv.get"), ("policy", "lag")]);
    let global_reads =
        reg.histogram_merged_where("kv.op.latency", &[("op", "kv.get"), ("policy", "lead")]);
    let global_commits =
        reg.histogram_merged_where("kv.op.latency", &[("op", "kv.commit"), ("policy", "lead")]);
    let report = db.cluster.replication_report();
    let json = format!(
        "{{\n  \"regional_reads\": {},\n  \"global_reads\": {},\n  \"global_txn_commits\": {},\n  \"replication_violations\": {},\n  \"monitor_violations\": {}\n}}\n",
        obs_hist_json(&regional_reads),
        obs_hist_json(&global_reads),
        obs_hist_json(&global_commits),
        report.violations(),
        db.cluster.obs.monitors.violation_count()
    );
    std::fs::write("BENCH_perf.json", &json).unwrap();
    write_obs_exports(&db, "perf_probe");
    eprintln!("metrics: {:?}", db.cluster.metrics());
    print!("{json}");
}

//! Observability probe: per-range load telemetry, windowed metrics
//! history, and transaction latency attribution. Writes `BENCH_obs.json`.
//!
//! The skew phase drives an open-loop read storm at one range (plus a
//! 10x-slower write trickle at a second) so the EWMA load recorder has a
//! known ground truth: the hot range must rank first and its decayed QPS
//! must land within 10% of the driven rate. The same window is replayed
//! against the tsdb at both resolutions: the `kv.txn.commits` rate must
//! match the driven commit rate within 10% at fine and coarse. The
//! attribution phase then runs closed-loop multi-range write transactions
//! and requires the named latency components (rpc, replication,
//! lock-wait, commit-wait, retry) to explain >= 95% of end-to-end
//! latency. Finally the registry's instrument count is checked against
//! `MR_METRIC_BUDGET` so per-range dimensions can never leak into the
//! flat registry and blow up cardinality.
//!
//! Exits non-zero on any violated gate, so CI uses this binary as the
//! telemetry regression guard.

use mr_bench::{obs_probe, obs_probe_json};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(1);
    let skew_secs: u64 = std::env::var("MR_OBS_SKEW_SECS")
        .ok()
        .map(|s| s.parse().expect("MR_OBS_SKEW_SECS must be a u64"))
        .unwrap_or(60);
    let txns: usize = std::env::var("MR_OBS_TXNS")
        .ok()
        .map(|s| s.parse().expect("MR_OBS_TXNS must be a usize"))
        .unwrap_or(30);
    let budget: usize = std::env::var("MR_METRIC_BUDGET")
        .ok()
        .map(|s| s.parse().expect("MR_METRIC_BUDGET must be a usize"))
        .unwrap_or(256);

    eprintln!("obs_probe: seed {seed}, {skew_secs}s skew, {txns} attribution txns");
    let r = obs_probe(seed, skew_secs, txns);
    let json = obs_probe_json(&r);
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    print!("{json}");

    let mut failures = Vec::new();
    // The deliberately skewed range must rank first, with a decayed QPS
    // within 10% of the rate the open loop actually drove.
    match r.hot.first() {
        None => failures.push("hot_ranges ranking is empty".to_string()),
        Some(top) => {
            if top.range != r.hot_range {
                failures.push(format!(
                    "hottest range is r{} — expected the skewed r{}",
                    top.range, r.hot_range
                ));
            }
            let driven = r.driven_qps_milli as f64;
            if (top.qps_milli as f64 - driven).abs() > 0.10 * driven {
                failures.push(format!(
                    "hot-range decayed QPS {}m is not within 10% of the driven {}m",
                    top.qps_milli, r.driven_qps_milli
                ));
            }
        }
    }
    // The windowed store must report the driven commit rate at both
    // resolutions.
    for (res, rate, n) in [
        ("fine", r.commit_rate_fine_milli, r.fine_samples),
        ("coarse", r.commit_rate_coarse_milli, r.coarse_samples),
    ] {
        if n < 2 {
            failures.push(format!("{res} window holds only {n} samples"));
        }
        let expected = r.expected_commit_rate_milli as f64;
        if (rate as f64 - expected).abs() > 0.10 * expected {
            failures.push(format!(
                "{res} commit rate {rate}m/s is not within 10% of the driven {expected}m/s"
            ));
        }
    }
    // Named attribution components must explain almost all of every
    // transaction's end-to-end latency; a growing `other` bucket means an
    // instrumentation hole on the client critical path.
    if r.attr_txns == 0 {
        failures.push("attribution log is empty".to_string());
    }
    if r.named_fraction() < 0.95 {
        failures.push(format!(
            "named components explain only {:.1}% of txn latency (need >= 95%)",
            100.0 * r.named_fraction()
        ));
    }
    // Cardinality budget: per-range load lives in the LoadRecorder, never
    // as per-range registry instruments.
    if r.instrument_count > budget {
        failures.push(format!(
            "registry holds {} instruments — exceeds MR_METRIC_BUDGET {budget}",
            r.instrument_count
        ));
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "obs_probe: hot r{} at {}m qps (driven {}m), rates {}/{}m vs {}m, named attribution {:.1}%, {} instruments — all guards passed",
        r.hot_range,
        r.hot.first().map(|s| s.qps_milli).unwrap_or(0),
        r.driven_qps_milli,
        r.commit_rate_fine_milli,
        r.commit_rate_coarse_milli,
        r.expected_commit_rate_milli,
        100.0 * r.named_fraction(),
        r.instrument_count
    );
}

//! Durable-storage probe: drives the WAL + LSM + MVCC-GC engine directly
//! through a cold-key bloom workload, an overwrite-heavy GC workload
//! under an active protected timestamp, and a closing crash-recovery
//! smoke. Writes `BENCH_storage.json`.
//!
//! Exits non-zero if the bloom filters stop pruning cold-run probes
//! (skip rate < 90%), GC stops reclaiming shadowed history (< 50% of
//! versions on the overwrite workload), a protected AOST read breaks, a
//! below-threshold read stops erroring, or WAL replay loses versions —
//! CI uses this binary as the storage regression guard.

use mr_bench::{storage_probe, storage_probe_json};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(1);

    eprintln!("storage_probe: seed {seed}");
    let r = storage_probe(seed);
    let json = storage_probe_json(&r);
    std::fs::write("BENCH_storage.json", &json).expect("write BENCH_storage.json");
    print!("{json}");

    let mut failures = Vec::new();
    // The acceptance bar: cold-key lookups are answered by the bloom
    // filters for (nearly) every run that does not hold the key.
    if r.bloom_skip_milli < 900 {
        failures.push(format!(
            "bloom skip rate {}/1000 under the 900 floor ({} skips / {} probes over {} runs)",
            r.bloom_skip_milli, r.bloom_skips, r.bloom_probes, r.bloom_runs
        ));
    }
    // GC must reclaim at least half the overwrite-heavy history even
    // while a protection pins a mid-history timestamp.
    if r.gc_reclaim_milli < 500 {
        failures.push(format!(
            "gc reclaimed only {}/1000 of the overwritten versions ({} -> {})",
            r.gc_reclaim_milli, r.gc_versions_before, r.gc_versions_protected
        ));
    }
    if !r.protected_read_ok {
        failures.push("AOST read at the protected timestamp broke after GC".into());
    }
    if !r.below_threshold_read_errors {
        failures
            .push("read below the GC threshold returned data instead of BelowGcThreshold".into());
    }
    // Released protection: history folds to one live version per key.
    if r.gc_versions_after >= r.gc_versions_protected {
        failures.push(format!(
            "releasing the protection reclaimed nothing ({} -> {})",
            r.gc_versions_protected, r.gc_versions_after
        ));
    }
    // Crash-recovery smoke: replay reconstructs the exact surviving state.
    if r.recovered_versions != r.gc_versions_after {
        failures.push(format!(
            "WAL replay recovered {} versions, expected {}",
            r.recovered_versions, r.gc_versions_after
        ));
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "storage_probe: bloom skipped {}/1000 of {} probes across {} runs; gc reclaimed \
         {}/1000 of {} versions under an active protection (then {} -> {} on release); \
         recovery replayed {} wal records — all guards passed",
        r.bloom_skip_milli,
        r.bloom_probes,
        r.bloom_runs,
        r.gc_reclaim_milli,
        r.gc_versions_before,
        r.gc_versions_protected,
        r.gc_versions_after,
        r.wal_replayed
    );
}

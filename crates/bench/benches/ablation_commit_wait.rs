//! Ablation A: commit wait *concurrent with* lock release (CockroachDB,
//! §6.2) vs commit wait *holding locks* (Spanner-style).
//!
//! The paper emphasizes that CRDB releases a global transaction's locks
//! while the coordinator commit-waits, "key to minimizing the amount of
//! time a lock can be observed by a reader". This ablation flips that
//! design choice (`commit_wait_holds_locks`) and reruns the Fig. 3 GLOBAL
//! workload: with locks held through commit wait, contended readers and
//! writers stack the ~600ms wait serially and the tail explodes.

use mr_bench::*;
use mr_sim::SimRng;
use mr_workload::driver::{ClosedLoop, DriverStats};
use mr_workload::ycsb::{KeyChooser, ReadMode, YcsbGen, YcsbTable};
use mr_workload::Zipf;

const KEYS: u64 = 100_000;

fn run(holds_locks: bool, seed: u64) -> DriverStats {
    let mut db = multiregion::ClusterBuilder::new()
        .paper_regions()
        .max_clock_offset(multiregion::SimDuration::from_millis(250))
        .seed(seed)
        .config(|c| c.commit_wait_holds_locks = holds_locks)
        .build();
    let regions = paper_regions();
    setup_ycsb(
        &mut db,
        &regions,
        "usertable",
        YcsbTable::Global,
        KEYS,
        |_| unreachable!(),
    );
    let mut driver = ClosedLoop::new();
    let mut rng = SimRng::seed_from_u64(seed);
    let ops = ops_per_client();
    add_clients(
        &db,
        &mut driver,
        &regions,
        "ycsb",
        10,
        &mut rng,
        |ri, _, _| {
            Box::new(YcsbGen {
                table: "usertable".into(),
                variant: YcsbTable::Global,
                read_fraction: 0.5,
                insert_workload: false,
                keys: KeyChooser::Zipf(Zipf::ycsb(KEYS)),
                read_mode: ReadMode::Fresh,
                regions: paper_regions(),
                region_idx: ri,
                remaining: Some(ops),
                next_insert: 0,
                insert_stride: 1,
                nregions: 5,
                label_prefix: String::new(),
            })
        },
    );
    run_to_completion(&mut db, &mut driver);
    driver.stats
}

fn main() {
    println!(
        "Ablation A: commit wait concurrent with lock release (CRDB) vs holding locks \
         (Spanner-style), GLOBAL table, YCSB-A, {} ops/client\n",
        ops_per_client()
    );
    for (name, holds) in [
        ("CRDB (release during wait)", false),
        ("Spanner-style (hold)", true),
    ] {
        let stats = run(holds, 81);
        report_errors(name, &stats);
        let mut reads = stats.merged(|l| l.contains("read"));
        let mut writes = stats.merged(|l| l.contains("write"));
        print_row(&format!("{name:<28} read"), &mut reads);
        print_row(&format!("{name:<28} write"), &mut writes);
        println!();
    }
    println!(
        "expectation: medians match (the wait itself is identical), but holding locks\n\
         serializes contended access across the ~600ms commit wait — read and write\n\
         tails grow by multiples."
    );
}

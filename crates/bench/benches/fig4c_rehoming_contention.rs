//! Figure 4c: automatic rehoming under contention (§7.2.3).
//!
//! YCSB-B at 50% locality of access from all three regions, with every
//! *remote* access targeting a shared, contended key range. The number of
//! contending clients per region varies over c ∈ {1, 2, 3}; compared
//! against *Default* (no rehoming).
//!
//! Expected shape (paper): with c=1 the shared rows re-home to their
//! single accessor's region and everything converges to local latency;
//! with c=2,3 rows thrash between regions and remote accesses approach the
//! no-rehoming Default.

use mr_bench::*;
use mr_sim::SimRng;
use mr_workload::driver::{ClosedLoop, DriverStats};
use mr_workload::ycsb::{KeyChooser, ReadMode, YcsbGen, YcsbTable};

const KEYS: u64 = 30_000;
/// Shared contended block: remote accesses hit keys below this bound.
const SHARED: u64 = 24;

/// `contenders` = how many regions host an active client (the paper's c):
/// c=1 is a single, uncontended client whose remote accesses can re-home
/// freely; c=2,3 make the shared rows thrash between regions.
fn run_variant(name: &str, rehoming: bool, contenders: usize, seed: u64) -> DriverStats {
    let variant = YcsbTable::RegionalByRow { rehoming };
    let mut db = three_region_db(seed);
    let (all_regions, _) = three_regions();
    let regions: Vec<String> = all_regions[..contenders].to_vec();
    let nregions = all_regions.len() as u64;
    let regions_for_home = all_regions.clone();
    setup_ycsb(
        &mut db,
        &all_regions,
        "usertable",
        variant,
        KEYS,
        move |k| regions_for_home[(k % nregions) as usize].clone(),
    );
    let mut rng = SimRng::seed_from_u64(seed);
    let ops = ops_per_client();
    let nclients = regions.len() as u64;
    // Warmup pass (discarded): lets rehoming reach its steady state, as the
    // paper's 10-minute runs do.
    for phase in 0..2 {
        let measuring = phase == 1;
        let mut driver = ClosedLoop::new();
        add_clients(
            &db,
            &mut driver,
            &regions,
            "ycsb",
            1,
            &mut rng,
            |ri, _, global| {
                Box::new(YcsbGen {
                    table: "usertable".into(),
                    variant,
                    read_fraction: 0.95,
                    insert_workload: false,
                    keys: KeyChooser::Locality {
                        n: KEYS,
                        nregions,
                        region_idx: ri as u64,
                        locality: 0.5,
                        client_idx: global as u64,
                        nclients,
                        shared_remote: Some(SHARED),
                        remote_set: None,
                    },
                    read_mode: ReadMode::Fresh,
                    regions: three_regions().0,
                    region_idx: ri,
                    remaining: Some(ops),
                    next_insert: 0,
                    insert_stride: 1,
                    nregions,
                    label_prefix: String::new(),
                })
            },
        );
        run_to_completion(&mut db, &mut driver);
        if measuring {
            report_errors(name, &driver.stats);
            return driver.stats;
        }
    }
    unreachable!()
}

fn main() {
    println!(
        "Figure 4c: automatic rehoming under contention, YCSB-B, 50% locality,\n\
         remote accesses share a {SHARED}-key block, {} ops/client\n",
        ops_per_client()
    );
    let mut configs: Vec<(String, bool, usize, u64)> = vec![];
    for c in 1..=3 {
        configs.push((format!("Rehoming c={c}"), true, c, 70 + c as u64));
    }
    configs.push(("Default c=1".into(), false, 1, 79));
    for (name, rehoming, contenders, seed) in configs {
        let stats = run_variant(&name, rehoming, contenders, seed);
        for kind in ["read", "write"] {
            for loc in ["local", "remote"] {
                let mut rec = stats.merged(|l| l == format!("{kind}-{loc}"));
                print_row(&format!("{name:<14} {kind:<6} {loc}"), &mut rec);
            }
        }
        println!();
    }
    println!(
        "paper expectation: Rehoming c=1 pulls the shared rows local (remote band collapses\n\
         toward local); c=2,3 thrash between regions and approach Default's remote costs.\n\
         (\"remote\" labels mark where the key was originally homed; after re-homing those\n\
         accesses become physically local — that is the effect being measured.)"
    );
}

//! Criterion microbenchmarks for the substrates: HLC reads, MVCC point
//! operations, key encoding, Raft proposal/commit round-trips, and the
//! simulator's event calendar. These bound the per-event cost of the
//! experiment harnesses.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use mr_clock::{Hlc, SkewedClock, Timestamp};
use mr_proto::{Key, ReadCtx, TxnId, TxnMeta, Value};
use mr_raft::{RaftConfig, RaftNode};
use mr_sim::{EventQueue, SimDuration, SimTime};
use mr_sql::encoding::{decode_row, encode_row, index_key};
use mr_sql::types::Datum;
use mr_storage::MvccStore;

fn bench_hlc(c: &mut Criterion) {
    c.bench_function("hlc/now", |b| {
        let mut hlc = Hlc::new(SkewedClock::new(37));
        let mut t = 0u64;
        b.iter(|| {
            t += 13;
            black_box(hlc.now(SimTime(t)))
        });
    });
    c.bench_function("hlc/update", |b| {
        let mut hlc = Hlc::new(SkewedClock::zero());
        let mut t = 0u64;
        b.iter(|| {
            t += 7;
            hlc.update(Timestamp::new(t * 2, 3), SimTime(t));
            black_box(hlc.peek())
        });
    });
}

fn bench_mvcc(c: &mut Criterion) {
    fn store_with(n: u64) -> MvccStore {
        let mut s = MvccStore::new();
        for i in 0..n {
            let key = Key::from_vec(i.to_be_bytes().to_vec());
            s.preload(key, Value::from("v"), Timestamp::new(i + 1, 0));
        }
        s
    }
    c.bench_function("mvcc/get_hit", |b| {
        let s = store_with(100_000);
        let ctx = ReadCtx::stale(Timestamp::new(1 << 40, 0));
        let key = Key::from_vec(42_000u64.to_be_bytes().to_vec());
        b.iter(|| black_box(s.get(&key, &ctx).unwrap()));
    });
    c.bench_function("mvcc/put_commit", |b| {
        b.iter_batched(
            || store_with(1_000),
            |mut s| {
                let key = Key::from_vec(77u64.to_be_bytes().to_vec());
                let txn = TxnMeta::new(TxnId(9), key.clone(), Timestamp::new(1 << 41, 0));
                let out = s.put(&key, Some(Value::from("w")), &txn).unwrap();
                s.commit_intent(&key, txn.id, out.written_ts);
                black_box(s.latest_committed_ts(&key));
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("mvcc/hot_key_deep_chain_get", |b| {
        // 5k versions on one key: reads stay O(log n).
        let mut s = MvccStore::new();
        let key = Key::from("hot");
        for i in 0..5_000u64 {
            s.preload(key.clone(), Value::from("v"), Timestamp::new(i + 1, 0));
        }
        let ctx = ReadCtx::stale(Timestamp::new(2_500, 0));
        b.iter(|| black_box(s.get(&key, &ctx).unwrap()));
    });
}

fn bench_encoding(c: &mut Criterion) {
    c.bench_function("encoding/index_key", |b| {
        let cols = vec![
            Datum::Region("us-east1".into()),
            Datum::Int(123_456),
            Datum::String("user@example.com".into()),
        ];
        b.iter(|| black_box(index_key(7, 2, Some("us-east1"), &cols)));
    });
    c.bench_function("encoding/row_roundtrip", |b| {
        let row = vec![
            Datum::Int(1),
            Datum::String("some medium length string value".into()),
            Datum::Uuid(0x1234_5678_9abc_def0_1234_5678_9abc_def0),
            Datum::Float(3.15),
            Datum::Region("europe-west2".into()),
        ];
        b.iter(|| {
            let v = encode_row(&row);
            black_box(decode_row(&v).unwrap())
        });
    });
}

fn bench_raft(c: &mut Criterion) {
    c.bench_function("raft/propose_commit_3voters", |b| {
        let mk = |id| {
            RaftNode::<u64>::new(
                RaftConfig {
                    id,
                    voters: vec![0, 1, 2],
                    learners: vec![],
                    election_timeout: SimDuration::from_millis(150),
                    heartbeat_interval: SimDuration::from_millis(50),
                    // The microbench measures raw propose/commit cost;
                    // quiescence would park the idle group mid-iteration.
                    quiesce: false,
                },
                SimTime::ZERO,
            )
        };
        let mut leader = mk(0);
        leader.bootstrap_leader(SimTime::ZERO);
        let mut f1 = mk(1);
        let mut f2 = mk(2);
        let mut payload = 0u64;
        b.iter(|| {
            payload += 1;
            let (_, msgs) = leader.propose(payload, SimTime::ZERO).unwrap();
            for (to, m) in msgs {
                let follower = if to == 1 { &mut f1 } else { &mut f2 };
                for (_, resp) in follower.step(0, m, SimTime::ZERO) {
                    leader.step(to, resp, SimTime::ZERO);
                }
            }
            black_box(leader.take_committed().len())
        });
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("sim/event_queue_push_pop", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            q.schedule(SimDuration::from_micros(i % 500), i);
            if i.is_multiple_of(2) {
                black_box(q.pop());
            }
        });
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(30).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(1));
    targets = bench_hlc, bench_mvcc, bench_encoding, bench_raft, bench_event_queue
);
criterion_main!(micro);

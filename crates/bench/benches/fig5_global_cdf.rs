//! Figure 5: CDFs of read and write latencies for GLOBAL tables (at three
//! `max_clock_offset` settings) against the legacy *duplicate indexes*
//! topology and the REGIONAL baselines (§7.3).
//!
//! Workload as Fig. 3: five regions, YCSB-A, Zipf keys, 10 clients/region.
//!
//! Expected shape (paper): reads are <3ms below the 90th percentile for
//! everything except Regional (Latest); in the tail, GLOBAL reads are
//! bounded by max_clock_offset (smaller offset → tighter tail) while
//! duplicate-index reads are unbounded (they wait on cross-region 2PC).
//! GLOBAL writes cluster at the closed-timestamp lead (250-600ms by
//! offset); duplicate-index writes have comparable medians but unbounded
//! tails (>10s under write-write contention).

use mr_bench::*;
use mr_sim::{SimDuration, SimRng};
use mr_sql::exec::SqlDb;
use mr_workload::driver::{ClosedLoop, DriverStats};
use mr_workload::ycsb::{KeyChooser, ReadMode, YcsbGen, YcsbTable};
use mr_workload::Zipf;

const KEYS: u64 = 100_000;

fn drive(
    db: &mut SqlDb,
    table: &str,
    variant: YcsbTable,
    read_mode: ReadMode,
    seed: u64,
) -> DriverStats {
    let regions = paper_regions();
    let mut driver = ClosedLoop::new();
    let mut rng = SimRng::seed_from_u64(seed);
    let ops = ops_per_client();
    let table = table.to_string();
    add_clients(
        db,
        &mut driver,
        &regions,
        "ycsb",
        10,
        &mut rng,
        |ri, _, _| {
            Box::new(YcsbGen {
                table: table.clone(),
                variant,
                read_fraction: 0.5,
                insert_workload: false,
                keys: KeyChooser::Zipf(Zipf::ycsb(KEYS)),
                read_mode,
                regions: paper_regions(),
                region_idx: ri,
                remaining: Some(ops),
                next_insert: 0,
                insert_stride: 1,
                nregions: 5,
                label_prefix: String::new(),
            })
        },
    );
    run_to_completion(db, &mut driver);
    driver.stats
}

fn global_config(offset_ms: u64, seed: u64) -> DriverStats {
    let mut db = five_region_db(offset_ms, seed);
    let regions = paper_regions();
    setup_ycsb(
        &mut db,
        &regions,
        "usertable",
        YcsbTable::Global,
        KEYS,
        |_| unreachable!(),
    );
    drive(
        &mut db,
        "usertable",
        YcsbTable::Global,
        ReadMode::Fresh,
        seed,
    )
}

fn regional_config(read_mode: ReadMode, seed: u64) -> DriverStats {
    let mut db = five_region_db(250, seed);
    let regions = paper_regions();
    setup_ycsb(
        &mut db,
        &regions,
        "usertable",
        YcsbTable::RegionalByTable,
        KEYS,
        |_| unreachable!(),
    );
    drive(
        &mut db,
        "usertable",
        YcsbTable::RegionalByTable,
        read_mode,
        seed,
    )
}

/// The legacy duplicate-indexes topology (§7.3.1): one covering unique
/// index per non-primary region, each pinned to its region; writes update
/// the primary and every duplicate (a cross-region transaction), reads use
/// the local copy.
fn duplicate_indexes_config(seed: u64) -> DriverStats {
    let mut db = five_region_db(250, seed);
    let regions = paper_regions();
    setup_ycsb(
        &mut db,
        &regions,
        "usertable",
        YcsbTable::RegionalByTable,
        KEYS,
        |_| unreachable!(),
    );
    let sess = db.session_in_region(&regions[0], Some("ycsb"));
    for (i, r) in regions.iter().enumerate().skip(1) {
        db.exec_sync(
            &sess,
            &format!("CREATE UNIQUE INDEX dup{i} ON usertable (k) STORING (v)"),
        )
        .unwrap();
        db.exec_sync(
            &sess,
            &format!(
                "ALTER INDEX usertable.dup{i} CONFIGURE ZONE USING num_replicas = 3, \
                 constraints = '{{+region={r}: 3}}', lease_preferences = '[[+region={r}]]'"
            ),
        )
        .unwrap();
    }
    let t = db.cluster.now();
    db.cluster.run_until(multiregion::SimTime(
        t.nanos() + SimDuration::from_secs(2).nanos(),
    ));
    drive(
        &mut db,
        "usertable",
        YcsbTable::RegionalByTable,
        ReadMode::Fresh,
        seed,
    )
}

fn main() {
    println!(
        "Figure 5: read/write latency CDFs, GLOBAL vs duplicate indexes vs regional \
         (5 regions, YCSB-A, {} ops/client)\n",
        ops_per_client()
    );
    let configs: Vec<(&str, DriverStats)> = vec![
        ("Global offset=250ms", global_config(250, 51)),
        ("Global offset=50ms", global_config(50, 52)),
        ("Global offset=10ms", global_config(10, 53)),
        ("Duplicate indexes", duplicate_indexes_config(54)),
        ("Regional (Latest)", regional_config(ReadMode::Fresh, 55)),
        (
            "Regional (Stale)",
            regional_config(ReadMode::BoundedStaleness(SimDuration::from_secs(10)), 56),
        ),
    ];
    for (name, stats) in &configs {
        report_errors(name, stats);
    }
    println!("READ latency CDF (ms at percentile):");
    for (name, stats) in &configs {
        let mut rec = stats.merged(|l| l.contains("read"));
        print_cdf(name, &mut rec);
    }
    println!("\nWRITE latency CDF (ms at percentile):");
    for (name, stats) in &configs {
        let mut rec = stats.merged(|l| l.contains("write"));
        print_cdf(name, &mut rec);
    }
    println!(
        "\npaper expectation: sub-90th reads <3ms everywhere except Regional (Latest);\n\
         GLOBAL read tails bounded by max_clock_offset (ordered 10 < 50 < 250ms);\n\
         duplicate-index read and write tails unbounded (seconds);\n\
         GLOBAL writes 250-600ms scaling with offset; Regional (Stale) tail <5ms."
    );
}

//! Figure 4a: locality-optimized search and automatic rehoming on REGIONAL
//! BY ROW tables (§7.2.1).
//!
//! Three regions (us-east1, europe-west2, asia-northeast1), YCSB-B (95%
//! reads / 5% updates), uniform keys, clients accessing *disjoint* key
//! sets, at 95% and 50% locality of access. Four variants:
//!
//! * *Unoptimized* — RBR without LOS: every lookup fans out to all
//!   partitions (150-200ms for reads AND writes);
//! * *Default*     — RBR with LOS: local-first probe keeps local accesses
//!   local; remote accesses pay the fan-out only on a local miss;
//! * *Rehoming*    — LOS + `ON UPDATE rehome_row()`: uncontended remote
//!   rows migrate to the accessor's region, converging to local latency;
//! * *Baseline*    — legacy manually partitioned table (partition key in
//!   the primary key): predictable single-partition routing.

use mr_bench::*;
use mr_sim::SimRng;
use mr_workload::driver::{ClosedLoop, DriverStats};
use mr_workload::ycsb::{KeyChooser, ReadMode, YcsbGen, YcsbTable};

const KEYS: u64 = 30_000;
const CLIENTS_PER_REGION: usize = 3;

fn run_variant(name: &str, variant: YcsbTable, los: bool, locality: f64, seed: u64) -> DriverStats {
    let mut db = three_region_db(seed);
    db.los_enabled = los;
    let (regions, _) = three_regions();
    let nregions = regions.len() as u64;
    let regions_for_home = regions.clone();
    setup_ycsb(&mut db, &regions, "usertable", variant, KEYS, move |k| {
        regions_for_home[(k % nregions) as usize].clone()
    });
    let mut rng = SimRng::seed_from_u64(seed);
    let ops = ops_per_client();
    let nclients = (regions.len() * CLIENTS_PER_REGION) as u64;
    // Warmup pass (discarded) so the Rehoming variant converges, then the
    // measured pass — mirroring the paper's steady-state measurements.
    for phase in 0..2 {
        let measuring = phase == 1;
        let mut driver = ClosedLoop::new();
        add_clients(
            &db,
            &mut driver,
            &regions,
            "ycsb",
            CLIENTS_PER_REGION,
            &mut rng,
            |ri, _, global| {
                Box::new(YcsbGen {
                    table: "usertable".into(),
                    variant,
                    read_fraction: 0.95,
                    insert_workload: false,
                    keys: KeyChooser::Locality {
                        n: KEYS,
                        nregions,
                        region_idx: ri as u64,
                        locality,
                        client_idx: global as u64,
                        nclients,
                        shared_remote: None,
                        // A bounded remote working set per client: lets the
                        // Rehoming variant reach its converged (re-homed)
                        // steady state within the run.
                        remote_set: Some(25),
                    },
                    read_mode: ReadMode::Fresh,
                    regions: three_regions().0,
                    region_idx: ri,
                    remaining: Some(ops),
                    next_insert: 0,
                    insert_stride: 1,
                    nregions,
                    label_prefix: String::new(),
                })
            },
        );
        run_to_completion(&mut db, &mut driver);
        if measuring {
            report_errors(name, &driver.stats);
            return driver.stats;
        }
    }
    unreachable!()
}

fn print_variant(name: &str, stats: &DriverStats) {
    for kind in ["read", "write"] {
        for loc in ["local", "remote"] {
            let mut rec = stats.merged(|l| l == format!("{kind}-{loc}"));
            print_row(&format!("{name:<24} {kind:<6} {loc}"), &mut rec);
        }
    }
    println!();
}

fn run_locality_block(locality: f64, seed0: u64) {
    println!("--- locality of access = {:.0}% ---", locality * 100.0);
    let variants: Vec<(&str, YcsbTable, bool)> = vec![
        (
            "Unoptimized",
            YcsbTable::RegionalByRow { rehoming: false },
            false,
        ),
        (
            "Default",
            YcsbTable::RegionalByRow { rehoming: false },
            true,
        ),
        (
            "Rehoming",
            YcsbTable::RegionalByRow { rehoming: true },
            true,
        ),
        ("Baseline", YcsbTable::ManualPartition, true),
    ];
    for (i, (name, variant, los)) in variants.into_iter().enumerate() {
        let stats = run_variant(name, variant, los, locality, seed0 + i as u64);
        print_variant(name, &stats);
    }
}

fn main() {
    println!(
        "Figure 4a: LOS and automatic rehoming, YCSB-B, 3 regions, disjoint keys, {} ops/client\n",
        ops_per_client()
    );
    run_locality_block(0.95, 41);
    run_locality_block(0.50, 46);
    println!(
        "paper expectation: Unoptimized pays 150-200ms on every op; Default keeps local ops\n\
         local and is only slightly slower than Baseline on remote ops; Rehoming converges\n\
         remote rows into the accessor's region (local latencies for a disjoint working set)."
    );
}

//! Table 2: DDL statements needed for multi-region schema operations,
//! before (legacy imperative syntax) and after (the declarative syntax).
//!
//! The "after" scripts are counted *and executed* against the engine; the
//! "before" scripts are generated from the same schemas using the legacy
//! primitives (PARTITION BY LIST, CONFIGURE ZONE, duplicate indexes) the
//! paper's baseline used, and counted. Counts are our scripts'; the
//! paper's reported numbers are printed alongside for comparison — small
//! deviations reflect schema-detail differences, the shape (an order of
//! magnitude fewer statements, and region add/drop becoming a single
//! statement) is the result.

use mr_workload::movr;
use multiregion::{ClusterBuilder, SqlDb};

struct Schema {
    name: &'static str,
    /// (table, is_global, computed_region_col) — RBR tables get legacy
    /// partitioning; GLOBAL tables get legacy duplicate indexes.
    tables: Vec<(&'static str, bool, bool)>,
}

fn movr_schema() -> Schema {
    Schema {
        name: "movr",
        tables: vec![
            ("users", false, true),
            ("vehicles", false, true),
            ("rides", false, true),
            ("vehicle_location_histories", false, true),
            ("promo_codes", true, false),
            ("user_promo_codes", false, true),
        ],
    }
}

fn tpcc_schema() -> Schema {
    Schema {
        name: "TPC-C",
        tables: vec![
            ("warehouse", false, true),
            ("district", false, true),
            ("customer", false, true),
            ("history", false, true),
            ("orders", false, true),
            ("new_order", false, true),
            ("order_line", false, true),
            ("stock", false, true),
            ("item", true, false),
        ],
    }
}

fn ycsb_schema() -> Schema {
    Schema {
        name: "YCSB",
        tables: vec![("usertable", false, false)],
    }
}

const REGIONS: [&str; 3] = ["us-east1", "europe-west2", "asia-northeast1"];

/// "After": fresh multi-region schema with the new declarative syntax.
/// 1 CREATE DATABASE + 1 CREATE TABLE ... LOCALITY per table + 1 ALTER
/// ADD COLUMN per computed region column (the paper counts these
/// separately).
fn new_syntax_fresh(s: &Schema) -> usize {
    1 + s.tables.len() + s.tables.iter().filter(|(_, _, c)| *c).count()
}

/// "After": converting an existing single-region schema: regions are added
/// with ALTER DATABASE (1 SET PRIMARY + 2 ADD REGION for 3 regions), then
/// one SET LOCALITY per table plus computed columns.
fn new_syntax_convert(s: &Schema) -> usize {
    REGIONS.len() + s.tables.len() + s.tables.iter().filter(|(_, _, c)| *c).count()
}

/// "Before": the legacy imperative equivalent.
/// Per REGIONAL-BY-ROW-equivalent table: 1 PARTITION BY LIST + one ALTER
/// PARTITION ... CONFIGURE ZONE per region. Per GLOBAL-equivalent table:
/// duplicate indexes — (N-1) CREATE INDEX ... STORING + N CONFIGURE ZONE
/// (primary + each duplicate). Plus one table-level CONFIGURE ZONE per
/// partitioned table to pin the default/lease placement.
fn legacy_fresh(s: &Schema) -> usize {
    let mut n = 0;
    for (_, global, _) in &s.tables {
        if *global {
            n += (REGIONS.len() - 1) + REGIONS.len();
        } else {
            n += 1 + REGIONS.len() + 1;
        }
    }
    n
}

/// Legacy region add: every partitioned table needs a re-partition plus a
/// zone config for the new partition; duplicate-index tables need one new
/// index plus its zone config.
fn legacy_add_region(s: &Schema) -> usize {
    // Partitioned tables: re-partition + new partition's zone config.
    // Duplicate-index tables: one new index + its zone config.
    2 * s.tables.len() + 1 // plus one node/zone bookkeeping statement
}

fn legacy_drop_region(s: &Schema) -> usize {
    s.tables
        .iter()
        .map(|(_, global, _)| if *global { 2 } else { 1 })
        .sum::<usize>()
}

/// Execute the declarative movr conversion for real, proving the "after"
/// numbers are not hypothetical.
fn execute_movr_after() -> (usize, SqlDb) {
    let mut db = ClusterBuilder::new()
        .region(REGIONS[0], 3)
        .region(REGIONS[1], 3)
        .region(REGIONS[2], 3)
        .seed(3)
        .build();
    let sess = db.session_in_region(REGIONS[0], None);
    let mut count = 0;
    let create = format!(
        "CREATE DATABASE movr PRIMARY REGION \"{}\" REGIONS \"{}\", \"{}\"",
        REGIONS[0], REGIONS[1], REGIONS[2]
    );
    db.exec_sync(&sess, &create).unwrap();
    count += 1;
    let regions: Vec<String> = REGIONS.iter().map(|s| s.to_string()).collect();
    for ddl in movr::schema_multiregion(&regions) {
        db.exec_sync(&sess, &ddl).unwrap();
        count += 1;
    }
    // The inline computed columns above fold the paper's 5 extra ALTER
    // statements into the CREATEs; count them the way the paper does.
    count += 5;
    (count, db)
}

fn main() {
    println!("Table 2: DDL statements for multi-region schema operations");
    println!("(Bef. = legacy imperative syntax, Aft. = declarative syntax; paper numbers in [brackets])\n");
    println!(
        "{:<36} {:>18} {:>18} {:>18}",
        "Operation", "movr", "TPC-C", "YCSB"
    );

    let schemas = [movr_schema(), tpcc_schema(), ycsb_schema()];
    debug_assert_eq!(
        schemas.iter().map(|s| s.name).collect::<Vec<_>>(),
        vec!["movr", "TPC-C", "YCSB"]
    );
    let paper: [[(usize, usize); 3]; 4] = [
        [(28, 12), (44, 18), (5, 1)],
        [(28, 14), (44, 20), (5, 1)],
        [(15, 1), (20, 1), (2, 1)],
        [(9, 1), (11, 1), (2, 1)],
    ];

    let rows: Vec<(&str, Vec<(usize, usize)>)> = vec![
        (
            "New multi-region schema",
            schemas
                .iter()
                .map(|s| (legacy_fresh(s), new_syntax_fresh(s)))
                .collect(),
        ),
        (
            "Converting single-region schema",
            schemas
                .iter()
                .map(|s| (legacy_fresh(s), new_syntax_convert(s)))
                .collect(),
        ),
        (
            "Adding a region",
            schemas.iter().map(|s| (legacy_add_region(s), 1)).collect(),
        ),
        (
            "Dropping a region",
            schemas.iter().map(|s| (legacy_drop_region(s), 1)).collect(),
        ),
    ];

    for (ri, (op, counts)) in rows.iter().enumerate() {
        print!("{op:<36}");
        for (si, (before, after)) in counts.iter().enumerate() {
            let (pb, pa) = paper[ri][si];
            print!(" {:>18}", format!("{before}/{after} [{pb}/{pa}]"));
        }
        println!();
    }

    // Prove the declarative path by executing it.
    let (executed, mut db) = execute_movr_after();
    println!(
        "\nexecuted the declarative movr schema: {executed} statements (incl. 5 computed \
         columns folded into CREATE TABLE), all accepted by the engine"
    );
    // And one-statement region add/drop, for real.
    let sess = db.session_in_region(REGIONS[0], Some("movr"));
    db.exec_sync(&sess, r#"ALTER DATABASE movr ADD REGION "us-east1""#)
        .expect_err("already present");
    // Add a region that exists in the topology? Only 3 regions built; so
    // demonstrate drop+re-add of a non-primary region instead.
    db.exec_sync(
        &sess,
        r#"ALTER DATABASE movr DROP REGION "asia-northeast1""#,
    )
    .unwrap();
    db.exec_sync(&sess, r#"ALTER DATABASE movr ADD REGION "asia-northeast1""#)
        .unwrap();
    println!("executed single-statement DROP REGION and ADD REGION round-trip");
}

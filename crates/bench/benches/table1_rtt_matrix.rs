//! Table 1: inter-region round-trip times.
//!
//! The paper's Table 1 reports measured GCP RTTs between the five
//! evaluation regions; those numbers are this simulation's *input*. This
//! harness prints the configured matrix and then verifies it empirically:
//! it sends a ping RPC between nodes of every region pair and reports the
//! measured round trip (expected: RTT plus ~10% jitter and processing).

use std::cell::RefCell;
use std::rc::Rc;

use mr_sim::RegionId;
use multiregion::{ClusterBuilder, Datum, SimDuration};

fn main() {
    let regions = mr_sim::RttMatrix::paper_table1_regions();
    let matrix = mr_sim::RttMatrix::paper_table1();

    println!("Table 1: inter-region round-trip times (ms)\n");
    println!("configured (simulation input, from the paper):");
    print!("{:<22}", "");
    for r in &regions {
        print!("{:>8}", &r[..r.len().min(7)]);
    }
    println!();
    for (i, r) in regions.iter().enumerate() {
        print!("{r:<22}");
        for j in 0..regions.len() {
            let ms = matrix
                .rtt(RegionId(i as u32), RegionId(j as u32))
                .as_millis_f64();
            if j == i {
                print!("{:>8}", "-");
            } else {
                print!("{ms:>8.0}");
            }
        }
        println!();
    }

    // Empirical verification: a fresh read of a REGIONAL table homed in
    // region j, issued from region i, pays ~1 RTT(i, j).
    let mut db = ClusterBuilder::new().paper_regions().seed(11).build();
    let sess = db.session_in_region(regions[0], None);
    db.exec_sync(
        &sess,
        r#"CREATE DATABASE ping PRIMARY REGION "us-east1" REGIONS "us-west1",
           "europe-west2", "asia-northeast1", "australia-southeast1""#,
    )
    .unwrap();
    for (j, home) in regions.iter().enumerate() {
        db.exec_sync(
            &sess,
            &format!(
                "CREATE TABLE t{j} (k INT PRIMARY KEY, v STRING) \
                 LOCALITY REGIONAL BY TABLE IN \"{home}\""
            ),
        )
        .unwrap();
        db.exec_sync(&sess, &format!("INSERT INTO t{j} VALUES (1, 'x')"))
            .unwrap();
    }
    let settle = multiregion::SimTime(db.cluster.now().nanos() + SimDuration::from_secs(2).nanos());
    db.cluster.run_until(settle);

    println!("\nmeasured (fresh read from region i of a table homed in region j, ms):");
    print!("{:<22}", "");
    for r in &regions {
        print!("{:>8}", &r[..r.len().min(7)]);
    }
    println!();
    for (i, from) in regions.iter().enumerate() {
        let s = db.session_in_region(from, Some("ping"));
        print!("{from:<22}");
        for j in 0..regions.len() {
            let t0 = db.cluster.now();
            let got: Rc<RefCell<Option<usize>>> = Rc::new(RefCell::new(None));
            let g2 = Rc::clone(&got);
            db.exec(
                &s,
                &format!("SELECT v FROM t{j} WHERE k = 1"),
                Box::new(move |_c, res| {
                    *g2.borrow_mut() = Some(res.unwrap().rows().len());
                }),
            );
            while got.borrow().is_none() {
                db.cluster.step();
            }
            assert_eq!(got.borrow().unwrap(), 1, "row visible");
            let ms = (db.cluster.now() - t0).as_millis_f64();
            if i == j {
                print!("{:>8}", format!("({ms:.1})"));
            } else {
                print!("{ms:>8.0}");
            }
        }
        println!();
    }
    println!("\n(diagonal in parentheses: intra-region latency; off-diagonal ≈ RTT + jitter)");
    let _ = Datum::Null; // keep the facade import exercised
}

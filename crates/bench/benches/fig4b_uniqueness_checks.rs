//! Figure 4b: the cost of global uniqueness-constraint checks on INSERT
//! (§7.2.2).
//!
//! YCSB-D (95% reads, 5% inserts), 100% locality of access, three regions.
//! Variants:
//!
//! * *Default*  — `crdb_region DEFAULT gateway_region()`: a primary-key
//!   uniqueness check must probe every region's partition, so INSERTs pay
//!   the inter-region RTT (the paper's "three spikes");
//! * *Computed* — `crdb_region` computed from the key: the key determines
//!   its partition, so checking the home partition proves global
//!   uniqueness — INSERTs stay local (§4.1, rule 3);
//! * *Baseline* — legacy manual partitioning (partition key in the primary
//!   key): local by construction, but needs schema + application changes.

use mr_bench::*;
use mr_sim::SimRng;
use mr_workload::driver::{ClosedLoop, DriverStats};
use mr_workload::ycsb::{KeyChooser, ReadMode, YcsbGen, YcsbTable};

const KEYS: u64 = 30_000;
const CLIENTS_PER_REGION: usize = 3;

fn run_variant(name: &str, variant: YcsbTable, seed: u64) -> DriverStats {
    let mut db = three_region_db(seed);
    let (regions, _) = three_regions();
    let nregions = regions.len() as u64;
    let regions_for_home = regions.clone();
    setup_ycsb(&mut db, &regions, "usertable", variant, KEYS, move |k| {
        regions_for_home[(k % nregions) as usize].clone()
    });
    let mut driver = ClosedLoop::new();
    let mut rng = SimRng::seed_from_u64(seed);
    let ops = ops_per_client();
    let nclients = (regions.len() * CLIENTS_PER_REGION) as u64;
    add_clients(
        &db,
        &mut driver,
        &regions,
        "ycsb",
        CLIENTS_PER_REGION,
        &mut rng,
        |ri, _, global| {
            Box::new(YcsbGen {
                table: "usertable".into(),
                variant,
                read_fraction: 0.95,
                insert_workload: true,
                keys: KeyChooser::Locality {
                    n: KEYS,
                    nregions,
                    region_idx: ri as u64,
                    locality: 1.0,
                    client_idx: global as u64,
                    nclients,
                    shared_remote: None,
                    remote_set: None,
                },
                read_mode: ReadMode::Fresh,
                regions: three_regions().0,
                region_idx: ri,
                remaining: Some(ops),
                // Inserted keys stay in the inserting client's region
                // stripe (computed variant homes k%3): start at a fresh key
                // congruent to the client's region, strided to stay unique
                // and region-stable.
                next_insert: KEYS + global as u64 * nregions + ri as u64,
                insert_stride: nclients * nregions,
                nregions,
                label_prefix: String::new(),
            })
        },
    );
    run_to_completion(&mut db, &mut driver);
    report_errors(name, &driver.stats);
    driver.stats
}

fn main() {
    println!(
        "Figure 4b: uniqueness-check cost on INSERT, YCSB-D, 100% locality, {} ops/client\n",
        ops_per_client()
    );
    let variants: Vec<(&str, YcsbTable)> = vec![
        ("Default", YcsbTable::RegionalByRow { rehoming: false }),
        ("Computed", YcsbTable::ComputedRegion),
        ("Baseline", YcsbTable::ManualPartition),
    ];
    for (i, (name, variant)) in variants.into_iter().enumerate() {
        let stats = run_variant(name, variant, 61 + i as u64);
        let mut reads = stats.merged(|l| l.starts_with("read"));
        let mut inserts = stats.merged(|l| l.starts_with("insert"));
        print_row(&format!("{name:<10} read"), &mut reads);
        print_row(&format!("{name:<10} insert"), &mut inserts);
        println!();
    }
    println!(
        "paper expectation: Computed and Baseline INSERT locally; Default INSERTs pay a\n\
         cross-region round trip for the primary-key uniqueness probes (latency clusters\n\
         at the inter-region RTTs). Reads are local for all three."
    );
}

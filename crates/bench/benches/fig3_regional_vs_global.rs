//! Figure 3: transaction latency for REGIONAL and GLOBAL tables (§7.1).
//!
//! Five regions (Table 1 RTTs), `max_clock_offset = 250ms`, YCSB-A (50/50
//! reads and writes, Zipf keys over 100k rows), 10 clients per region
//! against collocated gateways. Three configurations:
//!
//! 1. *Global* — fresh reads and writes on a GLOBAL table;
//! 2. *Regional (Latest)* — fresh reads and writes on a
//!    `REGIONAL BY TABLE IN PRIMARY REGION` table;
//! 3. *Regional (Stale)* — bounded-staleness reads on the REGIONAL table.
//!
//! Results split by request origin (PRIMARY region vs non-PRIMARY), read
//! vs write — the paper's box plots become percentile rows.
//!
//! Expected shape (paper): GLOBAL reads < 3ms everywhere, GLOBAL writes
//! 500-600ms; REGIONAL reads/writes < 3ms from the primary, 100-200ms
//! remote; stale reads < 3ms everywhere.

use mr_bench::*;
use mr_sim::{SimDuration, SimRng};
use mr_workload::driver::ClosedLoop;
use mr_workload::ycsb::{KeyChooser, ReadMode, YcsbGen, YcsbTable};
use mr_workload::Zipf;

const KEYS: u64 = 100_000;

fn run_config(name: &str, variant: YcsbTable, read_mode: ReadMode, seed: u64) {
    let mut db = five_region_db(250, seed);
    let regions = paper_regions();
    setup_ycsb(&mut db, &regions, "usertable", variant, KEYS, |_| {
        unreachable!("unpartitioned")
    });
    let mut driver = ClosedLoop::new();
    let mut rng = SimRng::seed_from_u64(seed);
    let ops = ops_per_client();
    add_clients(
        &db,
        &mut driver,
        &regions,
        "ycsb",
        10,
        &mut rng,
        |ri, _, _| {
            Box::new(YcsbGen {
                table: "usertable".into(),
                variant,
                read_fraction: 0.5,
                insert_workload: false,
                keys: KeyChooser::Zipf(Zipf::ycsb(KEYS)),
                read_mode,
                regions: paper_regions(),
                region_idx: ri,
                remaining: Some(ops),
                next_insert: 0,
                insert_stride: 1,
                nregions: 5,
                // Region 0 hosts the PRIMARY (all leaseholders).
                label_prefix: if ri == 0 {
                    "primary/".into()
                } else {
                    "nonprimary/".into()
                },
            })
        },
    );
    run_to_completion(&mut db, &mut driver);
    report_errors(name, &driver.stats);
    for origin in ["primary", "nonprimary"] {
        for kind in ["read", "write"] {
            let mut rec = driver
                .stats
                .merged(|l| l.starts_with(&format!("{origin}/{kind}")));
            print_row(&format!("{name:<18} {origin:<11} {kind}"), &mut rec);
        }
    }
    println!();
}

fn main() {
    println!(
        "Figure 3: transaction latency for REGIONAL and GLOBAL tables \
         (5 regions, max_clock_offset=250ms, YCSB-A, {} ops/client)\n",
        ops_per_client()
    );
    run_config("Global", YcsbTable::Global, ReadMode::Fresh, 31);
    run_config(
        "Regional (Latest)",
        YcsbTable::RegionalByTable,
        ReadMode::Fresh,
        32,
    );
    run_config(
        "Regional (Stale)",
        YcsbTable::RegionalByTable,
        ReadMode::BoundedStaleness(SimDuration::from_secs(10)),
        33,
    );
    println!(
        "paper expectation: GLOBAL reads <3ms everywhere / writes 500-600ms;\n\
         REGIONAL (Latest) <3ms from primary, 100-200ms elsewhere;\n\
         REGIONAL (Stale) reads <3ms everywhere."
    );
}
